// Command qfix-worker serves partition-diagnosis jobs to a qfix
// coordinator. Run one per core across a fleet, then point the
// coordinator at them:
//
//	qfix-worker -addr :7433 &
//	qfix-worker -addr :7434 &
//	qfix -data D0.csv -log history.sql -complaints bad.txt \
//	    -workers localhost:7433,localhost:7434
//
// Each job is a self-contained partition subproblem (initial state, query
// log, complaint subset, solver options) framed as newline-delimited JSON
// over TCP; the worker solves it with the in-process engine and streams
// the repair back. A wire-v3 coordinator (qfix -mux) keeps one
// persistent connection and multiplexes jobs over it: up to
// -max-inflight jobs (a server-wide bound, whatever mix of connections
// they arrive on) solve concurrently and each result is written the
// moment its solve lands, possibly out of submission order. v2
// coordinators (one dialed connection per job) are served unchanged. Jobs from coordinators speaking a protocol generation this
// binary doesn't know are rejected with an error result. -max-timelimit
// caps the solver budget a coordinator may request. Repeat jobs
// carrying the digests of an already-decoded D0/log reuse the worker's
// decode cache and impact closure instead of re-decoding and
// re-planning (-cache sizes the cache; 0 disables it).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
)

func main() {
	var (
		addr  = flag.String("addr", ":7433", "TCP address to listen on")
		maxTL = flag.Duration("max-timelimit", 0, "cap on per-job solver time limits (0 = trust the coordinator)")
		inflt = flag.Int("max-inflight", 0,
			"concurrent solves across the whole worker, however many connections (0 = GOMAXPROCS, <0 = one at a time)")
		cache = flag.Int("cache", dist.DefaultWorkerCacheEntries,
			"decode-cache entries: repeat jobs with the same D0/log skip decode and re-planning (0 disables)")
		quiet     = flag.Bool("quiet", false, "suppress per-job logging")
		telemetry = flag.String("telemetry", "",
			"serve live telemetry on this HTTP address (/metrics Prometheus text, /debug/vars JSON, /debug/pprof/*); empty disables")
	)
	flag.Parse()

	cacheSize := *cache
	if cacheSize <= 0 {
		cacheSize = -1 // Server treats negative as disabled, 0 as default
	}
	srv := &dist.Server{MaxTimeLimit: *maxTL, MaxInflight: *inflt, CacheSize: cacheSize}
	if !*quiet {
		srv.Logf = log.Printf
	}

	if *telemetry != "" {
		// The telemetry listener binds before the job listener so a
		// misconfigured address fails fast instead of after jobs started.
		tl, err := net.Listen("tcp", *telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfix-worker: telemetry:", err)
			os.Exit(1)
		}
		log.Printf("qfix-worker: telemetry on http://%s/metrics", tl.Addr())
		go func() {
			hs := &http.Server{Handler: obs.TelemetryMux(obs.Default())}
			if err := hs.Serve(tl); err != nil {
				log.Printf("qfix-worker: telemetry server: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-worker:", err)
		os.Exit(1)
	}
	log.Printf("qfix-worker: serving diagnosis jobs on %s (protocol v%d, accepting back to v%d)",
		l.Addr(), dist.WireVersion, dist.MinWireVersion)
	if *maxTL > 0 {
		log.Printf("qfix-worker: per-job solver budget capped at %v", maxTL.Round(time.Second))
	}
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "qfix-worker:", err)
		os.Exit(1)
	}
}
