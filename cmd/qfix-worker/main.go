// Command qfix-worker serves partition-diagnosis jobs to a qfix
// coordinator. Run one per core across a fleet, then point the
// coordinator at them:
//
//	qfix-worker -addr :7433 &
//	qfix-worker -addr :7434 &
//	qfix -data D0.csv -log history.sql -complaints bad.txt \
//	    -workers localhost:7433,localhost:7434
//
// Each job is a self-contained partition subproblem (initial state, query
// log, complaint subset, solver options) framed as newline-delimited JSON
// over TCP; the worker solves it with the in-process engine and streams
// the repair back. Jobs from coordinators speaking a different protocol
// version are rejected with an error result. -max-timelimit caps the
// solver budget a coordinator may request.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/dist"
)

func main() {
	var (
		addr  = flag.String("addr", ":7433", "TCP address to listen on")
		maxTL = flag.Duration("max-timelimit", 0, "cap on per-job solver time limits (0 = trust the coordinator)")
		quiet = flag.Bool("quiet", false, "suppress per-job logging")
	)
	flag.Parse()

	srv := &dist.Server{MaxTimeLimit: *maxTL}
	if !*quiet {
		srv.Logf = log.Printf
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-worker:", err)
		os.Exit(1)
	}
	log.Printf("qfix-worker: serving diagnosis jobs on %s (protocol v%d)",
		l.Addr(), dist.WireVersion)
	if *maxTL > 0 {
		log.Printf("qfix-worker: per-job solver budget capped at %v", maxTL.Round(time.Second))
	}
	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "qfix-worker:", err)
		os.Exit(1)
	}
}
