// Command qfix-bench regenerates the QFix paper's evaluation figures.
//
// Usage:
//
//	qfix-bench -fig fig6b            # one figure
//	qfix-bench -fig all              # the whole evaluation
//	qfix-bench -fig fig9 -scale large -reps 5 -seed 7
//
// Output is one aligned text table per figure, with the same series the
// paper plots (latency plus precision/recall/F1). See EXPERIMENTS.md for
// the recorded paper-vs-measured comparison at the default scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id (see -list) or 'all'")
		scale   = flag.String("scale", "default", "experiment scale: quick | default | large")
		reps    = flag.Int("reps", 0, "repetitions per point (0 = scale default)")
		seed    = flag.Int64("seed", 1, "base random seed")
		limit   = flag.Duration("timelimit", 0, "per-solve time limit (0 = scale default)")
		verbose = flag.Bool("v", false, "progress output")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonDir = flag.String("json", "", "also write each table as BENCH_<id>.json in this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := &bench.Runner{Scale: sc, Seed: *seed, Reps: *reps, TimeLimit: *limit}
	if *verbose {
		r.Out = os.Stderr
	}
	if *jsonDir != "" {
		// Fail fast: experiments can run for hours, so a bad output
		// directory must not surface only at the first write.
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var exps []bench.Experiment
	if *fig == "all" {
		exps = bench.Experiments()
	} else {
		e, ok := bench.Lookup(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	start := time.Now()
	for _, e := range exps {
		t0 := time.Now()
		table, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+e.ID+".json")
			raw, err := json.MarshalIndent(table, "", "  ")
			if err == nil {
				err = os.WriteFile(path, raw, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing %s: %v\n", e.ID, path, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", path)
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}
