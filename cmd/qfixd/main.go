// Command qfixd runs QFix as a resident multi-tenant diagnosis service.
//
// It owns a directory of history stores (one subdirectory per tenant),
// a shared scheduler pool, and optionally a shared worker fleet, and
// serves append/complain/diagnose requests over a newline-delimited
// JSON protocol (internal/qfixd):
//
//	qfixd -addr :7460 -dir /var/lib/qfix &
//	# then, from any client connection:
//	{"v":1,"id":1,"op":"create","tenant":"acme","table":"Taxes","attrs":["income","owed","pay"]}
//	{"v":1,"id":2,"op":"append","tenant":"acme","sql":["UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700"]}
//	{"v":1,"id":3,"op":"complain","tenant":"acme","complaints":[{"TupleID":3,"Exists":true,"Values":[86000,21500,64500]}]}
//	{"v":1,"id":4,"op":"diagnose","tenant":"acme"}
//
// Diagnoses run concurrently up to -max-inflight, with excess queued
// per tenant and drained round-robin so no tenant starves another;
// repairs are byte-identical to the same diagnosis run by the qfix CLI.
// -admin serves live telemetry (/metrics, /debug/vars, /debug/pprof/*).
// SIGINT/SIGTERM drain gracefully: in-flight diagnoses finish and
// answer, new work is refused, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/qfixd"
)

func main() {
	var (
		addr  = flag.String("addr", ":7460", "TCP address to serve the daemon protocol on")
		admin = flag.String("admin", "",
			"serve admin telemetry on this HTTP address (/metrics Prometheus text, /debug/vars JSON, /debug/pprof/*); empty disables")
		dir       = flag.String("dir", ".", "root data directory; each tenant's history store is a subdirectory")
		inflt     = flag.Int("max-inflight", 0, "concurrent diagnoses across all tenants (0 = GOMAXPROCS, <0 = one at a time)")
		tq        = flag.Int("tenant-queue", 0, "per-tenant cap on queued diagnoses; beyond it requests get a busy error (0 = default, <0 = no queueing)")
		workers   = flag.String("workers", "", "comma-separated qfix-worker addresses for a shared diagnosis fleet")
		mux       = flag.Bool("mux", false, "multiplex fleet jobs over persistent connections (wire v3)")
		part      = flag.Int("partition", 0, "default partition width for diagnoses that do not request one")
		pool      = flag.Int("pool", 0, "resident scheduler pool size shared by all diagnoses (0 = GOMAXPROCS)")
		maxStores = flag.Int("max-stores", 0, "resident tenant stores before LRU eviction of idle ones (0 = default, <0 = unlimited)")
		storeIdle = flag.Duration("store-idle", 0, "close tenant stores unused this long (0 = default, <0 = never)")
		traces    = flag.String("trace-dir", "", "write one span-tree trace per diagnosis into this directory; empty disables")
		drain     = flag.Duration("drain-timeout", time.Minute, "how long a graceful shutdown waits for in-flight diagnoses")
		quiet     = flag.Bool("quiet", false, "suppress per-request logging")
	)
	flag.Parse()

	cfg := qfixd.Config{
		Dir:           *dir,
		MaxInflight:   *inflt,
		TenantQueue:   *tq,
		Mux:           *mux,
		Partition:     *part,
		PoolWorkers:   *pool,
		MaxOpenStores: *maxStores,
		StoreIdle:     *storeIdle,
		TraceDir:      *traces,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			cfg.Workers = append(cfg.Workers, w)
		}
	}
	if cfg.TraceDir != "" {
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "qfixd:", err)
			os.Exit(1)
		}
	}

	if *admin != "" {
		// The admin listener binds before the service listener so a
		// misconfigured address fails fast, before clients can connect.
		al, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfixd: admin:", err)
			os.Exit(1)
		}
		log.Printf("qfixd: admin telemetry on http://%s/metrics", al.Addr())
		go func() {
			hs := &http.Server{Handler: obs.TelemetryMux(obs.Default())}
			if err := hs.Serve(al); err != nil {
				log.Printf("qfixd: admin server: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfixd:", err)
		os.Exit(1)
	}

	svc := qfixd.NewService(cfg)
	srv := qfixd.NewServer(svc)
	log.Printf("qfixd: serving tenants from %s on %s (protocol v%d, %d fleet workers)",
		*dir, l.Addr(), qfixd.WireVersion, len(cfg.Workers))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("qfixd: %v: draining (up to %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if cerr := svc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfixd: shutdown:", err)
			os.Exit(1)
		}
		log.Printf("qfixd: drained, exiting")
	case err := <-errc:
		svc.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfixd:", err)
			os.Exit(1)
		}
	}
}
