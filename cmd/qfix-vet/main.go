// Command qfix-vet runs the qfix static-analysis suite (detmap,
// ctxloop, spanend, detclock — see internal/analysis) over Go packages.
// It runs two ways:
//
//	qfix-vet ./...                     # standalone, like go vet
//	go vet -vettool=$(which qfix-vet) ./...
//
// Standalone mode loads and type-checks packages itself via `go list
// -export` and exits 1 if any diagnostic survives the //qfix:*-ok
// directives. Vettool mode speaks the unit-checker protocol the go
// command drives: respond to -V=full (cache key) and -flags, then
// analyze single compilation units described by *.cfg files, with
// imports satisfied from the export-data map the go command hands us.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// Vet tool protocol probes come before flag parsing: the go command
	// invokes the tool as `qfix-vet -V=full` (version stamp for the
	// build cache) and `qfix-vet -flags` (supported analyzer flags).
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			// The stamp participates in go's action cache: bump it when
			// analyzer behavior changes so stale clean results die.
			fmt.Printf("%s version qfix-vet-1.0\n", os.Args[0])
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qfix-vet [packages]   (standalone; patterns default to ./...)\n")
		fmt.Fprintf(os.Stderr, "       qfix-vet unit.cfg     (as go vet -vettool)\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads the packages matching the patterns and prints every
// surviving diagnostic, one per line, go-vet style.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	failed := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
		for _, d := range diags {
			failed = true
			fmt.Println(relativize(dir, d))
		}
	}
	if failed {
		return 1
	}
	return 0
}

func relativize(dir string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// vetConfig mirrors the fields of the JSON unit-checker config the go
// command writes for -vettool invocations.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one compilation unit under the go vet driver.
// Diagnostics go to stderr; exit status 2 signals findings, matching
// the x/tools unitchecker convention.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qfix-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The driver expects a facts file for downstream units whether or
	// not we have facts to share (we don't — the suite is local).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Keep vettool findings aligned with standalone mode: analyze only
	// the non-test files of the unit (test variants share them).
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	loader := analysis.NewLoader(cfg.Dir)
	loader.SetExports(cfg.ImportMap, cfg.PackageFile)
	pkg, err := loader.Check(cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	diags, err := analysis.Run(pkg, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	w := io.Writer(os.Stderr)
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
	return 2
}
