// Command qfix-vet runs the qfix static-analysis suite (detmap,
// ctxloop, spanend, detclock, lockcheck, goleak, wiredrift — see
// internal/analysis) over Go packages. It runs two ways:
//
//	qfix-vet ./...                     # standalone, like go vet
//	go vet -vettool=$(which qfix-vet) ./...
//
// Standalone mode loads and type-checks packages itself via `go list
// -export` and exits 1 if any diagnostic survives the //qfix:*-ok
// directives; -json switches the report to a machine-readable array
// (one object per finding) for CI problem matchers. Vettool mode
// speaks the unit-checker protocol the go command drives: respond to
// -V=full (cache key) and -flags, then analyze single compilation
// units described by *.cfg files, with imports satisfied from the
// export-data map the go command hands us. Cross-package facts ride
// the driver's .vetx files in vettool mode and a shared in-process
// store in standalone mode (go list -deps orders dependencies first).
//
// qfix-vet -write-wire-lock ./... regenerates the per-package
// wire.lock goldens the wiredrift analyzer diffs against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// Vet tool protocol probes come before flag parsing: the go command
	// invokes the tool as `qfix-vet -V=full` (version stamp for the
	// build cache) and `qfix-vet -flags` (supported analyzer flags).
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			// The stamp participates in go's action cache: bump it when
			// analyzer behavior changes so stale clean results die.
			fmt.Printf("%s version qfix-vet-2.0\n", os.Args[0])
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	jsonOut := flag.Bool("json", false, "standalone mode: emit findings as a JSON array on stdout")
	writeWireLock := flag.Bool("write-wire-lock", false, "regenerate wire.lock goldens for matching packages and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qfix-vet [-json] [packages]        (standalone; patterns default to ./...)\n")
		fmt.Fprintf(os.Stderr, "       qfix-vet -write-wire-lock [packages]\n")
		fmt.Fprintf(os.Stderr, "       qfix-vet unit.cfg                  (as go vet -vettool)\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	args := flag.Args()
	if *writeWireLock {
		os.Exit(writeWireLocks(args))
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	os.Exit(standalone(args, *jsonOut))
}

// loadPatterns lists and type-checks the module packages matching the
// patterns (default ./...) from the current directory.
func loadPatterns(patterns []string) (string, []*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", nil, err
	}
	loader := analysis.NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	return dir, pkgs, err
}

// jsonFinding is one -json mode record; stable field names are part of
// the CI problem-matcher contract.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone loads the packages matching the patterns and prints every
// surviving diagnostic — one per line go-vet style, or as a JSON array.
func standalone(patterns []string, jsonOut bool) int {
	dir, pkgs, err := loadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	// One fact store across the whole load: go list -deps guarantees
	// dependencies precede dependents, so facts are ready when consumed.
	facts := analysis.NewFactStore()
	findings := []jsonFinding{}
	failed := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.Suite(), facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
		for _, d := range diags {
			failed = true
			d = relativize(dir, d)
			if jsonOut {
				findings = append(findings, jsonFinding{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			} else {
				fmt.Println(d.String())
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
	}
	if failed {
		return 1
	}
	return 0
}

// writeWireLocks regenerates the wire.lock golden of every matching
// package that has wire message structs.
func writeWireLocks(patterns []string) int {
	_, pkgs, err := loadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	for _, pkg := range pkgs {
		if !analysis.WireDrift.AppliesTo(pkg.Path) {
			continue
		}
		path, err := analysis.WriteWireLock(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
		if path != "" {
			fmt.Printf("wrote %s\n", path)
		}
	}
	return 0
}

func relativize(dir string, d analysis.Diagnostic) analysis.Diagnostic {
	if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// vetConfig mirrors the fields of the JSON unit-checker config the go
// command writes for -vettool invocations.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// modulePath is the import-path prefix of this module's own packages —
// the only units worth a facts pass when the driver asks VetxOnly.
const modulePath = "repro"

func inModule(importPath string) bool {
	return importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/")
}

// unitCheck analyzes one compilation unit under the go vet driver.
// Diagnostics go to stderr; exit status 2 signals findings, matching
// the x/tools unitchecker convention. Facts flow through the driver's
// .vetx files: dependencies' facts arrive in PackageVetx, this unit's
// exports leave through VetxOutput.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "qfix-vet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Hydrate dependency facts from the .vetx files earlier units wrote.
	facts := analysis.NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetx)
		if err != nil {
			continue // factless dependency (e.g. std): nothing to load
		}
		fs, err := analysis.DecodeFacts(payload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qfix-vet: decoding facts for %s: %v\n", path, err)
			return 2
		}
		facts.Add(path, fs)
	}
	// emitVetx writes this unit's exported facts (possibly none) where
	// the driver expects them; downstream units read the file back.
	emitVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		payload, err := analysis.EncodeFacts(facts.Package(cfg.ImportPath))
		if err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
		if payload == nil {
			payload = []byte{}
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "qfix-vet:", err)
			return 2
		}
		return 0
	}
	// Keep vettool findings aligned with standalone mode: analyze only
	// the non-test files of the unit (test variants share them).
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	// Fact-only dependency units: module packages still run the suite so
	// their exports reach dependents (diagnostics are the dependent's
	// business only in its own unit, so they are discarded here); std and
	// external units are factless.
	if cfg.VetxOnly {
		if inModule(cfg.ImportPath) && len(files) > 0 {
			if code := analyzeUnit(&cfg, files, facts, true); code != 0 {
				return code
			}
		}
		return emitVetx()
	}
	if len(files) == 0 {
		return emitVetx()
	}
	// Findings exit 2, but the vetx file is written regardless so
	// dependent units still see this package's facts.
	code := analyzeUnit(&cfg, files, facts, false)
	if ec := emitVetx(); ec != 0 {
		return ec
	}
	return code
}

// analyzeUnit type-checks and runs the suite over one unit, reporting
// diagnostics to stderr unless factsOnly. Exit code semantics match
// unitCheck; 0 means continue.
func analyzeUnit(cfg *vetConfig, files []string, facts *analysis.FactStore, factsOnly bool) int {
	loader := analysis.NewLoader(cfg.Dir)
	loader.SetExports(cfg.ImportMap, cfg.PackageFile)
	pkg, err := loader.Check(cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	diags, err := analysis.Run(pkg, analysis.Suite(), facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix-vet:", err)
		return 2
	}
	if factsOnly || len(diags) == 0 {
		return 0
	}
	w := io.Writer(os.Stderr)
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
	return 2
}
