UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;
INSERT INTO Taxes VALUES (85800, 21450, 0);
UPDATE Taxes SET pay = income - owed;
