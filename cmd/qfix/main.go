// Command qfix diagnoses data errors through a query history.
//
// It reads an initial database state (CSV with a header row), a SQL log
// (UPDATE/INSERT/DELETE statements separated by semicolons), and a
// complaint file, then prints the repaired log.
//
// Complaint file format, one complaint per line:
//
//	<tuple-id>,<v1>,<v2>,...   the tuple should end with these values
//	<tuple-id>,DELETED         the tuple should have been deleted
//
// Tuple IDs are 1-based insertion order of the CSV rows; tuples inserted
// by the log continue the sequence.
//
// Example:
//
//	qfix -data taxes.csv -log history.sql -complaints bad.txt -table Taxes
//
// Alternatively, -hist points at a histstore directory (meta.txt +
// snapshot.csv + log.sql, as written by internal/histstore): the
// checkpoint state and log are loaded from the store, and repeat
// diagnoses (-repeat) reuse the store's impact cache.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	qfix "repro"
	"repro/internal/histstore"
	"repro/internal/obs"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV file with header row: the initial state D0")
		logPath   = flag.String("log", "", "SQL file with the query history")
		histPath  = flag.String("hist", "", "history-store directory (alternative to -data/-log)")
		repeat    = flag.Int("repeat", 1, "run the diagnosis this many times; repeats share an impact cache")
		compPath  = flag.String("complaints", "", "complaint file (id,v1,v2,... or id,DELETED)")
		tableName = flag.String("table", "t", "table name used in the SQL statements")
		keyAttr   = flag.String("key", "", "primary key attribute name (optional)")
		algo      = flag.String("algorithm", "incremental", "basic | incremental")
		k         = flag.Int("k", 1, "incremental batch size")
		parallel  = flag.String("parallel", "1", "concurrent incremental batch workers (or 'auto' to size from GOMAXPROCS)")
		partition = flag.String("partition", "0", "partition-parallel diagnosis workers (0 disables partitioning; 'auto' sizes from GOMAXPROCS)")
		solverPar = flag.String("solver-parallel", "1", "concurrent branch-and-bound LP workers inside each MILP solve (or 'auto'); repairs are identical at any setting")
		noPre     = flag.Bool("no-presolve", false, "disable the MILP root presolve (ablation)")
		verbose   = flag.Bool("v", false, "print solver statistics (nodes, LP iterations, refactorizations, presolved rows)")
		workers   = flag.String("workers", "", "comma-separated qfix-worker addresses (host:port,...) for distributed diagnosis")
		mux       = flag.Bool("mux", false, "multiplex jobs over one persistent connection per worker (wire v3) instead of dialing per job")
		noTuple   = flag.Bool("no-tuple-slicing", false, "disable tuple slicing")
		noQuery   = flag.Bool("no-query-slicing", false, "disable query slicing")
		attrSlice = flag.Bool("attr-slicing", false, "enable attribute slicing")
		single    = flag.Bool("single", false, "assume a single corrupted query (strict candidate filter)")
		warm      = flag.Bool("warm", false, "warm-start MILP solves from prior solutions (refinement rounds, sibling partitions, and -repeat/-hist runs via a solution cache); repairs stay identical to cold solves")
		limit     = flag.Duration("timelimit", 60*time.Second, "per-solve time limit")
		tracePath = flag.String("trace", "", "record a diagnosis trace to this file (.jsonl/.ndjson = span lines, anything else = Chrome trace_event JSON for chrome://tracing)")
		metrics   = flag.String("metrics", "", "after diagnosing, dump process metrics to this file ('-' = stdout; .json = JSON, otherwise Prometheus text)")
	)
	flag.Parse()
	if *histPath != "" && (*dataPath != "" || *logPath != "") {
		fmt.Fprintln(os.Stderr, "qfix: -hist and -data/-log are mutually exclusive")
		os.Exit(2)
	}
	if *compPath == "" || (*histPath == "" && (*dataPath == "" || *logPath == "")) {
		fmt.Fprintln(os.Stderr, "usage: qfix -data D0.csv -log history.sql -complaints bad.txt [flags]")
		fmt.Fprintln(os.Stderr, "       qfix -hist storedir -complaints bad.txt [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var (
		sch     *qfix.Schema
		d0      *qfix.Table
		history []qfix.Query
		store   *histstore.Store
		err     error
	)
	if *histPath != "" {
		store, err = histstore.Open(*histPath)
		fatalIf(err)
		defer store.Close()
		// The store diagnoses from its own state; only the schema is
		// needed up front (complaint parsing, output rendering).
		sch = store.Schema()
	} else {
		sch, d0, err = loadCSV(*dataPath, *tableName, *keyAttr)
		fatalIf(err)
		var sqlBytes []byte
		sqlBytes, err = os.ReadFile(*logPath)
		fatalIf(err)
		history, err = qfix.ParseLog(sch, string(sqlBytes))
		fatalIf(err)
	}

	complaints, err := loadComplaints(*compPath, sch.Width())
	fatalIf(err)

	par, err := parsePool("parallel", *parallel)
	fatalIf(err)
	part, err := parsePool("partition", *partition)
	fatalIf(err)
	spar, err := parsePool("solver-parallel", *solverPar)
	fatalIf(err)

	opts := qfix.Options{
		K:                *k,
		Parallel:         par,
		Partition:        part,
		TupleSlicing:     !*noTuple,
		QuerySlicing:     !*noQuery,
		AttrSlicing:      *attrSlice,
		SingleCorruption: *single,
		WarmStart:        *warm,
		SolverParallel:   spar,
		NoPresolve:       *noPre,
		TimeLimit:        *limit,
	}
	if *workers != "" {
		for _, addr := range strings.Split(*workers, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				opts.Workers = append(opts.Workers, addr)
			}
		}
	}
	opts.MuxWorkers = *mux
	if *mux && len(opts.Workers) == 0 {
		fmt.Fprintln(os.Stderr, "qfix: -mux has no effect without -workers; diagnosing locally")
	}
	if *verbose {
		// Same log.Printf sink qfix-worker uses, so coordinator warnings
		// (slow jobs, retries, fallbacks) read identically on both sides.
		opts.Logf = log.Printf
	}
	var root *obs.Span
	if *tracePath != "" {
		root = obs.NewTrace("qfix")
		opts.Trace = root
	}
	switch *algo {
	case "basic":
		opts.Algorithm = qfix.Basic
	case "incremental", "inc":
		opts.Algorithm = qfix.Incremental
	default:
		fatalIf(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if *repeat < 1 {
		*repeat = 1
	}
	if store == nil && *repeat > 1 {
		// The store brings its own caches; standalone repeats share one.
		opts.ImpactCache = qfix.NewImpactCache(0)
		if *warm {
			opts.SolutionCache = qfix.NewSolutionCache(0)
		}
	}
	var rep *qfix.Repair
	var elapsed time.Duration
	for run := 1; run <= *repeat; run++ {
		start := time.Now()
		if store != nil {
			rep, err = store.Diagnose(complaints, opts)
		} else {
			rep, err = qfix.Diagnose(d0, history, complaints, opts)
		}
		fatalIf(err)
		elapsed = time.Since(start)
		if *repeat > 1 {
			fmt.Printf("-- run %d/%d: %v (impact cache hits: %d; warm seeds: %d, %d nodes)\n",
				run, *repeat, elapsed.Round(time.Millisecond), rep.Stats.ImpactCacheHits,
				rep.Stats.WarmSeeds, rep.Stats.Nodes)
		}
	}

	if root != nil {
		root.End()
		fatalIf(writeTrace(root, *tracePath))
	}
	if *metrics != "" {
		fatalIf(writeMetrics(*metrics))
	}

	fmt.Printf("-- diagnosis completed in %v\n", elapsed.Round(time.Millisecond))
	for _, line := range rep.Stats.Format(*verbose) {
		fmt.Printf("-- %s\n", line)
	}
	fmt.Printf("-- complaints resolved: %v; repair distance: %.3f\n", rep.Resolved, rep.Distance)
	if len(rep.Changed) == 0 {
		fmt.Println("-- no queries needed repair")
	}
	for i, q := range rep.Log {
		marker := "  "
		for _, c := range rep.Changed {
			if c == i {
				marker = "*>"
			}
		}
		fmt.Printf("%s %s;\n", marker, q.String(sch))
	}
	if !rep.Resolved {
		fmt.Println("-- WARNING: no verified repair found (infeasible or time limit)")
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qfix:", err)
		os.Exit(1)
	}
}

// writeTrace exports the finished span tree: JSONL span lines for
// .jsonl/.ndjson paths, Chrome trace_event JSON otherwise.
func writeTrace(root *obs.Span, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(f, root, path); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the process-wide registry: JSON for .json paths,
// Prometheus text exposition otherwise; "-" writes text to stdout.
func writeMetrics(path string) error {
	if path == "-" {
		return obs.Default().WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".json") {
		werr = obs.Default().WriteJSON(f)
	} else {
		werr = obs.Default().WritePrometheus(f)
	}
	if err := f.Close(); err != nil && werr == nil {
		werr = err
	}
	return werr
}

// parsePool parses a worker-pool size flag: an integer, or "auto" for
// adaptive sizing (Options treats -1 as "size from GOMAXPROCS").
func parsePool(name, s string) (int, error) {
	if strings.EqualFold(strings.TrimSpace(s), "auto") {
		return -1, nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("-%s: want an integer or 'auto', got %q", name, s)
	}
	return n, nil
}

// loadCSV reads the initial state: header row of attribute names, then
// one row of numeric values per tuple.
func loadCSV(path, table, key string) (*qfix.Schema, *qfix.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) < 1 {
		return nil, nil, fmt.Errorf("%s: empty file", path)
	}
	header := make([]string, len(records[0]))
	for i, h := range records[0] {
		header[i] = strings.TrimSpace(h)
	}
	sch, err := qfix.NewSchema(table, header, key)
	if err != nil {
		return nil, nil, err
	}
	tb := qfix.NewTable(sch)
	for li, rec := range records[1:] {
		vals := make([]float64, len(rec))
		for i, cell := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s line %d: %v", path, li+2, err)
			}
			vals[i] = v
		}
		if _, err := tb.Insert(vals); err != nil {
			return nil, nil, fmt.Errorf("%s line %d: %v", path, li+2, err)
		}
	}
	return sch, tb, nil
}

// loadComplaints parses the complaint file.
func loadComplaints(path string, width int) ([]qfix.Complaint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []qfix.Complaint
	for li, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		id, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: bad tuple id: %v", path, li+1, err)
		}
		if len(parts) == 2 && strings.EqualFold(strings.TrimSpace(parts[1]), "DELETED") {
			out = append(out, qfix.Complaint{TupleID: id, Exists: false})
			continue
		}
		if len(parts)-1 != width {
			return nil, fmt.Errorf("%s line %d: %d values, schema has %d attributes",
				path, li+1, len(parts)-1, width)
		}
		vals := make([]float64, width)
		for i, cell := range parts[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, fmt.Errorf("%s line %d: %v", path, li+1, err)
			}
			vals[i] = v
		}
		out = append(out, qfix.Complaint{TupleID: id, Exists: true, Values: vals})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no complaints", path)
	}
	return out, nil
}
