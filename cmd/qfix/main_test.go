package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	qfix "repro"
)

func TestLoadCSV(t *testing.T) {
	sch, tb, err := loadCSV("testdata/taxes.csv", "Taxes", "")
	if err != nil {
		t.Fatal(err)
	}
	if sch.Width() != 3 || tb.Len() != 4 {
		t.Fatalf("width=%d len=%d", sch.Width(), tb.Len())
	}
	tp, ok := tb.Get(2)
	if !ok || tp.Values[0] != 90000 {
		t.Errorf("tuple 2 = %v", tp.Values)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\n1,notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadCSV(bad, "t", ""); err == nil {
		t.Error("non-numeric cell accepted")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadCSV(empty, "t", ""); err == nil {
		t.Error("empty file accepted")
	}
	if _, _, err := loadCSV(filepath.Join(dir, "missing.csv"), "t", ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadComplaints(t *testing.T) {
	cs, err := loadComplaints("testdata/complaints.txt", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d complaints", len(cs))
	}
	if cs[0].TupleID != 3 || !cs[0].Exists || cs[0].Values[1] != 21500 {
		t.Errorf("complaint 0 = %+v", cs[0])
	}
}

func TestLoadComplaintsFormats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.txt")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("7,DELETED\n")
	cs, err := loadComplaints(path, 3)
	if err != nil || len(cs) != 1 || cs[0].Exists || cs[0].TupleID != 7 {
		t.Errorf("DELETED parse: %+v, %v", cs, err)
	}
	write("1,2\n") // arity mismatch for width 3
	if _, err := loadComplaints(path, 3); err == nil {
		t.Error("arity mismatch accepted")
	}
	write("x,1,2,3\n")
	if _, err := loadComplaints(path, 3); err == nil {
		t.Error("bad id accepted")
	}
	write("# only comments\n")
	if _, err := loadComplaints(path, 3); err == nil {
		t.Error("empty complaint file accepted")
	}
}

func TestEndToEndFromFiles(t *testing.T) {
	// The CLI path without the process: load files, diagnose, verify.
	sch, d0, err := loadCSV("testdata/taxes.csv", "Taxes", "")
	if err != nil {
		t.Fatal(err)
	}
	sqlBytes, err := os.ReadFile("testdata/history.sql")
	if err != nil {
		t.Fatal(err)
	}
	history, err := qfix.ParseLog(sch, string(sqlBytes))
	if err != nil {
		t.Fatal(err)
	}
	complaints, err := loadComplaints("testdata/complaints.txt", sch.Width())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := qfix.Diagnose(d0, history, complaints, qfix.Options{
		Algorithm:    qfix.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if len(rep.Changed) != 1 || rep.Changed[0] != 0 {
		t.Errorf("changed = %v, want [0]", rep.Changed)
	}
}
