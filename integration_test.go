package qfix_test

import (
	"math/rand"
	"testing"
	"time"

	qfix "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/denoise"
	"repro/internal/oltp"
	"repro/internal/workload"
)

// Integration scenarios that cross module boundaries: generator →
// corruption → (denoise) → diagnosis → replay scoring.

func TestIntegrationMixedWorkloadOldCorruption(t *testing.T) {
	w := workload.MustGenerate(workload.Config{
		ND: 80, Na: 6, Nq: 30, Vd: 150, Range: 25, Mix: workload.Mixed, Seed: 77,
	})
	in, err := w.MakeInstance(2) // old corruption in a mixed log
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Skip("harmless corruption")
	}
	rep, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, core.Options{
		Algorithm:    core.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("unresolved: %+v", rep.Stats)
	}
	acc, err := in.Evaluate(rep.Log)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Recall < 1 {
		t.Errorf("recall = %v (%+v)", acc.Recall, acc)
	}
}

func TestIntegrationTwoCorruptionsBasic(t *testing.T) {
	w := workload.MustGenerate(workload.Config{
		ND: 30, Na: 5, Nq: 8, Vd: 150, Range: 40, Seed: 5,
	})
	in, err := w.MakeInstance(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Skip("harmless corruption")
	}
	rep, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, core.Options{
		Algorithm:    core.Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("unresolved: %+v", rep.Stats)
	}
}

func TestIntegrationPartitionedThroughFacade(t *testing.T) {
	// The partition engine end to end through the public API: the bench
	// cluster generator, one corruption per cluster, diagnosis with
	// Options.Partition, replay scoring against the truth.
	w, corruptIdx, err := bench.PartitionClusters(6, 4, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := qfix.Diagnose(w.D0, in.Dirty, in.Complaints, qfix.Options{
		Algorithm:    qfix.Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		Partition:    4,
		TimeLimit:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("unresolved: %+v", rep.Stats)
	}
	if rep.Stats.Partitions != 6 {
		t.Errorf("Stats.Partitions = %d, want 6", rep.Stats.Partitions)
	}
	acc, err := in.Evaluate(rep.Log)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Recall < 1 {
		t.Errorf("recall = %v (%+v)", acc.Recall, acc)
	}
}

func TestIntegrationDenoiseParallelPipeline(t *testing.T) {
	w := workload.MustGenerate(workload.Config{
		ND: 100, Na: 5, Nq: 25, Vd: 200, Range: 20, Seed: 31,
	})
	in, err := w.MakeInstance(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) < 3 {
		t.Skip("not enough complaints")
	}
	// Poison the inbox with two absurd fabricated complaints.
	rng := rand.New(rand.NewSource(9))
	noisy := append([]core.Complaint(nil), in.Complaints...)
	seen := map[int64]bool{}
	for _, c := range noisy {
		seen[c.TupleID] = true
	}
	added := 0
	for _, id := range in.DirtyFinal.IDs() {
		if seen[id] || added >= 2 {
			continue
		}
		tp, _ := in.DirtyFinal.Get(id)
		vals := append([]float64(nil), tp.Values...)
		vals[1+rng.Intn(len(vals)-1)] = 1e7
		noisy = append(noisy, core.Complaint{TupleID: id, Exists: true, Values: vals})
		added++
	}
	cleaned := denoise.Clean(in.DirtyFinal, noisy, denoise.Options{})
	if len(cleaned.Dropped) != added {
		t.Fatalf("denoiser dropped %d, want %d: %v", len(cleaned.Dropped), added, cleaned.Reasons)
	}
	rep, err := core.Diagnose(w.D0, in.Dirty, cleaned.Kept, core.Options{
		Algorithm:    core.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		Parallel:     2,
		TimeLimit:    45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("unresolved: %+v", rep.Stats)
	}
}

func TestIntegrationTATPThroughFacade(t *testing.T) {
	w := oltp.TATP(oltp.TATPConfig{Subscribers: 300, Queries: 100, Seed: 13})
	in, err := w.MakeInstance(99)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Skip("harmless corruption")
	}
	rep, err := qfix.Diagnose(w.D0, in.Dirty, in.Complaints, qfix.Options{
		Algorithm:        qfix.Incremental,
		TupleSlicing:     true,
		QuerySlicing:     true,
		SingleCorruption: true,
		TimeLimit:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("unresolved: %+v", rep.Stats)
	}
	acc, err := in.Evaluate(rep.Log)
	if err != nil {
		t.Fatal(err)
	}
	if acc.F1 < 0.99 {
		t.Errorf("F1 = %v", acc.F1)
	}
}

func TestIntegrationDeleteInsertChains(t *testing.T) {
	// A DELETE-corrupted log where complaints demand resurrection, and
	// an INSERT-corrupted log where complaints fix the inserted values —
	// the two non-UPDATE repair paths end to end.
	for _, mix := range []workload.QueryMix{workload.DeleteOnly, workload.InsertOnly} {
		w := workload.MustGenerate(workload.Config{
			ND: 60, Na: 4, Nq: 12, Vd: 120, Range: 10, Mix: mix, Seed: 17,
		})
		in, err := w.MakeInstance(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue
		}
		rep, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, core.Options{
			Algorithm:    core.Incremental,
			TupleSlicing: true,
			TimeLimit:    45 * time.Second,
		})
		if err != nil {
			t.Fatalf("mix %v: %v", mix, err)
		}
		if !rep.Resolved {
			t.Errorf("mix %v unresolved: %+v", mix, rep.Stats)
		}
	}
}
