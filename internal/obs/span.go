// Package obs is the observability layer: a lightweight hierarchical
// tracer and a process-wide metrics registry, both stdlib-only, that the
// diagnosis pipeline (core, milp, simplex, sched, dist, histstore)
// publishes into. Neither side is load-bearing for correctness — every
// consumer works identically with a nil span and an untouched registry —
// which is what lets the instrumentation ride the hot paths: a disabled
// tracer costs one nil check per phase, and metrics are single atomic
// operations.
//
// Tracing: a Span records one timed phase (name, attributes, start,
// duration) and its children. Spans form a tree rooted at NewTrace;
// every method is nil-safe, so call sites thread a possibly-nil span
// without guards and pay near-zero cost when tracing is off. Trees
// export as JSONL (WriteJSONL) and as the Chrome trace_event format
// (WriteChromeTrace, loadable in chrome://tracing and Perfetto), and
// Structure renders the timing-free shape — the artifact the engine's
// determinism tests pin across -solver-parallel settings.
//
// Metrics: a Registry holds named counters, gauges, and fixed-bucket
// log-scale histograms, rendered as Prometheus text exposition format
// (WritePrometheus) and JSON (WriteJSON), and served over HTTP by
// Handler/TelemetryMux (qfix-worker's -telemetry endpoint). Default()
// is the process-wide registry every subsystem publishes into.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attr is one span attribute. Values should be small scalars (ints,
// floats, strings, bools); they are serialized as-is by the exporters.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed phase of a trace: a name, attributes, a start time
// and duration, and child spans. A nil *Span is the disabled tracer:
// every method no-ops (returning nil children), so instrumented code
// threads spans unconditionally.
//
// Concurrency: a span's children may be created from the goroutine that
// owns the span; sibling subtrees may then be filled in concurrently by
// different goroutines (each goroutine owning its own subtree), which is
// exactly how the engine's partition and batch scans use it — spans for
// concurrent work are pre-created in deterministic (index) order by the
// coordinating goroutine, so the tree SHAPE never depends on scheduling.
// SetAttr/End on one span and Start on the same span are safe to
// interleave across goroutines.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	attrs    []Attr
	dur      time.Duration
	ended    bool
	children []*Span
}

// NewTrace starts a new root span. The returned span is the handle the
// caller threads through the pipeline (core.Options.Trace) and later
// exports; End it before exporting.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start creates, starts, and returns a child span. On a nil receiver it
// returns nil, which is what makes a disabled trace free: the nil flows
// through every downstream Start/SetAttr/End without allocation.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span and returns its duration. Safe on nil (returns 0)
// and idempotent: the first End wins, so a deferred safety End cannot
// stretch a span that was closed explicitly.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// SetAttr attaches (or overwrites) an attribute. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Name returns the span's name (empty for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's recorded duration (its live age when not
// yet ended; 0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns a snapshot of the span's children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a snapshot of the span's attributes in set order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// WellNested reports whether every descendant's time interval lies
// within its parent's (with tol of slack for clock granularity). Spans
// that were never ended fail the check. It is the invariant the trace
// tests assert over real diagnosis trees.
func (s *Span) WellNested(tol time.Duration) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	ended, start, dur := s.ended, s.start, s.dur
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if !ended {
		return false
	}
	end := start.Add(dur)
	for _, c := range kids {
		c.mu.Lock()
		cEnded, cStart, cDur := c.ended, c.start, c.dur
		c.mu.Unlock()
		if !cEnded {
			return false
		}
		if cStart.Add(tol).Before(start) || cStart.Add(cDur).After(end.Add(tol)) {
			return false
		}
		if !c.WellNested(tol) {
			return false
		}
	}
	return true
}

// Structure renders the timing-free shape of the tree: one line per
// span in depth-first order, indented by depth, with the sorted
// attribute keys. Durations and attribute values are deliberately
// excluded, so two runs of the same deterministic computation produce
// byte-identical structures even though their timings differ — the
// property the engine pins across -solver-parallel settings.
func (s *Span) Structure() string {
	if s == nil {
		return ""
	}
	var b []byte
	s.structure(&b, 0)
	return string(b)
}

func (s *Span) structure(b *[]byte, depth int) {
	s.mu.Lock()
	name := s.name
	keys := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		keys[i] = a.Key
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.Strings(keys)
	for i := 0; i < depth; i++ {
		*b = append(*b, "  "...)
	}
	*b = append(*b, name...)
	if len(keys) > 0 {
		*b = append(*b, fmt.Sprintf(" %v", keys)...)
	}
	*b = append(*b, '\n')
	for _, c := range kids {
		c.structure(b, depth+1)
	}
}
