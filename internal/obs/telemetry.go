package obs

import (
	"net/http"
	"net/http/pprof"
)

// TelemetryMux builds the HTTP handler behind qfix-worker's
// `-telemetry <addr>` listener:
//
//	/metrics     Prometheus text exposition of r
//	/debug/vars  the same metrics as JSON
//	/debug/pprof pprof profiles (CPU, heap, goroutine, ...)
//
// pprof handlers are mounted on this private mux explicitly rather than
// via the net/http/pprof side-effect import, so nothing leaks onto
// http.DefaultServeMux.
func TelemetryMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
