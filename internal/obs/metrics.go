package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a set of named metrics. All operations are safe for
// concurrent use; Get-or-create is idempotent, so packages grab their
// metrics lazily at first use without coordination. The zero Registry
// is NOT usable — call NewRegistry, or use the process-wide Default().
type Registry struct {
	mu     sync.Mutex
	order  []string // insertion order, for stable help lookup only
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	help   map[string]string
}

// NewRegistry returns an empty registry. Tests use fresh registries to
// isolate themselves from the process-wide Default().
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		help:   map[string]string{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that core, milp, dist,
// sched, and histstore publish into, and that qfix-worker's -telemetry
// endpoint and `qfix -metrics` render.
func Default() *Registry { return defaultRegistry }

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Nil-safe so callers can hold optional
// counters without guards.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (queue depth, inflight jobs).
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by n (use negative n on release).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates float64 observations into fixed buckets with
// precomputed upper bounds. Buckets are cumulative at render time
// (Prometheus `le` semantics); internally each slot counts only its own
// interval so observation is a single atomic add.
type Histogram struct {
	uppers []float64 // ascending; implicit +Inf bucket after the last
	counts []atomic.Int64
	count  atomic.Int64
	// sum is a float64 accumulated by CAS on its bit pattern.
	sumBits atomic.Uint64
}

// LogBuckets returns n upper bounds starting at start and multiplying
// by factor: start, start*factor, start*factor^2, … The default latency
// buckets LatencyBuckets use start=100µs, factor=4, n=10, spanning
// 100µs to ~26s — wide enough for both a cache-hit microsolve and a
// budget-limited MILP search.
func LogBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets is the shared bucket layout for solve/wire latency
// histograms, in seconds: 100µs, 400µs, 1.6ms, 6.4ms, 25.6ms, 102ms,
// 410ms, 1.6s, 6.6s, 26s, +Inf.
func LatencyBuckets() []float64 { return LogBuckets(100e-6, 4, 10) }

// newHistogram builds a histogram with the given ascending upper bounds.
func newHistogram(uppers []float64) *Histogram {
	u := append([]float64(nil), uppers...)
	sort.Float64s(u)
	return &Histogram{uppers: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Find the first upper bound >= v; the slot after the last bound is
	// the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and the CUMULATIVE count at each
// bound (Prometheus le semantics), plus the total including +Inf.
func (h *Histogram) Buckets() (uppers []float64, cumulative []int64, total int64) {
	if h == nil {
		return nil, nil, 0
	}
	uppers = append([]float64(nil), h.uppers...)
	cumulative = make([]int64, len(h.uppers))
	var run int64
	for i := range h.uppers {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return uppers, cumulative, run + h.counts[len(h.uppers)].Load()
}

// Counter returns (creating if needed) the named counter. help is
// recorded on first creation and rendered as # HELP.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{}
	r.counts[name] = c
	r.register(name, help)
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.register(name, help)
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (used only on first creation; nil picks
// LatencyBuckets).
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if uppers == nil {
		uppers = LatencyBuckets()
	}
	h := newHistogram(uppers)
	r.hists[name] = h
	r.register(name, help)
	return h
}

// register records name order and help; callers hold r.mu.
func (r *Registry) register(name, help string) {
	r.order = append(r.order, name)
	if help != "" {
		r.help[name] = help
	}
}

// snapshot returns the sorted names of each kind plus the help map,
// releasing the lock before any value loads.
func (r *Registry) snapshot() (counters, gauges, hists []string, help map[string]string,
	cm map[string]*Counter, gm map[string]*Gauge, hm map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cm = make(map[string]*Counter, len(r.counts))
	gm = make(map[string]*Gauge, len(r.gauges))
	hm = make(map[string]*Histogram, len(r.hists))
	help = make(map[string]string, len(r.help))
	for k, v := range r.counts {
		counters = append(counters, k)
		cm[k] = v
	}
	for k, v := range r.gauges {
		gauges = append(gauges, k)
		gm[k] = v
	}
	for k, v := range r.hists {
		hists = append(hists, k)
		hm[k] = v
	}
	for k, v := range r.help {
		help[k] = v
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// fmtFloat renders a float the way Prometheus expects: integral values
// without an exponent, +Inf as "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Names are emitted in sorted order so the output
// is deterministic — the golden-output test depends on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	counters, gauges, hists, help, cm, gm, hm := r.snapshot()
	for _, name := range counters {
		if h := help[name]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, cm[name].Value())
	}
	for _, name := range gauges {
		if h := help[name]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %d\n", name, gm[name].Value())
	}
	for _, name := range hists {
		if h := help[name]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		hist := hm[name]
		uppers, cum, total := hist.Buckets()
		for i, u := range uppers {
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, fmtFloat(u), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(hist.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, total)
	}
	return nil
}

// jsonHistogram is the JSON rendering of one histogram.
type jsonHistogram struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Uppers  []float64 `json:"uppers"`
	Buckets []int64   `json:"buckets"` // cumulative, aligned with Uppers
}

// WriteJSON renders every metric as one JSON object keyed by name
// (counters and gauges as numbers, histograms as objects), sorted by
// the encoder's map-key ordering. This backs /debug/vars and
// `qfix -metrics`.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters, gauges, hists, _, cm, gm, hm := r.snapshot()
	out := make(map[string]any, len(counters)+len(gauges)+len(hists))
	for _, name := range counters {
		out[name] = cm[name].Value()
	}
	for _, name := range gauges {
		out[name] = gm[name].Value()
	}
	for _, name := range hists {
		uppers, cum, total := hm[name].Buckets()
		out[name] = jsonHistogram{Count: total, Sum: hm[name].Sum(), Uppers: uppers, Buckets: cum}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
