package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("jobs_total", "ignored"); c2 != c {
		t.Fatalf("re-registering returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Nil metrics are safe no-ops.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatalf("nil metrics returned non-zero values")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(100e-6, 4, 10)
	if len(b) != 10 {
		t.Fatalf("len = %d", len(b))
	}
	if math.Abs(b[0]-100e-6) > 1e-12 {
		t.Fatalf("b[0] = %g", b[0])
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]/b[i-1]-4) > 1e-9 {
			t.Fatalf("ratio b[%d]/b[%d] = %g, want 4", i, i-1, b[i]/b[i-1])
		}
	}
	// Top bucket ~26s: big enough for a budget-limited MILP solve.
	if b[9] < 20 || b[9] > 30 {
		t.Fatalf("b[9] = %g, want ~26s", b[9])
	}
	if LogBuckets(0, 4, 10) != nil || LogBuckets(1, 1, 10) != nil || LogBuckets(1, 4, 0) != nil {
		t.Fatalf("degenerate LogBuckets should return nil")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	// On-boundary values land in the bucket whose upper bound equals the
	// value (le semantics: v <= upper).
	for _, v := range []float64{0.5, 1, 1.0001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	uppers, cum, total := h.Buckets()
	if len(uppers) != 3 {
		t.Fatalf("uppers = %v", uppers)
	}
	// le=1: {0.5, 1} -> 2; le=10: +{1.0001, 10} -> 4; le=100: +{99, 100} -> 6; +Inf: 8.
	if cum[0] != 2 || cum[1] != 4 || cum[2] != 6 || total != 8 {
		t.Fatalf("cumulative = %v total = %d, want [2 4 6] 8", cum, total)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0001 + 10 + 99 + 100 + 101 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c", "")
			g := r.Gauge("g", "")
			h := r.Histogram("h", "", nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j) * 1e-4)
			}
		}()
	}
	// Concurrent renders while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			r.WritePrometheus(&buf)
			r.WriteJSON(&buf)
		}
	}()
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("h", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("qfix_worker_jobs_total", "Jobs handled.").Add(3)
	r.Gauge("qfix_worker_inflight", "Jobs currently solving.").Set(1)
	h := r.Histogram("qfix_worker_job_seconds", "Job wall time.", []float64{0.001, 1})
	// Exactly representable values so the _sum line is stable.
	h.Observe(0.0005)
	h.Observe(0.25)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP qfix_worker_jobs_total Jobs handled.",
		"# TYPE qfix_worker_jobs_total counter",
		"qfix_worker_jobs_total 3",
		"# HELP qfix_worker_inflight Jobs currently solving.",
		"# TYPE qfix_worker_inflight gauge",
		"qfix_worker_inflight 1",
		"# HELP qfix_worker_job_seconds Job wall time.",
		"# TYPE qfix_worker_job_seconds histogram",
		`qfix_worker_job_seconds_bucket{le="0.001"} 1`,
		`qfix_worker_job_seconds_bucket{le="1"} 2`,
		`qfix_worker_job_seconds_bucket{le="+Inf"} 3`,
		"qfix_worker_job_seconds_sum 2.2505",
		"qfix_worker_job_seconds_count 3",
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b", "").Set(-1)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if string(out["a_total"]) != "2" {
		t.Fatalf("a_total = %s", out["a_total"])
	}
	if string(out["b"]) != "-1" {
		t.Fatalf("b = %s", out["b"])
	}
	var hist jsonHistogram
	if err := json.Unmarshal(out["c_seconds"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 || hist.Sum != 0.5 || len(hist.Buckets) != 1 || hist.Buckets[0] != 1 {
		t.Fatalf("histogram = %+v", hist)
	}
}

func TestDefaultRegistryIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatalf("Default() not a singleton")
	}
}
