package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Fatalf("nil.Start returned non-nil")
	}
	c.SetAttr("k", 1)
	if d := c.End(); d != 0 {
		t.Fatalf("nil.End = %v, want 0", d)
	}
	if got := s.Structure(); got != "" {
		t.Fatalf("nil.Structure = %q, want empty", got)
	}
	if !s.WellNested(0) {
		t.Fatalf("nil.WellNested = false")
	}
	if n := s.Count(); n != 0 {
		t.Fatalf("nil.Count = %d", n)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, s); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestSpanTreeWellNested(t *testing.T) {
	root := NewTrace("diagnose")
	plan := root.Start("plan")
	plan.Start("replay").End()
	plan.Start("impact").End()
	plan.End()
	solve := root.Start("solve")
	var wg sync.WaitGroup
	parts := []*Span{solve.Start("partition[0]"), solve.Start("partition[1]")}
	for _, p := range parts {
		wg.Add(1)
		go func(p *Span) {
			defer wg.Done()
			p.Start("encode").End()
			p.Start("milp").End()
			p.End()
		}(p)
	}
	wg.Wait()
	solve.End()
	root.End()

	if !root.WellNested(time.Millisecond) {
		t.Fatalf("tree not well-nested:\n%s", root.String())
	}
	if got := root.Count(); got != 11 {
		t.Fatalf("Count = %d, want 11", got)
	}
	want := strings.Join([]string{
		"diagnose",
		"  plan",
		"    replay",
		"    impact",
		"  solve",
		"    partition[0]",
		"      encode",
		"      milp",
		"    partition[1]",
		"      encode",
		"      milp",
	}, "\n") + "\n"
	if got := root.Structure(); got != want {
		t.Fatalf("Structure:\n%s\nwant:\n%s", got, want)
	}
}

func TestUnendedSpanFailsNesting(t *testing.T) {
	root := NewTrace("r")
	root.Start("leaked") // never ended
	root.End()
	if root.WellNested(time.Millisecond) {
		t.Fatalf("tree with un-ended child reported well-nested")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	s := NewTrace("x")
	d1 := s.End()
	time.Sleep(2 * time.Millisecond)
	d2 := s.End()
	if d1 != d2 {
		t.Fatalf("second End changed duration: %v -> %v", d1, d2)
	}
}

func TestStructureIncludesSortedAttrKeys(t *testing.T) {
	s := NewTrace("root")
	s.SetAttr("zeta", 1)
	s.SetAttr("alpha", "v")
	s.SetAttr("zeta", 2) // overwrite, not duplicate
	s.End()
	want := "root [alpha zeta]\n"
	if got := s.Structure(); got != want {
		t.Fatalf("Structure = %q, want %q", got, want)
	}
	attrs := s.Attrs()
	if len(attrs) != 2 || attrs[0].Value != 2 {
		t.Fatalf("attr overwrite failed: %+v", attrs)
	}
}

func TestWriteJSONL(t *testing.T) {
	root := NewTrace("root")
	a := root.Start("a")
	a.SetAttr("n", 3)
	a.Start("a1").End()
	a.End()
	root.Start("b").End()
	root.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, root); err != nil {
		t.Fatal(err)
	}
	var lines []jsonlSpan
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec jsonlSpan
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if lines[0].Name != "root" || lines[0].Parent != -1 || lines[0].Depth != 0 {
		t.Fatalf("bad root line: %+v", lines[0])
	}
	if lines[1].Name != "a" || lines[1].Parent != 0 || lines[1].Attrs["n"] != float64(3) {
		t.Fatalf("bad a line: %+v", lines[1])
	}
	if lines[2].Name != "a1" || lines[2].Parent != 1 || lines[2].Depth != 2 {
		t.Fatalf("bad a1 line: %+v", lines[2])
	}
	if lines[3].Name != "b" || lines[3].Parent != 0 {
		t.Fatalf("bad b line: %+v", lines[3])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	root := NewTrace("root")
	// Two deliberately overlapping siblings.
	p0 := root.Start("p0")
	p1 := root.Start("p1")
	time.Sleep(2 * time.Millisecond)
	p0.End()
	p1.End()
	seq := root.Start("seq")
	seq.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	byName := map[string]chromeEvent{}
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("event %q has ph=%q, want X", e.Name, e.Ph)
		}
		byName[e.Name] = e
	}
	// Overlapping siblings must land in distinct lanes; the sequential
	// child runs after both and may reuse the parent's lane.
	if byName["p0"].TID == byName["p1"].TID {
		t.Fatalf("overlapping siblings share tid %d", byName["p0"].TID)
	}
	if byName["seq"].TID != byName["root"].TID {
		t.Fatalf("sequential child moved to lane %d (root is %d)", byName["seq"].TID, byName["root"].TID)
	}
}

func TestWriteTraceDispatch(t *testing.T) {
	root := NewTrace("r")
	root.End()
	var a, b bytes.Buffer
	if err := WriteTrace(&a, root, "out.jsonl"); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, root, "out.json"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("chrome output is not valid JSON")
	}
	if strings.HasPrefix(strings.TrimSpace(a.String()), "[") {
		t.Fatalf(".jsonl output looks like a JSON array: %q", a.String())
	}
}

// TestConcurrentSubtrees exercises the documented concurrency contract
// under the race detector: the coordinator pre-creates sibling spans,
// then separate goroutines fill in each subtree while another goroutine
// reads structure snapshots.
func TestConcurrentSubtrees(t *testing.T) {
	root := NewTrace("root")
	const n = 8
	subs := make([]*Span, n)
	for i := range subs {
		subs[i] = root.Start("sub")
	}
	var wg sync.WaitGroup
	var readers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = root.Structure()
				_ = root.Count()
			}
		}
	}()
	for _, s := range subs {
		wg.Add(1)
		go func(s *Span) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				c := s.Start("step")
				c.SetAttr("j", j)
				c.End()
			}
			s.End()
		}(s)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	root.End()
	if root.Count() != 1+n+n*20 {
		t.Fatalf("Count = %d", root.Count())
	}
}
