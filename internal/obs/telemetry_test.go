package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTelemetryEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("qfix_test_total", "test counter").Add(9)
	r.Histogram("qfix_test_seconds", "test hist", []float64{1}).Observe(0.25)
	srv := httptest.NewServer(TelemetryMux(r))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		"qfix_test_total 9",
		"# TYPE qfix_test_seconds histogram",
		`qfix_test_seconds_bucket{le="1"} 1`,
		`qfix_test_seconds_bucket{le="+Inf"} 1`,
		"qfix_test_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	vars, ctype := get("/debug/vars")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/vars content-type = %q", ctype)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if parsed["qfix_test_total"] != float64(9) {
		t.Fatalf("/debug/vars qfix_test_total = %v", parsed["qfix_test_total"])
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}
