package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonlSpan is the JSONL export shape: one span per line, parent linkage
// by id, times in microseconds relative to the root's start.
type jsonlSpan struct {
	ID      int            `json:"id"`
	Parent  int            `json:"parent"` // -1 for the root
	Depth   int            `json:"depth"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL writes the span tree as JSON Lines: one object per span in
// depth-first order with id/parent linkage, suitable for jq-style
// analysis. Times are microseconds relative to the root's start.
func WriteJSONL(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	nextID := 0
	var walk func(s *Span, parent, depth int) error
	walk = func(s *Span, parent, depth int) error {
		id := nextID
		nextID++
		rec := jsonlSpan{
			ID:      id,
			Parent:  parent,
			Depth:   depth,
			Name:    s.Name(),
			StartUS: s.start.Sub(root.start).Microseconds(),
			DurUS:   s.Duration().Microseconds(),
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			rec.Attrs = make(map[string]any, len(attrs))
			for _, a := range attrs {
				rec.Attrs[a.Key] = a.Value
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		for _, c := range s.Children() {
			if err := walk(c, id, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, -1, 0)
}

// chromeEvent is one Chrome trace_event "complete" (ph="X") event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // µs since root start
	Dur  int64          `json:"dur"` // µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the span tree in the Chrome trace_event JSON
// array format (loadable in chrome://tracing and ui.perfetto.dev).
// Spans become ph="X" complete events. Concurrent siblings (partitions,
// remote jobs) overlap in time, which the single-lane rendering would
// collapse, so tids are assigned greedily: each span takes the lowest
// lane whose previous occupant has already finished, giving parallel
// work visually distinct rows.
func WriteChromeTrace(w io.Writer, root *Span) error {
	if root == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var events []chromeEvent
	placeSpan(root, 0, &events, root)
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// placeSpan emits s in the given lane and recurses into its children.
// Nested spans always overlap their parent, so nesting alone must not
// force a new lane; only overlap with a SIBLING already occupying a
// lane does. Sequential children therefore share the parent's lane,
// while overlapping siblings (concurrent partitions, remote jobs) take
// the lowest lane free at their start time.
func placeSpan(s *Span, lane int, events *[]chromeEvent, root *Span) {
	ts := s.start.Sub(root.start).Microseconds()
	dur := s.Duration().Microseconds()
	ev := chromeEvent{Name: s.Name(), Ph: "X", TS: ts, Dur: dur, PID: 1, TID: lane}
	if attrs := s.Attrs(); len(attrs) > 0 {
		ev.Args = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Args[a.Key] = a.Value
		}
	}
	*events = append(*events, ev)
	// sibEnd tracks, per lane, when the last sibling placed there ends.
	sibEnd := map[int]int64{}
	for _, c := range s.Children() {
		cts := c.start.Sub(root.start).Microseconds()
		cdur := c.Duration().Microseconds()
		chosen := lane
		if end, used := sibEnd[lane]; used && cts < end {
			for l := lane + 1; ; l++ {
				if end, used := sibEnd[l]; !used || cts >= end {
					chosen = l
					break
				}
			}
		}
		sibEnd[chosen] = cts + cdur
		placeSpan(c, chosen, events, root)
	}
}

// WriteTrace writes the trace in the format implied by the filename:
// JSONL when the name ends in .jsonl or .ndjson, Chrome trace_event
// JSON otherwise. This is the dispatch `qfix -trace <file>` uses.
func WriteTrace(w io.Writer, root *Span, filename string) error {
	lower := strings.ToLower(filename)
	if strings.HasSuffix(lower, ".jsonl") || strings.HasSuffix(lower, ".ndjson") {
		return WriteJSONL(w, root)
	}
	return WriteChromeTrace(w, root)
}

// FindChild returns the first direct child with the given name, or nil.
// A convenience for tests and for deriving Stats from a trace.
func (s *Span) FindChild(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// Walk visits every span in the tree depth-first, calling fn with each
// span and its depth. Nil-safe.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children() {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
}

// Count returns the number of spans in the tree (0 for nil).
func (s *Span) Count() int {
	n := 0
	s.Walk(func(*Span, int) { n++ })
	return n
}

// String renders the tree with durations for debugging: Structure's
// shape plus per-span wall time.
func (s *Span) String() string {
	if s == nil {
		return "<nil trace>"
	}
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat("  ", depth), sp.Name(), sp.Duration())
	})
	return b.String()
}
