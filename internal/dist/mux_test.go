package dist_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/dist"
)

// TestDistributedMuxLoopback is the wire-v3 end-to-end acceptance
// check: two real workers on loopback TCP served over persistent
// multiplexed connections, and a repair byte-identical to local
// partitioned diagnosis, with every result streamed (no per-job dial).
func TestDistributedMuxLoopback(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Mux: true, Logf: t.Logf}, startWorker(t), startWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("mux distributed repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.Partitions != 4 {
		t.Errorf("Stats.Partitions = %d, want 4", got.Stats.Partitions)
	}
	if got.Stats.RemoteJobs != 4 {
		t.Errorf("Stats.RemoteJobs = %d, want 4 (healthy fleet solves everything remotely)",
			got.Stats.RemoteJobs)
	}
	if got.Stats.StreamedResults != got.Stats.RemoteJobs {
		t.Errorf("Stats.StreamedResults = %d, want %d (every result over the persistent connection)",
			got.Stats.StreamedResults, got.Stats.RemoteJobs)
	}
}

// TestDistributedMuxWorkerKilledMidRun kills one of two mux-served
// workers mid-solve. In-flight jobs on the broken connection fail as
// transport errors, retry on the healthy worker, and the repair stays
// byte-identical — the no-lost-instances guarantee over wire v3.
func TestDistributedMuxWorkerKilledMidRun(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Mux: true, Retries: 1, Logf: t.Logf},
		startWorker(t), startCrashingWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("mux repair with a crashing worker differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if !got.Resolved {
		t.Fatalf("crashing mux worker lost the instance: %+v", got.Stats)
	}
	if got.Stats.RemoteJobs != got.Stats.Partitions {
		t.Errorf("RemoteJobs = %d, want %d (retry should reach the healthy worker)",
			got.Stats.RemoteJobs, got.Stats.Partitions)
	}
}

// TestDistributedMuxReconnectAfterWorkerRestart restarts the worker
// between two diagnoses on one coordinator: the persistent connection
// breaks with the old process, the transport reconnects (after its
// backoff) to the new one, and both runs pin byte-identical repairs.
func TestDistributedMuxReconnectAfterWorkerRestart(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)
	sch := d0.Schema()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := &dist.Server{Logf: t.Logf}
	go srv.Serve(l)

	coord := dist.Connect(dist.Config{Mux: true, Logf: t.Logf}, addr)
	defer coord.Close()

	got1, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got1); w != g {
		t.Errorf("run 1 repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got1.Stats.StreamedResults != got1.Stats.Partitions {
		t.Errorf("run 1: StreamedResults = %d, want %d", got1.Stats.StreamedResults, got1.Stats.Partitions)
	}

	// Kill the worker process (its listener and every connection die)...
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and restart it on the same address.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &dist.Server{Logf: t.Logf}
	go srv2.Serve(l2)
	t.Cleanup(func() { srv2.Close() })

	// Let the transport notice the broken connection and outwait its
	// first reconnect backoff so run 2 re-establishes the mux link.
	time.Sleep(600 * time.Millisecond)

	got2, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got2); w != g {
		t.Errorf("post-restart repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got2.Stats.RemoteJobs != got2.Stats.Partitions {
		t.Errorf("post-restart RemoteJobs = %d, want %d (restarted worker must serve again)",
			got2.Stats.RemoteJobs, got2.Stats.Partitions)
	}
	if got2.Stats.StreamedResults != got2.Stats.Partitions {
		t.Errorf("post-restart StreamedResults = %d, want %d (mux link must re-establish)",
			got2.Stats.StreamedResults, got2.Stats.Partitions)
	}
}

// startLegacyWorker simulates a worker binary from the previous
// protocol generation: it serves one connection serially, solves only
// v2-stamped jobs, and rejects anything newer with an error result
// stamped at its own version — exactly what a wire-v2 qfix-worker does
// with a v3 frame.
func startLegacyWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := json.NewDecoder(conn)
				enc := json.NewEncoder(conn)
				for {
					var job dist.Job
					if dec.Decode(&job) != nil {
						return
					}
					var res *dist.Result
					if job.Version != dist.MinWireVersion {
						res = &dist.Result{Version: dist.MinWireVersion, ID: job.ID,
							Err: fmt.Sprintf("dist: protocol version mismatch: job v%d, worker v%d",
								job.Version, dist.MinWireVersion)}
					} else if sub, err := dist.DecodeJob(&job); err != nil {
						res = &dist.Result{Version: dist.MinWireVersion, ID: job.ID, Err: err.Error()}
					} else {
						rep, err := sub.SolveLocal()
						res, err = dist.EncodeResult(job.ID, rep, err)
						if err != nil {
							return
						}
						res.Version = dist.MinWireVersion
					}
					if enc.Encode(res) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestDistributedMuxLegacyWorkerNegotiatesDown points a mux coordinator
// at a wire-v2 worker: the first frame is rejected, the transport
// negotiates down to one dialed v2 connection per job, and no instance
// is lost — the repair stays byte-identical and everything still solves
// remotely, just not streamed.
func TestDistributedMuxLegacyWorkerNegotiatesDown(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Mux: true, Logf: t.Logf}, startLegacyWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("legacy-worker repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != got.Stats.Partitions {
		t.Errorf("RemoteJobs = %d, want %d (legacy worker must still serve every job)",
			got.Stats.RemoteJobs, got.Stats.Partitions)
	}
	if got.Stats.StreamedResults != 0 {
		t.Errorf("StreamedResults = %d, want 0 (legacy path is dial-per-job)",
			got.Stats.StreamedResults)
	}
}

// TestDistributedLegacyWorkerDialPerJob covers the same negotiation on
// the plain dial-per-job transport (no -mux): a v3 coordinator's first
// frame is rejected, the transport re-sends the job v2-stamped, and the
// worker keeps serving.
func TestDistributedLegacyWorkerDialPerJob(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Logf: t.Logf}, startLegacyWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("legacy-worker repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != got.Stats.Partitions {
		t.Errorf("RemoteJobs = %d, want %d", got.Stats.RemoteJobs, got.Stats.Partitions)
	}
}

// TestInProcHonorsContext is the regression for the ctx-deaf InProc
// path: a job whose context is already dead must be refused as a
// transport error, not solved to completion on borrowed time.
func TestInProcHonorsContext(t *testing.T) {
	job, err := dist.EncodeJob(1, fixtureSubproblem(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (dist.InProc{}).Do(ctx, job); err == nil {
		t.Fatal("InProc solved a job whose context was already canceled")
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := (dist.InProc{}).Do(expired, job); err == nil {
		t.Fatal("InProc solved a job whose deadline had already passed")
	}
}
