package dist_test

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/relation"
)

// fixtureSubproblem builds a subproblem exercising every wire case:
// a table with a deleted row (the ID counter must survive the trip),
// all three statement kinds, nested AND/OR conditions with every
// comparison operator, and a fully populated option set.
func fixtureSubproblem(t *testing.T) core.Subproblem {
	t.Helper()
	sch := relation.MustSchema("T", []string{"a", "b", "c"}, "a")
	d0 := relation.NewTable(sch)
	d0.MustInsert(1, 10, 100)
	d0.MustInsert(2, 20, 200)
	d0.MustInsert(3, 30, 300)
	if !d0.Delete(2) {
		t.Fatal("setup: delete failed")
	}

	log := []query.Query{
		query.NewUpdate(
			[]query.SetClause{
				{Attr: 1, Expr: query.NewLinExpr(5, query.Term{Attr: 0, Coef: 2}, query.Term{Attr: 2, Coef: -0.5})},
				{Attr: 2, Expr: query.ConstExpr(7)},
			},
			query.NewAnd(
				query.AttrPred(0, query.GE, 1),
				query.NewOr(
					query.AttrPred(1, query.LT, 25),
					query.AttrPred(2, query.GT, 150),
					query.NewPred(query.NewLinExpr(0, query.Term{Attr: 0, Coef: 1}, query.Term{Attr: 1, Coef: 1}), query.EQ, 33),
				),
				query.AttrPred(2, query.LE, 400),
			)),
		query.NewInsert(4, 40, 400),
		query.NewDelete(query.AttrPred(1, query.GT, 1000)),
		query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.AttrExpr(0)}}, nil), // no WHERE
	}

	return core.Subproblem{
		D0:  d0,
		Log: log,
		Complaints: []core.Complaint{
			{TupleID: 1, Exists: true, Values: []float64{1, 10, 100}},
			{TupleID: 3, Exists: false},
		},
		Options: core.Options{
			Algorithm:        core.Incremental,
			K:                2,
			TupleSlicing:     true,
			QuerySlicing:     true,
			AttrSlicing:      true,
			SingleCorruption: true,
			SkipRefine:       true,
			Candidates:       []int{0, 3},
			TimeLimit:        90 * time.Second,
			TotalTimeLimit:   5 * time.Minute,
			MaxNodes:         1234,
			DomainBound:      1e6,
			Eps:              0.25,
			Normalize:        true,
			NoFolding:        true,
			NoParamWindows:   true,
			ColdLP:           true,
		},
	}
}

func TestJobRoundTrip(t *testing.T) {
	sub := fixtureSubproblem(t)
	job, err := dist.EncodeJob(42, sub)
	if err != nil {
		t.Fatal(err)
	}
	// Through the actual wire representation.
	raw, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	var onWire dist.Job
	if err := json.Unmarshal(raw, &onWire); err != nil {
		t.Fatal(err)
	}
	if onWire.ID != 42 || onWire.Version != dist.WireVersion {
		t.Fatalf("header = id %d v%d, want id 42 v%d", onWire.ID, onWire.Version, dist.WireVersion)
	}
	got, err := dist.DecodeJob(&onWire)
	if err != nil {
		t.Fatal(err)
	}

	// Table: identical rows, IDs, and — critically — ID counter, so a
	// replayed INSERT allocates the same tuple ID on both sides.
	if got.D0.NextID() != sub.D0.NextID() {
		t.Errorf("NextID = %d, want %d", got.D0.NextID(), sub.D0.NextID())
	}
	if diffs := relation.DiffTables(sub.D0, got.D0, 0); len(diffs) != 0 {
		t.Errorf("D0 differs after round trip: %+v", diffs)
	}
	if got.D0.Schema().Key() != sub.D0.Schema().Key() {
		t.Errorf("schema key = %d, want %d", got.D0.Schema().Key(), sub.D0.Schema().Key())
	}

	// Log: same structure (rendered SQL) and same replay semantics.
	sch := sub.D0.Schema()
	for i := range sub.Log {
		if w, g := sub.Log[i].String(sch), got.Log[i].String(sch); w != g {
			t.Errorf("query %d: %q != %q", i, g, w)
		}
	}
	wantFinal, err := query.Replay(sub.Log, sub.D0)
	if err != nil {
		t.Fatal(err)
	}
	gotFinal, err := query.Replay(got.Log, got.D0)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := relation.DiffTables(wantFinal, gotFinal, 0); len(diffs) != 0 {
		t.Errorf("replayed finals differ: %+v", diffs)
	}

	if !reflect.DeepEqual(got.Complaints, sub.Complaints) {
		t.Errorf("complaints differ: %+v != %+v", got.Complaints, sub.Complaints)
	}
	if !reflect.DeepEqual(got.Options, sub.Options) {
		t.Errorf("options differ:\n got %+v\nwant %+v", got.Options, sub.Options)
	}
}

func TestResultRoundTrip(t *testing.T) {
	sub := fixtureSubproblem(t)
	rep := &core.Repair{
		Log:      sub.Log,
		Changed:  []int{0, 2},
		Distance: 3.5,
		Resolved: true,
		Stats: core.Stats{
			Rows: 10, Vars: 20, Binaries: 5, BatchesTried: 2,
			RelevantQueries: 3, PlanPasses: 1,
			EncodeTime: time.Millisecond, SolveTime: 2 * time.Millisecond,
			LastStatus: "optimal",
		},
	}
	res, err := dist.EncodeResult(7, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var onWire dist.Result
	if err := json.Unmarshal(raw, &onWire); err != nil {
		t.Fatal(err)
	}
	got, err := dist.DecodeResult(&onWire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Distance != rep.Distance || got.Resolved != rep.Resolved {
		t.Errorf("distance/resolved = %v/%v, want %v/%v",
			got.Distance, got.Resolved, rep.Distance, rep.Resolved)
	}
	if !reflect.DeepEqual(got.Changed, rep.Changed) {
		t.Errorf("changed = %v, want %v", got.Changed, rep.Changed)
	}
	if !reflect.DeepEqual(got.Stats, rep.Stats) {
		t.Errorf("stats differ:\n got %+v\nwant %+v", got.Stats, rep.Stats)
	}
	sch := sub.D0.Schema()
	for i := range rep.Log {
		if w, g := rep.Log[i].String(sch), got.Log[i].String(sch); w != g {
			t.Errorf("query %d: %q != %q", i, g, w)
		}
	}

	// Solver errors travel as Result.Err and come back as Go errors.
	errRes, err := dist.EncodeResult(8, nil, errTest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.DecodeResult(errRes); err == nil {
		t.Error("worker-side error did not propagate through DecodeResult")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic solver failure" }

func TestVersionMismatchRejected(t *testing.T) {
	sub := fixtureSubproblem(t)
	job, err := dist.EncodeJob(1, sub)
	if err != nil {
		t.Fatal(err)
	}
	job.Version = dist.WireVersion + 1
	if _, err := dist.DecodeJob(job); err == nil {
		t.Error("DecodeJob accepted a mismatched version")
	}
	// The worker-side handler must reject it too, as an error Result —
	// InProc runs exactly the server's handler.
	res, err := dist.InProc{}.Do(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == "" {
		t.Error("worker solved a job with a mismatched protocol version")
	}

	good := &dist.Result{Version: dist.WireVersion + 1}
	if _, err := dist.DecodeResult(good); err == nil {
		t.Error("DecodeResult accepted a mismatched version")
	}
}
