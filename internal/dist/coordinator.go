package dist

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// Config tunes a Coordinator.
type Config struct {
	// JobTimeout bounds one dispatch attempt (dial + solve + result).
	// When the job carries a TotalTimeLimit, each attempt is further
	// bounded by an equal share of the remaining budget reserved across
	// the planned attempts plus the local fallback (attemptTimeout), so
	// a hung worker can't absorb the whole diagnosis budget — without
	// that cap no retry would ever run and the local fallback would
	// start broke. Zero picks DefaultJobTimeout.
	JobTimeout time.Duration
	// Retries is how many additional workers a failed job is offered
	// before falling back to the local engine. Negative disables
	// retries; zero picks one retry per remaining worker, capped at
	// len(workers)-1.
	Retries int
	// Mux keeps one persistent multiplexed connection per worker (wire
	// v3, MuxTransport) instead of dialing a fresh connection per job:
	// concurrent jobs share the connection, results stream back as each
	// solve lands (Stats.StreamedResults), and workers still speaking
	// wire v2 are negotiated down to the dial-per-job path on their
	// first frame. Only Connect consults it; explicit transports passed
	// to NewCoordinator choose for themselves.
	Mux bool
	// Logf, when set, receives one line per dispatch failure/fallback.
	Logf func(format string, args ...any)
}

// DefaultJobTimeout bounds a dispatch attempt when neither the job's
// Options nor the Config say otherwise.
const DefaultJobTimeout = 5 * time.Minute

// Coordinator distributes partition subproblems over a set of worker
// transports. It implements core.PartitionSolver: install it via
// Options.PartitionSolver (or let the top-level qfix package do so from
// Options.Workers) and the engine's partition scan ships every
// subproblem through it. Planning, merging, conflict resolution, and
// replay verification all stay in the engine — the coordinator is purely
// a dispatch layer with retry and local fallback, so a diagnosis never
// loses an instance the local engine can solve. The engine's scheduler
// starts partitions largest-first (see core's planPartitions size
// estimate), so the coordinator ships the biggest MILPs to the fleet
// first and the critical path is not a huge partition stuck at the back
// of the queue; with Config.Mux the per-partition results stream back
// over persistent connections as each solve lands.
type Coordinator struct {
	cfg        Config
	transports []Transport
	next       atomic.Uint64 // round-robin cursor
	nextJobID  atomic.Uint64
	remoteJobs atomic.Int64
	localJobs  atomic.Int64

	// enc memoizes job encodings for callers that install the
	// Coordinator itself as the PartitionSolver (one diagnosis at a
	// time); concurrent diagnoses each get a private memo via Solver()
	// so tenants sharing one coordinator never thrash or cross-read
	// each other's encodings. See encMemo.
	enc encMemo
}

// encMemo memoizes the wire encodings of one diagnosis's D0 and log:
// every partition job of a diagnosis carries the identical initial
// state and log, so they are serialized once and shared read-only
// across jobs, along with content digests of both (the workers' decode
// cache keys). Keyed by identity plus cheap mutation witnesses (length,
// next ID); a memo is scoped to one diagnosis by construction
// (Solver/Diagnose hand each run a fresh one), which is what makes a
// single Coordinator safe to share across concurrent diagnoses of
// different tenants — there is no per-run reset of shared state to
// race on, and no cross-tenant eviction.
type encMemo struct {
	mu        sync.Mutex
	d0        *relation.Table //qfix:guarded-by mu
	d0Len     int             //qfix:guarded-by mu
	nextID    int64           //qfix:guarded-by mu
	table     wireTable       //qfix:guarded-by mu
	d0Digest  uint64          //qfix:guarded-by mu
	logPtr    *query.Query    //qfix:guarded-by mu
	logLen    int             //qfix:guarded-by mu
	log       []wireQuery     //qfix:guarded-by mu
	logDigest uint64          //qfix:guarded-by mu
}

// NewCoordinator builds a coordinator over the given transports. With no
// transports every job solves locally (the degenerate case).
func NewCoordinator(cfg Config, transports ...Transport) *Coordinator {
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = len(transports) - 1
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	return &Coordinator{cfg: cfg, transports: transports}
}

// Connect builds a coordinator with one transport per worker address:
// persistent multiplexed connections with cfg.Mux, one dialed
// connection per job otherwise.
func Connect(cfg Config, workers ...string) *Coordinator {
	ts := make([]Transport, len(workers))
	for i, addr := range workers {
		if cfg.Mux {
			ts[i] = DialMux(addr)
		} else {
			ts[i] = Dial(addr)
		}
	}
	return NewCoordinator(cfg, ts...)
}

// Close releases every transport.
func (c *Coordinator) Close() error {
	var first error
	for _, t := range c.transports {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RemoteJobs reports how many jobs were solved remotely since creation.
func (c *Coordinator) RemoteJobs() int { return int(c.remoteJobs.Load()) }

// LocalFallbacks reports how many jobs fell back to the local engine.
func (c *Coordinator) LocalFallbacks() int { return int(c.localJobs.Load()) }

// transportSlack is how much longer than the job's own solve budget a
// dispatch may wait on the wire before giving up on the fleet.
const transportSlack = 10 * time.Second

// SolvePartition implements core.PartitionSolver: encode the subproblem,
// offer it to workers round-robin with per-attempt timeouts, and fall
// back to the in-process engine when every attempt fails. Remote repairs
// are marked with Stats.RemoteJobs=1 so the engine's stats merge counts
// them.
//
// The job's Options.TotalTimeLimit bounds the whole of dispatch plus
// fallback, exactly as it bounds the in-process path: retries spend the
// same budget, not a fresh one each, and a fallback that starts with the
// budget exhausted returns the engine's "total-time-limit" outcome
// instead of solving on borrowed time.
//
// Installing the Coordinator itself runs all jobs against one shared
// encoding memo, which is right for one diagnosis at a time; callers
// multiplexing concurrent diagnoses over one coordinator should install
// a per-diagnosis Solver() instead.
func (c *Coordinator) SolvePartition(sub core.Subproblem) (*core.Repair, error) {
	return c.solvePartition(sub, &c.enc)
}

// Solver returns a per-diagnosis core.PartitionSolver over this
// coordinator: it shares the coordinator's transports, round-robin
// cursor, job IDs, and retry/fallback policy, but carries its own
// encoding memo. This is the entry point for resident services
// (internal/qfixd) that run many concurrent diagnoses — of different
// tenants, hence different D0/log pairs — over one long-lived fleet:
// each diagnosis's partition jobs share that diagnosis's encodings
// without evicting or racing any other diagnosis's.
func (c *Coordinator) Solver() core.PartitionSolver {
	return &runSolver{c: c, enc: new(encMemo)}
}

// runSolver is one diagnosis's view of a shared Coordinator.
type runSolver struct {
	c   *Coordinator
	enc *encMemo
}

// SolvePartition implements core.PartitionSolver.
func (r *runSolver) SolvePartition(sub core.Subproblem) (*core.Repair, error) {
	return r.c.solvePartition(sub, r.enc)
}

func (c *Coordinator) solvePartition(sub core.Subproblem, enc *encMemo) (*core.Repair, error) {
	// The engine hands each partition its own span via Options.Trace;
	// dispatch attempts and the local fallback hang under it so a traced
	// distributed run shows exactly where every partition's time went.
	sp := sub.Options.Trace
	var deadline time.Time
	if sub.Options.TotalTimeLimit > 0 {
		deadline = time.Now().Add(sub.Options.TotalTimeLimit)
	}
	if len(c.transports) > 0 {
		mDistJobs.Inc()
		job, err := enc.encodeJob(c.nextJobID.Add(1), sub)
		if err == nil {
			if rep, ok := c.dispatch(job, deadline, sp); ok {
				return rep, nil
			}
		} else {
			c.logf("dist: job encode failed, solving locally: %v", err)
		}
		mDistFallbacks.Inc()
	}
	c.localJobs.Add(1)
	lsp := sp.Start("local")
	defer lsp.End()
	sub.Options.Trace = lsp // the fallback solve's own spans nest under it
	if !deadline.IsZero() {
		remain := time.Until(deadline)
		if remain <= 0 {
			return &core.Repair{Log: query.CloneLog(sub.Log),
				Stats: core.Stats{LastStatus: "total-time-limit", WorkerAddr: "local"}}, nil
		}
		sub.Options.TotalTimeLimit = remain
	}
	rep, err := sub.SolveLocal()
	if rep != nil {
		rep.Stats.WorkerAddr = "local"
	}
	return rep, err
}

// dispatch tries the job on up to 1+Retries distinct workers within the
// job's deadline (zero = no budget, each attempt gets JobTimeout).
// ok=false means every attempt failed and the caller should solve
// locally.
func (c *Coordinator) dispatch(job *Job, deadline time.Time, sp *obs.Span) (*core.Repair, bool) {
	attempts := 1 + c.cfg.Retries
	if attempts > len(c.transports) {
		attempts = len(c.transports)
	}
	// Advance the shared round-robin cursor once per job, then walk
	// consecutive transports, so retries always land on a different
	// worker than the one that just failed. The cursor is reduced
	// modulo the fleet size while still unsigned: a raw int conversion
	// goes negative when the uint64 counter wraps, and a negative
	// modulo index would panic.
	start := int((c.next.Add(1) - 1) % uint64(len(c.transports)))
	for a := 0; a < attempts; a++ {
		if a > 0 {
			mDistRetries.Inc()
		}
		t := c.transports[(start+a)%len(c.transports)]
		timeout := c.cfg.JobTimeout
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= -transportSlack/2 {
				break
			}
			timeout = attemptTimeout(c.cfg.JobTimeout, remain, attempts-a)
		}
		// Ship the attempt with its solve budget clamped to the attempt
		// window (minus the wire slack, floored at the window itself for
		// windows within one slack): wire v3 has no cancel frame, so
		// without the clamp a worker keeps solving — pinning one of its
		// MaxInflight slots — long after this coordinator timed out and
		// moved on. The shallow copy leaves the shared job (and its
		// D0/log slices, which it aliases) untouched for later attempts.
		budget := int64(timeout - transportSlack)
		if budget <= 0 {
			budget = int64(timeout)
		}
		attempt := *job
		if o := job.Options; o.TotalTimeLimitNS <= 0 || o.TotalTimeLimitNS > budget {
			o.TotalTimeLimitNS = budget
			attempt.Options = o
		}
		// The attempt TTL additionally lets the worker refuse the
		// attempt if it only DEQUEUES past the window (the budget above
		// bounds solve time from solve start, so it can't cover the
		// admission-queue wait, which the worker measures on its own
		// clock from frame arrival).
		attempt.AttemptTTLNS = int64(timeout)
		asp := sp.Start("attempt")
		asp.SetAttr("worker", t.Addr())
		asp.SetAttr("attempt", a+1)
		attemptStart := time.Now()
		// Arm the slow-job warning: half the attempt window gone with no
		// result yet is worth a line NOW, while the operator can still see
		// which worker is sitting on the job — not after the timeout has
		// already burned a retry share of the budget.
		warn := time.AfterFunc(timeout/2, func() {
			mDistSlowJobs.Inc()
			c.logf("dist: warn slow-job job=%d worker=%s attempt=%d/%d elapsed=%v budget_left=%s",
				job.ID, t.Addr(), a+1, attempts,
				time.Since(attemptStart).Round(time.Millisecond), budgetLeft(deadline))
		})
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		res, err := t.Do(ctx, &attempt)
		cancel()
		warn.Stop()
		wire := time.Since(attemptStart)
		if err != nil {
			asp.SetAttr("outcome", "transport-error")
			asp.End()
			c.logf("dist: warn retry job=%d worker=%s attempt=%d/%d elapsed=%v budget_left=%s err=%q",
				job.ID, t.Addr(), a+1, attempts, wire.Round(time.Millisecond),
				budgetLeft(deadline), err)
			continue
		}
		rep, err := DecodeResult(res)
		if err != nil {
			// Version mismatch or a worker-side solve error. A solve
			// error would hit the local engine too, but the local
			// fallback keeps the no-lost-instances guarantee cheap to
			// state, so take it rather than guessing.
			asp.SetAttr("outcome", "rejected")
			asp.End()
			c.logf("dist: warn retry job=%d worker=%s attempt=%d/%d elapsed=%v budget_left=%s rejected=%q",
				job.ID, t.Addr(), a+1, attempts, wire.Round(time.Millisecond),
				budgetLeft(deadline), err)
			continue
		}
		if !rep.Resolved {
			// An unresolved remote result is not trusted as final: the
			// worker may be degraded or capped (-max-timelimit) below
			// what the instance needs, and accepting it would lose an
			// instance the local engine can solve. Try elsewhere, then
			// re-solve locally; a genuinely unsolvable partition costs
			// one redundant local attempt under the same budget.
			asp.SetAttr("outcome", "unresolved")
			asp.End()
			c.logf("dist: warn retry job=%d worker=%s attempt=%d/%d elapsed=%v budget_left=%s unresolved=%s",
				job.ID, t.Addr(), a+1, attempts, wire.Round(time.Millisecond),
				budgetLeft(deadline), rep.Stats.LastStatus)
			continue
		}
		mDistWireSeconds.Observe(wire.Seconds())
		rep.Stats.RemoteJobs = 1
		rep.Stats.WorkerAddr = t.Addr()
		rep.Stats.DispatchAttempts = a + 1
		asp.SetAttr("outcome", rep.Stats.LastStatus)
		asp.End()
		c.remoteJobs.Add(1)
		return rep, true
	}
	c.logf("dist: job %d exhausted its worker attempts; solving locally", job.ID)
	return nil, false
}

// budgetLeft renders what remains of the job's total budget for the
// dispatch warnings ("none" when the job carries no budget).
func budgetLeft(deadline time.Time) string {
	if deadline.IsZero() {
		return "none"
	}
	return time.Until(deadline).Round(time.Millisecond).String()
}

// attemptTimeout bounds one dispatch attempt against the job's budget.
// The remaining budget is split into equal shares for this attempt,
// each later attempt, and a local-fallback reserve — so a worker that
// accepts the job and then hangs can neither starve the promised retry
// on a distinct worker nor leave the fallback broke, whatever the
// TotalTimeLimit. transportSlack rides on top for wire overhead (the
// worker enforces the solve budget itself); the result never exceeds
// JobTimeout, nor what is left of the budget plus slack. Budgets within
// a few transportSlacks are degenerate: the slack floor dominates and
// the reserve is best-effort. attemptsLeft below 1 cannot come from
// dispatch (it always has the current attempt left); it is clamped to 1
// defensively so the local-fallback reserve survives a miscounting
// caller rather than collapsing to zero.
func attemptTimeout(jobTimeout, remain time.Duration, attemptsLeft int) time.Duration {
	if attemptsLeft < 1 {
		attemptsLeft = 1
	}
	timeout := jobTimeout
	if share := remain/time.Duration(attemptsLeft+1) + transportSlack; share < timeout {
		timeout = share
	}
	if all := remain + transportSlack; all < timeout {
		timeout = all
	}
	return timeout
}

// encodeJob builds the wire job, memoizing the D0 and log encodings
// (see encMemo). The identity+witness keying means a caller that
// mutates a table in place between diagnoses against the SAME memo —
// only possible by installing the Coordinator directly as the solver —
// should use a per-run Solver() or Diagnose, both of which scope the
// memo to one run.
func (m *encMemo) encodeJob(id uint64, sub core.Subproblem) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.d0 != sub.D0 || m.d0Len != sub.D0.Len() || m.nextID != sub.D0.NextID() {
		m.d0, m.d0Len, m.nextID = sub.D0, sub.D0.Len(), sub.D0.NextID()
		m.table = encodeTable(sub.D0)
		m.d0Digest = digestJSON(m.table)
	}
	var logPtr *query.Query
	if len(sub.Log) > 0 {
		logPtr = &sub.Log[0]
	}
	if m.log == nil || m.logPtr != logPtr || m.logLen != len(sub.Log) {
		logw, err := encodeLog(sub.Log)
		if err != nil {
			return nil, err
		}
		m.logPtr, m.logLen, m.log = logPtr, len(sub.Log), logw
		m.logDigest = digestJSON(logw)
	}
	return &Job{
		Version:    WireVersion,
		ID:         id,
		D0Digest:   m.d0Digest,
		LogDigest:  m.logDigest,
		D0:         m.table,
		Log:        m.log,
		Complaints: sub.Complaints,
		Options:    encodeOptions(sub.Options),
	}, nil
}

// digestJSON fingerprints a wire structure by its serialized form (the
// exact bytes the worker would otherwise re-decode). A zero return
// (marshal failure) disables caching for the job rather than erring.
func digestJSON(v any) uint64 {
	b, err := json.Marshal(v)
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Diagnose runs a full distributed diagnosis: planning, merging and
// verification happen in-process via core.Diagnose, with a per-run
// solver (Solver) installed so concurrent Diagnose calls on one shared
// coordinator never cross-pollute encoding memos. Partition defaults to
// the worker count when unset so the dispatch pipeline is as wide as the
// fleet.
func (c *Coordinator) Diagnose(d0 *relation.Table, log []query.Query,
	complaints []core.Complaint, opt core.Options) (*core.Repair, error) {
	if opt.Partition == 0 {
		opt.Partition = len(c.transports)
		if opt.Partition == 0 {
			opt.Partition = 1
		}
	}
	opt.PartitionSolver = c.Solver()
	return core.Diagnose(d0, log, complaints, opt)
}

// DiagnoseWorkers runs one diagnosis with a throwaway coordinator over
// the given worker addresses — the Options.Workers bootstrap shared by
// qfix.Diagnose and histstore.Store.Diagnose, kept here so every entry
// point configures the fleet identically. Options.MuxWorkers selects
// persistent multiplexed connections (note the connections then live
// only for this one diagnosis; callers that diagnose repeatedly should
// hold a Connect'ed coordinator instead to amortize them).
func DiagnoseWorkers(workers []string, d0 *relation.Table, log []query.Query,
	complaints []core.Complaint, opt core.Options) (*core.Repair, error) {
	coord := Connect(Config{Mux: opt.MuxWorkers, Logf: opt.Logf}, workers...)
	defer coord.Close()
	return coord.Diagnose(d0, log, complaints, opt)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

var _ core.PartitionSolver = (*Coordinator)(nil)
