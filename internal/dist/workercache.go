package dist

import (
	"sync"

	"repro/internal/core"
	"repro/internal/lru"
	"repro/internal/query"
	"repro/internal/relation"
)

// DefaultWorkerCacheEntries bounds a worker's decode cache when the
// server (or qfix-worker's -cache flag) does not say otherwise.
const DefaultWorkerCacheEntries = 8

// workerCache is the worker-side decode cache: every partition job of
// one diagnosis carries the identical D0 and log, so the first job of a
// run pays the JSON-to-table/query decode and subsequent jobs with the
// same digests reuse it. The shared state is read-only by construction
// (the engine replays onto clones and repairs onto cloned logs), so
// concurrent jobs may hold the same entry. The embedded impact cache
// rides along: decoded logs keep their FullImpact closure across jobs
// and runs, so repeat jobs skip worker-side re-planning too. Eviction
// is LRU over (d0, log) digest pairs.
// solutions rides along for the same reason as the impact cache:
// repeat jobs on a warm worker (Options.WarmStart) seed their solves
// from the solutions of earlier same-history jobs, so a repeat fleet
// diagnosis collapses each worker's search to the pruning pass.
type workerCache struct {
	mu        sync.Mutex
	entries   *lru.Map[wcKey, wcEntry] //qfix:guarded-by mu
	impact    *core.ImpactCache
	solutions *core.SolutionCache
}

type wcKey struct{ d0, log uint64 }

type wcEntry struct {
	d0  *relation.Table
	log []query.Query
}

func newWorkerCache(max int) *workerCache {
	if max <= 0 {
		max = DefaultWorkerCacheEntries
	}
	return &workerCache{entries: lru.New[wcKey, wcEntry](max),
		impact:    core.NewImpactCache(0),
		solutions: core.NewSolutionCache(0)}
}

// lookup returns the cached decode for the digest pair. The row and log
// lengths are cheap witnesses against digest collisions: a mismatch is
// treated as a miss rather than trusted.
func (c *workerCache) lookup(k wcKey, rows, logLen int) (*relation.Table, []query.Query, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries.Get(k)
	if !ok || e.d0.Len() != rows || len(e.log) != logLen {
		return nil, nil, false
	}
	return e.d0, e.log, true
}

func (c *workerCache) store(k wcKey, d0 *relation.Table, log []query.Query) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.Put(k, wcEntry{d0: d0, log: log})
}
