package dist

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// tinySubproblem is a one-row, one-query instance the local engine
// solves in microseconds: the UPDATE's threshold was typed too high, so
// repairing it to ≤100 resolves the complaint.
func tinySubproblem(t *testing.T) core.Subproblem {
	t.Helper()
	sch := relation.MustSchema("T", []string{"a"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(100)
	log := []query.Query{query.NewUpdate(
		[]query.SetClause{{Attr: 0, Expr: query.ConstExpr(5)}},
		query.AttrPred(0, query.GE, 200))}
	return core.Subproblem{
		D0:         d0,
		Log:        log,
		Complaints: []core.Complaint{{TupleID: 1, Exists: true, Values: []float64{5}}},
		Options:    core.Options{Algorithm: core.Basic, TimeLimit: 30 * time.Second},
	}
}

// TestDispatchCursorWraparound is the round-robin wraparound
// regression: when the shared uint64 cursor wraps, the raw int
// conversion went negative and the negative modulo index panicked.
// The cursor is now reduced modulo the fleet size while unsigned.
func TestDispatchCursorWraparound(t *testing.T) {
	coord := NewCoordinator(Config{Logf: t.Logf}, InProc{}, InProc{}, InProc{})
	defer coord.Close()
	coord.next.Store(math.MaxUint64) // next Add(1) wraps the counter to 0

	for i := 0; i < 3; i++ { // walk the cursor across the wrap boundary
		rep, err := coord.SolvePartition(tinySubproblem(t))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Resolved {
			t.Fatalf("dispatch %d at wraparound lost the instance: %+v", i, rep.Stats)
		}
	}
	if coord.RemoteJobs() != 3 {
		t.Errorf("RemoteJobs = %d, want 3 (every dispatch must reach a transport)",
			coord.RemoteJobs())
	}
}

// captureTransport records the jobs offered to it and answers like a
// healthy remote worker (solving in process).
type captureTransport struct {
	mu   sync.Mutex
	jobs []Job
}

func (c *captureTransport) Do(ctx context.Context, job *Job) (*Result, error) {
	c.mu.Lock()
	c.jobs = append(c.jobs, *job)
	c.mu.Unlock()
	return InProc{}.Do(ctx, job)
}
func (c *captureTransport) Addr() string { return "capture" }
func (c *captureTransport) Close() error { return nil }

// TestDispatchStampsAttemptDeadline pins the wire-v3 advisory attempt
// window: every shipped attempt carries its relative TTL plus a clamped
// solve budget, and a worker that only dequeues a job past the window
// (the server anchors the TTL at frame arrival and threads it through
// the solve context) refuses it instead of solving dead work.
func TestDispatchStampsAttemptDeadline(t *testing.T) {
	ct := &captureTransport{}
	coord := NewCoordinator(Config{JobTimeout: time.Minute, Logf: t.Logf}, ct)
	defer coord.Close()
	rep, err := coord.SolvePartition(tinySubproblem(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("dispatch lost the instance: %+v", rep.Stats)
	}
	if len(ct.jobs) != 1 {
		t.Fatalf("captured %d jobs, want 1", len(ct.jobs))
	}
	job := ct.jobs[0]
	if job.AttemptTTLNS <= 0 || job.AttemptTTLNS > int64(time.Minute) {
		t.Errorf("attempt TTL = %v, want within (0, JobTimeout]",
			time.Duration(job.AttemptTTLNS))
	}
	if job.Options.TotalTimeLimitNS <= 0 || job.Options.TotalTimeLimitNS > int64(time.Minute) {
		t.Errorf("attempt solve budget = %v, want clamped into (0, JobTimeout]",
			time.Duration(job.Options.TotalTimeLimitNS))
	}

	// Worker side: a job whose attempt window closed while it queued
	// (an already-expired arrival-anchored context) is refused.
	expired, cancel := context.WithDeadline(context.Background(),
		time.Now().Add(-time.Second))
	defer cancel()
	res := solveJob(expired, &job, nil)
	if res.Err == "" || res.Resolved {
		t.Errorf("worker solved a job whose attempt window had closed: %+v", res)
	}
}

// TestClampBudget pins how the attempt window threads into a worker
// solve: no deadline leaves the budget alone, a tighter ctx deadline
// (on the server path, the job's TTL anchored at frame arrival) clamps
// it, a looser one doesn't, and a dead attempt is refused (nil Options
// = the cheap pre-decode liveness check).
func TestClampBudget(t *testing.T) {
	bg := context.Background()

	o := core.Options{TotalTimeLimit: time.Hour}
	if !clampBudget(bg, &o) || o.TotalTimeLimit != time.Hour {
		t.Errorf("background ctx: ok/budget = %v, want untouched hour", o.TotalTimeLimit)
	}

	canceled, cancel := context.WithCancel(bg)
	cancel()
	if clampBudget(canceled, &o) || clampBudget(canceled, nil) {
		t.Error("canceled ctx accepted")
	}

	expired, cancelExp := context.WithDeadline(bg, time.Now().Add(-time.Second))
	defer cancelExp()
	if clampBudget(expired, &o) || clampBudget(expired, nil) {
		t.Error("expired ctx deadline accepted")
	}

	tight, cancelTight := context.WithTimeout(bg, 100*time.Millisecond)
	defer cancelTight()
	o2 := core.Options{TotalTimeLimit: time.Hour}
	if !clampBudget(tight, &o2) {
		t.Fatal("live deadline rejected")
	}
	if o2.TotalTimeLimit > 100*time.Millisecond || o2.TotalTimeLimit <= 0 {
		t.Errorf("budget = %v, want clamped into (0, 100ms]", o2.TotalTimeLimit)
	}
	o3 := core.Options{} // no budget of its own: the deadline becomes one
	if !clampBudget(tight, &o3) || o3.TotalTimeLimit <= 0 || o3.TotalTimeLimit > 100*time.Millisecond {
		t.Errorf("unbudgeted job: budget = %v, want the ctx share", o3.TotalTimeLimit)
	}

	loose, cancelLoose := context.WithTimeout(bg, time.Hour)
	defer cancelLoose()
	o4 := core.Options{TotalTimeLimit: time.Millisecond}
	if !clampBudget(loose, &o4) || o4.TotalTimeLimit != time.Millisecond {
		t.Errorf("tight own budget loosened to %v", o4.TotalTimeLimit)
	}
}
