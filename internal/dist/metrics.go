package dist

import "repro/internal/obs"

// Process-wide metrics on obs.Default(). The coordinator-side family
// (qfix_dist_*) describes dispatch as seen from the diagnosing process;
// the worker-side family (qfix_worker_*) describes the serving process.
// A process that both dispatches and serves (loopback tests, qfix with
// local workers) publishes into both.
var (
	mDistJobs = obs.Default().Counter("qfix_dist_jobs_total",
		"Partition jobs offered to the worker fleet (before retries).")
	mDistRetries = obs.Default().Counter("qfix_dist_retries_total",
		"Dispatch attempts beyond each job's first (failures re-offered to another worker).")
	mDistFallbacks = obs.Default().Counter("qfix_dist_fallbacks_total",
		"Jobs that exhausted their worker attempts and solved on the local engine.")
	mDistSlowJobs = obs.Default().Counter("qfix_dist_slow_jobs_total",
		"Dispatch attempts that ran past half their attempt timeout (see the slow-job warning).")
	mDistWireSeconds = obs.Default().Histogram("qfix_dist_wire_seconds",
		"Per-attempt round-trip time of successful remote solves (send + worker solve + result).", nil)
	mDistReconnects = obs.Default().Counter("qfix_dist_reconnects_total",
		"Persistent mux connections re-dialed after a break (first dials not counted).")

	mWorkerJobs = obs.Default().Counter("qfix_worker_jobs_total",
		"Jobs this worker process accepted into its solve pool.")
	mWorkerJobSeconds = obs.Default().Histogram("qfix_worker_job_seconds",
		"Per-job worker solve wall time (slot acquisition excluded).", nil)
	mWorkerInflight = obs.Default().Gauge("qfix_worker_inflight",
		"Jobs currently solving in this worker's pool.")
	mWorkerQueueDepth = obs.Default().Gauge("qfix_worker_queue_depth",
		"Jobs read off a connection and waiting for a solve slot.")
	mWorkerCacheHits = obs.Default().Counter("qfix_worker_cache_hits_total",
		"Jobs whose D0/log decode was served from the worker's digest-keyed cache.")
	mWorkerCacheMisses = obs.Default().Counter("qfix_worker_cache_misses_total",
		"Cache-eligible jobs that had to decode D0/log from the wire.")
)
