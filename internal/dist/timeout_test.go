package dist

import (
	"testing"
	"time"
)

// The budget-drain regression, tested as pure math: one attempt must
// never be allowed the whole remaining budget when retries or the local
// fallback still need a share — for any TotalTimeLimit, including ones
// below the default JobTimeout (the gap the e2e test can't cover
// without minutes of wall clock).
func TestAttemptTimeoutSharesBudget(t *testing.T) {
	const m = time.Minute
	cases := []struct {
		name         string
		jobTimeout   time.Duration
		remain       time.Duration
		attemptsLeft int
		want         time.Duration
	}{
		// Budget below the default JobTimeout: the share, not the whole
		// remain, bounds the attempt (the old bug gave it remain+slack).
		{"small budget two attempts", DefaultJobTimeout, 60 * time.Second, 2,
			20*time.Second + transportSlack},
		{"small budget last attempt", DefaultJobTimeout, 40 * time.Second, 1,
			20*time.Second + transportSlack},
		// Large budget: JobTimeout caps the attempt.
		{"large budget", DefaultJobTimeout, 60 * m, 2, DefaultJobTimeout},
		{"explicit job timeout", 10 * time.Second, 5 * m, 2, 10 * time.Second},
		// Nearly spent budget: never wait longer than what is left plus
		// wire slack (the slack floor; proportionality is best-effort).
		{"spent budget", DefaultJobTimeout, time.Second, 1,
			time.Second/2 + transportSlack},
		// Degenerate budgets within a few transportSlacks: the slack
		// floor dominates the share, but the attempt still never gets
		// more than remain+slack.
		{"degenerate one-slack budget", DefaultJobTimeout, transportSlack, 2,
			transportSlack/3 + transportSlack},
		{"degenerate two-slack budget last attempt", DefaultJobTimeout, 2 * transportSlack, 1,
			transportSlack + transportSlack},
		{"degenerate three-slack budget", DefaultJobTimeout, 3 * transportSlack, 2,
			transportSlack + transportSlack},
		// attemptsLeft=0 cannot come from dispatch; the guard treats it
		// as 1 so the fallback reserve survives instead of the share
		// collapsing to the whole remaining budget.
		{"attemptsLeft=0 guarded", DefaultJobTimeout, 40 * time.Second, 0,
			20*time.Second + transportSlack},
	}
	for _, c := range cases {
		got := attemptTimeout(c.jobTimeout, c.remain, c.attemptsLeft)
		if got != c.want {
			t.Errorf("%s: attemptTimeout(%v, %v, %d) = %v, want %v",
				c.name, c.jobTimeout, c.remain, c.attemptsLeft, got, c.want)
		}
		if got > c.jobTimeout {
			t.Errorf("%s: %v exceeds JobTimeout %v", c.name, got, c.jobTimeout)
		}
		if got > c.remain+transportSlack {
			t.Errorf("%s: %v exceeds remaining budget %v + slack", c.name, got, c.remain)
		}
	}

	// Across a full retry round, the worst-case waits must leave the
	// local fallback a real reserve (modulo the per-attempt slack).
	remain := 60 * time.Second
	var spent time.Duration
	for left := 2; left >= 1; left-- {
		w := attemptTimeout(DefaultJobTimeout, remain-spent, left)
		spent += w
	}
	if reserve := remain - spent; reserve <= 0 {
		t.Errorf("fallback reserve = %v of %v; hung attempts drained the budget", reserve, remain)
	}
}
