package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Mux reconnect backoff: after a dial failure or broken connection the
// transport waits before re-dialing the persistent connection —
// exponential from muxBackoffBase, capped at muxBackoffMax, then
// jittered by ±25% (muxBackoffJitter). Without the jitter the schedule
// is fully deterministic, so a coordinator with several mux workers
// behind one recovered network path re-dials them all in lockstep,
// slamming the path at the exact same instants every cycle; the jitter
// de-synchronizes the fleet. It is seeded per-transport from the worker
// address, so a given transport's schedule is reproducible (tests pin
// it) while distinct workers never share one. Jobs that arrive while
// the persistent connection is down are not delayed and not lost: they
// fall back to one dialed connection per job, so a recovering worker
// keeps serving the fleet while the mux link heals.
const (
	muxBackoffBase   = 250 * time.Millisecond
	muxBackoffMax    = 10 * time.Second
	muxBackoffJitter = 0.25
)

// muxBackoff returns the jittered wait before reconnect attempt
// `failures` (1-based): the capped exponential scaled by a factor drawn
// uniformly from [1-muxBackoffJitter, 1+muxBackoffJitter).
func muxBackoff(failures int, rng *rand.Rand) time.Duration {
	d := muxBackoffMax
	if failures >= 1 && failures <= 6 {
		if b := muxBackoffBase << (failures - 1); b < d {
			d = b
		}
	}
	scale := 1 - muxBackoffJitter + 2*muxBackoffJitter*rng.Float64()
	return time.Duration(float64(d) * scale)
}

// backoffSeed derives a transport's deterministic jitter seed from its
// worker address (FNV-1a), so schedules are reproducible per worker and
// distinct across workers.
func backoffSeed(addr string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return int64(h)
}

// muxWriteTimeout bounds a frame write when the caller's context
// carries no deadline (the coordinator always sets one; this guards
// direct users of the transport). A frame normally lands in the socket
// buffer in microseconds — a write this slow means the worker stopped
// draining its receive window, and without some deadline the write
// would block forever holding writeMu, wedging the transport.
const muxWriteTimeout = time.Minute

// errMuxDown marks a job that never reached the persistent connection
// (dial failed, backoff in force, or transport closed): the attempt is
// still fresh and may be retried on the per-job path.
var errMuxDown = errors.New("dist: persistent connection unavailable")

// MuxTransport keeps one long-lived connection to a worker and
// multiplexes concurrent jobs over it (wire v3): each frame carries its
// job ID, a single reader goroutine demultiplexes result frames to the
// in-flight callers as the worker streams them back — possibly out of
// submission order — and the connection persists across jobs and
// diagnoses, so the per-job dial/teardown of TCPTransport disappears
// from the critical path.
//
// Failure semantics preserve the coordinator's no-lost-instances
// guarantee:
//
//   - a broken connection fails every in-flight job with a transport
//     error (the coordinator retries each on another worker and
//     ultimately solves locally) and arms a reconnect backoff;
//   - while the persistent connection is down, jobs fall back to
//     dial-per-job against the same worker instead of erroring, so a
//     restarted worker serves again immediately and the mux link is
//     re-dialed once the backoff expires;
//   - a worker speaking the previous protocol generation (wire v2) is
//     detected on its first rejected frame and served one dialed v2
//     connection per job from then on, the rejected job retried
//     immediately.
type MuxTransport struct {
	addr    string
	dialer  net.Dialer
	oneShot *TCPTransport // dial-per-job fallback and v2 legacy path

	// writeMu serializes frame writes on the persistent connection. It
	// is held only around Encode — never together with mu — so a write
	// stalled on a wedged worker's receive window cannot block the read
	// loop's demultiplexing or other jobs' state transitions. Sibling
	// writers do queue behind the stall until its deadline tears the
	// connection down (failing the in-flight jobs over to the retry
	// path) — a wedged worker costs its connection, not the transport.
	writeMu sync.Mutex

	mu       sync.Mutex
	conn     net.Conn                //qfix:guarded-by mu
	pending  map[uint64]chan *Result //qfix:guarded-by mu
	gen      uint64                  //qfix:guarded-by mu — connection generation; guards stale teardowns
	dialing  chan struct{}           //qfix:guarded-by mu — non-nil while a dial is in flight; closed when it settles
	failures int                     //qfix:guarded-by mu — consecutive connection failures (drives backoff)
	nextDial time.Time               //qfix:guarded-by mu — earliest next persistent-connection dial
	rng      *rand.Rand              //qfix:guarded-by mu — backoff jitter, seeded from addr
	closed   bool
}

// DialMux returns a persistent multiplexed transport for the worker at
// addr ("host:port"). No connection is made until the first job.
func DialMux(addr string) *MuxTransport {
	return &MuxTransport{
		addr:    addr,
		oneShot: Dial(addr),
		pending: make(map[uint64]chan *Result),
		rng:     rand.New(rand.NewSource(backoffSeed(addr))),
	}
}

// Addr implements Transport.
func (t *MuxTransport) Addr() string { return t.addr }

// Close implements Transport: it tears down the persistent connection,
// failing any in-flight jobs.
func (t *MuxTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.teardownLocked(t.gen)
	t.mu.Unlock()
	return t.oneShot.Close()
}

// Do implements Transport.
func (t *MuxTransport) Do(ctx context.Context, job *Job) (*Result, error) {
	if t.isLegacy() {
		return t.oneShot.Do(ctx, job)
	}
	res, err := t.doMux(ctx, job)
	if err != nil {
		if !errors.Is(err, errMuxDown) {
			return nil, err
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			// errMuxDown caused by the caller's own expired context
			// (e.g. it died queued behind a writer or awaiting the
			// dial): a fallback dial would fail instantly and blame the
			// dial — surface the real cause instead.
			return nil, fmt.Errorf("dist: job %d on %s: %w", job.ID, t.addr, ctxErr)
		}
		// The persistent connection is down (dial failed or backing
		// off). The job hasn't been sent anywhere yet, so spend the
		// attempt on a per-job dial rather than failing it.
		return t.oneShot.Do(ctx, job)
	}
	if versionRejected(job, res) {
		// A v2 worker refusing our v3 frame: negotiate down for good
		// and retry this job on the per-job path so the attempt isn't
		// lost. TCPTransport re-stamps the job at v2 itself.
		t.setLegacy()
		return t.oneShot.Do(ctx, job)
	}
	// The result streamed back over the persistent connection; mark it
	// so the engine's stats distinguish mux results from per-job dials.
	res.Stats.StreamedResults = 1
	return res, nil
}

// isLegacy reports whether the worker negotiated down to wire v2. The
// one-shot transport's flag is the single source of truth (it also
// flips it itself when a per-job frame is rejected), so the mux and
// per-job paths can never disagree about the worker's generation.
func (t *MuxTransport) isLegacy() bool {
	return t.oneShot.legacy.Load()
}

// setLegacy flips the transport to the v2 per-job path permanently.
// The persistent connection is deliberately NOT torn down here: sibling
// jobs still in flight on it each receive their own rejection frame (a
// v2 worker answers every frame, serially) and retry themselves on the
// per-job path, so nothing is failed over to a local solve just because
// a neighbor negotiated first. The idle connection dies with Close.
func (t *MuxTransport) setLegacy() {
	t.oneShot.legacy.Store(true)
}

// doMux runs one job over the persistent connection.
func (t *MuxTransport) doMux(ctx context.Context, job *Job) (*Result, error) {
	ch, err := t.submit(ctx, job)
	if err != nil {
		return nil, err
	}
	select {
	case res, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("dist: %s: connection broke with job %d in flight",
				t.addr, job.ID)
		}
		return res, nil
	case <-ctx.Done():
		t.forget(job.ID)
		return nil, fmt.Errorf("dist: job %d on %s: %w", job.ID, t.addr, ctx.Err())
	}
}

// submit registers the job and writes its frame on the persistent
// connection, dialing first when necessary. It returns the 1-buffered
// channel the reader will deliver the result on (closed if the
// connection breaks). All network I/O happens outside the state mutex.
func (t *MuxTransport) submit(ctx context.Context, job *Job) (chan *Result, error) {
	// Resolve the connection first — a cheap mutex check when it is
	// live, and an immediate errMuxDown during an outage/backoff window
	// so the job falls back to dial-per-job without having marshaled a
	// frame it would only throw away.
	conn, err := t.connection(ctx)
	if err != nil {
		return nil, err
	}
	// Serialize the frame before taking any lock: the marshal (the full
	// D0+log encoding) is the CPU-heavy part, and under writeMu it
	// would run strictly one job at a time.
	frame, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("dist: marshal job %d for %s: %w", job.ID, t.addr, err)
	}
	frame = append(frame, '\n')

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("dist: %s: %w", t.addr, net.ErrClosed)
	}
	if t.conn != conn {
		// The connection broke between lookup and registration; the
		// frame was never sent, so the attempt is still fresh.
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s connection replaced before send", errMuxDown, t.addr)
	}
	ch := make(chan *Result, 1)
	t.pending[job.ID] = ch
	t.mu.Unlock()

	// Frame writes are serialized by writeMu alone; they land in the
	// socket buffer or fail by the caller's deadline (which also covers
	// a worker too wedged to drain its receive window).
	t.writeMu.Lock()
	if ctxErr := ctx.Err(); ctxErr != nil {
		// The deadline expired while queued behind another writer: no
		// bytes of this frame were written, so the stream is intact —
		// bow out without the collateral teardown a mid-write failure
		// demands, leaving sibling in-flight jobs untouched.
		t.writeMu.Unlock()
		t.forget(job.ID)
		return nil, fmt.Errorf("%w: job %d on %s: %v", errMuxDown, job.ID, t.addr, ctxErr)
	}
	dl, ok := ctx.Deadline()
	if !ok {
		dl = time.Now().Add(muxWriteTimeout) // never write unbounded under writeMu
	}
	conn.SetWriteDeadline(dl)
	_, err = conn.Write(frame)
	if err == nil {
		conn.SetWriteDeadline(time.Time{})
	}
	t.writeMu.Unlock()
	if err != nil {
		t.mu.Lock()
		delete(t.pending, job.ID)
		if t.conn == conn {
			t.teardownLocked(t.gen)
		}
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: send job %d to %s: %v", errMuxDown, job.ID, t.addr, err)
	}
	return ch, nil
}

// connection returns the live persistent connection, dialing it first
// when down. The dial itself runs outside the state mutex, so the read
// loop and other state transitions never block behind it; concurrent
// callers wait for the in-flight dial (escaping on their own context)
// and then share its outcome, so the first wave of jobs all ride the
// one new connection. When the reconnect backoff is in force the caller
// gets errMuxDown and its job proceeds over the per-job path instead.
func (t *MuxTransport) connection(ctx context.Context) (net.Conn, error) {
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return nil, fmt.Errorf("dist: %s: %w", t.addr, net.ErrClosed)
		}
		if t.conn != nil {
			conn := t.conn
			t.mu.Unlock()
			return conn, nil
		}
		if t.dialing != nil {
			settled := t.dialing
			t.mu.Unlock()
			select {
			case <-settled:
				continue // re-evaluate: conn live, backoff armed, or closed
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %s awaiting dial: %v", errMuxDown, t.addr, ctx.Err())
			}
		}
		if time.Now().Before(t.nextDial) {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %s reconnect backing off", errMuxDown, t.addr)
		}
		settled := make(chan struct{})
		t.dialing = settled
		t.mu.Unlock()

		conn, err := t.dialer.DialContext(ctx, "tcp", t.addr)

		t.mu.Lock()
		t.dialing = nil
		close(settled)
		if err != nil {
			// A dial aborted by the submitting job's own deadline says
			// nothing about the worker's health; only a genuine dial
			// failure arms the reconnect backoff.
			if ctx.Err() == nil {
				t.backoffLocked()
			}
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: dial %s: %v", errMuxDown, t.addr, err)
		}
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return nil, fmt.Errorf("dist: %s: %w", t.addr, net.ErrClosed)
		}
		if t.gen > 0 {
			// gen moves only on successful dials and teardowns, so a
			// nonzero value here means this dial replaced a broken link.
			mDistReconnects.Inc()
		}
		t.conn = conn
		t.gen++
		//qfix:leak-ok readLoop exits when Close or a teardown closes this conn
		go t.readLoop(conn, t.gen)
		t.mu.Unlock()
		return conn, nil
	}
}

// readLoop demultiplexes result frames to their in-flight jobs until
// the connection breaks, then fails whatever is still pending.
func (t *MuxTransport) readLoop(conn net.Conn, gen uint64) {
	dec := json.NewDecoder(conn)
	// Lifetime is the connection's, not a caller's: Decode fails when
	// the conn closes (teardown or peer loss) and the pending-map send
	// is 1-buffered, so the loop can neither outlive the link nor block.
	//qfix:ctx-ok loop exits when the connection closes; sends are 1-buffered
	for {
		res := new(Result)
		if err := dec.Decode(res); err != nil {
			t.mu.Lock()
			t.teardownLocked(gen)
			t.mu.Unlock()
			return
		}
		t.mu.Lock()
		if t.gen != gen {
			// A teardown already replaced this connection; stop reading.
			t.mu.Unlock()
			return
		}
		t.failures = 0 // live traffic proves the link healthy
		ch, ok := t.pending[res.ID]
		delete(t.pending, res.ID)
		t.mu.Unlock()
		if ok {
			ch <- res // 1-buffered: never blocks, even if the caller timed out
		}
	}
}

// forget drops a pending job whose caller gave up (context expiry); a
// late result frame for it is discarded by the read loop.
func (t *MuxTransport) forget(id uint64) {
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
}

// teardownLocked closes the given connection generation, fails its
// pending jobs, and arms the reconnect backoff. Stale generations
// (already torn down, or replaced by a newer dial) are ignored, so a
// racing read-loop exit cannot clobber a fresh connection.
func (t *MuxTransport) teardownLocked(gen uint64) {
	if gen != t.gen || t.conn == nil {
		return
	}
	t.gen++
	t.conn.Close()
	t.conn = nil
	for id, ch := range t.pending {
		close(ch)
		delete(t.pending, id)
	}
	t.backoffLocked()
}

// backoffLocked arms the next persistent-connection dial: exponential
// in consecutive failures, capped, jittered (muxBackoff).
func (t *MuxTransport) backoffLocked() {
	t.failures++
	t.nextDial = time.Now().Add(muxBackoff(t.failures, t.rng))
}

var _ Transport = (*MuxTransport)(nil)
