package dist_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/relation"
)

// benchInstance regenerates the partition bench workload (the same
// generator cmd/qfix-bench's `partition` and `distributed` experiments
// use): `clusters` independent complaint components, one corrupted query
// each.
func benchInstance(t *testing.T, clusters int) (*relation.Table, []query.Query, []core.Complaint) {
	t.Helper()
	w, corruptIdx, err := bench.PartitionClusters(clusters, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	return in.W.D0, in.Dirty, in.Complaints
}

func partitionOpts() core.Options {
	return core.Options{
		Algorithm:    core.Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		Partition:    2,
		TimeLimit:    30 * time.Second,
	}
}

// repairFingerprint renders a repair to bytes: the full repaired log as
// SQL plus the changed set, distance, and verification verdict. Two
// repairs with equal fingerprints are byte-identical for every caller-
// visible purpose.
func repairFingerprint(sch *relation.Schema, rep *core.Repair) string {
	var b strings.Builder
	for _, q := range rep.Log {
		b.WriteString(q.String(sch))
		b.WriteString(";\n")
	}
	fmt.Fprintf(&b, "changed=%v distance=%.9f resolved=%v", rep.Changed, rep.Distance, rep.Resolved)
	return b.String()
}

// startWorker serves real diagnosis jobs on a loopback listener.
func startWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &dist.Server{Logf: t.Logf}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// startCrashingWorker accepts connections, reads the complete job, then
// drops the connection without answering — a worker killed mid-solve,
// from the coordinator's point of view.
func startCrashingWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				var job dist.Job
				_ = json.NewDecoder(conn).Decode(&job) // take the job...
				conn.Close()                           // ...and die mid-solve
			}(conn)
		}
	}()
	return l.Addr().String()
}

// startBlackHoleWorker accepts the job and never answers — a hung
// worker the coordinator can only escape via its per-job timeout.
func startBlackHoleWorker(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var job dist.Job
				_ = json.NewDecoder(conn).Decode(&job)
				<-done // hold the connection open, never reply
			}(conn)
		}
	}()
	return l.Addr().String()
}

// localReference solves the instance with plain local partitioned
// diagnosis — the semantics every distributed configuration must match.
func localReference(t *testing.T, d0 *relation.Table, log []query.Query,
	complaints []core.Complaint) *core.Repair {
	t.Helper()
	rep, err := core.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("setup: local partitioned diagnosis unresolved: %+v", rep.Stats)
	}
	return rep
}

func TestDistributedInProcMatchesLocal(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.NewCoordinator(dist.Config{Logf: t.Logf}, dist.InProc{}, dist.InProc{})
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("in-proc distributed repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != got.Stats.Partitions {
		t.Errorf("RemoteJobs = %d, want every partition (%d) dispatched",
			got.Stats.RemoteJobs, got.Stats.Partitions)
	}
}

// TestDistributedLoopbackTCP is the end-to-end acceptance check: two
// real workers on loopback TCP, the partition bench workload, and a
// repair byte-identical to local partitioned diagnosis.
func TestDistributedLoopbackTCP(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Logf: t.Logf}, startWorker(t), startWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("distributed repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.Partitions != 4 {
		t.Errorf("Stats.Partitions = %d, want 4", got.Stats.Partitions)
	}
	if got.Stats.RemoteJobs != 4 {
		t.Errorf("Stats.RemoteJobs = %d, want 4 (healthy fleet solves everything remotely)",
			got.Stats.RemoteJobs)
	}
	// The coordinator plans once; each worker plans its own job once.
	if got.Stats.PlanPasses != 1+got.Stats.RemoteJobs {
		t.Errorf("Stats.PlanPasses = %d, want %d (1 local + 1 per remote job)",
			got.Stats.PlanPasses, 1+got.Stats.RemoteJobs)
	}
}

// TestDistributedWorkerKilledMidRun kills one of two workers mid-solve
// (it reads each job, then drops the connection). Retry moves the job to
// the healthy worker, so the repair must still be byte-identical to the
// local reference and nothing may be lost.
func TestDistributedWorkerKilledMidRun(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Retries: 1, Logf: t.Logf},
		startWorker(t), startCrashingWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("repair with a crashing worker differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if !got.Resolved {
		t.Fatalf("crashing worker lost the instance: %+v", got.Stats)
	}
	// Retries must land on a *different* worker than the one that
	// failed: with one healthy and one crashing worker and Retries=1,
	// every job reaches the healthy worker, so nothing falls back local.
	if got.Stats.RemoteJobs != got.Stats.Partitions {
		t.Errorf("RemoteJobs = %d, want %d (retry should reach the healthy worker)",
			got.Stats.RemoteJobs, got.Stats.Partitions)
	}
}

// TestDistributedExhaustedBudgetFallsThrough pins the budget semantics:
// a subproblem whose TotalTimeLimit is already (effectively) spent must
// come back as the engine's "total-time-limit" outcome, not a local
// solve on borrowed time.
func TestDistributedExhaustedBudgetFallsThrough(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	coord := dist.NewCoordinator(dist.Config{Logf: t.Logf}) // empty fleet: straight to fallback
	defer coord.Close()
	opts := partitionOpts()
	opts.Candidates = []int{0}
	opts.TotalTimeLimit = time.Nanosecond
	rep, err := coord.SolvePartition(core.Subproblem{
		D0: d0, Log: log, Complaints: complaints, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resolved {
		t.Error("exhausted budget still produced a resolved repair")
	}
	if rep.Stats.LastStatus != "total-time-limit" {
		t.Errorf("LastStatus = %q, want total-time-limit", rep.Stats.LastStatus)
	}
}

// TestDistributedTimeoutFallsBackLocal points the coordinator at a fleet
// of one hung worker: every job must time out and fall back to the local
// engine, still producing the reference repair.
func TestDistributedTimeoutFallsBackLocal(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{JobTimeout: 300 * time.Millisecond, Retries: -1, Logf: t.Logf},
		startBlackHoleWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("timeout-fallback repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != 0 {
		t.Errorf("Stats.RemoteJobs = %d, want 0 (every job timed out)", got.Stats.RemoteJobs)
	}
	if coord.LocalFallbacks() != got.Stats.Partitions {
		t.Errorf("LocalFallbacks = %d, want %d", coord.LocalFallbacks(), got.Stats.Partitions)
	}
}

// TestDistributedVersionSkewFallsBackLocal simulates a worker built from
// an incompatible tree: it answers every job with a bumped protocol
// version, which the coordinator must reject and solve locally.
func TestDistributedVersionSkewFallsBackLocal(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.NewCoordinator(dist.Config{Logf: t.Logf}, skewedTransport{})
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("version-skew fallback repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != 0 {
		t.Errorf("Stats.RemoteJobs = %d, want 0 (all results rejected)", got.Stats.RemoteJobs)
	}
}

// TestDistributedUnresolvedWorkerNotTrusted simulates a degraded worker
// (e.g. capped with -max-timelimit below the solve's needs) that
// answers every job with a well-formed but unresolved result. The
// coordinator must not accept it as final: the job falls back to the
// local engine, which resolves it — the no-lost-instances guarantee.
func TestDistributedUnresolvedWorkerNotTrusted(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	coord := dist.NewCoordinator(dist.Config{Logf: t.Logf}, unresolvedTransport{})
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("capped-worker fallback repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != 0 {
		t.Errorf("Stats.RemoteJobs = %d, want 0 (unresolved results must not count)", got.Stats.RemoteJobs)
	}
	if coord.LocalFallbacks() != got.Stats.Partitions {
		t.Errorf("LocalFallbacks = %d, want %d", coord.LocalFallbacks(), got.Stats.Partitions)
	}
}

// unresolvedTransport answers every job with a valid result whose
// repair is the identity log, unresolved — what a budget-capped worker
// returns when its solver gives up.
type unresolvedTransport struct{}

func (unresolvedTransport) Do(_ context.Context, job *dist.Job) (*dist.Result, error) {
	return &dist.Result{Version: dist.WireVersion, ID: job.ID,
		Log: job.Log, Resolved: false}, nil
}
func (unresolvedTransport) Addr() string { return "capped" }
func (unresolvedTransport) Close() error { return nil }

// skewedTransport answers every job with a wrong protocol version.
type skewedTransport struct{}

func (skewedTransport) Do(_ context.Context, job *dist.Job) (*dist.Result, error) {
	return &dist.Result{Version: dist.WireVersion + 1, ID: job.ID}, nil
}
func (skewedTransport) Addr() string { return "skewed" }
func (skewedTransport) Close() error { return nil }
