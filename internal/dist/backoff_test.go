package dist

import (
	"math/rand"
	"testing"
	"time"
)

// unjittered is the capped exponential the jitter scales.
func unjittered(failures int) time.Duration {
	d := muxBackoffMax
	if failures >= 1 && failures <= 6 {
		if b := muxBackoffBase << (failures - 1); b < d {
			d = b
		}
	}
	return d
}

// The backoff schedule must stay exponential-shaped but bounded-jittered:
// every delay within ±25% of its capped exponential, including at the
// cap (a lockstep steady state at exactly muxBackoffMax is the failure
// mode this guards against).
func TestMuxBackoffScheduleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(backoffSeed("worker-a:9000")))
	for failures := 1; failures <= 12; failures++ {
		d := muxBackoff(failures, rng)
		base := unjittered(failures)
		lo := time.Duration(float64(base) * (1 - muxBackoffJitter))
		hi := time.Duration(float64(base) * (1 + muxBackoffJitter))
		if d < lo || d > hi {
			t.Fatalf("failures=%d: backoff %v outside [%v, %v]", failures, d, lo, hi)
		}
	}
}

// Reproducibility: the jitter is seeded from the worker address, so one
// transport's schedule is deterministic across restarts (what keeps the
// mux reconnect tests stable) ...
func TestMuxBackoffDeterministicPerAddr(t *testing.T) {
	a1 := rand.New(rand.NewSource(backoffSeed("w1:9000")))
	a2 := rand.New(rand.NewSource(backoffSeed("w1:9000")))
	for failures := 1; failures <= 8; failures++ {
		d1, d2 := muxBackoff(failures, a1), muxBackoff(failures, a2)
		if d1 != d2 {
			t.Fatalf("failures=%d: same-addr schedules diverge: %v vs %v", failures, d1, d2)
		}
	}
}

// ... while distinct workers never share a schedule: a coordinator with
// several mux workers behind one recovered path must not re-dial them
// in lockstep.
func TestMuxBackoffDesynchronizedAcrossAddrs(t *testing.T) {
	addrs := []string{"w1:9000", "w2:9000", "w3:9000", "w4:9000"}
	rngs := make([]*rand.Rand, len(addrs))
	for i, a := range addrs {
		rngs[i] = rand.New(rand.NewSource(backoffSeed(a)))
	}
	for failures := 1; failures <= 8; failures++ {
		seen := make(map[time.Duration]bool, len(addrs))
		distinct := 0
		for _, rng := range rngs {
			d := muxBackoff(failures, rng)
			if !seen[d] {
				seen[d] = true
				distinct++
			}
		}
		// All four firing at the identical instant is exactly the
		// lockstep bug; with continuous jitter they must all differ.
		if distinct < len(addrs) {
			t.Fatalf("failures=%d: only %d distinct delays across %d workers",
				failures, distinct, len(addrs))
		}
	}
}

// The transport must arm nextDial with the jittered schedule.
func TestMuxTransportArmsJitteredBackoff(t *testing.T) {
	tr := DialMux("w1:9000")
	want := rand.New(rand.NewSource(backoffSeed("w1:9000")))
	for failures := 1; failures <= 4; failures++ {
		before := time.Now()
		tr.mu.Lock()
		tr.backoffLocked()
		next := tr.nextDial
		tr.mu.Unlock()
		d := muxBackoff(failures, want)
		// nextDial = now + d, with `now` sampled inside backoffLocked.
		gotDelay := next.Sub(before)
		if gotDelay < d || gotDelay > d+time.Second {
			t.Fatalf("failures=%d: armed delay ~%v, want %v", failures, gotDelay, d)
		}
	}
}
