package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Server is the worker side of the protocol: it accepts connections,
// reads jobs (newline-delimited JSON), solves each on the local engine,
// and writes results. A connection may carry any number of jobs in
// sequence; the coordinator's TCP transport uses one per job.
type Server struct {
	// MaxTimeLimit, when positive, caps the per-solve and total time
	// limits of incoming jobs — a fleet operator's guard against a
	// coordinator requesting unbounded solves.
	MaxTimeLimit time.Duration
	// CacheSize bounds the decode cache: repeat jobs whose D0/log
	// digests match a cached entry skip the wire decode and the
	// planning closure (workercache.go). Zero picks
	// DefaultWorkerCacheEntries; negative disables caching.
	CacheSize int
	// Logf, when set, receives one line per job and per protocol error.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	cache  *workerCache
	closed bool
}

// Serve accepts and handles connections on l until Close or a fatal
// listener error. It blocks; run it in a goroutine to serve in the
// background.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dist: server closed")
	}
	s.ln = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting and tears down in-flight connections. Jobs being
// solved are abandoned; their coordinators observe a broken connection
// and fall back.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var job Job
		if err := dec.Decode(&job); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("dist: %s: bad frame: %v", conn.RemoteAddr(), err)
			}
			return
		}
		start := time.Now()
		s.capLimits(&job)
		res := solveJob(&job, s.workerCache())
		s.logf("dist: job %d from %s: complaints=%d resolved=%v cachehit=%d err=%q (%v)",
			job.ID, conn.RemoteAddr(), len(job.Complaints), res.Resolved,
			res.Stats.WorkerCacheHits, res.Err,
			time.Since(start).Round(time.Millisecond))
		if err := enc.Encode(res); err != nil {
			s.logf("dist: %s: writing result %d: %v", conn.RemoteAddr(), job.ID, err)
			return
		}
	}
}

// workerCache lazily builds the server's decode cache per CacheSize.
func (s *Server) workerCache() *workerCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.CacheSize < 0 {
		return nil
	}
	if s.cache == nil {
		s.cache = newWorkerCache(s.CacheSize)
	}
	return s.cache
}

// capLimits clamps the job's solver budgets to the server's policy.
func (s *Server) capLimits(job *Job) {
	if s.MaxTimeLimit <= 0 {
		return
	}
	max := int64(s.MaxTimeLimit)
	if job.Options.TimeLimitNS <= 0 || job.Options.TimeLimitNS > max {
		job.Options.TimeLimitNS = max
	}
	if job.Options.TotalTimeLimitNS <= 0 || job.Options.TotalTimeLimitNS > max {
		job.Options.TotalTimeLimitNS = max
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}
