package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"
)

// Server is the worker side of the protocol: it accepts connections,
// reads jobs (newline-delimited JSON), solves them on the local engine,
// and writes results. A connection may carry any number of jobs; up to
// MaxInflight jobs across the whole server solve concurrently and each
// result is written the moment its solve lands — possibly out of
// submission order, which is the wire-v3 contract (a mux coordinator
// matches results to jobs by ID, and v2 coordinators only ever have one
// job in flight per connection, so they observe the serial behavior
// they expect).
type Server struct {
	// MaxTimeLimit, when positive, caps the per-solve and total time
	// limits of incoming jobs — a fleet operator's guard against a
	// coordinator requesting unbounded solves.
	MaxTimeLimit time.Duration
	// MaxInflight bounds how many jobs solve concurrently across the
	// whole server — one shared pool, however many connections the
	// jobs arrive on — so the operator's bound holds for mux
	// coordinators, dial-per-job coordinators, and mixtures alike.
	// Admission stops reading a connection's further frames until a
	// slot frees. Zero picks runtime.GOMAXPROCS; negative forces one
	// solve at a time server-wide (stricter than the pre-v3 serial
	// loop, which was serial per connection but concurrent across
	// connections).
	MaxInflight int
	// CacheSize bounds the decode cache: repeat jobs whose D0/log
	// digests match a cached entry skip the wire decode and the
	// planning closure (workercache.go). Zero picks
	// DefaultWorkerCacheEntries; negative disables caching.
	CacheSize int
	// Logf, when set, receives one line per job and per protocol error.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener          //qfix:guarded-by mu
	conns  map[net.Conn]struct{} //qfix:guarded-by mu
	cache  *workerCache          //qfix:guarded-by mu
	sem    chan struct{}         //qfix:guarded-by mu — server-wide solve slots (MaxInflight)
	closed bool                  //qfix:guarded-by mu
}

// Serve accepts and handles connections on l until Close or a fatal
// listener error. It blocks; run it in a goroutine to serve in the
// background.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dist: server closed")
	}
	s.ln = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	// Accept loops end by listener teardown: Close() closes l, Accept
	// returns, and the closed flag picks the nil return. (The teardown
	// race here was PR 4's bugfix; the invariant is pinned by
	// TestServerClose.)
	//qfix:ctx-ok exits via Close(): closed listener fails Accept
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Registration happens in the same critical section that checks
		// for shutdown: a connection accepted just as Close runs would
		// otherwise land in s.conns after Close's teardown iteration and
		// never be closed.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		// handle's decode loop exits when the peer hangs up or Close
		// tears the registered conn down; its deferred cleanup then
		// deregisters the conn.
		//qfix:leak-ok handle exits on conn error; Close closes every registered conn
		go s.handle(conn)
	}
}

// Close stops accepting and tears down in-flight connections. Jobs being
// solved are abandoned; their coordinators observe a broken connection
// and fall back.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

// handle serves one connection: a read loop admits jobs into the
// server-wide solver pool, and results stream back over a per-
// connection write lock as they land.
func (s *Server) handle(conn net.Conn) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait() // let in-flight solves write (or fail) before teardown
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	sem := s.solveSem()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		job := new(Job)
		if err := dec.Decode(job); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("dist: %s: bad frame: %v", conn.RemoteAddr(), err)
			}
			return
		}
		// The attempt window anchors ON THIS CLOCK at the moment the
		// frame was read, so the slot wait below counts against it
		// without any cross-machine clock agreement; solveJob refuses
		// the job if the window has closed by the time a slot frees.
		// (Time a frame spent unread in the socket buffer is uncounted:
		// the blocking read loop is deliberate backpressure, and the
		// coordinator's write deadline bounds that side.)
		arrival := time.Now()
		mWorkerQueueDepth.Add(1)
		sem <- struct{}{} // admission: at most MaxInflight concurrent solves
		mWorkerQueueDepth.Add(-1)
		mWorkerJobs.Inc()
		mWorkerInflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer mWorkerInflight.Add(-1)
			defer func() { <-sem }()
			ctx := context.Background()
			if job.AttemptTTLNS > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx,
					arrival.Add(time.Duration(job.AttemptTTLNS)))
				defer cancel()
			}
			start := time.Now()
			s.capLimits(job)
			res := solveJob(ctx, job, s.workerCache())
			elapsed := time.Since(start)
			mWorkerJobSeconds.Observe(elapsed.Seconds())
			s.logf("dist: job %d from %s: complaints=%d resolved=%v err=%q %s (%v)",
				job.ID, conn.RemoteAddr(), len(job.Complaints), res.Resolved,
				res.Err, res.Stats.Brief(), elapsed.Round(time.Millisecond))
			writeMu.Lock()
			// Bound the write: a peer that stalls without closing the
			// connection must cost its result, not wedge this solve
			// slot forever — the slots are server-wide, so an unbounded
			// write here would eventually starve every coordinator.
			conn.SetWriteDeadline(time.Now().Add(serverWriteTimeout))
			err := enc.Encode(res)
			if err == nil {
				conn.SetWriteDeadline(time.Time{})
			}
			writeMu.Unlock()
			if err != nil {
				// Fail fast: a dropped result frame would otherwise leave
				// the coordinator waiting out its full attempt timeout.
				// Closing the connection breaks its read loop too, so the
				// peer sees the failure promptly and retries elsewhere.
				s.logf("dist: %s: writing result %d: %v", conn.RemoteAddr(), job.ID, err)
				conn.Close()
			}
		}()
	}
}

// serverWriteTimeout bounds one result-frame write. A frame normally
// lands in the socket buffer instantly; a write this slow means the
// coordinator stopped draining without closing the connection.
const serverWriteTimeout = time.Minute

// solveSem lazily builds the server-wide solver-slot semaphore sized
// per MaxInflight.
func (s *Server) solveSem() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sem == nil {
		n := s.MaxInflight
		switch {
		case n < 0:
			n = 1
		case n == 0:
			n = runtime.GOMAXPROCS(0)
		}
		s.sem = make(chan struct{}, n)
	}
	return s.sem
}

// workerCache lazily builds the server's decode cache per CacheSize.
func (s *Server) workerCache() *workerCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.CacheSize < 0 {
		return nil
	}
	if s.cache == nil {
		s.cache = newWorkerCache(s.CacheSize)
	}
	return s.cache
}

// capLimits clamps the job's solver budgets to the server's policy.
func (s *Server) capLimits(job *Job) {
	if s.MaxTimeLimit <= 0 {
		return
	}
	max := int64(s.MaxTimeLimit)
	if job.Options.TimeLimitNS <= 0 || job.Options.TimeLimitNS > max {
		job.Options.TimeLimitNS = max
	}
	if job.Options.TotalTimeLimitNS <= 0 || job.Options.TotalTimeLimitNS > max {
		job.Options.TotalTimeLimitNS = max
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}
