package dist_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
)

// TestDistributedTraceAndTelemetry is the observability integration
// check: a traced diagnosis through two real loopback workers must
// produce a well-nested span tree whose remote segments name the worker
// that solved them, the process metrics must count the jobs, and the
// telemetry handler (what qfix-worker -telemetry serves) must expose
// them as Prometheus text.
func TestDistributedTraceAndTelemetry(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)

	jobsBefore := obs.Default().Counter("qfix_worker_jobs_total", "").Value()
	distBefore := obs.Default().Counter("qfix_dist_jobs_total", "").Value()

	coord := dist.Connect(dist.Config{Logf: t.Logf}, startWorker(t), startWorker(t))
	defer coord.Close()

	root := obs.NewTrace("qfix")
	opts := partitionOpts()
	opts.Trace = root
	got, err := coord.Diagnose(d0, log, complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if !got.Resolved {
		t.Fatalf("distributed diagnosis unresolved: %+v", got.Stats)
	}

	// Span tree: well-nested, and the remote segments are visible —
	// one partition span per partition, each holding an attempt span
	// whose worker attribute names the address that solved it.
	if !root.WellNested(5 * time.Millisecond) {
		t.Fatalf("trace not well-nested:\n%s", root.Structure())
	}
	partitions, attempts := 0, 0
	root.Walk(func(sp *obs.Span, _ int) {
		switch {
		case strings.HasPrefix(sp.Name(), "partition["):
			partitions++
		case sp.Name() == "attempt":
			attempts++
			var worker, outcome any
			for _, a := range sp.Attrs() {
				switch a.Key {
				case "worker":
					worker = a.Value
				case "outcome":
					outcome = a.Value
				}
			}
			if w, ok := worker.(string); !ok || !strings.Contains(w, "127.0.0.1:") {
				t.Errorf("attempt span worker attr = %v, want a loopback address", worker)
			}
			if outcome == nil {
				t.Errorf("attempt span missing outcome attr")
			}
		}
	})
	if partitions != got.Stats.Partitions {
		t.Errorf("trace has %d partition spans, stats report %d partitions",
			partitions, got.Stats.Partitions)
	}
	if attempts < got.Stats.RemoteJobs {
		t.Errorf("trace has %d attempt spans, want >= %d remote jobs",
			attempts, got.Stats.RemoteJobs)
	}

	// Metrics: loopback workers run in this process, so the worker- and
	// coordinator-side counters land in the same default registry.
	wantJobs := int64(got.Stats.RemoteJobs)
	if d := obs.Default().Counter("qfix_worker_jobs_total", "").Value() - jobsBefore; d < wantJobs {
		t.Errorf("qfix_worker_jobs_total rose by %d, want >= %d", d, wantJobs)
	}
	if d := obs.Default().Counter("qfix_dist_jobs_total", "").Value() - distBefore; d < wantJobs {
		t.Errorf("qfix_dist_jobs_total rose by %d, want >= %d", d, wantJobs)
	}

	// Telemetry endpoint: the same mux qfix-worker mounts on -telemetry.
	ts := httptest.NewServer(obs.TelemetryMux(obs.Default()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	text := string(body)
	for _, name := range []string{
		"qfix_worker_jobs_total", "qfix_worker_job_seconds", "qfix_dist_jobs_total",
	} {
		if !strings.Contains(text, "# TYPE "+name) {
			t.Errorf("/metrics missing %s:\n%.1000s", name, text)
		}
	}
}
