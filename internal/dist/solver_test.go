package dist_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestDistributedSolverConfigMatchesLocal pins the solver options' ride
// over the wire: a loopback-TCP fleet running parallel in-solve search
// (and, separately, the presolve ablation) must return the repair
// byte-identical to plain local sequential diagnosis. This is the
// distributed leg of the solver-determinism property — SolverParallel
// is byte-invisible by construction, and NoPresolve preserves the
// feasible set, so neither may shift a partition's repair no matter
// which process solves it.
func TestDistributedSolverConfigMatchesLocal(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)
	sch := d0.Schema()

	coord := dist.Connect(dist.Config{Logf: t.Logf}, startWorker(t), startWorker(t))
	defer coord.Close()

	for _, tc := range []struct {
		name string
		mod  func(*core.Options)
	}{
		{"solver-parallel", func(o *core.Options) { o.SolverParallel = 4 }},
		{"no-presolve", func(o *core.Options) { o.NoPresolve = true }},
		{"both", func(o *core.Options) { o.SolverParallel = 4; o.NoPresolve = true }},
	} {
		opts := partitionOpts()
		tc.mod(&opts)
		got, err := coord.Diagnose(d0, log, complaints, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
			t.Errorf("%s: distributed repair differs from local sequential:\n got:\n%s\nwant:\n%s",
				tc.name, g, w)
		}
		if got.Stats.RemoteJobs != got.Stats.Partitions {
			t.Errorf("%s: RemoteJobs = %d, want every partition (%d) solved remotely",
				tc.name, got.Stats.RemoteJobs, got.Stats.Partitions)
		}
	}
}
