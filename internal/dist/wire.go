// Package dist distributes partition-parallel diagnosis across
// processes. The engine in internal/core already decomposes a diagnosis
// into independent partition subproblems; this package makes sharding a
// transport problem, as the ROADMAP puts it: a Coordinator runs planning
// locally, serializes each partition as a self-contained Job (initial
// state, log, complaint subset, pinned sub-Options), and dispatches jobs
// to workers over a versioned wire protocol. Results merge through the
// engine's existing conflict-detection and joint-fallback path, so the
// final repair is always replay-verified, and any job whose worker dies
// or times out mid-solve falls back to the local engine — distribution
// never loses an instance local diagnosis can solve.
//
// Three transports implement the Transport interface: InProc (the
// degenerate zero-network case, used by tests and as a harness for the
// codec round trip), TCP (newline-delimited JSON frames, one connection
// per job, deadline-bounded), and Mux (one persistent connection per
// worker carrying many concurrent jobs, results demultiplexed by job ID
// as they stream back).
package dist

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// WireVersion is the current protocol version; MinWireVersion is the
// oldest version this binary still speaks. A worker rejects jobs
// outside [MinWireVersion, WireVersion] and answers in the job's own
// dialect (the result echoes the job's version), so mixed fleets keep
// working across one protocol generation. Bump WireVersion on any
// incompatible change to the frame types below; raise MinWireVersion
// only when dropping a generation is acceptable.
//
// v2 added the D0/log digests (worker-side decode caching) and the
// cache-hit counters carried back in Result.Stats. v3 is the
// multiplexed persistent-connection protocol: a connection may carry
// any number of concurrent in-flight jobs, and the worker streams each
// result frame as its solve lands — possibly out of submission order,
// matched to its job by ID. The frame shapes are unchanged from v2;
// the version tags the connection discipline. A v3 coordinator that
// sees its first frame rejected by a v2 worker negotiates down and
// serves that worker one dialed connection per job, exactly as v2 did.
const (
	WireVersion    = 3
	MinWireVersion = 2
)

// Job is one partition subproblem on the wire. It is self-contained:
// the worker needs nothing but the job to solve it.
//
// D0Digest and LogDigest fingerprint the (identical) initial state and
// log that every partition job of one diagnosis carries: workers key an
// LRU of decoded state on them, so repeat jobs skip the decode and —
// via the worker's impact cache — the planning closure. Zero digests
// disable caching for the job; they are an optimization handle, never
// load-bearing for correctness (the full state still rides along).
type Job struct {
	Version   int    `json:"version"`
	ID        uint64 `json:"id"`
	D0Digest  uint64 `json:"d0_digest,omitempty"`
	LogDigest uint64 `json:"log_digest,omitempty"`
	// AttemptTTLNS, when nonzero, is the dispatching attempt's total
	// window (nanoseconds, relative — deliberately not an absolute
	// timestamp, so no cross-machine clock agreement is needed). The
	// server anchors it, on its own clock, at the moment the frame is
	// read off the connection: a job that then waits for a MaxInflight
	// slot past its window — its coordinator long gone — is refused
	// instead of solved as dead work, and a live one has its solve
	// budget clamped to what is left. Time spent BEFORE the read (in
	// socket buffers while the saturated worker isn't reading) is
	// uncounted by design — the blocking read loop is the backpressure
	// that keeps unread frames on the coordinator's side, bounded by
	// its write deadline. Advisory: correctness never depends on it,
	// and v2 workers ignore the field.
	AttemptTTLNS int64            `json:"attempt_ttl_ns,omitempty"`
	D0           wireTable        `json:"d0"`
	Log          []wireQuery      `json:"log"`
	Complaints   []core.Complaint `json:"complaints"`
	Options      wireOptions      `json:"options"`
}

// Result is a worker's answer. Err carries solver-level failures
// (malformed job, version mismatch); transport-level failures surface as
// Go errors from Transport.Do.
type Result struct {
	Version  int         `json:"version"`
	ID       uint64      `json:"id"`
	Err      string      `json:"err,omitempty"`
	Log      []wireQuery `json:"log,omitempty"`
	Changed  []int       `json:"changed,omitempty"`
	Distance float64     `json:"distance"`
	Resolved bool        `json:"resolved"`
	Stats    core.Stats  `json:"stats"`
}

// wireTable serializes a relation.Table, preserving tuple identities and
// the ID counter so replay on the worker allocates identical IDs.
type wireTable struct {
	Name   string           `json:"name"`
	Attrs  []string         `json:"attrs"`
	Key    string           `json:"key,omitempty"`
	Rows   []relation.Tuple `json:"rows"`
	NextID int64            `json:"next_id"`
}

func encodeTable(tb *relation.Table) wireTable {
	s := tb.Schema()
	key := ""
	if s.Key() >= 0 {
		key = s.Attr(s.Key())
	}
	w := wireTable{Name: s.Name(), Attrs: s.Attrs(), Key: key, NextID: tb.NextID()}
	tb.Rows(func(t relation.Tuple) { w.Rows = append(w.Rows, t.Clone()) })
	return w
}

func decodeTable(w wireTable) (*relation.Table, error) {
	s, err := relation.NewSchema(w.Name, w.Attrs, w.Key)
	if err != nil {
		return nil, err
	}
	return relation.NewTableFromRows(s, w.Rows, w.NextID)
}

// wireQuery serializes one query.Query. Kind selects which fields apply.
type wireQuery struct {
	Kind   string    `json:"kind"` // "update" | "insert" | "delete"
	Set    []wireSet `json:"set,omitempty"`
	Where  *wireCond `json:"where,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

type wireSet struct {
	Attr int      `json:"attr"`
	Expr wireExpr `json:"expr"`
}

type wireExpr struct {
	Terms []query.Term `json:"terms,omitempty"`
	Const float64      `json:"const"`
}

func encodeExpr(e query.LinExpr) wireExpr {
	return wireExpr{Terms: append([]query.Term(nil), e.Terms...), Const: e.Const}
}

func decodeExpr(w wireExpr) query.LinExpr {
	return query.NewLinExpr(w.Const, w.Terms...)
}

// wireCond serializes the WHERE-condition tree.
type wireCond struct {
	Op   string     `json:"op"` // "true" | "pred" | "and" | "or"
	LHS  *wireExpr  `json:"lhs,omitempty"`
	Cmp  string     `json:"cmp,omitempty"` // "=" | "<=" | ">=" | "<" | ">"
	RHS  float64    `json:"rhs,omitempty"`
	Kids []wireCond `json:"kids,omitempty"`
}

func encodeCond(c query.Cond) (*wireCond, error) {
	switch v := c.(type) {
	case query.True:
		return &wireCond{Op: "true"}, nil
	case *query.Pred:
		lhs := encodeExpr(v.LHS)
		return &wireCond{Op: "pred", LHS: &lhs, Cmp: v.Op.String(), RHS: v.RHS}, nil
	case *query.And:
		kids, err := encodeConds(v.Kids)
		if err != nil {
			return nil, err
		}
		return &wireCond{Op: "and", Kids: kids}, nil
	case *query.Or:
		kids, err := encodeConds(v.Kids)
		if err != nil {
			return nil, err
		}
		return &wireCond{Op: "or", Kids: kids}, nil
	}
	return nil, fmt.Errorf("dist: unsupported condition type %T", c)
}

func encodeConds(kids []query.Cond) ([]wireCond, error) {
	out := make([]wireCond, len(kids))
	for i, k := range kids {
		w, err := encodeCond(k)
		if err != nil {
			return nil, err
		}
		out[i] = *w
	}
	return out, nil
}

func decodeCond(w *wireCond) (query.Cond, error) {
	if w == nil {
		return query.True{}, nil
	}
	switch w.Op {
	case "true":
		return query.True{}, nil
	case "pred":
		if w.LHS == nil {
			return nil, fmt.Errorf("dist: predicate without LHS")
		}
		op, err := decodeCmp(w.Cmp)
		if err != nil {
			return nil, err
		}
		return query.NewPred(decodeExpr(*w.LHS), op, w.RHS), nil
	case "and":
		kids, err := decodeConds(w.Kids)
		if err != nil {
			return nil, err
		}
		return query.NewAnd(kids...), nil
	case "or":
		kids, err := decodeConds(w.Kids)
		if err != nil {
			return nil, err
		}
		return query.NewOr(kids...), nil
	}
	return nil, fmt.Errorf("dist: unknown condition op %q", w.Op)
}

func decodeConds(ws []wireCond) ([]query.Cond, error) {
	out := make([]query.Cond, len(ws))
	for i := range ws {
		k, err := decodeCond(&ws[i])
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}

func decodeCmp(s string) (query.CmpOp, error) {
	for _, op := range []query.CmpOp{query.EQ, query.LE, query.GE, query.LT, query.GT} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown comparison operator %q", s)
}

func encodeQuery(q query.Query) (wireQuery, error) {
	switch v := q.(type) {
	case *query.Update:
		set := make([]wireSet, len(v.Set))
		for i, sc := range v.Set {
			set[i] = wireSet{Attr: sc.Attr, Expr: encodeExpr(sc.Expr)}
		}
		where, err := encodeCond(v.Where)
		if err != nil {
			return wireQuery{}, err
		}
		return wireQuery{Kind: "update", Set: set, Where: where}, nil
	case *query.Insert:
		return wireQuery{Kind: "insert", Values: append([]float64(nil), v.Values...)}, nil
	case *query.Delete:
		where, err := encodeCond(v.Where)
		if err != nil {
			return wireQuery{}, err
		}
		return wireQuery{Kind: "delete", Where: where}, nil
	}
	return wireQuery{}, fmt.Errorf("dist: unsupported query type %T", q)
}

func decodeQuery(w wireQuery) (query.Query, error) {
	switch w.Kind {
	case "update":
		set := make([]query.SetClause, len(w.Set))
		for i, sc := range w.Set {
			set[i] = query.SetClause{Attr: sc.Attr, Expr: decodeExpr(sc.Expr)}
		}
		where, err := decodeCond(w.Where)
		if err != nil {
			return nil, err
		}
		return query.NewUpdate(set, where), nil
	case "insert":
		return query.NewInsert(w.Values...), nil
	case "delete":
		where, err := decodeCond(w.Where)
		if err != nil {
			return nil, err
		}
		return query.NewDelete(where), nil
	}
	return nil, fmt.Errorf("dist: unknown query kind %q", w.Kind)
}

func encodeLog(log []query.Query) ([]wireQuery, error) {
	out := make([]wireQuery, len(log))
	for i, q := range log {
		w, err := encodeQuery(q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

func decodeLog(ws []wireQuery) ([]query.Query, error) {
	out := make([]query.Query, len(ws))
	for i, w := range ws {
		q, err := decodeQuery(w)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}

// wireOptions is the serializable subset of core.Options: everything a
// worker needs to reproduce the sub-diagnosis, excluding process-local
// concerns (pool sizes, solver hooks, worker lists — the worker always
// solves its job jointly, single-threaded).
type wireOptions struct {
	Algorithm        int     `json:"algorithm"`
	K                int     `json:"k"`
	TupleSlicing     bool    `json:"tuple_slicing"`
	QuerySlicing     bool    `json:"query_slicing"`
	AttrSlicing      bool    `json:"attr_slicing"`
	SingleCorruption bool    `json:"single_corruption"`
	SkipRefine       bool    `json:"skip_refine"`
	Candidates       []int   `json:"candidates,omitempty"`
	TimeLimitNS      int64   `json:"time_limit_ns"`
	TotalTimeLimitNS int64   `json:"total_time_limit_ns"`
	MaxNodes         int     `json:"max_nodes"`
	DomainBound      float64 `json:"domain_bound"`
	Eps              float64 `json:"eps"`
	Normalize        bool    `json:"normalize"`
	NoFolding        bool    `json:"no_folding"`
	NoParamWindows   bool    `json:"no_param_windows"`
	ColdLP           bool    `json:"cold_lp"`
	// WarmStart rides the wire as a plain flag (additive, so v2 workers
	// ignore it and older coordinators simply never set it); the
	// worker's process-local SolutionCache supplies the actual seeds,
	// exactly as its impact cache supplies closures.
	WarmStart bool `json:"warm_start,omitempty"`
	// SolverParallel and NoPresolve configure the worker's MILP solver
	// to match the coordinator's (additive fields, same compatibility
	// story as WarmStart). -1 means one LP worker per worker-side CPU;
	// repairs are byte-identical at any setting, so coordinators and
	// workers may disagree on parallelism without disagreeing on output.
	SolverParallel int  `json:"solver_parallel,omitempty"`
	NoPresolve     bool `json:"no_presolve,omitempty"`
}

func encodeOptions(o core.Options) wireOptions {
	return wireOptions{
		Algorithm:        int(o.Algorithm),
		K:                o.K,
		TupleSlicing:     o.TupleSlicing,
		QuerySlicing:     o.QuerySlicing,
		AttrSlicing:      o.AttrSlicing,
		SingleCorruption: o.SingleCorruption,
		SkipRefine:       o.SkipRefine,
		Candidates:       append([]int(nil), o.Candidates...),
		TimeLimitNS:      int64(o.TimeLimit),
		TotalTimeLimitNS: int64(o.TotalTimeLimit),
		MaxNodes:         o.MaxNodes,
		DomainBound:      o.DomainBound,
		Eps:              o.Eps,
		Normalize:        o.Normalize,
		NoFolding:        o.NoFolding,
		NoParamWindows:   o.NoParamWindows,
		ColdLP:           o.ColdLP,
		WarmStart:        o.WarmStart,
		SolverParallel:   o.SolverParallel,
		NoPresolve:       o.NoPresolve,
	}
}

func decodeOptions(w wireOptions) core.Options {
	return core.Options{
		Algorithm:        core.Algorithm(w.Algorithm),
		K:                w.K,
		TupleSlicing:     w.TupleSlicing,
		QuerySlicing:     w.QuerySlicing,
		AttrSlicing:      w.AttrSlicing,
		SingleCorruption: w.SingleCorruption,
		SkipRefine:       w.SkipRefine,
		Candidates:       append([]int(nil), w.Candidates...),
		TimeLimit:        time.Duration(w.TimeLimitNS),
		TotalTimeLimit:   time.Duration(w.TotalTimeLimitNS),
		MaxNodes:         w.MaxNodes,
		DomainBound:      w.DomainBound,
		Eps:              w.Eps,
		Normalize:        w.Normalize,
		NoFolding:        w.NoFolding,
		NoParamWindows:   w.NoParamWindows,
		ColdLP:           w.ColdLP,
		WarmStart:        w.WarmStart,
		SolverParallel:   w.SolverParallel,
		NoPresolve:       w.NoPresolve,
	}
}

// EncodeJob packages a partition subproblem for the wire.
func EncodeJob(id uint64, sub core.Subproblem) (*Job, error) {
	log, err := encodeLog(sub.Log)
	if err != nil {
		return nil, err
	}
	return &Job{
		Version:    WireVersion,
		ID:         id,
		D0:         encodeTable(sub.D0),
		Log:        log,
		Complaints: sub.Complaints,
		Options:    encodeOptions(sub.Options),
	}, nil
}

// DecodeJob reconstructs the subproblem, rejecting incompatible protocol
// versions (anything outside [MinWireVersion, WireVersion]).
func DecodeJob(j *Job) (core.Subproblem, error) {
	if j.Version < MinWireVersion || j.Version > WireVersion {
		return core.Subproblem{}, fmt.Errorf(
			"dist: protocol version mismatch: job v%d, worker speaks v%d-v%d",
			j.Version, MinWireVersion, WireVersion)
	}
	d0, err := decodeTable(j.D0)
	if err != nil {
		return core.Subproblem{}, err
	}
	log, err := decodeLog(j.Log)
	if err != nil {
		return core.Subproblem{}, err
	}
	return core.Subproblem{
		D0:         d0,
		Log:        log,
		Complaints: j.Complaints,
		Options:    decodeOptions(j.Options),
	}, nil
}

// EncodeResult packages a solved repair (or a solver error) for the wire.
func EncodeResult(id uint64, rep *core.Repair, solveErr error) (*Result, error) {
	res := &Result{Version: WireVersion, ID: id}
	if solveErr != nil {
		res.Err = solveErr.Error()
		return res, nil
	}
	log, err := encodeLog(rep.Log)
	if err != nil {
		return nil, err
	}
	res.Log = log
	res.Changed = append([]int(nil), rep.Changed...)
	res.Distance = rep.Distance
	res.Resolved = rep.Resolved
	res.Stats = rep.Stats
	return res, nil
}

// DecodeResult reconstructs the repair, rejecting incompatible protocol
// versions and propagating worker-side solver errors. Results one
// generation back (MinWireVersion) are accepted: a v2 worker answering
// the per-job compatibility path is a valid peer, not skew.
func DecodeResult(res *Result) (*core.Repair, error) {
	if res.Version < MinWireVersion || res.Version > WireVersion {
		return nil, fmt.Errorf(
			"dist: protocol version mismatch: result v%d, coordinator speaks v%d-v%d",
			res.Version, MinWireVersion, WireVersion)
	}
	if res.Err != "" {
		return nil, fmt.Errorf("dist: worker: %s", res.Err)
	}
	log, err := decodeLog(res.Log)
	if err != nil {
		return nil, err
	}
	return &core.Repair{
		Log:      log,
		Changed:  append([]int(nil), res.Changed...),
		Distance: res.Distance,
		Resolved: res.Resolved,
		Stats:    res.Stats,
	}, nil
}
