package dist_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/dist"
)

// startWorkerWithCache serves diagnosis jobs with an explicit decode
// cache size (negative disables caching).
func startWorkerWithCache(t *testing.T, size int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &dist.Server{CacheSize: size, Logf: t.Logf}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// Regression (coordinator budget drain): with a TotalTimeLimit set, a
// dispatch attempt used to wait out the *entire* remaining budget on a
// hung worker, so the promised retry on a distinct worker never ran and
// the local fallback started broke. Each attempt must now be capped at
// min(JobTimeout, remaining budget + slack): with one hung and one
// healthy worker, every job reaches the healthy worker after at most
// one JobTimeout, well inside the budget.
func TestDispatchBudgetCappedOnHungWorker(t *testing.T) {
	d0, log, complaints := benchInstance(t, 2)
	want := localReference(t, d0, log, complaints)

	// JobTimeout is generous against race-detector-slowed solves yet a
	// tiny fraction of the budget the old code would wait per attempt.
	coord := dist.Connect(dist.Config{JobTimeout: 10 * time.Second, Retries: 1, Logf: t.Logf},
		startBlackHoleWorker(t), startWorker(t))
	defer coord.Close()

	opts := partitionOpts()
	opts.TotalTimeLimit = 5 * time.Minute // the budget a hung worker used to drain per attempt
	start := time.Now()
	got, err := coord.Diagnose(d0, log, complaints, opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resolved {
		t.Fatalf("diagnosis with a hung worker unresolved: %+v", got.Stats)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("hung-worker repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if got.Stats.RemoteJobs != got.Stats.Partitions {
		t.Errorf("RemoteJobs = %d, want %d (retry must reach the healthy worker)",
			got.Stats.RemoteJobs, got.Stats.Partitions)
	}
	// Generous bound: 2 jobs × (one 10s hung attempt + solve + slack)
	// stays under a minute; the uncapped behavior needed over 5 minutes
	// per hung attempt.
	if elapsed > 2*time.Minute {
		t.Errorf("diagnosis took %v; the hung worker drained the budget", elapsed)
	}
}

// E2E: repeat jobs hit the worker's decode cache — within one run
// (every partition ships the identical D0/log) and across runs — while
// the repairs stay byte-identical to the uncached local reference.
func TestWorkerCacheRepeatJobsByteIdentical(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)
	sch := d0.Schema()

	// One worker, so all four partition jobs land on the same cache.
	coord := dist.Connect(dist.Config{Logf: t.Logf}, startWorker(t))
	defer coord.Close()

	first, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, first); w != g {
		t.Errorf("first distributed repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if first.Stats.WorkerCacheHits == 0 {
		t.Errorf("first run: WorkerCacheHits = 0, want repeat jobs of the run to hit " +
			"(every partition carries the same D0/log)")
	}
	if first.Stats.WorkerCacheHits >= first.Stats.Partitions {
		t.Errorf("first run: WorkerCacheHits = %d of %d jobs; the first job cannot hit a cold cache",
			first.Stats.WorkerCacheHits, first.Stats.Partitions)
	}

	second, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, second); w != g {
		t.Errorf("cached repeat repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
	if second.Stats.WorkerCacheHits != second.Stats.Partitions {
		t.Errorf("repeat run: WorkerCacheHits = %d, want every job (%d) to hit",
			second.Stats.WorkerCacheHits, second.Stats.Partitions)
	}
	if second.Stats.ImpactCacheHits == 0 {
		t.Error("repeat run: worker impact cache never hit; jobs re-planned from scratch")
	}
	if second.Stats.RemoteJobs != second.Stats.Partitions {
		t.Errorf("repeat run: RemoteJobs = %d, want %d", second.Stats.RemoteJobs, second.Stats.Partitions)
	}
}

// A worker with caching disabled must behave exactly like the v1 path:
// no hits, identical repairs.
func TestWorkerCacheDisabled(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	addr := startWorkerWithCache(t, -1)
	coord := dist.Connect(dist.Config{Logf: t.Logf}, addr)
	defer coord.Close()
	for run := 0; run < 2; run++ {
		got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.WorkerCacheHits != 0 {
			t.Errorf("run %d: WorkerCacheHits = %d with caching disabled", run, got.Stats.WorkerCacheHits)
		}
		sch := d0.Schema()
		if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
			t.Errorf("run %d: cacheless repair differs from local:\n got:\n%s\nwant:\n%s", run, g, w)
		}
	}
}
