package dist_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestDistributedWarmLoopbackByteIdentical runs a warm-started fleet
// diagnosis twice against one loopback worker. The worker's process
// caches (decode + impact + solution) carry across the runs, so the
// repeat run must admit warm seeds on the worker side — and both runs
// must stay byte-identical to cold local partitioned diagnosis.
func TestDistributedWarmLoopbackByteIdentical(t *testing.T) {
	d0, log, complaints := benchInstance(t, 4)
	want := localReference(t, d0, log, complaints)

	opts := partitionOpts()
	opts.WarmStart = true

	// One worker, so every partition job of both runs lands on the same
	// process cache.
	coord := dist.Connect(dist.Config{Logf: t.Logf}, startWorker(t))
	defer coord.Close()

	sch := d0.Schema()
	first, err := coord.Diagnose(d0, log, complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := coord.Diagnose(d0, log, complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	wf := repairFingerprint(sch, want)
	for name, rep := range map[string]*core.Repair{"first": first, "repeat": second} {
		if got := repairFingerprint(sch, rep); got != wf {
			t.Errorf("%s warm distributed repair differs from cold local:\n got:\n%s\nwant:\n%s",
				name, got, wf)
		}
	}
	if second.Stats.RemoteJobs != second.Stats.Partitions {
		t.Fatalf("repeat run: RemoteJobs = %d, want %d (healthy worker solves everything)",
			second.Stats.RemoteJobs, second.Stats.Partitions)
	}
	if second.Stats.WarmSeeds == 0 {
		t.Errorf("repeat run admitted no worker-side warm seeds: %+v", second.Stats)
	}
	if second.Stats.Nodes > first.Stats.Nodes {
		t.Errorf("repeat run explored more nodes (%d) than the first (%d)",
			second.Stats.Nodes, first.Stats.Nodes)
	}
}

// Warm starts must stay inert on the wire for a fleet that never opts
// in: the flag is additive, and a cold fleet run equals the local cold
// reference (this is the existing e2e guarantee, re-pinned here against
// the new wire field).
func TestDistributedColdUnaffectedByWarmField(t *testing.T) {
	d0, log, complaints := benchInstance(t, 3)
	want := localReference(t, d0, log, complaints)

	coord := dist.Connect(dist.Config{Logf: t.Logf}, startWorker(t))
	defer coord.Close()
	got, err := coord.Diagnose(d0, log, complaints, partitionOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.WarmSeeds != 0 {
		t.Errorf("cold fleet run reported %d warm seeds", got.Stats.WarmSeeds)
	}
	sch := d0.Schema()
	if w, g := repairFingerprint(sch, want), repairFingerprint(sch, got); w != g {
		t.Errorf("cold distributed repair differs from local:\n got:\n%s\nwant:\n%s", g, w)
	}
}
