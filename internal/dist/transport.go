package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Transport delivers one job to a solver and returns its result. A
// transport error (dial failure, deadline, broken frame) means the
// worker's answer is unknown; the Coordinator responds by retrying on
// another worker and, ultimately, solving locally. Implementations must
// be safe for concurrent use: the engine dispatches partitions from
// multiple goroutines.
type Transport interface {
	Do(ctx context.Context, job *Job) (*Result, error)
	// Addr names the endpoint for logs and stats.
	Addr() string
	Close() error
}

// InProc is the in-process transport: jobs round-trip through the wire
// codec (so tests exercise exactly what the network path serializes) and
// solve on the local engine. It is the degenerate zero-worker case — a
// coordinator over only InProc transports is semantically identical to
// local partitioned diagnosis.
type InProc struct{}

// Do implements Transport. The context is honored exactly as the
// network path honors its connection deadline: an expired or canceled
// context refuses the job as a transport error, and a live deadline
// clamps the solve budget (solveJob) so an in-process attempt cannot
// outlive its dispatch share the way a hung connection would be cut
// off — previously InProc ignored ctx entirely, solving to completion
// past its attemptTimeout and voiding the coordinator's budget caps.
func (InProc) Do(ctx context.Context, job *Job) (*Result, error) {
	// A dead-on-arrival attempt is refused before the codec round trip,
	// mirroring the network path, which fails the dial before encoding.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dist: job %d on inproc: %w", job.ID, err)
	}
	// Mirror the network path byte-for-byte: marshal, unmarshal, solve,
	// and marshal the result back.
	raw, err := json.Marshal(job)
	if err != nil {
		return nil, err
	}
	var decoded Job
	if err := json.Unmarshal(raw, &decoded); err != nil {
		return nil, err
	}
	res := solveJob(ctx, &decoded, nil)
	rawRes, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	var out Result
	if err := json.Unmarshal(rawRes, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Addr implements Transport.
func (InProc) Addr() string { return "inproc" }

// Close implements Transport.
func (InProc) Close() error { return nil }

// resultVersion picks the version a result frame answers with: the
// job's own dialect, so every sender — including one older than
// MinWireVersion, whose job can only be rejected — can decode its
// answer. Only frames from the future are capped at our own version
// (we cannot speak a dialect we don't know; a newer sender accepts
// ours, that being how it detects a downlevel worker).
func resultVersion(jobVersion int) int {
	if jobVersion > WireVersion {
		return WireVersion
	}
	return jobVersion
}

// clampBudget bounds the subproblem's total solve budget by the
// context deadline (for the server path, the job's attempt TTL
// anchored at frame arrival; for InProc, the dispatch attempt's own
// context), so a solve honors its dispatch share exactly as a remote
// worker is cut off by its connection deadline — however long the job
// queued first. false means the attempt is already dead and must be
// refused without solving. o may be nil for a pure liveness check
// before the job is decoded.
func clampBudget(ctx context.Context, o *core.Options) bool {
	if ctx.Err() != nil {
		return false
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	remain := time.Until(dl)
	if remain <= 0 {
		return false
	}
	if o != nil && (o.TotalTimeLimit <= 0 || o.TotalTimeLimit > remain) {
		o.TotalTimeLimit = remain
	}
	return true
}

// solveJob is the worker-side job handler shared by the in-process
// transport and the network server: decode (rejecting version
// mismatches), solve on the local engine bounded by ctx, encode. With a
// cache, jobs carrying digests reuse the decoded D0/log of earlier
// same-digest jobs — skipping the decode — and solve with the cache's
// impact closure installed — skipping the FullImpact pass of planning;
// the reuse is reported back through Stats.WorkerCacheHits. InProc
// stays cacheless so it remains the engine-equivalent reference path.
func solveJob(ctx context.Context, job *Job, wc *workerCache) *Result {
	v := resultVersion(job.Version)
	// Dead-on-arrival refusals come before the expensive decode: a job
	// that sat in the admission queue past its attempt window (or whose
	// context died) is refused for free, not after burning the D0/log
	// decode inside its solve slot.
	if !clampBudget(ctx, nil) {
		return &Result{Version: v, ID: job.ID, Err: budgetDeadErr(ctx).Error()}
	}
	key := wcKey{d0: job.D0Digest, log: job.LogDigest}
	cached := false
	var sub core.Subproblem
	if wc != nil && key.d0 != 0 && key.log != 0 &&
		job.Version >= MinWireVersion && job.Version <= WireVersion {
		if d0, lg, ok := wc.lookup(key, len(job.D0.Rows), len(job.Log)); ok {
			sub = core.Subproblem{D0: d0, Log: lg,
				Complaints: job.Complaints, Options: decodeOptions(job.Options)}
			cached = true
			mWorkerCacheHits.Inc()
		}
	}
	if !cached {
		var err error
		sub, err = DecodeJob(job)
		if err != nil {
			return &Result{Version: v, ID: job.ID, Err: err.Error()}
		}
		if wc != nil && key.d0 != 0 && key.log != 0 {
			mWorkerCacheMisses.Inc()
			wc.store(key, sub.D0, sub.Log)
		}
	}
	if wc != nil && sub.Options.ImpactCache == nil {
		sub.Options.ImpactCache = wc.impact
	}
	if wc != nil && sub.Options.WarmStart && sub.Options.SolutionCache == nil {
		sub.Options.SolutionCache = wc.solutions
	}
	// Re-check now that decoding is done (the window may have closed
	// during a large decode) and clamp the solve budget to what is
	// left, so a live job solves on exactly its attempt share however
	// long it queued.
	if !clampBudget(ctx, &sub.Options) {
		return &Result{Version: v, ID: job.ID, Err: budgetDeadErr(ctx).Error()}
	}
	rep, err := sub.SolveLocal()
	if err == nil && cached {
		rep.Stats.WorkerCacheHits = 1
	}
	res, encErr := EncodeResult(job.ID, rep, err)
	if encErr != nil {
		return &Result{Version: v, ID: job.ID, Err: encErr.Error()}
	}
	res.Version = v
	return res
}

// budgetDeadErr names why clampBudget refused an attempt: the caller's
// context error when it has one, the generic deadline error when only
// the job's advisory deadline had passed.
func budgetDeadErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// legacyJob shallow-copies the job restamped at the version a
// previous-generation worker accepts. The D0/log/complaint slices are
// shared read-only across jobs, so the copy is cheap and safe.
func legacyJob(job *Job) *Job {
	j := *job
	j.Version = MinWireVersion
	return &j
}

// versionRejected reports that a worker refused the job because it
// speaks an older protocol WE CAN STILL SERVE: the error result is
// stamped with the worker's own (lower) version. Current-generation
// workers echo the job's version on every result, including genuine
// solve errors, so only a downlevel worker can produce this shape. A
// worker below MinWireVersion is NOT negotiation material — restamping
// at MinWireVersion would be rejected just the same — so its rejection
// is left to fail the attempt outright instead of arming a permanently
// futile legacy mode.
func versionRejected(job *Job, res *Result) bool {
	return res.Err != "" &&
		res.Version >= MinWireVersion && res.Version < WireVersion &&
		job.Version > MinWireVersion
}

// TCPTransport ships jobs to one worker address, one connection per job,
// framed as newline-delimited JSON. Per-job deadlines come from the
// context; a worker that dies mid-solve surfaces as a read error. A
// worker that turns out to speak the previous protocol generation is
// negotiated down on its first rejection and served v2 frames from then
// on — the rejected job is retried immediately so the attempt is not
// lost.
type TCPTransport struct {
	addr   string
	dialer net.Dialer
	legacy atomic.Bool // worker negotiated down to MinWireVersion
}

// Dial returns a transport for the worker at addr ("host:port"). No
// connection is made until the first job.
func Dial(addr string) *TCPTransport {
	return &TCPTransport{addr: addr}
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.addr }

// Close implements Transport. Connections are per-job, so there is
// nothing to tear down.
func (t *TCPTransport) Close() error { return nil }

// Do implements Transport.
func (t *TCPTransport) Do(ctx context.Context, job *Job) (*Result, error) {
	if t.legacy.Load() {
		job = legacyJob(job)
	}
	res, err := t.do(ctx, job)
	if err == nil && versionRejected(job, res) {
		t.legacy.Store(true)
		return t.do(ctx, legacyJob(job))
	}
	return res, err
}

// do runs one dial-solve-read round trip.
func (t *TCPTransport) do(ctx context.Context, job *Job) (*Result, error) {
	conn, err := t.dialer.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", t.addr, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	// Close the connection when the context is canceled so a hung worker
	// cannot outlive its job budget.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := json.NewEncoder(conn).Encode(job); err != nil {
		return nil, fmt.Errorf("dist: send job to %s: %w", t.addr, err)
	}
	var res Result
	if err := json.NewDecoder(conn).Decode(&res); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("dist: job %d on %s: %w", job.ID, t.addr, ctxErr)
		}
		return nil, fmt.Errorf("dist: read result from %s: %w", t.addr, err)
	}
	return &res, nil
}

var (
	_ Transport = InProc{}
	_ Transport = (*TCPTransport)(nil)
)
