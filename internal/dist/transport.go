package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"

	"repro/internal/core"
)

// Transport delivers one job to a solver and returns its result. A
// transport error (dial failure, deadline, broken frame) means the
// worker's answer is unknown; the Coordinator responds by retrying on
// another worker and, ultimately, solving locally. Implementations must
// be safe for concurrent use: the engine dispatches partitions from
// multiple goroutines.
type Transport interface {
	Do(ctx context.Context, job *Job) (*Result, error)
	// Addr names the endpoint for logs and stats.
	Addr() string
	Close() error
}

// InProc is the in-process transport: jobs round-trip through the wire
// codec (so tests exercise exactly what the network path serializes) and
// solve on the local engine. It is the degenerate zero-worker case — a
// coordinator over only InProc transports is semantically identical to
// local partitioned diagnosis.
type InProc struct{}

// Do implements Transport.
func (InProc) Do(ctx context.Context, job *Job) (*Result, error) {
	// Mirror the network path byte-for-byte: marshal, unmarshal, solve,
	// and marshal the result back.
	raw, err := json.Marshal(job)
	if err != nil {
		return nil, err
	}
	var decoded Job
	if err := json.Unmarshal(raw, &decoded); err != nil {
		return nil, err
	}
	res := solveJob(&decoded, nil)
	rawRes, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	var out Result
	if err := json.Unmarshal(rawRes, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Addr implements Transport.
func (InProc) Addr() string { return "inproc" }

// Close implements Transport.
func (InProc) Close() error { return nil }

// solveJob is the worker-side job handler shared by the in-process
// transport and the network server: decode (rejecting version
// mismatches), solve on the local engine, encode. With a cache, jobs
// carrying digests reuse the decoded D0/log of earlier same-digest jobs
// — skipping the decode — and solve with the cache's impact closure
// installed — skipping the FullImpact pass of planning; the reuse is
// reported back through Stats.WorkerCacheHits. InProc stays cacheless
// so it remains the engine-equivalent reference path.
func solveJob(job *Job, wc *workerCache) *Result {
	key := wcKey{d0: job.D0Digest, log: job.LogDigest}
	cached := false
	var sub core.Subproblem
	if wc != nil && key.d0 != 0 && key.log != 0 && job.Version == WireVersion {
		if d0, lg, ok := wc.lookup(key, len(job.D0.Rows), len(job.Log)); ok {
			sub = core.Subproblem{D0: d0, Log: lg,
				Complaints: job.Complaints, Options: decodeOptions(job.Options)}
			cached = true
		}
	}
	if !cached {
		var err error
		sub, err = DecodeJob(job)
		if err != nil {
			return &Result{Version: WireVersion, ID: job.ID, Err: err.Error()}
		}
		if wc != nil && key.d0 != 0 && key.log != 0 {
			wc.store(key, sub.D0, sub.Log)
		}
	}
	if wc != nil && sub.Options.ImpactCache == nil {
		sub.Options.ImpactCache = wc.impact
	}
	rep, err := sub.SolveLocal()
	if err == nil && cached {
		rep.Stats.WorkerCacheHits = 1
	}
	res, encErr := EncodeResult(job.ID, rep, err)
	if encErr != nil {
		return &Result{Version: WireVersion, ID: job.ID, Err: encErr.Error()}
	}
	return res
}

// TCPTransport ships jobs to one worker address, one connection per job,
// framed as newline-delimited JSON. Per-job deadlines come from the
// context; a worker that dies mid-solve surfaces as a read error.
type TCPTransport struct {
	addr   string
	dialer net.Dialer
}

// Dial returns a transport for the worker at addr ("host:port"). No
// connection is made until the first job.
func Dial(addr string) *TCPTransport {
	return &TCPTransport{addr: addr}
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.addr }

// Close implements Transport. Connections are per-job, so there is
// nothing to tear down.
func (t *TCPTransport) Close() error { return nil }

// Do implements Transport.
func (t *TCPTransport) Do(ctx context.Context, job *Job) (*Result, error) {
	conn, err := t.dialer.DialContext(ctx, "tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", t.addr, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	// Close the connection when the context is canceled so a hung worker
	// cannot outlive its job budget.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := json.NewEncoder(conn).Encode(job); err != nil {
		return nil, fmt.Errorf("dist: send job to %s: %w", t.addr, err)
	}
	var res Result
	if err := json.NewDecoder(conn).Decode(&res); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("dist: job %d on %s: %w", job.ID, t.addr, ctxErr)
		}
		return nil, fmt.Errorf("dist: read result from %s: %w", t.addr, err)
	}
	return &res, nil
}

var (
	_ Transport = InProc{}
	_ Transport = (*TCPTransport)(nil)
)
