package dist

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// lateConnListener reproduces the Accept/Close interleaving
// deterministically: its Accept blocks holding a ready connection until
// the test releases it, modeling a connection the accept loop had
// already pulled off the OS queue when Close ran. The second Accept
// reports the listener closed.
type lateConnListener struct {
	accepting chan struct{} // closed when Accept is first entered
	release   chan struct{} // closed by the test after Server.Close returns
	mu        sync.Mutex
	conn      net.Conn
	once      sync.Once
}

func (l *lateConnListener) Accept() (net.Conn, error) {
	l.once.Do(func() { close(l.accepting) })
	<-l.release
	l.mu.Lock()
	c := l.conn
	l.conn = nil
	l.mu.Unlock()
	if c == nil {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (l *lateConnListener) Close() error   { return nil }
func (l *lateConnListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// TestServerCloseClosesLateAcceptedConn is the Close teardown-race
// regression: a connection returned by Accept concurrently with Close
// used to be registered in s.conns after Close's teardown iteration and
// stayed open (and served!) forever. Registration now shares the
// critical section with the shutdown check, so the late connection is
// closed immediately.
func TestServerCloseClosesLateAcceptedConn(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	l := &lateConnListener{
		accepting: make(chan struct{}),
		release:   make(chan struct{}),
		conn:      server,
	}
	srv := &Server{}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	<-l.accepting // Serve is inside Accept, "holding" the connection

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(l.release) // now Accept delivers the connection Close never saw

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}

	// The late connection must have been closed, not handed to a live
	// handler: its peer sees EOF instead of a blocked read.
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("late-accepted connection still open after Close: read err = %v, want EOF", err)
	}
}

// TestServerSolveSemServerWide pins the MaxInflight contract: one
// shared slot pool for the whole server (every connection draws from
// it), sized MaxInflight, GOMAXPROCS when unset, serial when negative.
func TestServerSolveSemServerWide(t *testing.T) {
	s := &Server{MaxInflight: 3}
	sem := s.solveSem()
	if cap(sem) != 3 {
		t.Errorf("cap(sem) = %d, want 3", cap(sem))
	}
	if s.solveSem() != sem {
		t.Error("second connection got a different slot pool; the bound must be server-wide")
	}
	if got := cap((&Server{MaxInflight: -1}).solveSem()); got != 1 {
		t.Errorf("negative MaxInflight: cap = %d, want 1 (serial)", got)
	}
	if got := cap((&Server{}).solveSem()); got < 1 {
		t.Errorf("default MaxInflight: cap = %d, want >= 1", got)
	}
}

// TestServerCloseAcceptRace hammers the same window under the race
// detector: clients dial while the server shuts down. Run with -race
// (CI does); without the registration fix the conns-map access from
// Serve races Close's teardown iteration.
func TestServerCloseAcceptRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{}
		serveDone := make(chan struct{})
		go func() { srv.Serve(l); close(serveDone) }()

		var wg sync.WaitGroup
		stop := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					return
				}
				c.Close()
			}
		}()

		time.Sleep(time.Millisecond)
		srv.Close()
		close(stop)
		wg.Wait()
		<-serveDone
	}
}
