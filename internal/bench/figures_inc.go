package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/workload"
)

// incVariants are the slicing combinations compared in Figure 7.
func incVariants() []struct {
	name string
	opts core.Options
} {
	return []struct {
		name string
		opts core.Options
	}{
		{"inc1-tuple", core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}},
		{"inc1-tuple+query", core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true,
			QuerySlicing: true, SingleCorruption: true}},
		{"inc1-tuple+attr", core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true,
			AttrSlicing: true}},
		{"inc1-all", core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true,
			QuerySlicing: true, AttrSlicing: true, SingleCorruption: true}},
	}
}

// Fig7Attrs reproduces Figure 7a: repair latency as the table widens;
// query and attribute slicing pay off on wide tables.
func (r *Runner) Fig7Attrs() (*Table, error) {
	var nd, nq int
	var attrs []int
	switch r.Scale {
	case Quick:
		nd, nq, attrs = 20, 10, []int{5, 15}
	case Large:
		nd, nq, attrs = 50, 40, []int{10, 25, 50, 100}
	default:
		nd, nq, attrs = 40, 25, []int{10, 25, 50}
	}
	t := &Table{ID: "fig7a", Title: "number of attributes vs time",
		XLabel:  "Na",
		Caption: fmt.Sprintf("ND=%d Nq=%d; single corruption mid-log", nd, nq)}
	for _, na := range attrs {
		for _, v := range incVariants() {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: na, Nq: nq, Vd: 200, Range: 30,
					Seed: r.Seed + int64(rep)*191 + int64(na),
				})
				in, err := w.MakeInstance(nq / 2)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, v.opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: v.name, X: fmt.Sprint(na),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig7a %s Na=%d: %.1fms", v.name, na, ms)
		}
	}
	return t, nil
}

// Fig7DBSize reproduces Figure 7b: database size on a wide table, with
// query selectivity shrunk in proportion so the complaint count stays
// fixed.
func (r *Runner) Fig7DBSize() (*Table, error) {
	var na, nq int
	var sizes []int
	switch r.Scale {
	case Quick:
		na, nq, sizes = 15, 10, []int{50, 200}
	case Large:
		na, nq, sizes = 50, 40, []int{100, 500, 1000, 2000}
	default:
		na, nq, sizes = 30, 25, []int{100, 300, 1000}
	}
	t := &Table{ID: "fig7b", Title: "database size vs time (wide table)",
		XLabel:  "ND",
		Caption: fmt.Sprintf("Na=%d Nq=%d; selectivity ∝ 1/ND keeps complaints fixed", na, nq)}
	for _, nd := range sizes {
		// Constant expected matches per query: Range scales inversely.
		rng := math.Max(1, 6000/float64(nd))
		for _, v := range incVariants() {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: na, Nq: nq, Vd: 200, Range: rng,
					Seed: r.Seed + int64(rep)*211 + int64(nd),
				})
				in, err := w.MakeInstance(5) // old corruption
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, v.opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: v.name, X: fmt.Sprint(nd),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig7b %s ND=%d: %.1fms", v.name, nd, ms)
		}
	}
	return t, nil
}

// Fig8DBSize reproduces Figure 8a: database size on a narrow table with
// recent vs old corruptions under inc1-tuple.
func (r *Runner) Fig8DBSize() (*Table, error) {
	var nq int
	var sizes []int
	switch r.Scale {
	case Quick:
		nq, sizes = 20, []int{100, 500}
	case Large:
		nq, sizes = 100, []int{100, 1000, 10000, 50000}
	default:
		nq, sizes = 60, []int{100, 1000, 5000}
	}
	t := &Table{ID: "fig8a", Title: "database size vs time (narrow table)",
		XLabel:  "ND",
		Caption: fmt.Sprintf("Na=10 Nq=%d; selectivity ∝ 1/ND; recent vs old corruption", nq)}
	opts := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	for _, nd := range sizes {
		rng := math.Max(1, 6000/float64(nd))
		for _, series := range []struct {
			name string
			idx  int
		}{
			{"recent", nq - 5},
			{"old", 5},
		} {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 10, Nq: nq, Vd: 200, Range: rng,
					Seed: r.Seed + int64(rep)*231 + int64(nd),
				})
				in, err := w.MakeInstance(series.idx)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: series.name, X: fmt.Sprint(nd),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig8a %s ND=%d: %.1fms", series.name, nd, ms)
		}
	}
	return t, nil
}

// Fig8ClauseType reproduces Figure 8b: Constant vs Relative SET crossed
// with Point vs Range WHERE, as the corruption moves deeper into the log.
func (r *Runner) Fig8ClauseType() (*Table, error) {
	var nd, nq int
	var ages []int
	switch r.Scale {
	case Quick:
		nd, nq, ages = 30, 20, []int{5, 15}
	case Large:
		nd, nq, ages = 100, 100, []int{10, 40, 70, 100}
	default:
		nd, nq, ages = 60, 60, []int{10, 30, 60}
	}
	combos := []struct {
		name  string
		set   workload.SetKind
		where workload.WhereKind
	}{
		{"const/point", workload.ConstantSet, workload.PointWhere},
		{"const/range", workload.ConstantSet, workload.RangeWhere},
		{"rel/point", workload.RelativeSet, workload.PointWhere},
		{"rel/range", workload.RelativeSet, workload.RangeWhere},
	}
	t := &Table{ID: "fig8b", Title: "query clause types vs time",
		XLabel:  "age",
		Caption: fmt.Sprintf("ND=%d Nq=%d; age = how many queries ago the corruption happened", nd, nq)}
	opts := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	for _, age := range ages {
		for _, cb := range combos {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 10, Nq: nq, Vd: 200, Range: 10,
					Set: cb.set, Where: cb.where,
					Seed: r.Seed + int64(rep)*251 + int64(age),
				})
				in, err := w.MakeInstance(nq - age)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: cb.name, X: fmt.Sprint(age),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig8b %s age=%d: %.1fms", cb.name, age, ms)
		}
	}
	return t, nil
}

// Fig8Incomplete reproduces Figures 8c/8f: the complaint set loses 0–75%
// of its entries; latency improves (smaller encodings) while accuracy
// suffers for old corruptions.
func (r *Runner) Fig8Incomplete() (*Table, error) {
	var nd, nq int
	switch r.Scale {
	case Quick:
		nd, nq = 30, 16
	case Large:
		nd, nq = 100, 60
	default:
		nd, nq = 60, 40
	}
	rates := []float64{0, 0.25, 0.5, 0.75}
	t := &Table{ID: "fig8c/8f", Title: "incomplete complaint sets",
		XLabel:  "fn-rate",
		Caption: fmt.Sprintf("ND=%d Nq=%d; accuracy scored against the full complaint set", nd, nq)}
	opts := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	for _, rate := range rates {
		for _, series := range []struct {
			name string
			idx  int
		}{
			{"recent", nq - 5},
			{"old", 2},
		} {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 10, Nq: nq, Vd: 200, Range: 25,
					Seed: r.Seed + int64(rep)*271 + int64(rate*100),
				})
				in, err := w.MakeInstance(series.idx)
				if err != nil {
					return nil, err
				}
				complaints := in.Incomplete(rate, r.Seed+int64(rep))
				pts = append(pts, r.measure(in, complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: series.name, X: fmt.Sprintf("%.2f", rate),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig8incomplete %s rate=%.2f: %.1fms f1=%.2f", series.name, rate, ms, acc.F1)
		}
	}
	return t, nil
}

// Fig8Skew reproduces Figure 8d: zipfian attribute skew concentrates
// predicates on few attributes and lowers latency.
func (r *Runner) Fig8Skew() (*Table, error) {
	var nd, nq int
	switch r.Scale {
	case Quick:
		nd, nq = 30, 16
	case Large:
		nd, nq = 100, 60
	default:
		nd, nq = 60, 40
	}
	t := &Table{ID: "fig8d", Title: "attribute skew vs time",
		XLabel:  "skew",
		Caption: fmt.Sprintf("ND=%d Nq=%d Na=10; old corruption", nd, nq)}
	opts := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	for _, skew := range []float64{0, 0.5, 1} {
		var pts []point
		for rep := 0; rep < r.reps(); rep++ {
			w := workload.MustGenerate(workload.Config{
				ND: nd, Na: 10, Nq: nq, Vd: 200, Range: 15, Skew: skew,
				Seed: r.Seed + int64(rep)*291 + int64(skew*10),
			})
			in, err := w.MakeInstance(3)
			if err != nil {
				return nil, err
			}
			pts = append(pts, r.measure(in, in.Complaints, opts))
		}
		ms, acc, ok := avg(pts)
		t.Rows = append(t.Rows, Row{Series: "inc1-tuple", X: fmt.Sprintf("%.1f", skew),
			TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
		r.logf("fig8d skew=%.1f: %.1fms", skew, ms)
	}
	return t, nil
}

// Fig8Dims reproduces Figure 8e: WHERE-clause dimensionality with query
// cardinality held constant (per-predicate selectivity is the d-th root
// of the target selectivity).
func (r *Runner) Fig8Dims() (*Table, error) {
	var nd, nq int
	var dims []int
	switch r.Scale {
	case Quick:
		nd, nq, dims = 30, 12, []int{1, 2}
	case Large:
		nd, nq, dims = 100, 50, []int{1, 2, 3, 4}
	default:
		nd, nq, dims = 60, 30, []int{1, 2, 3}
	}
	const vd, target = 200.0, 0.10 // overall match probability
	t := &Table{ID: "fig8e", Title: "predicate dimensionality vs time",
		XLabel:  "dims",
		Caption: fmt.Sprintf("ND=%d Nq=%d; per-predicate range widened to keep cardinality fixed", nd, nq)}
	opts := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	for _, d := range dims {
		rng := math.Floor((vd+1)*math.Pow(target, 1/float64(d))) - 1
		var pts []point
		for rep := 0; rep < r.reps(); rep++ {
			w := workload.MustGenerate(workload.Config{
				ND: nd, Na: 10, Nq: nq, Vd: vd, Range: rng, NumPreds: d,
				Seed: r.Seed + int64(rep)*311 + int64(d),
			})
			in, err := w.MakeInstance(nq / 2)
			if err != nil {
				return nil, err
			}
			pts = append(pts, r.measure(in, in.Complaints, opts))
		}
		ms, acc, ok := avg(pts)
		t.Rows = append(t.Rows, Row{Series: "inc1-tuple", X: fmt.Sprint(d),
			TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
			Note: fmt.Sprintf("range=%g", rng)})
		r.logf("fig8e dims=%d: %.1fms", d, ms)
	}
	return t, nil
}
