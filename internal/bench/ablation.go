package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Ablation measures the engineering choices this implementation adds on
// top of the paper (documented in DESIGN.md): constant-folding presolve,
// predicate-parameter window tightening, and warm-started LP relaxations
// in branch-and-bound. Each is switched off individually against the
// full configuration on the same single-corruption instance.
func (r *Runner) Ablation() (*Table, error) {
	var nd, nq int
	switch r.Scale {
	case Quick:
		nd, nq = 50, 15
	case Large:
		nd, nq = 100, 60
	default:
		nd, nq = 100, 30
	}
	base := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	variants := []struct {
		name string
		mod  func(o core.Options) core.Options
	}{
		{"full", func(o core.Options) core.Options { return o }},
		{"no-folding", func(o core.Options) core.Options { o.NoFolding = true; return o }},
		{"no-windows", func(o core.Options) core.Options { o.NoParamWindows = true; return o }},
		{"cold-lp", func(o core.Options) core.Options { o.ColdLP = true; return o }},
	}
	t := &Table{ID: "ablation", Title: "implementation ablations (extensions beyond the paper)",
		XLabel:  "corrupt",
		Caption: fmt.Sprintf("ND=%d Nq=%d, inc1-tuple; switches off one engineering choice at a time", nd, nq)}
	for _, idx := range []int{nq - 1, nq / 2} {
		for _, v := range variants {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 5, Nq: nq, Vd: 200, Range: 20,
					Seed: r.Seed + int64(rep)*401 + int64(idx),
				})
				in, err := w.MakeInstance(idx)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, v.mod(base)))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: v.name, X: fmt.Sprintf("q%d", idx),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("ablation %s idx=%d: %.1fms solved=%.2f", v.name, idx, ms, ok)
		}
	}
	return t, nil
}
