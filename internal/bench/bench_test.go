package bench

import (
	"strings"
	"testing"

	"time"

	"repro/internal/core"
	"repro/internal/query"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 21 {
		t.Errorf("expected 21 experiments (every figure + ex2 + ablation + partition + distributed + impactcache + warmstart + solver + daemon), got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := Lookup(e.ID); !ok {
			t.Errorf("Lookup(%s) failed", e.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"quick": Quick, "default": Default, "": Default, "large": Large, "paper": Large,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestExample2RunsAndResolves(t *testing.T) {
	r := &Runner{Scale: Quick, Seed: 1}
	table, err := r.Example2()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	row := table.Rows[0]
	if row.Solved != 1 || row.F1 < 0.99 {
		t.Errorf("example 2 not fully repaired: %+v", row)
	}
	out := table.String()
	if !strings.Contains(out, "ex2") || !strings.Contains(out, "qfix") {
		t.Errorf("table rendering missing content:\n%s", out)
	}
}

func TestFig9QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := &Runner{Scale: Quick, Seed: 1}
	table, err := r.Fig9OLTP()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Every OLTP point should solve with perfect accuracy at this scale,
	// and older corruptions should not be cheaper than fresh ones by a
	// large margin (they scan more batches).
	for _, row := range table.Rows {
		if row.Solved < 1 {
			t.Errorf("%s age=%s unsolved", row.Series, row.X)
		}
		if row.F1 < 0.99 {
			t.Errorf("%s age=%s f1=%v", row.Series, row.X, row.F1)
		}
	}
}

func TestFig10QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := &Runner{Scale: Quick, Seed: 1}
	table, err := r.Fig10DecTree()
	if err != nil {
		t.Fatal(err)
	}
	var qfixF1, decF1 float64
	var n int
	for _, row := range table.Rows {
		switch row.Series {
		case "qfix":
			qfixF1 += row.F1
			n++
		case "dectree":
			decF1 += row.F1
		}
	}
	if n == 0 {
		t.Fatal("no rows")
	}
	// The paper's headline comparison: QFix repairs exactly, DecTree
	// repairs poorly.
	if qfixF1/float64(n) < 0.9 {
		t.Errorf("qfix mean F1 = %v", qfixF1/float64(n))
	}
	if decF1 >= qfixF1 {
		t.Errorf("dectree (%v) should not beat qfix (%v)", decF1, qfixF1)
	}
}

func TestPartitionOutcomeMatchesJoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode (the joint Basic MILP needs seconds of solver time; " +
			"race overhead can push it past its limit and flake the parity check)")
	}
	// The partition engine's contract on the bench workload: with 8
	// independent complaint clusters, Partition=4 must produce exactly
	// the joint path's Resolved/per-complaint outcome (and actually
	// decompose into 8 partitions rather than falling back). One query
	// per cluster keeps the joint Basic MILP solvable inside the time
	// limit — at the figure's larger sizes the joint encoding times out,
	// which is precisely the scaling wall the partition engine removes.
	w, corruptIdx, err := PartitionClusters(8, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(corruptIdx) != 8 {
		t.Fatalf("corrupted %d queries, want 8", len(corruptIdx))
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Options{Algorithm: core.Basic, TupleSlicing: true, QuerySlicing: true,
		TimeLimit: 120 * time.Second}
	joint, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, base)
	if err != nil {
		t.Fatal(err)
	}
	part := base
	part.Partition = 4
	parted, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, part)
	if err != nil {
		t.Fatal(err)
	}
	if joint.Resolved != parted.Resolved {
		t.Fatalf("resolved mismatch: joint=%v parted=%v (%+v / %+v)",
			joint.Resolved, parted.Resolved, joint.Stats, parted.Stats)
	}
	if parted.Stats.Partitions != 8 {
		t.Errorf("Stats.Partitions = %d, want 8", parted.Stats.Partitions)
	}
	if parted.Stats.PartitionFallback {
		t.Error("independent clusters triggered the joint fallback")
	}
	jf, err := query.Replay(joint.Log, w.D0)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := query.Replay(parted.Log, w.D0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range in.Complaints {
		one := []core.Complaint{c}
		if core.ComplaintsResolved(jf, one, 1e-6) != core.ComplaintsResolved(pf, one, 1e-6) {
			t.Errorf("complaint %d resolution differs between joint and partitioned", i)
		}
	}
}

func TestDistributedQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := &Runner{Scale: Quick, Seed: 1}
	table, err := r.FigDistributed()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (local + dial + mux at one cluster count)", len(table.Rows))
	}
	var localRow, dialRow, muxRow *Row
	for i := range table.Rows {
		row := &table.Rows[i]
		if row.Solved < 1 {
			t.Errorf("%s clusters=%s unsolved (%+v)", row.Series, row.X, row)
		}
		switch row.Series {
		case "local-4":
			localRow = row
		case "dial-2":
			dialRow = row
		case "mux-2":
			muxRow = row
		}
	}
	if localRow == nil || dialRow == nil || muxRow == nil {
		t.Fatal("missing local-4, dial-2, or mux-2 series")
	}
	// Distribution must not change the repair: identical accuracy on
	// both transports.
	for _, distRow := range []*Row{dialRow, muxRow} {
		if distRow.F1 != localRow.F1 || distRow.Precision != localRow.Precision {
			t.Errorf("%s accuracy diverged from local: f1 %v vs %v, precision %v vs %v",
				distRow.Series, distRow.F1, localRow.F1, distRow.Precision, localRow.Precision)
		}
		if !strings.Contains(distRow.Note, "remote=") || strings.Contains(distRow.Note, "remote=0/") {
			t.Errorf("%s did not solve remotely: note=%q", distRow.Series, distRow.Note)
		}
	}
	// The mux series must actually stream its results back over the
	// persistent connections.
	if !strings.Contains(muxRow.Note, "streamed") {
		t.Errorf("mux-2 streamed nothing: note=%q", muxRow.Note)
	}
	if strings.Contains(dialRow.Note, "streamed") {
		t.Errorf("dial-2 claims streamed results: note=%q", dialRow.Note)
	}
}

func TestDaemonQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := &Runner{Scale: Quick, Seed: 1}
	table, err := r.FigDaemon()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (one concurrency level at quick scale)", len(table.Rows))
	}
	row := table.Rows[0]
	// Every response is checked against the local oracle inside FigDaemon;
	// a surviving row means the daemon's repairs were byte-identical.
	if row.Solved != 1 {
		t.Errorf("daemon row not solved: %+v", row)
	}
	if row.P50MS <= 0 || row.P99MS < row.P50MS {
		t.Errorf("implausible latency percentiles: p50=%v p99=%v", row.P50MS, row.P99MS)
	}
	if !strings.Contains(row.Note, "diagnoses/s") {
		t.Errorf("note missing throughput: %q", row.Note)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", XLabel: "n", Caption: "c"}
	tb.Rows = append(tb.Rows, Row{Series: "s", X: "1", TimeMS: 1.234, Precision: 1, Recall: 0.5, F1: 0.66, Solved: 1, Note: "hi"})
	out := tb.String()
	for _, want := range []string{"## x — t", "series", "time_ms", "hi", "0.660"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAvgEmpty(t *testing.T) {
	ms, acc, ok := avg(nil)
	if ms != 0 || ok != 0 || acc.F1 != 0 {
		t.Error("avg(nil) not zero")
	}
}
