package bench

import (
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/qfixd"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// FigDaemon measures the resident daemon under sustained mixed-tenant
// load: one qfixd service (shared scheduler pool, per-tenant stores
// with warm caches) on loopback TCP, T tenants with distinct corrupted
// histories, and C concurrent clients issuing diagnose requests
// round-robin across the tenants. Reported per concurrency level:
// mean latency (TimeMS), latency percentiles (P50/P90/P99), and
// sustained throughput in diagnoses/sec (Note). Every response is
// checked against the tenant's locally computed repair, so the figure
// doubles as a load-bearing byte-identity check — a daemon that
// answered fast but wrong would fail, not score.
func (r *Runner) FigDaemon() (*Table, error) {
	var tenants, requests int
	var clients []int
	switch r.Scale {
	case Quick:
		tenants, requests, clients = 2, 12, []int{2}
	case Large:
		tenants, requests, clients = 8, 96, []int{1, 4, 16}
	default:
		tenants, requests, clients = 4, 32, []int{1, 4, 8}
	}

	t := &Table{ID: "daemon", Title: "resident daemon: sustained mixed-tenant diagnosis throughput",
		XLabel: "clients",
		Caption: fmt.Sprintf("%d tenants, %d diagnoses per point over loopback TCP; "+
			"one shared scheduler pool and admission control (qfixd defaults); "+
			"every response verified byte-identical to a local CLI-default diagnosis",
			tenants, requests)}

	dir, err := os.MkdirTemp("", "qfixd-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	svc := qfixd.NewService(qfixd.Config{Dir: dir})
	srv := qfixd.NewServer(svc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, err
	}
	go srv.Serve(l)
	defer func() {
		srv.Close()
		svc.Close()
	}()
	addr := l.Addr().String()

	seed, err := qfixd.DialDaemon(addr)
	if err != nil {
		return nil, err
	}
	defer seed.Close()
	type tenantState struct {
		name    string
		wantLog []string
	}
	states := make([]tenantState, tenants)
	for i := range states {
		name := fmt.Sprintf("tenant-%d", i)
		sc := daemonScenario(float64(10 * i))
		if err := seed.Create(name, "Taxes", "", daemonAttrs, sc.rows); err != nil {
			return nil, err
		}
		if err := seed.Append(name, sc.sql...); err != nil {
			return nil, err
		}
		if err := seed.Complain(name, sc.complaints); err != nil {
			return nil, err
		}
		want, err := daemonOracle(sc)
		if err != nil {
			return nil, err
		}
		states[i] = tenantState{name: name, wantLog: want}
	}

	for _, nc := range clients {
		conns := make([]*qfixd.Client, nc)
		for i := range conns {
			if conns[i], err = qfixd.DialDaemon(addr); err != nil {
				return nil, err
			}
		}
		lat := make([]float64, requests)
		errs := make([]error, nc)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < nc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := conns[w]
				for i := w; i < requests; i += nc {
					st := states[i%tenants]
					t0 := time.Now()
					resp, err := c.Diagnose(st.name, nil, nil)
					lat[i] = float64(time.Since(t0).Microseconds()) / 1000
					if err != nil {
						errs[w] = fmt.Errorf("%s: %w", st.name, err)
						return
					}
					if !sameLog(resp.Log, st.wantLog) {
						errs[w] = fmt.Errorf("%s: daemon repair diverges from local oracle", st.name)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, c := range conns {
			c.Close()
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		ms := mean(lat)
		tput := float64(requests) / elapsed.Seconds()
		t.Rows = append(t.Rows, Row{Series: "daemon", X: fmt.Sprint(nc),
			TimeMS: ms, Solved: 1,
			P50MS: percentile(lat, 0.50), P90MS: percentile(lat, 0.90), P99MS: percentile(lat, 0.99),
			Note: fmt.Sprintf("%.1f diagnoses/s over %d tenants", tput, tenants)})
		r.logf("daemon clients=%d: %.1fms mean, p99=%.1fms, %.1f diag/s",
			nc, ms, percentile(lat, 0.99), tput)
	}
	return t, nil
}

// daemonOracle computes the expected repaired log exactly as a
// default qfix CLI run would render it: core.Diagnose with the CLI's
// default options, statements via Query.String.
func daemonOracle(sc daemonScenarioSpec) ([]string, error) {
	sch := relation.MustSchema("Taxes", daemonAttrs, "")
	d0 := relation.NewTable(sch)
	for _, row := range sc.rows {
		d0.MustInsert(row...)
	}
	history := make([]query.Query, len(sc.sql))
	for i, stmt := range sc.sql {
		q, err := sqlparse.Parse(sch, stmt)
		if err != nil {
			return nil, err
		}
		history[i] = q
	}
	rep, err := core.Diagnose(d0, history, sc.complaints, core.Options{
		Algorithm:    core.Incremental,
		K:            1,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    60 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if !rep.Resolved {
		return nil, fmt.Errorf("bench: daemon oracle did not resolve")
	}
	out := make([]string, len(rep.Log))
	for i, q := range rep.Log {
		out[i] = q.String(sch)
	}
	return out, nil
}

// daemonAttrs is the bench tenant schema.
var daemonAttrs = []string{"income", "owed", "pay"}

// daemonScenarioSpec is one tenant's corrupted history: the Figure 2
// tax workload with incomes shifted per tenant so each tenant's repair
// is distinct.
type daemonScenarioSpec struct {
	rows       [][]float64
	sql        []string
	complaints []core.Complaint
}

func daemonScenario(off float64) daemonScenarioSpec {
	return daemonScenarioSpec{
		rows: [][]float64{
			{9500, 950, 8550},
			{90000 + off, 22500, 67500},
			{86000 + off, 21500, 64500},
			{86500 + off, 21625, 64875},
		},
		sql: []string{
			fmt.Sprintf("UPDATE Taxes SET owed = income * 0.3 WHERE income >= %g", 85700+off), // corrupted
			"INSERT INTO Taxes VALUES (85800, 21450, 0)",
			"UPDATE Taxes SET pay = income - owed",
		},
		complaints: []core.Complaint{
			{TupleID: 3, Exists: true, Values: []float64{86000 + off, 21500, 64500 + off}},
			{TupleID: 4, Exists: true, Values: []float64{86500 + off, 21625, 64875 + off}},
		},
	}
}

// percentile is the nearest-rank percentile of the latency population.
func percentile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]float64(nil), ms...)
	sort.Float64s(s)
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

func mean(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	var sum float64
	for _, m := range ms {
		sum += m
	}
	return sum / float64(len(ms))
}

func sameLog(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
