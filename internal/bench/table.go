package bench

import (
	"fmt"
	"strings"
)

// Row is one measured point of a figure: a series name, an x value, the
// mean latency, and the mean accuracy across repetitions.
type Row struct {
	Series    string
	X         string
	TimeMS    float64
	Precision float64
	Recall    float64
	F1        float64
	// Solved is the fraction of repetitions that produced a verified
	// repair (timeouts and infeasibility count against it, as in §7.2).
	Solved float64
	// Per-phase mean wall time (ms) from Stats' phase timers, so the
	// BENCH_*.json rows say WHERE the latency went, not just how much
	// there was. Zero-valued phases are omitted from the JSON.
	PlanMS   float64 `json:",omitempty"`
	EncodeMS float64 `json:",omitempty"`
	SolveMS  float64 `json:",omitempty"`
	MergeMS  float64 `json:",omitempty"`
	// Latency percentiles (ms) for experiments that measure a request
	// population rather than repeated identical runs (the daemon
	// figure); zero elsewhere and omitted from the JSON.
	P50MS float64 `json:",omitempty"`
	P90MS float64 `json:",omitempty"`
	P99MS float64 `json:",omitempty"`
	// Note carries figure-specific extras (model rows, batches, ...).
	Note string
}

// Table is the reproduction of one paper figure.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Rows    []Row
	Caption string
}

// String renders an aligned text table matching the series the paper
// plots.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	w := func(s string, n int) string {
		if len(s) >= n {
			return s
		}
		return s + strings.Repeat(" ", n-len(s))
	}
	sw, xw := 10, len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.Series) > sw {
			sw = len(r.Series)
		}
		if len(r.X) > xw {
			xw = len(r.X)
		}
	}
	fmt.Fprintf(&b, "%s  %s  %10s  %9s  %7s  %7s  %7s  %s\n",
		w("series", sw), w(t.XLabel, xw), "time_ms", "precision", "recall", "f1", "solved", "note")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s  %s  %10.1f  %9.3f  %7.3f  %7.3f  %7.2f  %s\n",
			w(r.Series, sw), w(r.X, xw), r.TimeMS, r.Precision, r.Recall, r.F1, r.Solved, r.Note)
	}
	return b.String()
}
