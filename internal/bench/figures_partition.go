package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workload"
)

// PartitionClusters builds a workload whose complaint set decomposes
// into `clusters` independent components: each cluster owns one
// attribute, its rows hold a sentinel on every other attribute, and its
// queries read and write only that attribute. Corrupting one query per
// cluster yields complaints confined to the cluster, so the partition
// planner finds exactly `clusters` connected components. Exported for
// the integration test that validates the partition engine end to end.
func PartitionClusters(clusters, rowsPer, queriesPer int, seed int64) (*workload.Workload, []int, error) {
	const vd = 200.0
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]string, clusters)
	for k := range attrs {
		attrs[k] = fmt.Sprintf("a%d", k)
	}
	sch, err := relation.NewSchema("clusters", attrs, "")
	if err != nil {
		return nil, nil, err
	}
	d0 := relation.NewTable(sch)
	for k := 0; k < clusters; k++ {
		for i := 0; i < rowsPer; i++ {
			row := make([]float64, clusters)
			for j := range row {
				row[j] = -1000 // sentinel outside every predicate window
			}
			row[k] = float64(i * 10)
			d0.MustInsert(row...)
		}
	}
	domain := float64((rowsPer - 1) * 10)
	var log []query.Query
	var corruptIdx []int
	for k := 0; k < clusters; k++ {
		victim := rng.Intn(queriesPer)
		for q := 0; q < queriesPer; q++ {
			if q == victim {
				corruptIdx = append(corruptIdx, len(log))
			}
			lo := float64(rng.Intn(int(domain)))
			log = append(log, query.NewUpdate(
				[]query.SetClause{{Attr: k, Expr: query.ConstExpr(float64(rng.Intn(int(vd))))}},
				query.NewAnd(
					query.AttrPred(k, query.GE, lo),
					query.AttrPred(k, query.LE, lo+20))))
		}
	}
	// Domain-aware corruption: slide the predicate window and replace
	// the SET constant, keeping values inside the cluster's row domain
	// so the corrupted query stays confined to its cluster.
	corrupt := func(rng *rand.Rand, q query.Query, p []float64) {
		if _, ok := q.(*query.Update); !ok || len(p) < 3 {
			return
		}
		p[0] = float64(rng.Intn(int(vd)))
		width := p[2] - p[1]
		p[1] = float64(rng.Intn(int(domain)))
		p[2] = p[1] + width
	}
	w := workload.NewCustom(workload.Config{Vd: vd, Seed: seed}, sch, d0, log, corrupt)
	return w, corruptIdx, nil
}

// FigPartition measures the plan/solve engine on many-independent-
// complaint workloads: the joint Basic MILP over every candidate versus
// partition-parallel diagnosis with 1 and 4 workers. The partitioned
// series must match the joint series' Resolved outcome while the
// wall-clock drops both from smaller per-partition MILPs (the MILP is
// superlinear in candidate count) and from solving partitions
// concurrently.
func (r *Runner) FigPartition() (*Table, error) {
	var clusterCounts []int
	var rowsPer, queriesPer int
	switch r.Scale {
	case Quick:
		clusterCounts, rowsPer, queriesPer = []int{4, 8}, 5, 2
	case Large:
		clusterCounts, rowsPer, queriesPer = []int{8, 16, 32, 64, 128}, 8, 3
	default:
		clusterCounts, rowsPer, queriesPer = []int{4, 8, 16, 32, 64, 128}, 6, 3
	}
	// The joint Basic MILP reliably blows its solver budget beyond ~8
	// clusters (every additional cluster multiplies the binary count);
	// running it there would spend minutes per point to record a timeout.
	// The sweep caps the joint series at 8 clusters and lets the
	// partitioned series chart the scaling frontier alone above that.
	const jointClusterCap = 8
	t := &Table{ID: "partition", Title: "partition-parallel diagnosis on independent complaint clusters",
		XLabel: "clusters",
		Caption: fmt.Sprintf("rows/cluster=%d queries/cluster=%d; one corrupted query per cluster; "+
			"joint = Basic MILP over all candidates, skipped beyond %d clusters (times out)",
			rowsPer, queriesPer, jointClusterCap)}
	series := []struct {
		name      string
		partition int
	}{
		{"joint", 0},
		{"partition-1", 1},
		{"partition-4", 4},
	}
	for _, nc := range clusterCounts {
		for _, s := range series {
			if s.partition == 0 && nc > jointClusterCap {
				continue
			}
			opts := core.Options{
				Algorithm:    core.Basic,
				TupleSlicing: true,
				QuerySlicing: true,
				Partition:    s.partition,
			}
			if nc >= 64 {
				// The partitioned series' total work grows linearly with
				// the cluster count; the flat 4×TimeLimit default budget
				// does not, and would truncate the 64/128-cluster points
				// into "unresolved" on slower machines. Scale the budget
				// with the sweep instead (solve work, not the ceiling,
				// is what the figure measures).
				opts.TotalTimeLimit = time.Duration(nc/8) * r.timeLimit()
			}
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w, corruptIdx, err := PartitionClusters(nc, rowsPer, queriesPer,
					r.Seed+int64(rep)*353+int64(nc))
				if err != nil {
					return nil, err
				}
				in, err := w.MakeInstance(corruptIdx...)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, withPhases(Row{Series: s.name, X: fmt.Sprint(nc),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: partitionNote(pts)}, pts))
			r.logf("partition %s clusters=%d: %.1fms solved=%.2f", s.name, nc, ms, ok)
		}
	}
	return t, nil
}

// partitionNote summarizes the planner's stats across points.
func partitionNote(pts []point) string {
	maxParts := 0
	fallbacks := 0
	for _, p := range pts {
		if p.stats.Partitions > maxParts {
			maxParts = p.stats.Partitions
		}
		if p.stats.PartitionFallback {
			fallbacks++
		}
	}
	if maxParts == 0 {
		return ""
	}
	return fmt.Sprintf("partitions=%d fallbacks=%d", maxParts, fallbacks)
}
