package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/workload"
)

// FigImpactCache measures the impact-cache subsystem: the cost of
// repeat diagnoses over the same or a growing log, locally and on a
// loopback worker fleet. This is no paper figure — it quantifies the
// ROADMAP's "cache FullImpact across diagnoses" item.
//
// Local series (x = log size):
//
//	cold      every diagnosis recomputes the O(n²) FullImpact closure
//	cached    second diagnosis of the same log (exact digest hit)
//	extended  diagnosis after appending Δ queries to an already
//	          diagnosed log (incremental ExtendFullImpact)
//
// Distributed series (8-cluster partition workload, 2 loopback
// workers):
//
//	dist-cold    first diagnosis on a fresh fleet (later partitions of
//	             the run already reuse the first jobs' decodes)
//	dist-cached  repeat diagnosis against the same fleet: every job
//	             hits the workers' decode + impact caches
//
// The repairs must be identical across all series of a size — the cache
// is a latency optimization, never a semantics change; the dist e2e test
// asserts the byte-level identity, this table shows the latency.
func (r *Runner) FigImpactCache() (*Table, error) {
	var sizes []int
	switch r.Scale {
	case Quick:
		sizes = []int{40}
	case Large:
		sizes = []int{160, 320, 640}
	default:
		sizes = []int{80, 160}
	}
	const extendBy = 4 // Δ appended queries for the extended series

	t := &Table{ID: "impactcache", Title: "impact cache: repeat-diagnosis latency, cold vs cached",
		XLabel: "queries",
		Caption: fmt.Sprintf("UPDATE-only workload, one recent corruption; cached = 2nd diagnosis of the same log, "+
			"extended = diagnosis after %d appended queries; dist series: 8 clusters on 2 loopback qfix-workers", extendBy)}

	opts := core.Options{Algorithm: core.Incremental, TupleSlicing: true, QuerySlicing: true}
	for _, nq := range sizes {
		var cold, cachedPts, extended []point
		for rep := 0; rep < r.reps(); rep++ {
			w, err := workload.Generate(workload.Config{
				ND: 60, Na: 6, Nq: nq, Mix: workload.UpdateOnly,
				Seed: r.Seed + int64(rep)*101 + int64(nq)})
			if err != nil {
				return nil, err
			}
			in, err := w.MakeInstance(nq - extendBy - 2)
			if err != nil {
				return nil, err
			}

			cold = append(cold, r.measure(in, in.Complaints, opts))

			oc := opts
			oc.ImpactCache = core.NewImpactCache(0)
			r.measure(in, in.Complaints, oc) // warm: pays the closure once
			cachedPts = append(cachedPts, r.measure(in, in.Complaints, oc))

			oe := opts
			oe.ImpactCache = core.NewImpactCache(0)
			if err := r.warmPrefix(in, nq-extendBy, oe); err != nil {
				return nil, err
			}
			extended = append(extended, r.measure(in, in.Complaints, oe))
		}
		for _, s := range []struct {
			name string
			pts  []point
		}{{"cold", cold}, {"cached", cachedPts}, {"extended", extended}} {
			ms, acc, ok := avg(s.pts)
			t.Rows = append(t.Rows, Row{Series: s.name, X: fmt.Sprint(nq),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: impactNote(s.pts)})
			r.logf("impactcache %s queries=%d: %.1fms solved=%.2f %s", s.name, nq, ms, ok, impactNote(s.pts))
		}
	}

	if err := r.impactCacheDistributed(t); err != nil {
		return nil, err
	}
	return t, nil
}

// warmPrefix runs an (unmeasured) diagnosis over the instance's first n
// queries, so opts.ImpactCache holds the closure of the log as it stood
// before the final appends — the growing-log scenario histstore serves.
func (r *Runner) warmPrefix(in *workload.Instance, n int, opts core.Options) error {
	dirty, err := query.Replay(in.Dirty[:n], in.W.D0)
	if err != nil {
		return err
	}
	truth, err := query.Replay(in.W.Log[:n], in.W.D0)
	if err != nil {
		return err
	}
	complaints := core.ComplaintsFromDiff(dirty, truth, 1e-9)
	opts.TimeLimit = r.timeLimit()
	opts.TotalTimeLimit = 4 * r.timeLimit()
	_, err = core.Diagnose(in.W.D0, in.Dirty[:n], complaints, opts)
	return err
}

// impactCacheDistributed appends the loopback-fleet series: the same
// partition workload diagnosed twice against one 2-worker fleet, so the
// repeat run's jobs all hit the workers' decode and impact caches.
func (r *Runner) impactCacheDistributed(t *Table) error {
	clusters, rowsPer, queriesPer := 8, 5, 2
	if r.Scale == Large {
		clusters, queriesPer = 16, 3
	}
	opts := core.Options{Algorithm: core.Basic, TupleSlicing: true, QuerySlicing: true, Partition: 4}
	var coldPts, cachedPts []point
	for rep := 0; rep < r.reps(); rep++ {
		workers, stop, err := startLoopbackWorkers(2)
		if err != nil {
			return err
		}
		w, corruptIdx, err := PartitionClusters(clusters, rowsPer, queriesPer,
			r.Seed+int64(rep)*353)
		if err != nil {
			stop()
			return err
		}
		in, err := w.MakeInstance(corruptIdx...)
		if err != nil {
			stop()
			return err
		}
		coord := dist.Connect(dist.Config{}, workers...)
		o := opts
		o.PartitionSolver = coord
		coldPts = append(coldPts, r.measure(in, in.Complaints, o))
		cachedPts = append(cachedPts, r.measure(in, in.Complaints, o))
		coord.Close()
		stop()
	}
	x := fmt.Sprint(clusters * queriesPer)
	for _, s := range []struct {
		name string
		pts  []point
	}{{"dist-cold", coldPts}, {"dist-cached", cachedPts}} {
		ms, acc, ok := avg(s.pts)
		t.Rows = append(t.Rows, Row{Series: s.name, X: x,
			TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
			Note: impactNote(s.pts)})
		r.logf("impactcache %s: %.1fms solved=%.2f %s", s.name, ms, ok, impactNote(s.pts))
	}
	return nil
}

// impactNote summarizes cache activity across repetitions.
func (r point) impactHits() (int, int, int) {
	return r.stats.ImpactCacheHits, r.stats.ImpactCacheExtends, r.stats.WorkerCacheHits
}

func impactNote(pts []point) string {
	hits, extends, worker := 0, 0, 0
	for _, p := range pts {
		h, e, wk := p.impactHits()
		hits, extends, worker = hits+h, extends+e, worker+wk
	}
	if hits == 0 && worker == 0 {
		return ""
	}
	return fmt.Sprintf("impact hits=%d extends=%d worker hits=%d", hits, extends, worker)
}
