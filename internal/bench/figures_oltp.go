package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dectree"
	"repro/internal/linfit"
	"repro/internal/oltp"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Fig9OLTP reproduces Figure 9: repair latency on the TPC-C and TATP
// benchmarks as the corruption moves deeper into the log. Complaint sets
// are tiny (1–2 tuples) and tuple+query slicing shrinks the encodings to
// under ~100 constraints, giving near-interactive repairs (§7.4).
func (r *Runner) Fig9OLTP() (*Table, error) {
	var orders, tpccQ, subs, tatpQ int
	var ages []int
	switch r.Scale {
	case Quick:
		orders, tpccQ, subs, tatpQ, ages = 200, 100, 200, 100, []int{1, 50}
	case Large:
		orders, tpccQ, subs, tatpQ, ages = 6000, 2000, 5000, 2000, []int{1, 100, 500, 1500}
	default:
		orders, tpccQ, subs, tatpQ, ages = 600, 300, 500, 300, []int{1, 50, 150, 300}
	}
	t := &Table{ID: "fig9", Title: "OLTP benchmarks: latency vs corruption age",
		XLabel:  "age",
		Caption: fmt.Sprintf("TPC-C: %d orders/%d queries; TATP: %d subscribers/%d queries", orders, tpccQ, subs, tatpQ)}
	opts := core.Options{Algorithm: core.Incremental, K: 1,
		TupleSlicing: true, QuerySlicing: true, SingleCorruption: true}

	for _, age := range ages {
		// TPC-C
		if age <= tpccQ {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := oltp.TPCC(oltp.TPCCConfig{Orders: orders, Queries: tpccQ,
					Seed: r.Seed + int64(rep)*331})
				in, err := w.MakeInstance(tpccQ - age)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: "tpcc", X: fmt.Sprint(age),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: modelSizeNote(pts)})
			r.logf("fig9 tpcc age=%d: %.1fms", age, ms)
		}
		// TATP
		if age <= tatpQ {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := oltp.TATP(oltp.TATPConfig{Subscribers: subs, Queries: tatpQ,
					Seed: r.Seed + int64(rep)*351})
				in, err := w.MakeInstance(tatpQ - age)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: "tatp", X: fmt.Sprint(age),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: modelSizeNote(pts)})
			r.logf("fig9 tatp age=%d: %.1fms", age, ms)
		}
	}
	return t, nil
}

// Fig10DecTree reproduces Figure 10 (Appendix A): the decision-tree
// baseline against QFix on a single corrupted UPDATE with a complete
// complaint set. DecTree stays fast but its F1 starts near 0.5 and
// degrades; QFix repairs exactly.
func (r *Runner) Fig10DecTree() (*Table, error) {
	var sizes []int
	switch r.Scale {
	case Quick:
		sizes = []int{100, 300}
	case Large:
		sizes = []int{100, 500, 1000, 2000, 5000}
	default:
		sizes = []int{100, 300, 1000}
	}
	t := &Table{ID: "fig10", Title: "DecTree baseline vs QFix (single corrupted UPDATE)",
		XLabel:  "ND",
		Caption: "constant SET, range WHERE, complete complaint set; selectivity ∝ 1/ND"}
	qfixOpts := core.Options{Algorithm: core.Basic, TupleSlicing: true}
	for _, nd := range sizes {
		rng := math.Max(4, 4000/float64(nd))
		var qpts, dpts, lpts []point
		for rep := 0; rep < r.reps(); rep++ {
			w := workload.MustGenerate(workload.Config{
				ND: nd, Na: 5, Nq: 1, Vd: 200, Range: rng,
				Seed: r.Seed + int64(rep)*371 + int64(nd),
			})
			in, err := w.MakeInstance(0)
			if err != nil {
				return nil, err
			}
			if len(in.Complaints) == 0 {
				continue
			}
			qpts = append(qpts, r.measure(in, in.Complaints, qfixOpts))
			dpts = append(dpts, r.measureDecTree(in))
			lpts = append(lpts, r.measureLinFit(in))
		}
		for _, s := range []struct {
			name string
			pts  []point
		}{{"qfix", qpts}, {"dectree", dpts}, {"linfit", lpts}} {
			ms, acc, ok := avg(s.pts)
			t.Rows = append(t.Rows, Row{Series: s.name, X: fmt.Sprint(nd),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig10 %s ND=%d: %.1fms f1=%.2f", s.name, nd, ms, acc.F1)
		}
	}
	return t, nil
}

// measureDecTree runs the Appendix A baseline on a single-query instance.
func (r *Runner) measureDecTree(in *workload.Instance) point {
	start := time.Now()
	dirtyQ, ok := in.Dirty[0].(*query.Update)
	if !ok {
		return point{}
	}
	repaired, err := dectree.RepairQuery(in.W.D0, dirtyQ, in.TruthFinal, dectree.Options{})
	p := point{ms: float64(time.Since(start).Microseconds()) / 1000}
	if err != nil {
		return p
	}
	p.resolved = true
	if acc, err := in.Evaluate([]query.Query{repaired}); err == nil {
		p.acc = acc
	}
	return p
}

// modelSizeNote reports the mean constraint rows per encode attempt —
// the quantity behind the paper's "often less than 100 in total" claim
// for OLTP workloads (§7.4).
func modelSizeNote(pts []point) string {
	rows, batches := 0, 0
	for _, p := range pts {
		rows += p.stats.Rows
		batches += p.stats.BatchesTried
	}
	if batches == 0 {
		return ""
	}
	return fmt.Sprintf("~%d rows/solve", rows/batches)
}

// measureLinFit runs the technical report's linear-system baseline.
func (r *Runner) measureLinFit(in *workload.Instance) point {
	start := time.Now()
	dirtyQ, ok := in.Dirty[0].(*query.Update)
	if !ok {
		return point{}
	}
	repaired, err := linfit.Repair(in.W.D0, dirtyQ, in.TruthFinal)
	p := point{ms: float64(time.Since(start).Microseconds()) / 1000}
	if err != nil {
		return p
	}
	p.resolved = true
	if acc, err := in.Evaluate([]query.Query{repaired}); err == nil {
		p.acc = acc
	}
	return p
}

// Example2 reproduces the §7.4 case study: the Figure 2 tax-bracket
// example is fully repaired (the paper reports 35 ms on CPLEX).
func (r *Runner) Example2() (*Table, error) {
	sch := relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(9500, 950, 8550)
	d0.MustInsert(90000, 22500, 67500)
	d0.MustInsert(86000, 21500, 64500)
	d0.MustInsert(86500, 21625, 64875)
	mk := func(theta float64) []query.Query {
		return []query.Query{
			query.NewUpdate(
				[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(0, query.Term{Attr: 0, Coef: 0.3})}},
				query.AttrPred(0, query.GE, theta)),
			query.NewInsert(85800, 21450, 0),
			query.NewUpdate(
				[]query.SetClause{{Attr: 2, Expr: query.NewLinExpr(0,
					query.Term{Attr: 0, Coef: 1}, query.Term{Attr: 1, Coef: -1})}},
				nil),
		}
	}
	dirty, truth := mk(85700), mk(87500)
	dirtyFinal, err := query.Replay(dirty, d0)
	if err != nil {
		return nil, err
	}
	truthFinal, err := query.Replay(truth, d0)
	if err != nil {
		return nil, err
	}
	complaints := core.ComplaintsFromDiff(dirtyFinal, truthFinal, 1e-9)

	start := time.Now()
	rep, err := core.Diagnose(d0, dirty, complaints, core.Options{
		Algorithm: core.Incremental, K: 1,
		TupleSlicing: true, QuerySlicing: true,
		TimeLimit: r.timeLimit(),
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	repFinal, err := query.Replay(rep.Log, d0)
	if err != nil {
		return nil, err
	}
	acc := workload.Score(dirtyFinal, truthFinal, repFinal)
	t := &Table{ID: "ex2", Title: "Figure 2 tax example, end-to-end repair",
		XLabel:  "case",
		Caption: "paper: fully repaired in 35 ms (CPLEX)"}
	t.Rows = append(t.Rows, Row{Series: "qfix", X: "figure2",
		TimeMS:    float64(elapsed.Microseconds()) / 1000,
		Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1,
		Solved: b2f(rep.Resolved),
		Note:   fmt.Sprintf("repaired q%v, distance %.1f", rep.Changed, rep.Distance)})
	return t, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
