package bench

import (
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/dist"
)

// FigDistributed measures the coordinator/worker subsystem against local
// partitioned diagnosis on the independent-cluster workloads: the same
// partition plan, but every subproblem serialized and shipped to a
// loopback-TCP worker fleet instead of the in-process pool — once over
// the historical dial-per-job transport (dial-2) and once over
// persistent multiplexed connections with streamed results (mux-2).
// Every series must match the local series' Resolved outcome exactly
// (the coordinator merges through the same verification path); the
// dial-vs-mux gap is the per-job connection setup the mux protocol
// deletes, which grows with the cluster count since every partition is
// one job.
func (r *Runner) FigDistributed() (*Table, error) {
	var clusterCounts []int
	var rowsPer, queriesPer int
	switch r.Scale {
	case Quick:
		clusterCounts, rowsPer, queriesPer = []int{8}, 5, 2
	case Large:
		clusterCounts, rowsPer, queriesPer = []int{8, 16, 32, 64}, 8, 3
	default:
		clusterCounts, rowsPer, queriesPer = []int{8, 16, 32}, 6, 3
	}
	t := &Table{ID: "distributed", Title: "distributed diagnosis: local partitioned vs loopback worker fleet",
		XLabel: "clusters",
		Caption: fmt.Sprintf("rows/cluster=%d queries/cluster=%d; one corrupted query per cluster; "+
			"dial-2 dials one of 2 qfix-worker processes per job (loopback TCP); "+
			"mux-2 multiplexes jobs over one persistent connection per worker, streaming results",
			rowsPer, queriesPer)}

	// Two real workers on loopback: the full serialize → TCP → solve →
	// deserialize path, in-process only in the sense of sharing the OS.
	workers, stop, err := startLoopbackWorkers(2)
	if err != nil {
		return nil, err
	}
	defer stop()

	series := []struct {
		name string
		dist bool
		mux  bool
	}{
		{"local-4", false, false},
		{"dial-2", true, false},
		{"mux-2", true, true},
	}
	for _, nc := range clusterCounts {
		for _, s := range series {
			opts := core.Options{
				Algorithm:    core.Basic,
				TupleSlicing: true,
				QuerySlicing: true,
				Partition:    4,
			}
			var coord *dist.Coordinator
			if s.dist {
				coord = dist.Connect(dist.Config{Mux: s.mux}, workers...)
				opts.PartitionSolver = coord
			}
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w, corruptIdx, err := PartitionClusters(nc, rowsPer, queriesPer,
					r.Seed+int64(rep)*353+int64(nc))
				if err != nil {
					return nil, err
				}
				in, err := w.MakeInstance(corruptIdx...)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			if coord != nil {
				coord.Close()
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, withPhases(Row{Series: s.name, X: fmt.Sprint(nc),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: distributedNote(pts)}, pts))
			r.logf("distributed %s clusters=%d: %.1fms solved=%.2f", s.name, nc, ms, ok)
		}
	}
	return t, nil
}

// startLoopbackWorkers launches n diagnosis workers on 127.0.0.1
// ephemeral ports, returning their addresses and a teardown func.
func startLoopbackWorkers(n int) (addrs []string, stop func(), err error) {
	var servers []*dist.Server
	stop = func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := &dist.Server{}
		servers = append(servers, srv)
		go srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
	}
	return addrs, stop, nil
}

// distributedNote reports how much of the work actually went remote,
// and how much of that streamed back over persistent mux connections.
func distributedNote(pts []point) string {
	remote, parts, streamed := 0, 0, 0
	for _, p := range pts {
		remote += p.stats.RemoteJobs
		parts += p.stats.Partitions
		streamed += p.stats.StreamedResults
	}
	if parts == 0 {
		return ""
	}
	if streamed > 0 {
		return fmt.Sprintf("remote=%d/%d jobs, %d streamed", remote, parts, streamed)
	}
	return fmt.Sprintf("remote=%d/%d jobs", remote, parts)
}
