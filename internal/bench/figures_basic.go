package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Fig4 reproduces Figure 4: execution time of the basic algorithm (every
// query parameterized) against parameterizing only the corrupted query,
// as the log grows. The paper's basic collapses around 50–80 queries on
// CPLEX; without CPLEX the collapse arrives proportionally earlier.
func (r *Runner) Fig4() (*Table, error) {
	var nd int
	var logSizes []int
	switch r.Scale {
	case Quick:
		nd, logSizes = 12, []int{2, 3}
	case Large:
		nd, logSizes = 30, []int{2, 4, 6, 8, 10}
	default:
		nd, logSizes = 20, []int{2, 3, 4, 6}
	}
	t := &Table{ID: "fig4", Title: "log size vs execution time over " + fmt.Sprint(nd) + " records",
		XLabel:  "Nq",
		Caption: "series basic = all queries parameterized (Algorithm 1); single = only the corrupted query parameterized"}
	for _, nq := range logSizes {
		for _, series := range []string{"basic", "single"} {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 5, Nq: nq, Vd: 200, Range: 40,
					Seed: r.Seed + int64(rep)*101 + int64(nq),
				})
				in, err := w.MakeInstance(0) // corrupt the oldest query
				if err != nil {
					return nil, err
				}
				opts := core.Options{Algorithm: core.Basic}
				if series == "single" {
					opts.Candidates = []int{0}
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: series, X: fmt.Sprint(nq),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig4 %s Nq=%d: %.1fms solved=%.2f", series, nq, ms, ok)
		}
	}
	return t, nil
}

// Fig6Multi reproduces Figures 6a/6d: multiple corruptions (every third
// query) repaired by basic and its slicing variants; performance and
// accuracy.
func (r *Runner) Fig6Multi() (*Table, error) {
	var nd int
	var logSizes []int
	switch r.Scale {
	case Quick:
		nd, logSizes = 12, []int{3}
	case Large:
		nd, logSizes = 30, []int{3, 6, 9, 12}
	default:
		nd, logSizes = 20, []int{3, 6, 9}
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"basic", core.Options{Algorithm: core.Basic}},
		{"basic-tuple", core.Options{Algorithm: core.Basic, TupleSlicing: true}},
		{"basic-query", core.Options{Algorithm: core.Basic, QuerySlicing: true}},
		{"basic-attr", core.Options{Algorithm: core.Basic, AttrSlicing: true}},
		{"basic-all", core.Options{Algorithm: core.Basic, TupleSlicing: true, QuerySlicing: true, AttrSlicing: true}},
	}
	t := &Table{ID: "fig6a/6d", Title: "multiple corruptions: basic and slicing variants",
		XLabel:  "Nq",
		Caption: fmt.Sprintf("ND=%d; every 3rd query corrupted, oldest first", nd)}
	for _, nq := range logSizes {
		var corrupt []int
		for i := 0; i < nq; i += 3 {
			corrupt = append(corrupt, i)
		}
		for _, v := range variants {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 10, Nq: nq, Vd: 200, Range: 30,
					Seed: r.Seed + int64(rep)*131 + int64(nq),
				})
				in, err := w.MakeInstance(corrupt...)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, v.opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: v.name, X: fmt.Sprint(nq),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: fmt.Sprintf("%d corruptions", len(corrupt))})
			r.logf("fig6multi %s Nq=%d: %.1fms f1=%.2f solved=%.2f", v.name, nq, ms, acc.F1, ok)
		}
	}
	return t, nil
}

// Fig6Single reproduces Figures 6b/6e: a single corruption in the oldest
// query, repaired incrementally with and without tuple slicing and with
// batch sizes k ∈ {1, 2, 8}. The paper finds k=1 with tuple slicing is
// the only configuration that scales with high accuracy.
func (r *Runner) Fig6Single() (*Table, error) {
	var nd int
	var logSizes []int
	switch r.Scale {
	case Quick:
		nd, logSizes = 20, []int{5, 10}
	case Large:
		nd, logSizes = 100, []int{10, 25, 50, 100}
	default:
		nd, logSizes = 50, []int{10, 20, 40}
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"inc1", core.Options{Algorithm: core.Incremental, K: 1}},
		{"inc1-tuple", core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}},
		{"inc2-tuple", core.Options{Algorithm: core.Incremental, K: 2, TupleSlicing: true}},
		{"inc8-tuple", core.Options{Algorithm: core.Incremental, K: 8, TupleSlicing: true}},
	}
	t := &Table{ID: "fig6b/6e", Title: "single corruption: incremental variants",
		XLabel:  "Nq",
		Caption: fmt.Sprintf("ND=%d; oldest query corrupted (worst case for newest-first scanning)", nd)}
	for _, nq := range logSizes {
		for _, v := range variants {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 10, Nq: nq, Vd: 200, Range: 20,
					Seed: r.Seed + int64(rep)*151 + int64(nq),
				})
				in, err := w.MakeInstance(0)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, v.opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: v.name, X: fmt.Sprint(nq),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig6single %s Nq=%d: %.1fms f1=%.2f", v.name, nq, ms, acc.F1)
		}
	}
	return t, nil
}

// Fig6QueryType reproduces Figures 6c/6f: inc1-tuple on INSERT-only,
// DELETE-only, and UPDATE-only logs with the oldest query corrupted.
// UPDATE repairs dominate cost; INSERT repairs stay nearly flat.
func (r *Runner) Fig6QueryType() (*Table, error) {
	var nd int
	var logSizes []int
	switch r.Scale {
	case Quick:
		nd, logSizes = 20, []int{5, 10}
	case Large:
		nd, logSizes = 100, []int{10, 25, 50, 100}
	default:
		nd, logSizes = 50, []int{10, 25, 50}
	}
	mixes := []struct {
		name string
		mix  workload.QueryMix
	}{
		{"INSERT", workload.InsertOnly},
		{"DELETE", workload.DeleteOnly},
		{"UPDATE", workload.UpdateOnly},
	}
	t := &Table{ID: "fig6c/6f", Title: "query-type workloads under inc1-tuple",
		XLabel:  "Nq",
		Caption: fmt.Sprintf("ND=%d; oldest query corrupted", nd)}
	opts := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true}
	for _, nq := range logSizes {
		for _, m := range mixes {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 10, Nq: nq, Vd: 200, Range: 10, Mix: m.mix,
					Seed: r.Seed + int64(rep)*171 + int64(nq),
				})
				in, err := w.MakeInstance(0)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, opts))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, Row{Series: m.name, X: fmt.Sprint(nq),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok})
			r.logf("fig6type %s Nq=%d: %.1fms f1=%.2f", m.name, nq, ms, acc.F1)
		}
	}
	return t, nil
}
