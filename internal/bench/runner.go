// Package bench reproduces every table and figure of the QFix evaluation
// (§7, Figures 4 and 6–10, plus the Figure 2 case study quoted in §7.4).
// Each driver regenerates the paper's workload at a configurable scale,
// runs the relevant algorithms, and reports the same series the paper
// plots: wall-clock latency and precision/recall/F1.
//
// Scales: the paper evaluates on CPLEX, which is orders of magnitude
// faster than this repository's stdlib-only MILP solver, so the default
// scale shrinks ND/Nq proportionally (documented per experiment in
// EXPERIMENTS.md). The shape of every result — which algorithm wins,
// where basic collapses, how slicing scales — is preserved; absolute
// numbers are not comparable.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Scale selects experiment sizing.
type Scale int

// Scales.
const (
	// Quick: smallest meaningful sizes; seconds per figure. Used by
	// `go test -bench` smoke benchmarks.
	Quick Scale = iota
	// Default: the EXPERIMENTS.md sizes; minutes for the full suite.
	Default
	// Large: closest to the paper that remains tractable without CPLEX.
	Large
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "default", "":
		return Default, nil
	case "large", "paper":
		return Large, nil
	}
	return Default, fmt.Errorf("bench: unknown scale %q (quick|default|large)", s)
}

// Runner executes experiments.
type Runner struct {
	Scale Scale
	Seed  int64
	// Reps averages each point over this many seeds (paper: 20).
	// Zero picks 1 (Quick) / 3 (Default) / 5 (Large).
	Reps int
	// TimeLimit per MILP solve (the paper's 1000s CPLEX budget). Zero
	// picks 10s (Quick) / 30s (Default) / 120s (Large).
	TimeLimit time.Duration
	// Out, when set, receives progress lines.
	Out io.Writer
}

func (r *Runner) reps() int {
	if r.Reps > 0 {
		return r.Reps
	}
	switch r.Scale {
	case Quick:
		return 1
	case Large:
		return 5
	default:
		return 3
	}
}

func (r *Runner) timeLimit() time.Duration {
	if r.TimeLimit > 0 {
		return r.TimeLimit
	}
	switch r.Scale {
	case Quick:
		return 10 * time.Second
	case Large:
		return 120 * time.Second
	default:
		return 30 * time.Second
	}
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Out != nil {
		fmt.Fprintf(r.Out, format+"\n", args...)
	}
}

// Experiment descriptor.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Table, error)
}

// Experiments lists every reproducible figure in evaluation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig4", "Log size vs execution time: basic vs single-query parameterization", (*Runner).Fig4},
		{"fig6a", "Multiple corruptions: performance of basic and slicing variants", (*Runner).Fig6Multi},
		{"fig6b", "Single corruption: incremental with/without tuple slicing, batch sizes", (*Runner).Fig6Single},
		{"fig6c", "Query-type workloads: INSERT/DELETE/UPDATE-only repair cost", (*Runner).Fig6QueryType},
		{"fig7a", "Attribute count vs time: value of query/attribute slicing", (*Runner).Fig7Attrs},
		{"fig7b", "Database size vs time on a wide table", (*Runner).Fig7DBSize},
		{"fig8a", "Database size vs time on a narrow table, old vs recent corruption", (*Runner).Fig8DBSize},
		{"fig8b", "Query clause types: Constant/Relative SET x Point/Range WHERE", (*Runner).Fig8ClauseType},
		{"fig8c", "Incomplete complaint sets: performance", (*Runner).Fig8Incomplete},
		{"fig8d", "Attribute skew vs time", (*Runner).Fig8Skew},
		{"fig8e", "Predicate dimensionality vs time", (*Runner).Fig8Dims},
		{"fig9", "OLTP benchmarks (TPC-C, TATP): latency vs corruption age", (*Runner).Fig9OLTP},
		{"fig10", "DecTree baseline vs QFix: performance and accuracy", (*Runner).Fig10DecTree},
		{"ex2", "Figure 2 case study: end-to-end repair of the tax example", (*Runner).Example2},
		{"ablation", "Implementation ablations: folding, param windows, warm LP starts", (*Runner).Ablation},
		{"partition", "Partition-parallel diagnosis: joint vs partitioned on independent complaint clusters", (*Runner).FigPartition},
		{"distributed", "Distributed diagnosis: local partitioned vs loopback qfix-worker fleet", (*Runner).FigDistributed},
		{"impactcache", "Impact cache: repeat-diagnosis latency, cold vs cached vs incrementally extended", (*Runner).FigImpactCache},
		{"warmstart", "Solver warm starts: seeded branch-and-bound across batches, partitions, and repeat diagnoses", (*Runner).FigWarmStart},
		{"solver", "MILP solver stack: presolve and parallel branch-and-bound on big-M models", (*Runner).FigSolver},
		{"daemon", "Resident multi-tenant daemon: sustained mixed-tenant diagnosis throughput and latency percentiles", (*Runner).FigDaemon},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// point is one measured repair run.
type point struct {
	ms       float64
	acc      workload.Accuracy
	resolved bool
	stats    core.Stats
}

// measure runs one diagnosis and scores it. Unresolved runs score zero
// accuracy (the paper's treatment of timeouts/infeasibility in §7.2).
func (r *Runner) measure(in *workload.Instance, complaints []core.Complaint, opts core.Options) point {
	if opts.TimeLimit == 0 {
		opts.TimeLimit = r.timeLimit()
	}
	if opts.TotalTimeLimit == 0 {
		opts.TotalTimeLimit = 4 * r.timeLimit()
	}
	start := time.Now()
	rep, err := core.Diagnose(in.W.D0, in.Dirty, complaints, opts)
	elapsed := time.Since(start)
	p := point{ms: float64(elapsed.Microseconds()) / 1000}
	if err != nil || rep == nil {
		return p
	}
	p.stats = rep.Stats
	p.resolved = rep.Resolved
	if rep.Resolved {
		if acc, err := in.Evaluate(rep.Log); err == nil {
			p.acc = acc
		}
	}
	return p
}

// phases aggregates the mean per-phase milliseconds across points —
// the same Stats timers the CLI's -v breakdown prints, so a BENCH row
// and a qfix run describe one diagnosis the same way.
func phases(points []point) (plan, encode, solve, merge float64) {
	if len(points) == 0 {
		return 0, 0, 0, 0
	}
	n := float64(len(points))
	for _, p := range points {
		plan += float64(p.stats.PlanTime.Microseconds()) / 1000
		encode += float64(p.stats.EncodeTime.Microseconds()) / 1000
		solve += float64(p.stats.SolveTime.Microseconds()) / 1000
		merge += float64(p.stats.MergeTime.Microseconds()) / 1000
	}
	return plan / n, encode / n, solve / n, merge / n
}

// withPhases stamps a row with the mean phase breakdown of its points.
func withPhases(row Row, points []point) Row {
	row.PlanMS, row.EncodeMS, row.SolveMS, row.MergeMS = phases(points)
	return row
}

// avg aggregates repetition points into a table row.
func avg(points []point) (ms float64, acc workload.Accuracy, okFrac float64) {
	if len(points) == 0 {
		return 0, workload.Accuracy{}, 0
	}
	n := float64(len(points))
	for _, p := range points {
		ms += p.ms
		acc.Precision += p.acc.Precision
		acc.Recall += p.acc.Recall
		acc.F1 += p.acc.F1
		if p.resolved {
			okFrac++
		}
	}
	ms /= n
	acc.Precision /= n
	acc.Recall /= n
	acc.F1 /= n
	okFrac /= n
	return ms, acc, okFrac
}
