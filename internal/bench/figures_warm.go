package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// FigWarmStart measures solver warm starts (Options.WarmStart). This is
// no paper figure — it quantifies the ROADMAP's "solver warm starts
// across partitions and incremental batches" item. Warm starts never
// change the repair (the property tests pin byte-identity); this table
// shows what they buy: admitted seeds (Stats.WarmSeeds) and the
// branch-and-bound work they prune (Stats.Nodes / Stats.LPIters, in the
// note column).
//
// Incremental series (x = log size, UPDATE-only workload, incremental +
// tuple slicing so refinement rounds run):
//
//	inc-cold         plain diagnosis
//	inc-warm         WarmStart on: refinement rounds seed from the
//	                 step-1 repair they refine
//	inc-warm-repeat  second diagnosis through a shared SolutionCache:
//	                 every solve seeds from its prior solution + basis
//
// Partition series (x = clusters, the partition bench workload,
// partition-parallel Basic):
//
//	part-cold         plain partitioned diagnosis
//	part-warm-repeat  repeat partitioned diagnosis through a shared
//	                  SolutionCache: each partition's solve seeds from
//	                  its prior solution
func (r *Runner) FigWarmStart() (*Table, error) {
	var sizes []int
	var clusterCounts []int
	switch r.Scale {
	case Quick:
		sizes, clusterCounts = []int{30}, []int{8}
	case Large:
		sizes, clusterCounts = []int{80, 160}, []int{32, 64}
	default:
		sizes, clusterCounts = []int{60}, []int{32}
	}

	t := &Table{ID: "warmstart", Title: "solver warm starts: seeded branch-and-bound across batches, partitions, and repeat diagnoses",
		XLabel: "size",
		Caption: "inc series x = log size (UPDATE-only, one recent corruption); part series x = clusters " +
			"(partition bench workload, one corrupted query per cluster); " +
			"note shows mean branch-and-bound nodes / LP iterations / admitted warm seeds"}

	incOpts := core.Options{Algorithm: core.Incremental, TupleSlicing: true, QuerySlicing: true}
	for _, nq := range sizes {
		var cold, warm, repeat []point
		for rep := 0; rep < r.reps(); rep++ {
			w, err := workload.Generate(workload.Config{
				ND: 40, Na: 5, Nq: nq, Mix: workload.UpdateOnly,
				Seed: r.Seed + int64(rep)*131 + int64(nq)})
			if err != nil {
				return nil, err
			}
			in, err := w.MakeInstance(nq * 3 / 4)
			if err != nil {
				return nil, err
			}
			cold = append(cold, r.measure(in, in.Complaints, incOpts))

			wOpts := incOpts
			wOpts.WarmStart = true
			warm = append(warm, r.measure(in, in.Complaints, wOpts))

			wOpts.SolutionCache = core.NewSolutionCache(0)
			r.measure(in, in.Complaints, wOpts) // fill the cache
			repeat = append(repeat, r.measure(in, in.Complaints, wOpts))
		}
		for _, s := range []struct {
			name string
			pts  []point
		}{{"inc-cold", cold}, {"inc-warm", warm}, {"inc-warm-repeat", repeat}} {
			ms, acc, ok := avg(s.pts)
			t.Rows = append(t.Rows, Row{Series: s.name, X: fmt.Sprint(nq),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: warmNote(s.pts)})
			r.logf("warmstart %s nq=%d: %.1fms %s", s.name, nq, ms, warmNote(s.pts))
		}
	}

	partOpts := core.Options{Algorithm: core.Basic, TupleSlicing: true,
		QuerySlicing: true, Partition: 4}
	for _, nc := range clusterCounts {
		var cold, repeat []point
		for rep := 0; rep < r.reps(); rep++ {
			w, corruptIdx, err := PartitionClusters(nc, 6, 3,
				r.Seed+int64(rep)*353+int64(nc))
			if err != nil {
				return nil, err
			}
			in, err := w.MakeInstance(corruptIdx...)
			if err != nil {
				return nil, err
			}
			cold = append(cold, r.measure(in, in.Complaints, partOpts))

			wOpts := partOpts
			wOpts.WarmStart = true
			wOpts.SolutionCache = core.NewSolutionCache(2 * nc)
			r.measure(in, in.Complaints, wOpts) // fill the cache
			repeat = append(repeat, r.measure(in, in.Complaints, wOpts))
		}
		for _, s := range []struct {
			name string
			pts  []point
		}{{"part-cold", cold}, {"part-warm-repeat", repeat}} {
			ms, acc, ok := avg(s.pts)
			t.Rows = append(t.Rows, Row{Series: s.name, X: fmt.Sprint(nc),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: warmNote(s.pts)})
			r.logf("warmstart %s clusters=%d: %.1fms %s", s.name, nc, ms, warmNote(s.pts))
		}
	}
	return t, nil
}

// warmNote summarizes solver work and seed admissions across points.
func warmNote(pts []point) string {
	if len(pts) == 0 {
		return ""
	}
	nodes, iters, seeds := 0, 0, 0
	for _, p := range pts {
		nodes += p.stats.Nodes
		iters += p.stats.LPIters
		seeds += p.stats.WarmSeeds
	}
	n := len(pts)
	return fmt.Sprintf("nodes=%d lpiters=%d warmseeds=%d", nodes/n, iters/n, seeds/n)
}
