package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// FigSolver measures the MILP solver stack — sparse revised simplex
// with a factorized basis, the root presolve, and parallel
// branch-and-bound — on the big-M-heavy configuration (encoder constant
// folding disabled, so the raw indicator rows reach the solver). This
// is no paper figure: it pins the solver rebuild's wall-clock claim the
// way `ablation` pins the encoder's.
//
// Series (x = corrupted query index, single-corruption incremental):
//
//	no-presolve-seq  root presolve off, sequential search: the raw
//	                 big-M model, every node paying full-size LPs
//	presolve-seq     presolve on, sequential search (the default)
//	presolve-par     presolve on, one search worker per CPU
//	                 (byte-identical repairs — see the determinism
//	                 property tests)
//
// For the record: before the revised-simplex rebuild, the dense
// tableau solver took 9784ms on this figure's quick-scale q7 cell
// (no-folding ablation, seed 1); the sparse stack brought the same
// cell to ~2300ms and presolve to ~10ms.
func (r *Runner) FigSolver() (*Table, error) {
	var nd, nq int
	switch r.Scale {
	case Quick:
		nd, nq = 50, 15
	case Large:
		nd, nq = 100, 60
	default:
		nd, nq = 100, 30
	}
	base := core.Options{Algorithm: core.Incremental, K: 1, TupleSlicing: true,
		NoFolding: true}
	variants := []struct {
		name string
		mod  func(o core.Options) core.Options
	}{
		{"no-presolve-seq", func(o core.Options) core.Options { o.NoPresolve = true; return o }},
		{"presolve-seq", func(o core.Options) core.Options { return o }},
		{"presolve-par", func(o core.Options) core.Options { o.SolverParallel = -1; return o }},
	}
	t := &Table{ID: "solver", Title: "MILP solver stack: presolve and parallel branch-and-bound on big-M models",
		XLabel: "corrupt",
		Caption: fmt.Sprintf("ND=%d Nq=%d, inc1-tuple, encoder folding off (raw big-M rows); "+
			"note shows mean branch-and-bound nodes / LP iterations / basis refactorizations / presolved rows", nd, nq)}
	for _, idx := range []int{nq - 1, nq / 2} {
		for _, v := range variants {
			var pts []point
			for rep := 0; rep < r.reps(); rep++ {
				w := workload.MustGenerate(workload.Config{
					ND: nd, Na: 5, Nq: nq, Vd: 200, Range: 20,
					Seed: r.Seed + int64(rep)*401 + int64(idx),
				})
				in, err := w.MakeInstance(idx)
				if err != nil {
					return nil, err
				}
				pts = append(pts, r.measure(in, in.Complaints, v.mod(base)))
			}
			ms, acc, ok := avg(pts)
			t.Rows = append(t.Rows, withPhases(Row{Series: v.name, X: fmt.Sprintf("q%d", idx),
				TimeMS: ms, Precision: acc.Precision, Recall: acc.Recall, F1: acc.F1, Solved: ok,
				Note: solverNote(pts)}, pts))
			r.logf("solver %s idx=%d: %.1fms %s", v.name, idx, ms, solverNote(pts))
		}
	}
	return t, nil
}

// solverNote summarizes the solver work behind a series of points.
func solverNote(pts []point) string {
	if len(pts) == 0 {
		return ""
	}
	nodes, iters, refac, prows := 0, 0, 0, 0
	for _, p := range pts {
		nodes += p.stats.Nodes
		iters += p.stats.LPIters
		refac += p.stats.Refactorizations
		prows += p.stats.PresolvedRows
	}
	n := len(pts)
	return fmt.Sprintf("nodes=%d lpiters=%d refactors=%d presolvedrows=%d",
		nodes/n, iters/n, refac/n, prows/n)
}
