// Package sched holds the worker-pool primitives shared by every layer
// that fans work out over goroutines: the core solve scans (incremental
// batches, partitions) and the milp parallel branch-and-bound. It is a
// leaf package — core imports encode imports milp, so the scheduler must
// live below all of them.
package sched

import (
	"sync"

	"repro/internal/obs"
)

// Process-wide gauges on obs.Default(): how many scheduler jobs are
// waiting in feeds and how many pool goroutines are live right now.
// Updated with one atomic op per job/worker transition — invisible next
// to the MILP solves the jobs carry.
var (
	mQueueDepth = obs.Default().Gauge("qfix_sched_queue_depth",
		"Scheduler jobs submitted but not yet started, across all active pools.")
	mWorkers = obs.Default().Gauge("qfix_sched_workers",
		"Live scheduler pool goroutines (Schedule/ScheduleOrder/Workers).")
)

// Schedule fans jobs 0..n-1 out over a pool of at most workers
// concurrent goroutines, starting them in index order.
func Schedule[R any](workers, n int, job func(i int) R) (results []chan R, wait func()) {
	return ScheduleOrder(workers, n, nil, job)
}

// ScheduleOrder is Schedule with an explicit start order: order[k] is
// the k-th job index handed to the pool (nil means 0..n-1; otherwise it
// must be a permutation of 0..n-1). The partition scan passes its
// largest-first order here so the biggest MILP is never stuck behind
// the queue defining the critical path.
//
// Every job gets its own 1-buffered result channel, so the consumer can
// adjudicate results in SUBMISSION order (index order, not start order)
// while later jobs are still running — the property the callers rely on
// for determinism: whichever job finishes first, and whatever order the
// pool started them in, the *choice* among results is made in a fixed
// order. Jobs that want to short-circuit after a decision (e.g. batches
// older than an accepted repair) check their own cancellation flag
// inside job; the scheduler itself never drops a slot.
//
// wait blocks until every job has delivered its result.
func ScheduleOrder[R any](workers, n int, order []int, job func(i int) R) (results []chan R, wait func()) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	results = make([]chan R, n)
	for i := range results {
		results[i] = make(chan R, 1)
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		mWorkers.Add(1)
		go func() {
			defer wg.Done()
			defer mWorkers.Add(-1)
			// The pool's cancellation contract lives in the jobs, not the
			// plumbing: feed is always closed by the feeder, every job
			// delivers into its own 1-buffered channel (the send never
			// blocks), and jobs that should stop early check their own
			// flag/deadline. A ctx here would double-encode that contract.
			//qfix:ctx-ok pool drains a closed feed; sends are 1-buffered; jobs own cancellation
			for i := range feed {
				mQueueDepth.Add(-1)
				results[i] <- job(i)
			}
		}()
	}
	mQueueDepth.Add(int64(n))
	go func() {
		if order == nil {
			// Feeding cannot wedge: the pool above keeps receiving until
			// feed closes, and it closes right after these sends.
			//qfix:ctx-ok every send is matched by a pool receive; close follows
			for i := 0; i < n; i++ {
				feed <- i
			}
		} else {
			//qfix:ctx-ok every send is matched by a pool receive; close follows
			for _, i := range order {
				feed <- i
			}
		}
		close(feed)
	}()
	return results, wg.Wait
}

// Workers starts fn on n goroutines (worker ids 0..n-1) and returns a
// function that blocks until all of them return. It is the open-ended
// counterpart to Schedule for pools that pull work from shared state
// rather than a job list — the speculative LP workers of the parallel
// branch-and-bound search claim nodes off the search's own heap.
func Workers(n int, fn func(worker int)) (wait func()) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		mWorkers.Add(1)
		go func(id int) {
			defer wg.Done()
			defer mWorkers.Add(-1)
			fn(id)
		}(w)
	}
	return wg.Wait
}
