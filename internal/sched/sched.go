// Package sched holds the worker-pool primitives shared by every layer
// that fans work out over goroutines: the core solve scans (incremental
// batches, partitions) and the milp parallel branch-and-bound. It is a
// leaf package — core imports encode imports milp, so the scheduler must
// live below all of them.
package sched

import (
	"sync"

	"repro/internal/obs"
)

// Process-wide gauges on obs.Default(): how many scheduler jobs are
// waiting in feeds and how many pool goroutines are live right now.
// Updated with one atomic op per job/worker transition — invisible next
// to the MILP solves the jobs carry.
var (
	mQueueDepth = obs.Default().Gauge("qfix_sched_queue_depth",
		"Scheduler jobs submitted but not yet started, across all active pools.")
	mWorkers = obs.Default().Gauge("qfix_sched_workers",
		"Live scheduler pool goroutines (Schedule/ScheduleOrder/Workers).")
)

// Schedule fans jobs 0..n-1 out over a pool of at most workers
// concurrent goroutines, starting them in index order.
func Schedule[R any](workers, n int, job func(i int) R) (results []chan R, wait func()) {
	return ScheduleOrder(workers, n, nil, job)
}

// ScheduleOrder is Schedule with an explicit start order: order[k] is
// the k-th job index handed to the pool (nil means 0..n-1; otherwise it
// must be a permutation of 0..n-1). The partition scan passes its
// largest-first order here so the biggest MILP is never stuck behind
// the queue defining the critical path.
//
// Every job gets its own 1-buffered result channel, so the consumer can
// adjudicate results in SUBMISSION order (index order, not start order)
// while later jobs are still running — the property the callers rely on
// for determinism: whichever job finishes first, and whatever order the
// pool started them in, the *choice* among results is made in a fixed
// order. Jobs that want to short-circuit after a decision (e.g. batches
// older than an accepted repair) check their own cancellation flag
// inside job; the scheduler itself never drops a slot.
//
// wait blocks until every job has delivered its result.
func ScheduleOrder[R any](workers, n int, order []int, job func(i int) R) (results []chan R, wait func()) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	results = make([]chan R, n)
	for i := range results {
		results[i] = make(chan R, 1)
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		mWorkers.Add(1)
		go func() {
			defer wg.Done()
			defer mWorkers.Add(-1)
			// The pool's cancellation contract lives in the jobs, not the
			// plumbing: feed is always closed by the feeder, every job
			// delivers into its own 1-buffered channel (the send never
			// blocks), and jobs that should stop early check their own
			// flag/deadline. A ctx here would double-encode that contract.
			//qfix:ctx-ok pool drains a closed feed; sends are 1-buffered; jobs own cancellation
			for i := range feed {
				mQueueDepth.Add(-1)
				results[i] <- job(i)
			}
		}()
	}
	mQueueDepth.Add(int64(n))
	// The feeder performs exactly n sends, each matched by a worker
	// receive, then closes feed — termination is structural, not
	// signal-driven.
	//qfix:leak-ok feeder makes n matched sends then closes feed; workers drain it
	go func() {
		if order == nil {
			// Feeding cannot wedge: the pool above keeps receiving until
			// feed closes, and it closes right after these sends.
			//qfix:ctx-ok every send is matched by a pool receive; close follows
			for i := 0; i < n; i++ {
				feed <- i
			}
		} else {
			//qfix:ctx-ok every send is matched by a pool receive; close follows
			for _, i := range order {
				feed <- i
			}
		}
		close(feed)
	}()
	return results, wg.Wait
}

// Pool is a resident worker pool: a fixed set of long-lived goroutines
// draining one shared run queue. It exists for resident services
// (internal/qfixd) that multiplex many concurrent diagnoses onto one
// process: Schedule/ScheduleOrder spin up a fresh pool per scan, which
// is right for a one-shot CLI run but makes every diagnosis in a daemon
// pay goroutine churn and lets concurrent diagnoses oversubscribe the
// CPU (each scan sizing its own pool as if it were alone). A Pool is
// created once, shared via core.Options.Scheduler, and bounds the
// process's total solve concurrency at its worker count while each
// scan's OnPool call still bounds that scan's share.
//
// Close-after-drain contract: Submit after Close panics. Owners stop
// feeding work (drain their in-flight diagnoses) before closing; the
// qfixd server's graceful drain is exactly that sequence.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// NewPool starts a resident pool of n workers (n < 1 picks 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{jobs: make(chan func())}
	for w := 0; w < n; w++ {
		p.wg.Add(1)
		mWorkers.Add(1)
		go func() {
			defer p.wg.Done()
			defer mWorkers.Add(-1)
			// Resident workers live until Close closes the queue; jobs
			// own their cancellation exactly as in ScheduleOrder.
			//qfix:ctx-ok exits via Close(): closed jobs channel ends the range
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Close stops the pool: no further submissions are accepted and the
// call blocks until every queued job has run. Callers must have stopped
// feeding scans first (see the type comment).
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// OnPool is ScheduleOrder running on a resident pool instead of fresh
// goroutines: jobs 0..n-1 are fed to p in the given start order, at
// most `workers` of this batch in flight at once (the batch's share of
// the pool), each delivering into its own 1-buffered result channel so
// the consumer adjudicates in submission order — the same determinism
// contract as ScheduleOrder, which is why the chosen result is
// independent of which pool worker ran which job or how batches from
// concurrent scans interleave on the shared queue. (A generic method is
// not expressible on Pool, hence the package-level function.)
func OnPool[R any](p *Pool, workers, n int, order []int, job func(i int) R) (results []chan R, wait func()) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	results = make([]chan R, n)
	for i := range results {
		results[i] = make(chan R, 1)
	}
	var wg sync.WaitGroup
	wg.Add(n)
	share := make(chan struct{}, workers)
	mQueueDepth.Add(int64(n))
	go func() {
		// The feeder blocks on the batch's share semaphore, then on the
		// pool queue; both drain monotonically (every job releases its
		// share token and every submitted job runs), so feeding cannot
		// wedge. Jobs own cancellation, as everywhere in this package.
		feed := func(i int) {
			share <- struct{}{}
			p.jobs <- func() {
				mQueueDepth.Add(-1)
				results[i] <- job(i)
				<-share
				wg.Done()
			}
		}
		if order == nil {
			for i := 0; i < n; i++ {
				feed(i)
			}
		} else {
			for _, i := range order {
				feed(i)
			}
		}
	}()
	return results, wg.Wait
}

// Workers starts fn on n goroutines (worker ids 0..n-1) and returns a
// function that blocks until all of them return. It is the open-ended
// counterpart to Schedule for pools that pull work from shared state
// rather than a job list — the speculative LP workers of the parallel
// branch-and-bound search claim nodes off the search's own heap.
func Workers(n int, fn func(worker int)) (wait func()) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		mWorkers.Add(1)
		go func(id int) {
			defer wg.Done()
			defer mWorkers.Add(-1)
			fn(id)
		}(w)
	}
	return wg.Wait
}
