package encode

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/milp"
)

// assignFinals pins the symbolic final state (AssignVals, §4.2):
//
//   - complaint tuples must equal their target t* (hard),
//   - with FixNonComplaints, every other encoded tuple must equal its
//     dirty final state (hard — the basic algorithm),
//   - soft tuples instead contribute an "affected" indicator to the
//     objective (tuple-slicing refinement, §5.1 step 2).
func (e *encoder) assignFinals(complaints []Complaint) error {
	byID := make(map[int64]*Complaint, len(complaints))
	for i := range complaints {
		c := &complaints[i]
		if byID[c.TupleID] != nil {
			return fmt.Errorf("encode: duplicate complaint for tuple %d", c.TupleID)
		}
		if _, ok := e.tracked[c.TupleID]; !ok {
			return fmt.Errorf("encode: complaint tuple %d never existed in the replayed log", c.TupleID)
		}
		byID[c.TupleID] = c
	}

	for _, t := range e.order {
		if c, ok := byID[t.id]; ok {
			t.isComplaint = true
			if err := e.pinTuple(t, c.Exists, c.Values); err != nil {
				return err
			}
			continue
		}
		if t.soft {
			e.softObjective(t)
			continue
		}
		if e.opt.FixNonComplaints {
			var vals []float64
			if t.dirtyAlive {
				vals = t.dirtyVals
			}
			if err := e.pinTuple(t, t.dirtyAlive, vals); err != nil {
				return err
			}
		}
	}
	return nil
}

// pinTuple constrains a tuple's final liveness and (when it should exist)
// its tracked attribute values. Constant/known mismatches become an
// explicitly infeasible row so the solver reports infeasibility, matching
// the paper's semantics (an unrepairable complaint set is "infeasible",
// not an error).
func (e *encoder) pinTuple(t *tstate, exists bool, values []float64) error {
	want := 0.0
	if exists {
		want = 1
	}
	if t.alive.known {
		if t.alive.b != exists {
			e.addInfeasibleRow()
			return nil
		}
	} else {
		rowEQ(e.m, varAff(e.m, t.alive.v), want)
	}
	if !exists {
		return nil
	}
	for a := 0; a < e.width; a++ {
		target := values[a]
		if !t.trackedAttr[a] {
			// Frozen attributes exactly equal the dirty replay; a target
			// that disagrees cannot be met under this slicing.
			if math.Abs(t.dirtyVals[a]-target) > 1e-9 {
				return fmt.Errorf("encode: tuple %d attribute %d (%s) needs value %v but is frozen at %v; widen the attribute slice",
					t.id, a, e.sch.Attr(a), target, t.dirtyVals[a])
			}
			continue
		}
		v := t.vals[a]
		if v.isConst() {
			if math.Abs(v.c-target) > 1e-9 {
				e.addInfeasibleRow()
			}
			continue
		}
		rowEQ(e.m, v, target)
	}
	return nil
}

// addInfeasibleRow encodes 0 = 1, making the model infeasible.
func (e *encoder) addInfeasibleRow() { e.m.AddEQ(nil, 1) }

// softObjective attaches the refinement objective for one non-complaint
// tuple: a binary that is forced to 1 whenever any parameterized query's
// repaired condition matches the tuple, weighted so that minimizing the
// count of affected tuples dominates parameter distance.
func (e *encoder) softObjective(t *tstate) {
	var sigmas []milp.Var
	constMatched := false
	for k, v := range e.sigma {
		if k.Tuple == t.id {
			sigmas = append(sigmas, v)
		}
	}
	// The map scan above yields the tuple's sigma variables in random
	// order, and each one becomes a constraint row below: without this
	// sort, MILP row order — and with it simplex pivoting and node/LP
	// iteration counts — varied run to run on refinement paths. Found
	// by detmap (qfix-vet).
	slices.Sort(sigmas)
	for k := range e.sigmaTrue {
		if k.Tuple == t.id {
			constMatched = true
		}
	}
	if constMatched {
		// Matched under every parameter choice: constant objective cost.
		e.m.AddObjConst(e.opt.ObjSoftWeight)
		return
	}
	if len(sigmas) == 0 {
		return
	}
	aff := e.m.NewBinary()
	for _, s := range sigmas {
		// affected >= sigma
		e.m.AddGE([]milp.Term{{Var: aff, Coef: 1}, {Var: s, Coef: -1}}, 0)
	}
	e.m.SetObjCoef(aff, e.opt.ObjSoftWeight)
	e.affected[t.id] = aff
}
