package encode

import (
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

// The ablation switches must preserve answers while changing model sizes.

func TestNoFoldingEquivalentButBigger(t *testing.T) {
	// A log whose prefix folds away entirely under the default encoder:
	// NoFolding must encode every predicate evaluation symbolically.
	sch := relationSchemaAB(t)
	d0 := relationTableAB(sch)
	var log []query.Query
	for i := 0; i < 9; i++ {
		log = append(log, query.NewUpdate(
			[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(1, query.Term{Attr: 1, Coef: 1})}},
			query.AttrPred(0, query.GE, float64(i*10))))
	}
	log = append(log, query.NewUpdate(
		[]query.SetClause{{Attr: 1, Expr: query.ConstExpr(777)}},
		query.AttrPred(0, query.GE, 80)))
	dirty, err := query.Replay(log, d0)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := dirty.Get(9)
	complaints := []Complaint{{TupleID: 9, Exists: true, Values: tp.Values}}

	folded, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{9: true},
		TupleIDs:     []int64{9},
	})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{9: true},
		TupleIDs:     []int64{9},
		NoFolding:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Stats.Rows <= folded.Stats.Rows {
		t.Errorf("NoFolding rows %d not larger than folded %d",
			exhaustive.Stats.Rows, folded.Stats.Rows)
	}
	if exhaustive.Stats.Binaries <= folded.Stats.Binaries {
		t.Errorf("NoFolding binaries %d not larger than folded %d",
			exhaustive.Stats.Binaries, folded.Stats.Binaries)
	}

	// Both must produce a valid repair with the same data effect.
	for name, res := range map[string]*Result{"folded": folded, "exhaustive": exhaustive} {
		mres, vals := res.Solve(60*time.Second, 0)
		if !mres.HasSolution {
			t.Fatalf("%s: no solution (%v)", name, mres.Status)
		}
		repaired := applyRepair(t, log, res.Params, vals)
		final, err := query.Replay(repaired, d0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range complaints {
			got, ok := final.Get(c.TupleID)
			if !ok || got.Values[1] != c.Values[1] {
				t.Errorf("%s: complaint %d unresolved", name, c.TupleID)
			}
		}
	}
}

func relationSchemaAB(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("T", []string{"a", "b"}, "")
}

func relationTableAB(sch *relation.Schema) *relation.Table {
	tb := relation.NewTable(sch)
	for i := 0; i < 10; i++ {
		tb.MustInsert(float64(i*10), 0)
	}
	return tb
}

func TestNoParamWindowsEquivalent(t *testing.T) {
	d0, log, complaints := figure2()
	for _, noWin := range []bool{false, true} {
		res, err := Encode(d0, log, complaints, Options{
			ParamQueries:   map[int]bool{0: true},
			TupleIDs:       []int64{3, 4},
			NoParamWindows: noWin,
		})
		if err != nil {
			t.Fatal(err)
		}
		mres, vals := res.Solve(60*time.Second, 0)
		if !mres.HasSolution {
			t.Fatalf("noWin=%v: %v", noWin, mres.Status)
		}
		repaired := applyRepair(t, log, res.Params, vals)
		theta := repaired[0].(*query.Update).Where.(*query.Pred).RHS
		if theta <= 86500 {
			t.Errorf("noWin=%v: theta = %v", noWin, theta)
		}
	}
}

func TestWindowsShrinkParamBounds(t *testing.T) {
	d0, log, complaints := figure2()
	win, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	noWin, err := Encode(d0, log, complaints, Options{
		ParamQueries:   map[int]bool{0: true},
		TupleIDs:       []int64{3, 4},
		NoParamWindows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The WHERE parameter (index 1) must have a tighter range with
	// windows on.
	span := func(r *Result, idx int) float64 {
		lb, ub := r.Model.Bounds(r.Params[idx].Var)
		return ub - lb
	}
	if span(win, 1) >= span(noWin, 1) {
		t.Errorf("window span %v not tighter than %v", span(win, 1), span(noWin, 1))
	}
	// The original value always stays inside the window.
	lb, ub := win.Model.Bounds(win.Params[1].Var)
	if orig := win.Params[1].Orig; orig < lb || orig > ub {
		t.Errorf("orig %v outside window [%v, %v]", orig, lb, ub)
	}
}
