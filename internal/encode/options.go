package encode

import (
	"math"
	"time"

	"repro/internal/milp"
)

// Complaint is the encoder-level view of a complaint c : t -> t* (paper
// Definition 4): the tuple identified by TupleID should end the log in
// the given state. Exists=false models c : t -> ⊥ (the tuple should have
// been deleted). Insertion complaints ⊥ -> t* are expressed against the
// ID the insert produced (the tuple exists in the dirty final state or
// was wrongly deleted; truly never-created tuples are out of scope, as
// in the paper).
type Complaint struct {
	TupleID int64
	Exists  bool
	Values  []float64 // target values; ignored when Exists is false
}

// Options configures one encoding.
type Options struct {
	// ParamQueries marks the log indices whose constants become MILP
	// variables (the repair surface). Basic parameterizes every index;
	// Inc_k parameterizes a k-batch (§5.4).
	ParamQueries map[int]bool

	// TupleIDs restricts encoding to these tuples (tuple slicing, §5.1).
	// nil encodes every tuple, including insert-born ones.
	TupleIDs []int64

	// Attrs seeds the tracked attribute set (attribute slicing, §5.3).
	// nil tracks all attributes. Attributes outside the set are frozen to
	// their dirty-replay values; the encoder auto-promotes a frozen
	// attribute if a symbolic write would otherwise corrupt it, so a too-
	// small seed costs completeness of the slicing saving, not soundness.
	Attrs []int

	// FixNonComplaints adds hard final-state equality constraints for
	// encoded tuples that carry no complaint (the basic algorithm's
	// behaviour, §4.2 AssignVals).
	FixNonComplaints bool

	// SoftTupleIDs lists tuples whose final state is not constrained;
	// instead the objective counts, per tuple, whether any parameterized
	// query's condition matches it (the tuple-slicing refinement step,
	// §5.1 step 2).
	SoftTupleIDs []int64

	// DomainBound M: bound on |values| and parameter deviation. Zero
	// auto-sizes from the data and log (2×max|value| + 10).
	DomainBound float64

	// Eps separates strict comparisons and equality complements
	// (default 0.5, exact for the paper's integer-valued workloads).
	Eps float64

	// Normalize weights each parameter's deviation by 1/max(1,|orig|)
	// (the "normalized" Manhattan distance of §4.3).
	Normalize bool

	// ObjParamWeight scales the parameter-distance objective (default 1).
	ObjParamWeight float64
	// ObjSoftWeight scales the affected-tuple count objective used by the
	// refinement step (default 1e4, so the count dominates distance).
	ObjSoftWeight float64

	// NoFolding disables constant-folding presolve: every σ evaluation
	// and value update is encoded symbolically, as in a literal reading
	// of the paper's Algorithm 1. Ablation switch; see BenchmarkAblation.
	NoFolding bool
	// NoParamWindows disables the predicate-parameter window tightening
	// (an engineering addition of this implementation). Ablation switch.
	NoParamWindows bool
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.ObjParamWeight <= 0 {
		o.ObjParamWeight = 1
	}
	if o.ObjSoftWeight <= 0 {
		o.ObjSoftWeight = 1e4
	}
	return o
}

// ParamRef locates one parameter variable: parameter Index of log entry
// Query (canonical order, see internal/query), its original value, and
// the model variable holding its repaired value.
type ParamRef struct {
	Query int
	Index int
	Orig  float64
	Var   milp.Var
}

// SigmaKey addresses the σ literal of (query index, tuple ID).
type SigmaKey struct {
	Query int
	Tuple int64
}

// Stats summarizes encoding size, the quantities Figures 4–8 reason about.
type Stats struct {
	Rows          int // constraint rows
	Vars          int // model variables
	Binaries      int // integer/binary variables
	FoldedSigmas  int // σ evaluations decided by constant folding
	SymbolSigmas  int // σ evaluations that produced binaries
	TuplesTracked int
}

// Result is an encoded MILP plus the bookkeeping to interpret solutions.
type Result struct {
	Model  *milp.Model
	Params []ParamRef
	// Sigma maps parameterized queries' symbolic σ literals; entries
	// exist only where folding failed. Used by tests and diagnostics.
	Sigma map[SigmaKey]milp.Var
	// Affected holds, per soft tuple, the binary that indicates the
	// repair touched it (refinement objective).
	Affected map[int64]milp.Var
	Stats    Stats
	// Eps is the separation the encoding was built with; it gates how
	// aggressively solved parameters may be snapped.
	Eps float64
}

// Solve runs the model with the given limits and returns the repaired
// parameter values (by Params order) when a solution exists.
//
// Returned parameters are snapped: a value within 1e-6 of the original
// parameter or of an integer is rounded to it. LP solutions carry
// O(feasTol) noise, and replay semantics are exact — without snapping, a
// repaired bound of 62.999999999999986 silently excludes a tuple with
// value 63. Snapping is sound here because predicate sides are separated
// by Options.Eps (default 0.5), far wider than the snap radius.
func (r *Result) Solve(timeLimit time.Duration, maxNodes int) (milp.Result, []float64) {
	return r.SolveOpts(milp.Options{TimeLimit: timeLimit, MaxNodes: maxNodes})
}

// SolveOpts is Solve with full control over the MILP options.
func (r *Result) SolveOpts(opt milp.Options) (milp.Result, []float64) {
	res := r.Model.Solve(opt)
	if !res.HasSolution {
		return res, nil
	}
	vals := make([]float64, len(r.Params))
	for i, p := range r.Params {
		v := res.X[int(p.Var)]
		switch {
		case math.Abs(v-p.Orig) <= 1e-6:
			v = p.Orig
		case math.Abs(v-math.Round(v)) <= 1e-6:
			v = math.Round(v)
		case r.Eps >= 0.5 && math.Abs(v-math.Round(v*2)/2) <= 1e-6:
			// Half-integer boundaries arise from the eps=0.5 separation
			// (e.g. "exclude 5, include 6" optimizes to exactly 5.5).
			v = math.Round(v*2) / 2
		}
		vals[i] = v
	}
	return res, vals
}
