package encode

import (
	"repro/internal/milp"
)

// This file is the warm-start translator: machinery to carry a solved
// model's parameter assignment onto a *related* model. Two encodings
// are related when their logs share a prefix in the (query index,
// parameter index) coordinate space — the incremental batch k+1 model
// extends batch k's, a refinement (step 2) model re-encodes the same
// parameter set over the repaired log, and sibling partitions of one
// diagnosis parameterize (usually disjoint, occasionally shared) query
// sets of the same log. Parameter identity survives all of these
// because ParamRef coordinates are positions in the log, not positions
// in any one model.
//
// Projection alone yields parameter values, not a full solution: the
// target model's auxiliary variables (σ literals, the u/v linearization
// pairs, deviation and liveness variables) are missing. SeedSolution
// completes the projection by fixing the parameter variables to their
// projected values and solving the heavily restricted MILP under a
// small budget — any solution of the restricted model is by
// construction feasible in the full model, so the result is a valid MIP
// start for milp.Options.Incumbent. Warm starts built this way only
// ever seed the branch-and-bound *bound*; they cannot change which
// repair the solver reports, because a seed is admitted exactly like a
// search-discovered incumbent.

// ParamKey identifies one repairable constant by its position in the
// log: parameter Index of the query at log index Query (canonical
// parameter order, see internal/query). It is the coordinate space
// shared by every encoding of the same (or a prefix-related) log.
type ParamKey struct {
	Query int
	Index int
}

// SolutionParams collects a solved encoding's parameter assignment by
// log coordinate, the exportable half of the translator: vals must be
// aligned with params (the encoding's ParamRef order, as returned by
// Result.Solve).
func SolutionParams(params []ParamRef, vals []float64) map[ParamKey]float64 {
	if len(params) != len(vals) {
		return nil
	}
	out := make(map[ParamKey]float64, len(params))
	for i, p := range params {
		out[ParamKey{p.Query, p.Index}] = vals[i]
	}
	return out
}

// ProjectParams projects a prior solution's parameter assignment onto a
// related encoding's parameter space: parameters the prior solution
// assigned keep their solved values, parameters it never saw fall back
// to their own original constants (the identity repair for that
// coordinate). shared counts how many parameters actually carried over
// — with shared == 0 the projection is pure identity and seeding from
// it is pointless (an identity repair cannot resolve a complaint, so
// the completed model would be infeasible).
func ProjectParams(prior map[ParamKey]float64, params []ParamRef) (vals []float64, shared int) {
	vals = make([]float64, len(params))
	for i, p := range params {
		if v, ok := prior[ParamKey{p.Query, p.Index}]; ok {
			vals[i] = v
			shared++
		} else {
			vals[i] = p.Orig
		}
	}
	return vals, shared
}

// SeedSolution completes a projected parameter assignment into a full
// feasible solution vector for this encoding's model: each parameter
// variable is fixed to its assigned value and the restricted MILP is
// solved under opt's (deliberately small) budget. The returned vector
// is feasible in the unrestricted model and safe to pass as
// milp.Options.Incumbent. ok is false when a value falls outside its
// parameter's (possibly window-tightened) bounds or the restricted
// solve finds no solution within budget — seeding is then skipped, it
// is never worth forcing. The restricted solve's work is reported in
// res so callers can account it against the warm start's winnings.
func (r *Result) SeedSolution(vals []float64, opt milp.Options) (x []float64, res milp.Result, ok bool) {
	if len(vals) != len(r.Params) {
		return nil, milp.Result{}, false
	}
	type bounds struct {
		v      milp.Var
		lb, ub float64
	}
	saved := make([]bounds, 0, len(r.Params))
	fits := true
	for i, p := range r.Params {
		lb, ub := r.Model.Bounds(p.Var)
		if vals[i] < lb || vals[i] > ub {
			fits = false
			break
		}
		saved = append(saved, bounds{p.Var, lb, ub})
		r.Model.SetBounds(p.Var, vals[i], vals[i])
	}
	if fits {
		res = r.Model.Solve(opt)
	}
	for _, b := range saved {
		r.Model.SetBounds(b.v, b.lb, b.ub)
	}
	if !fits || !res.HasSolution {
		return nil, res, false
	}
	return res.X, res, true
}
