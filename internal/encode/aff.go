// Package encode translates a query log, database states, and a complaint
// set into a mixed-integer linear program, implementing the MILP Encoder
// of the QFix paper (§4): Linearize for UPDATE (Eq. 1–4), INSERT (Eq. 5)
// and DELETE (Eq. 6), ConnectQueries, AssignVals, and the Manhattan
// distance objective (§4.3).
//
// Two engineering choices go beyond the paper's presentation:
//
//  1. Constant folding. Queries that are not parameterized and whose
//     inputs are still constant are replayed exactly rather than encoded;
//     only the symbolic frontier produces variables and constraints. This
//     is what the slicing optimizations of §5 rely on to produce the tiny
//     MILPs the paper reports, and it is essential here because the
//     stdlib-only solver is far slower than CPLEX.
//
//  2. Liveness. The paper encodes DELETE by writing an out-of-domain
//     sentinel M+ into deleted tuples and assumes later predicates then
//     fail. That is unsound for predicates like "a >= c", so instead each
//     tuple carries an explicit liveness literal that gates every later
//     condition (see DESIGN.md).
package encode

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/milp"
)

// aff is an affine expression c + Σ coef·var over model variables, with
// an interval bound [lo, hi] maintained by interval arithmetic. Interval
// bounds provide the per-constraint big-M constants, keeping the LP
// relaxations tight and the numerics sane.
type aff struct {
	c      float64
	terms  []vterm // sorted by Var
	lo, hi float64
}

type vterm struct {
	v milp.Var
	c float64
}

// constAff builds a constant expression.
func constAff(c float64) aff { return aff{c: c, lo: c, hi: c} }

// varAff builds an expression holding one model variable.
func varAff(m *milp.Model, v milp.Var) aff {
	lb, ub := m.Bounds(v)
	return aff{terms: []vterm{{v, 1}}, lo: lb, hi: ub}
}

// isConst reports whether the expression has no variable terms.
func (a aff) isConst() bool { return len(a.terms) == 0 }

// add returns a + b with merged terms and summed intervals.
func (a aff) add(b aff) aff {
	out := aff{c: a.c + b.c, lo: a.lo + b.lo, hi: a.hi + b.hi}
	out.terms = mergeTerms(a.terms, b.terms)
	if len(out.terms) == 0 {
		out.lo, out.hi = out.c, out.c
	}
	return out
}

// scale returns k*a.
func (a aff) scale(k float64) aff {
	if k == 0 {
		return constAff(0)
	}
	out := aff{c: k * a.c}
	out.terms = make([]vterm, len(a.terms))
	for i, t := range a.terms {
		out.terms[i] = vterm{t.v, k * t.c}
	}
	if k > 0 {
		out.lo, out.hi = k*a.lo, k*a.hi
	} else {
		out.lo, out.hi = k*a.hi, k*a.lo
	}
	return out
}

// mergeTerms merges two sorted term lists, dropping cancelled terms.
func mergeTerms(a, b []vterm) []vterm {
	out := make([]vterm, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].v < b[j].v:
			out = append(out, a[i])
			i++
		case a[i].v > b[j].v:
			out = append(out, b[j])
			j++
		default:
			if c := a[i].c + b[j].c; c != 0 {
				out = append(out, vterm{a[i].v, c})
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// milpTerms converts the variable part to model terms, optionally
// appending extras.
func (a aff) milpTerms(extra ...milp.Term) []milp.Term {
	ts := make([]milp.Term, 0, len(a.terms)+len(extra))
	for _, t := range a.terms {
		ts = append(ts, milp.Term{Var: t.v, Coef: t.c})
	}
	return append(ts, extra...)
}

// normTerms validates term ordering (used by tests).
func (a aff) normalized() bool {
	return sort.SliceIsSorted(a.terms, func(i, j int) bool { return a.terms[i].v < a.terms[j].v })
}

// rowLE adds the constraint a <= rhs.
func rowLE(m *milp.Model, a aff, rhs float64) { m.AddLE(a.milpTerms(), rhs-a.c) }

// rowGE adds the constraint a >= rhs.
func rowGE(m *milp.Model, a aff, rhs float64) { m.AddGE(a.milpTerms(), rhs-a.c) }

// rowEQ adds the constraint a = rhs.
func rowEQ(m *milp.Model, a aff, rhs float64) { m.AddEQ(a.milpTerms(), rhs-a.c) }

// bval is a (possibly symbolic) boolean: either a known constant or a
// binary model variable. It represents σ_q(t) and predicate outcomes.
type bval struct {
	known bool
	b     bool
	v     milp.Var
}

func knownB(b bool) bval     { return bval{known: true, b: b} }
func varB(v milp.Var) bval   { return bval{v: v} }
func (b bval) isTrue() bool  { return b.known && b.b }
func (b bval) isFalse() bool { return b.known && !b.b }
func (b bval) String() string {
	if b.known {
		return fmt.Sprintf("const(%v)", b.b)
	}
	return fmt.Sprintf("var(%d)", b.v)
}

// asAff views the boolean as a 0/1 affine expression.
func (b bval) asAff(m *milp.Model) aff {
	if b.known {
		if b.b {
			return constAff(1)
		}
		return constAff(0)
	}
	return varAff(m, b.v)
}

// finiteOr clamps infinities to ±fallback (safety net; encoder intervals
// should already be finite).
func finiteOr(v, fallback float64) float64 {
	if math.IsInf(v, 1) {
		return fallback
	}
	if math.IsInf(v, -1) {
		return -fallback
	}
	return v
}
