package encode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/milp"
	"repro/internal/query"
	"repro/internal/relation"
)

// figure2 builds the paper's running example (Figure 2): D0, the
// corrupted log (q1's predicate constant transposed 87500 -> 85700), and
// the two complaints on t3 and t4.
func figure2() (*relation.Table, []query.Query, []Complaint) {
	sch := relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(9500, 950, 8550)
	d0.MustInsert(90000, 22500, 67500)
	d0.MustInsert(86000, 21500, 64500)
	d0.MustInsert(86500, 21625, 64875)
	log := []query.Query{
		query.NewUpdate(
			[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(0, query.Term{Attr: 0, Coef: 0.3})}},
			query.AttrPred(0, query.GE, 85700)),
		query.NewInsert(85800, 21450, 0),
		query.NewUpdate(
			[]query.SetClause{{Attr: 2, Expr: query.NewLinExpr(0,
				query.Term{Attr: 0, Coef: 1}, query.Term{Attr: 1, Coef: -1})}},
			nil),
	}
	complaints := []Complaint{
		{TupleID: 3, Exists: true, Values: []float64{86000, 21500, 64500}},
		{TupleID: 4, Exists: true, Values: []float64{86500, 21625, 64875}},
	}
	return d0, log, complaints
}

// applyRepair writes solved parameter values back into a cloned log.
func applyRepair(t *testing.T, log []query.Query, refs []ParamRef, vals []float64) []query.Query {
	t.Helper()
	out := query.CloneLog(log)
	byQuery := map[int][]float64{}
	for qi, q := range out {
		byQuery[qi] = q.Params()
	}
	for i, r := range refs {
		byQuery[r.Query][r.Index] = vals[i]
	}
	for qi, q := range out {
		if err := q.SetParams(byQuery[qi]); err != nil {
			t.Fatalf("SetParams q%d: %v", qi, err)
		}
	}
	return out
}

func solveEncoded(t *testing.T, res *Result) []float64 {
	t.Helper()
	mres, vals := res.Solve(30*time.Second, 0)
	if !mres.HasSolution {
		t.Fatalf("no solution: status=%v nodes=%d", mres.Status, mres.Nodes)
	}
	return vals
}

func TestFigure2TupleSliced(t *testing.T) {
	d0, log, complaints := figure2()
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)

	// The repaired WHERE constant must exclude t4 (income 86500): theta
	// in (86500, +inf); distance-minimal is just above 86500.
	theta := repaired[0].(*query.Update).Where.(*query.Pred).RHS
	if theta <= 86500 {
		t.Errorf("repaired theta = %v, want > 86500", theta)
	}
	// Replaying the repaired log resolves both complaints.
	final, err := query.Replay(repaired, d0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range complaints {
		got, ok := final.Get(c.TupleID)
		if !ok {
			t.Fatalf("tuple %d missing after repair", c.TupleID)
		}
		for a, want := range c.Values {
			if math.Abs(got.Values[a]-want) > 1e-6 {
				t.Errorf("tuple %d attr %d = %v, want %v", c.TupleID, a, got.Values[a], want)
			}
		}
	}
}

func TestFigure2Basic(t *testing.T) {
	d0, log, complaints := figure2()
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries:     map[int]bool{0: true, 1: true, 2: true},
		FixNonComplaints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	final, err := query.Replay(repaired, d0)
	if err != nil {
		t.Fatal(err)
	}
	// Under basic, ALL tuples must land exactly: t2 stays matched (27000),
	// the inserted tuple keeps its dirty values, t1 untouched.
	want := map[int64][]float64{
		1: {9500, 950, 8550},
		2: {90000, 27000, 63000},
		3: {86000, 21500, 64500},
		4: {86500, 21625, 64875},
		5: {85800, 21450, 64350},
	}
	if final.Len() != len(want) {
		t.Fatalf("final has %d tuples", final.Len())
	}
	for id, w := range want {
		got, ok := final.Get(id)
		if !ok {
			t.Fatalf("tuple %d missing", id)
		}
		for a := range w {
			if math.Abs(got.Values[a]-w[a]) > 1e-6 {
				t.Errorf("tuple %d attr %d = %v, want %v", id, a, got.Values[a], w[a])
			}
		}
	}
}

func TestIdentityRepairWhenNoComplaints(t *testing.T) {
	// With no complaints and hard non-complaint constraints, the optimal
	// repair is the original log (distance 0).
	d0, log, _ := figure2()
	res, err := Encode(d0, log, nil, Options{
		ParamQueries:     map[int]bool{0: true, 2: true},
		FixNonComplaints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mres, vals := res.Solve(30*time.Second, 0)
	if !mres.HasSolution {
		t.Fatalf("status %v", mres.Status)
	}
	if mres.Obj > 1e-5 {
		t.Errorf("identity repair should cost 0, got %v", mres.Obj)
	}
	for i, r := range res.Params {
		if math.Abs(vals[i]-r.Orig) > 1e-5 {
			t.Errorf("param %d moved: %v -> %v", i, r.Orig, vals[i])
		}
	}
}

func TestPointUpdateKeyRepair(t *testing.T) {
	// UPDATE ... WHERE id = K with a corrupted key: the repair must
	// retarget the equality predicate to the complained-about tuple.
	sch := relation.MustSchema("T", []string{"id", "val"}, "id")
	d0 := relation.NewTable(sch)
	for i := 1; i <= 5; i++ {
		d0.MustInsert(float64(i), 10*float64(i))
	}
	// Truth: UPDATE T SET val=999 WHERE id=3. Corruption: id=2.
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(999)}},
			query.AttrPred(0, query.EQ, 2)),
	}
	complaints := []Complaint{
		{TupleID: 2, Exists: true, Values: []float64{2, 20}},  // should not have changed
		{TupleID: 3, Exists: true, Values: []float64{3, 999}}, // should have changed
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	key := repaired[0].(*query.Update).Where.(*query.Pred).RHS
	if math.Abs(key-3) > 1e-6 {
		t.Errorf("repaired key = %v, want 3", key)
	}
}

func TestDeleteRepairWithLiveness(t *testing.T) {
	// q1 DELETE WHERE a >= 10 (corrupted; truth >= 100) wrongly removes a
	// tuple; q2 then updates survivors. The complaint demands the tuple
	// exist with q2's effect applied, exercising liveness threading.
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(50, 1)
	d0.MustInsert(200, 1)
	log := []query.Query{
		query.NewDelete(query.AttrPred(0, query.GE, 10)),
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(5, query.Term{Attr: 1, Coef: 1})}},
			query.AttrPred(0, query.GE, 0)),
	}
	complaints := []Complaint{
		{TupleID: 1, Exists: true, Values: []float64{50, 6}},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	theta := repaired[0].(*query.Delete).Where.(*query.Pred).RHS
	if theta <= 50 {
		t.Errorf("repaired delete threshold = %v, want > 50", theta)
	}
	final, err := query.Replay(repaired, d0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := final.Get(1)
	if !ok || math.Abs(got.Values[1]-6) > 1e-6 {
		t.Errorf("tuple 1 after repair: %v ok=%v, want [50 6]", got.Values, ok)
	}
}

func TestInsertValueRepair(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(1, 1)
	log := []query.Query{
		query.NewInsert(70, 80), // corrupted; truth (7, 8)
	}
	complaints := []Complaint{
		{TupleID: 2, Exists: true, Values: []float64{7, 8}},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	ins := repaired[0].(*query.Insert)
	if math.Abs(ins.Values[0]-7) > 1e-6 || math.Abs(ins.Values[1]-8) > 1e-6 {
		t.Errorf("repaired insert = %v, want [7 8]", ins.Values)
	}
}

func TestDeleteShouldHaveDeletedComplaint(t *testing.T) {
	// Complaint t -> ⊥: the tuple should have been deleted. The repaired
	// DELETE predicate must cover it.
	sch := relation.MustSchema("T", []string{"a"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(5)
	d0.MustInsert(15)
	log := []query.Query{
		query.NewDelete(query.AttrPred(0, query.GE, 10)), // truth: >= 4
	}
	complaints := []Complaint{
		{TupleID: 1, Exists: false},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	final, err := query.Replay(repaired, d0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := final.Get(1); ok {
		t.Error("tuple 1 still exists after repair")
	}
}

func TestConstantFoldingKeepsModelsSmall(t *testing.T) {
	// A 20-query log where only the last query is parameterized: every
	// earlier query must fold away entirely.
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 10; i++ {
		d0.MustInsert(float64(i*10), 0)
	}
	var log []query.Query
	for i := 0; i < 19; i++ {
		log = append(log, query.NewUpdate(
			[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(1, query.Term{Attr: 1, Coef: 1})}},
			query.AttrPred(0, query.GE, float64(i*5))))
	}
	log = append(log, query.NewUpdate(
		[]query.SetClause{{Attr: 1, Expr: query.ConstExpr(777)}},
		query.AttrPred(0, query.GE, 80)))

	dirty, err := query.Replay(log, d0)
	if err != nil {
		t.Fatal(err)
	}
	tp, _ := dirty.Get(9)
	complaints := []Complaint{{TupleID: 9, Exists: true, Values: tp.Values}}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{19: true},
		TupleIDs:     []int64{9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows > 40 {
		t.Errorf("expected tiny model after folding, got %d rows", res.Stats.Rows)
	}
	if res.Stats.FoldedSigmas != 0 {
		// Only parameterized queries are counted; q19 is symbolic here.
		t.Logf("folded sigmas: %d", res.Stats.FoldedSigmas)
	}
	solveEncoded(t, res)
}

func TestAttributeSlicingWithPromotion(t *testing.T) {
	// 6-attribute table; the corrupted query touches a1 only. Encoding
	// with Attrs={0,1} must still solve correctly.
	sch := relation.MustSchema("T", []string{"k", "a1", "a2", "a3", "a4", "a5"}, "k")
	d0 := relation.NewTable(sch)
	for i := 1; i <= 4; i++ {
		d0.MustInsert(float64(i), 10, 20, 30, 40, 50)
	}
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(99)}},
			query.AttrPred(0, query.GE, 2)), // truth: >= 4
	}
	complaints := []Complaint{
		{TupleID: 2, Exists: true, Values: []float64{2, 10, 20, 30, 40, 50}},
		{TupleID: 3, Exists: true, Values: []float64{3, 10, 20, 30, 40, 50}},
		{TupleID: 4, Exists: true, Values: []float64{4, 99, 20, 30, 40, 50}},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{2, 3, 4},
		Attrs:        []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	theta := repaired[0].(*query.Update).Where.(*query.Pred).RHS
	if theta <= 3 || theta > 4 {
		t.Errorf("repaired theta = %v, want in (3, 4]", theta)
	}
}

func TestFrozenComplaintAttrError(t *testing.T) {
	// Complaint on an attribute outside the slice whose target differs
	// from the dirty value: the encoder must reject with a clear error.
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(1, 2)
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.ConstExpr(5)}}, nil),
	}
	complaints := []Complaint{{TupleID: 1, Exists: true, Values: []float64{5, 99}}}
	_, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		Attrs:        []int{0},
	})
	if err == nil {
		t.Fatal("expected frozen-attribute error")
	}
}

func TestComplaintOnUnknownTuple(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(1)
	log := []query.Query{query.NewInsert(2.0)}
	_, err := Encode(d0, log, []Complaint{{TupleID: 99, Exists: true, Values: []float64{1}}},
		Options{ParamQueries: map[int]bool{0: true}})
	if err == nil {
		t.Fatal("expected unknown-tuple error")
	}
}

func TestInfeasibleComplaint(t *testing.T) {
	// No parameterized query can influence the complaint attribute: the
	// model must come back infeasible (not error), matching the paper's
	// treatment of unsatisfiable complaint sets.
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(1, 2)
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.ConstExpr(5)}}, nil),
	}
	// Complaint wants b=99, but only attr a is ever written.
	complaints := []Complaint{{TupleID: 1, Exists: true, Values: []float64{5, 99}}}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	mres, _ := res.Solve(time.Second, 0)
	if mres.Status != milp.Infeasible {
		t.Errorf("status = %v, want infeasible", mres.Status)
	}
}

func TestIncompleteComplaintSetBasicInfeasible(t *testing.T) {
	// The §6 scenario: with an incomplete complaint set, basic declares
	// infeasibility, while tuple slicing succeeds.
	d0, log, complaints := figure2()
	onlyT4 := complaints[1:] // drop the complaint on t3

	basicRes, err := Encode(d0, log, onlyT4, Options{
		ParamQueries:     map[int]bool{0: true},
		FixNonComplaints: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mres, _ := basicRes.Solve(10*time.Second, 0)
	if mres.Status != milp.Infeasible {
		t.Errorf("basic with incomplete complaints: status = %v, want infeasible", mres.Status)
	}

	slicedRes, err := Encode(d0, log, onlyT4, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, vals := slicedRes.Solve(10*time.Second, 0)
	if !sres.HasSolution {
		t.Fatalf("sliced: status = %v", sres.Status)
	}
	repaired := applyRepair(t, log, slicedRes.Params, vals)
	theta := repaired[0].(*query.Update).Where.(*query.Pred).RHS
	if theta <= 86500 {
		t.Errorf("sliced repair theta = %v, want > 86500", theta)
	}
}

func TestRefinementSoftTuples(t *testing.T) {
	// Figure 5(b) scenario: dirty and truth intervals overlap complaints;
	// a non-complaint tuple sits between them. The refinement objective
	// must keep it out of the repaired interval when possible.
	sch := relation.MustSchema("T", []string{"a", "v"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(10, 0) // complaint: was wrongly updated
	d0.MustInsert(20, 0) // non-complaint in between
	d0.MustInsert(30, 0) // complaint: correctly updated
	// Truth: UPDATE SET v=1 WHERE a >= 25. Dirty: a >= 5.
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
			query.AttrPred(0, query.GE, 5)),
	}
	complaints := []Complaint{
		{TupleID: 1, Exists: true, Values: []float64{10, 0}},
		{TupleID: 3, Exists: true, Values: []float64{30, 1}},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{1, 3},
		SoftTupleIDs: []int64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	theta := repaired[0].(*query.Update).Where.(*query.Pred).RHS
	// Without the soft tuple the distance-minimal theta would be just
	// above 10 (e.g. 10.5), catching tuple 2. With the refinement
	// objective the solver must push theta past 20.
	if theta <= 20 {
		t.Errorf("refined theta = %v, want > 20 (soft tuple excluded)", theta)
	}
	if theta > 30 {
		t.Errorf("refined theta = %v overshot the matched complaint", theta)
	}
}

func TestMultiPredicateConjunction(t *testing.T) {
	// Range predicate (two conjoined comparisons) with one corrupted
	// endpoint.
	sch := relation.MustSchema("T", []string{"a", "v"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(10, 0)
	d0.MustInsert(20, 0)
	d0.MustInsert(30, 0)
	// Truth: a in [15, 25] -> v=1. Corruption: a in [15, 35].
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
			query.NewAnd(query.AttrPred(0, query.GE, 15), query.AttrPred(0, query.LE, 35))),
	}
	complaints := []Complaint{
		{TupleID: 2, Exists: true, Values: []float64{20, 1}},
		{TupleID: 3, Exists: true, Values: []float64{30, 0}},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	w := repaired[0].(*query.Update).Where.(*query.And)
	lo := w.Kids[0].(*query.Pred).RHS
	hi := w.Kids[1].(*query.Pred).RHS
	if lo > 20 || hi < 20 || hi >= 30 {
		t.Errorf("repaired range [%v, %v], want to include 20 and exclude 30", lo, hi)
	}
}

func TestDisjunctionEncoding(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "v"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(10, 0)
	d0.MustInsert(50, 0)
	// Truth: (a <= 5 OR a >= 45) -> v=1. Corruption: (a <= 15 OR a >= 45).
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
			query.NewOr(query.AttrPred(0, query.LE, 15), query.AttrPred(0, query.GE, 45))),
	}
	complaints := []Complaint{
		{TupleID: 1, Exists: true, Values: []float64{10, 0}},
		{TupleID: 2, Exists: true, Values: []float64{50, 1}},
	}
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := solveEncoded(t, res)
	repaired := applyRepair(t, log, res.Params, vals)
	final, err := query.Replay(repaired, d0)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := final.Get(1)
	t2, _ := final.Get(2)
	if t1.Values[1] != 0 || t2.Values[1] != 1 {
		t.Errorf("after repair: t1.v=%v t2.v=%v, want 0 and 1", t1.Values[1], t2.Values[1])
	}
}

// Property: for random single-corruption UPDATE logs, the encoder+solver
// produce a repair that resolves every complaint on replay.
func TestQuickRepairResolvesComplaints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := relation.MustSchema("T", []string{"a0", "a1", "a2"}, "")
		d0 := relation.NewTable(sch)
		nd := rng.Intn(8) + 4
		for i := 0; i < nd; i++ {
			d0.MustInsert(float64(rng.Intn(100)), float64(rng.Intn(100)), float64(rng.Intn(100)))
		}
		nq := rng.Intn(3) + 1
		var trueLog []query.Query
		for i := 0; i < nq; i++ {
			attr := rng.Intn(3)
			setAttr := rng.Intn(3)
			lo := float64(rng.Intn(80))
			trueLog = append(trueLog, query.NewUpdate(
				[]query.SetClause{{Attr: setAttr, Expr: query.ConstExpr(float64(rng.Intn(100)))}},
				query.NewAnd(query.AttrPred(attr, query.GE, lo),
					query.AttrPred(attr, query.LE, lo+float64(rng.Intn(20)+5)))))
		}
		corruptIdx := rng.Intn(nq)
		dirtyLog := query.CloneLog(trueLog)
		cu := dirtyLog[corruptIdx].(*query.Update)
		p := cu.Params()
		p[0] = float64(rng.Intn(100))         // SET constant
		p[1] = float64(rng.Intn(80))          // range lower bound
		p[2] = p[1] + float64(rng.Intn(20)+5) // range upper bound
		if err := cu.SetParams(p); err != nil {
			return false
		}

		trueFinal, err := query.Replay(trueLog, d0)
		if err != nil {
			return false
		}
		dirtyFinal, err := query.Replay(dirtyLog, d0)
		if err != nil {
			return false
		}
		diffs := relation.DiffTables(dirtyFinal, trueFinal, 1e-9)
		if len(diffs) == 0 {
			return true // corruption happened to be harmless
		}
		var complaints []Complaint
		var ids []int64
		for _, d := range diffs {
			complaints = append(complaints, Complaint{
				TupleID: d.ID, Exists: true, Values: d.After.Values})
			ids = append(ids, d.ID)
		}
		res, err := Encode(d0, dirtyLog, complaints, Options{
			ParamQueries: map[int]bool{corruptIdx: true},
			TupleIDs:     ids,
		})
		if err != nil {
			t.Logf("seed %d: encode error: %v", seed, err)
			return false
		}
		mres, vals := res.Solve(20*time.Second, 0)
		if !mres.HasSolution {
			// The true parameters are a feasible assignment, so this
			// must not happen.
			t.Logf("seed %d: no solution (%v), model %d rows %d bins",
				seed, mres.Status, res.Stats.Rows, res.Stats.Binaries)
			return false
		}
		repaired := applyRepair(t, dirtyLog, res.Params, vals)
		final, err := query.Replay(repaired, d0)
		if err != nil {
			return false
		}
		for _, c := range complaints {
			got, ok := final.Get(c.TupleID)
			if !ok {
				t.Logf("seed %d: tuple %d missing", seed, c.TupleID)
				return false
			}
			for a, want := range c.Values {
				if math.Abs(got.Values[a]-want) > 1e-4 {
					t.Logf("seed %d: tuple %d attr %d = %v, want %v",
						seed, c.TupleID, a, got.Values[a], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the ground-truth parameters always satisfy the encoded
// constraint system (solver obj <= distance(dirty, truth)).
func TestQuickTrueParamsFeasible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := relation.MustSchema("T", []string{"a0", "a1"}, "")
		d0 := relation.NewTable(sch)
		for i := 0; i < 6; i++ {
			d0.MustInsert(float64(rng.Intn(50)), float64(rng.Intn(50)))
		}
		trueQ := query.NewUpdate(
			[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(float64(rng.Intn(20)),
				query.Term{Attr: 1, Coef: 1})}},
			query.AttrPred(0, query.GE, float64(rng.Intn(50))))
		dirtyQ := trueQ.Clone().(*query.Update)
		p := dirtyQ.Params()
		p[0] += float64(rng.Intn(30) + 1)
		p[1] = float64(rng.Intn(50))
		if err := dirtyQ.SetParams(p); err != nil {
			return false
		}
		trueLog := []query.Query{trueQ}
		dirtyLog := []query.Query{dirtyQ}
		trueFinal, _ := query.Replay(trueLog, d0)
		dirtyFinal, _ := query.Replay(dirtyLog, d0)
		diffs := relation.DiffTables(dirtyFinal, trueFinal, 1e-9)
		if len(diffs) == 0 {
			return true
		}
		var complaints []Complaint
		var ids []int64
		for _, d := range diffs {
			complaints = append(complaints, Complaint{TupleID: d.ID, Exists: true, Values: d.After.Values})
			ids = append(ids, d.ID)
		}
		res, err := Encode(d0, dirtyLog, complaints, Options{
			ParamQueries: map[int]bool{0: true},
			TupleIDs:     ids,
		})
		if err != nil {
			return false
		}
		mres, _ := res.Solve(20*time.Second, 0)
		if !mres.HasSolution {
			t.Logf("seed %d: infeasible but truth is a witness", seed)
			return false
		}
		trueDist := query.Distance(dirtyLog, trueLog)
		if mres.Obj > trueDist+1e-5 {
			t.Logf("seed %d: obj %v exceeds truth distance %v", seed, mres.Obj, trueDist)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	d0, log, complaints := figure2()
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Rows == 0 || st.Vars == 0 || st.Binaries == 0 || st.TuplesTracked != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAffHelpers(t *testing.T) {
	a := constAff(3)
	if !a.isConst() || a.lo != 3 || a.hi != 3 {
		t.Errorf("constAff = %+v", a)
	}
	m := milp.NewModel()
	v := m.NewContinuous(-2, 5)
	av := varAff(m, v)
	if av.lo != -2 || av.hi != 5 {
		t.Errorf("varAff bounds = %v %v", av.lo, av.hi)
	}
	sum := a.add(av)
	if sum.lo != 1 || sum.hi != 8 || sum.c != 3 {
		t.Errorf("add = %+v", sum)
	}
	neg := sum.scale(-2)
	if neg.lo != -16 || neg.hi != -2 {
		t.Errorf("scale = %+v", neg)
	}
	if !neg.normalized() {
		t.Error("terms not sorted")
	}
	cancel := av.add(av.scale(-1))
	if !cancel.isConst() || cancel.lo != 0 || cancel.hi != 0 {
		t.Errorf("cancel = %+v", cancel)
	}
	if finiteOr(math.Inf(1), 7) != 7 || finiteOr(math.Inf(-1), 7) != -7 || finiteOr(3, 7) != 3 {
		t.Error("finiteOr wrong")
	}
}
