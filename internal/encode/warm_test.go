package encode

import (
	"math"
	"testing"
	"time"

	"repro/internal/milp"
)

func TestProjectParams(t *testing.T) {
	next := []ParamRef{
		{Query: 0, Index: 0, Orig: 10},
		{Query: 0, Index: 1, Orig: 20},
		{Query: 2, Index: 0, Orig: 30},
	}
	prior := map[ParamKey]float64{
		{Query: 0, Index: 1}: 99,  // shared coordinate
		{Query: 5, Index: 0}: -12, // unknown to `next`: ignored
	}
	vals, shared := ProjectParams(prior, next)
	if shared != 1 {
		t.Fatalf("shared = %d, want 1", shared)
	}
	want := []float64{10, 99, 30}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if vals, shared := ProjectParams(nil, next); shared != 0 || vals[0] != 10 {
		t.Fatalf("empty prior: vals %v shared %d, want identity and 0", vals, shared)
	}
}

func TestSolutionParams(t *testing.T) {
	refs := []ParamRef{{Query: 1, Index: 0}, {Query: 1, Index: 1}}
	m := SolutionParams(refs, []float64{7, 8})
	if len(m) != 2 || m[ParamKey{1, 0}] != 7 || m[ParamKey{1, 1}] != 8 {
		t.Fatalf("SolutionParams = %v", m)
	}
	if SolutionParams(refs, []float64{7}) != nil {
		t.Fatal("mismatched lengths must return nil")
	}
}

// SeedSolution must complete a prior solution's parameter assignment
// into a vector the MILP accepts as a feasible incumbent reproducing
// the same repair.
func TestSeedSolutionCompletesPriorAssignment(t *testing.T) {
	d0, log, complaints := figure2()
	build := func() *Result {
		res, err := Encode(d0, log, complaints, Options{
			ParamQueries: map[int]bool{0: true},
			TupleIDs:     []int64{3, 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := build()
	mres, vals := first.Solve(30*time.Second, 0)
	if !mres.HasSolution {
		t.Fatalf("setup solve failed: %+v", mres)
	}

	// Project the solved assignment onto a fresh encoding of the same
	// instance and complete it.
	next := build()
	proj, shared := ProjectParams(SolutionParams(first.Params, vals), next.Params)
	if shared != len(next.Params) {
		t.Fatalf("shared = %d, want all %d parameters", shared, len(next.Params))
	}
	x, sres, ok := next.SeedSolution(proj, milp.Options{MaxNodes: 2000})
	if !ok {
		t.Fatalf("SeedSolution failed: %+v", sres)
	}
	if len(x) != next.Model.NumVars() {
		t.Fatalf("completion length %d, want %d", len(x), next.Model.NumVars())
	}

	// The completion must be admissible as a MIP start and lead to the
	// byte-identical parameter values.
	wres, wvals := next.SolveOpts(milp.Options{TimeLimit: 30 * time.Second, Incumbent: x})
	if !wres.HasSolution || !wres.SeedUsed {
		t.Fatalf("seeded solve: %+v (SeedUsed=%v)", wres, wres.SeedUsed)
	}
	for i := range vals {
		if math.Abs(wvals[i]-vals[i]) > 1e-9 {
			t.Fatalf("seeded vals %v differ from cold vals %v", wvals, vals)
		}
	}

	// Parameter bounds must be restored after completion.
	for _, p := range next.Params {
		lb, ub := next.Model.Bounds(p.Var)
		if lb == ub {
			t.Fatalf("parameter %v left fixed at [%v,%v] after SeedSolution", p, lb, ub)
		}
	}
}

func TestSeedSolutionRejectsBadInput(t *testing.T) {
	d0, log, complaints := figure2()
	res, err := Encode(d0, log, complaints, Options{
		ParamQueries: map[int]bool{0: true},
		TupleIDs:     []int64{3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := res.SeedSolution([]float64{1}, milp.Options{}); ok {
		t.Fatal("wrong-length assignment accepted")
	}
	// A value outside the parameter's (window-tightened) bounds must be
	// rejected with bounds intact.
	huge := make([]float64, len(res.Params))
	for i := range huge {
		huge[i] = 1e12
	}
	if _, _, ok := res.SeedSolution(huge, milp.Options{}); ok {
		t.Fatal("out-of-bounds assignment accepted")
	}
	for _, p := range res.Params {
		lb, ub := res.Model.Bounds(p.Var)
		if lb == ub {
			t.Fatalf("parameter %v left fixed after rejected SeedSolution", p)
		}
	}
}
