package encode

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/milp"
	"repro/internal/query"
	"repro/internal/relation"
)

// tstate is the symbolic state of one tracked tuple as the encoder walks
// the log: per-attribute affine expressions for tracked attributes, the
// dirty-replay values for frozen attributes, and a liveness literal.
type tstate struct {
	id          int64
	vals        []aff  // valid where trackedAttr
	trackedAttr []bool // per attribute
	dirtyVals   []float64
	dirtyAlive  bool
	alive       bval
	soft        bool
	isComplaint bool
}

type encoder struct {
	m     *milp.Model
	opt   Options
	log   []query.Query // cloned: predicate pointers are stable
	sch   *relation.Schema
	width int
	M     float64
	eps   float64

	dirty    *relation.Table
	tracked  map[int64]*tstate
	order    []*tstate
	trackAll bool
	wantIDs  map[int64]bool
	softIDs  map[int64]bool
	attrSeed []bool // nil = track all attributes

	params    []ParamRef
	paramOrig map[milp.Var]float64
	sigma     map[SigmaKey]milp.Var
	sigmaTrue map[SigmaKey]bool // folded-true σ of parameterized queries
	affected  map[int64]milp.Var
	windows   map[milp.Var][2]float64 // predicate-parameter LHS ranges
	stats     Stats
}

// widenWindow grows the observed LHS range of a predicate parameter. A
// parameter value beyond every encoded tuple's LHS range behaves exactly
// like the nearest range edge, so after a query is encoded the parameter
// can be confined to [min(lo, orig)-Δ, max(hi, orig)+Δ] without losing
// any optimum (the original value stays inside, so clamping never
// increases distance). This dramatically tightens the big-M relaxations
// that branch-and-bound prunes with.
func (e *encoder) widenWindow(pv milp.Var, lo, hi float64) {
	w, ok := e.windows[pv]
	if !ok {
		e.windows[pv] = [2]float64{lo, hi}
		return
	}
	if lo < w[0] {
		w[0] = lo
	}
	if hi > w[1] {
		w[1] = hi
	}
	e.windows[pv] = w
}

// flushWindows pins each parameter seen this query to its safe window.
// Parameters are visited in variable order: bound updates are
// independent per variable, but a sorted walk keeps the pass trivially
// inside the detmap determinism contract.
func (e *encoder) flushWindows() {
	params := make([]milp.Var, 0, len(e.windows))
	for pv := range e.windows {
		params = append(params, pv)
	}
	slices.Sort(params)
	for _, pv := range params {
		w := e.windows[pv]
		orig := e.paramOrig[pv]
		slack := e.eps + 1
		lo := math.Min(w[0], orig) - slack
		hi := math.Max(w[1], orig) + slack
		lb, ub := e.m.Bounds(pv)
		if lo > lb {
			lb = lo
		}
		if hi < ub {
			ub = hi
		}
		if lb <= ub {
			e.m.SetBounds(pv, lb, ub)
		}
	}
	e.windows = make(map[milp.Var][2]float64)
}

// pctx carries the parameter variables of the query being encoded, or
// nothing when the query is replayed with its original constants.
type pctx struct {
	on       bool
	setVars  []milp.Var // Update: per SET clause; Insert: per value
	predVars map[*query.Pred]milp.Var
}

// Encode builds the MILP for the given initial state, log, and complaint
// set under the slicing options. The log is not mutated.
func Encode(d0 *relation.Table, log []query.Query, complaints []Complaint, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	e := &encoder{
		m:         milp.NewModel(),
		opt:       opt,
		log:       query.CloneLog(log),
		sch:       d0.Schema(),
		width:     d0.Schema().Width(),
		eps:       opt.Eps,
		dirty:     d0.Clone(),
		tracked:   make(map[int64]*tstate),
		paramOrig: make(map[milp.Var]float64),
		sigma:     make(map[SigmaKey]milp.Var),
		sigmaTrue: make(map[SigmaKey]bool),
		affected:  make(map[int64]milp.Var),
		windows:   make(map[milp.Var][2]float64),
	}
	e.M = opt.DomainBound
	if e.M <= 0 {
		e.M = autoBound(d0, log)
	}
	if opt.TupleIDs == nil {
		e.trackAll = true
	} else {
		e.wantIDs = make(map[int64]bool, len(opt.TupleIDs))
		for _, id := range opt.TupleIDs {
			e.wantIDs[id] = true
		}
	}
	e.softIDs = make(map[int64]bool, len(opt.SoftTupleIDs))
	for _, id := range opt.SoftTupleIDs {
		e.softIDs[id] = true
		if e.wantIDs != nil {
			e.wantIDs[id] = true
		}
	}
	if opt.Attrs != nil {
		e.attrSeed = make([]bool, e.width)
		for _, a := range opt.Attrs {
			if a < 0 || a >= e.width {
				return nil, fmt.Errorf("encode: attribute %d out of range", a)
			}
			e.attrSeed[a] = true
		}
	}

	// Complaint targets force their attributes and tuples into scope.
	for _, c := range complaints {
		if c.Exists && len(c.Values) != e.width {
			return nil, fmt.Errorf("encode: complaint on tuple %d has arity %d, want %d",
				c.TupleID, len(c.Values), e.width)
		}
		if e.wantIDs != nil {
			e.wantIDs[c.TupleID] = true
		}
	}

	// Seed tracked tuples from D0.
	d0.Rows(func(t relation.Tuple) {
		if e.trackAll || e.wantIDs[t.ID] {
			e.newTstate(t.ID, t.Values)
		}
	})

	// Walk the log.
	for i, q := range e.log {
		pc, err := e.paramize(i, q)
		if err != nil {
			return nil, err
		}
		switch v := q.(type) {
		case *query.Update:
			e.encodeUpdate(i, v, pc)
			if err := v.Apply(e.dirty); err != nil {
				return nil, fmt.Errorf("encode: dirty replay of query %d: %w", i, err)
			}
		case *query.Delete:
			e.encodeDelete(i, v, pc)
			if err := v.Apply(e.dirty); err != nil {
				return nil, fmt.Errorf("encode: dirty replay of query %d: %w", i, err)
			}
		case *query.Insert:
			pos := e.dirty.Len()
			if err := v.Apply(e.dirty); err != nil {
				return nil, fmt.Errorf("encode: dirty replay of query %d: %w", i, err)
			}
			newID := e.dirty.At(pos).ID
			e.encodeInsert(i, v, pc, newID)
		default:
			return nil, fmt.Errorf("encode: unsupported query kind %T at index %d", q, i)
		}
		e.flushWindows()
		e.refreshDirty()
	}

	if err := e.assignFinals(complaints); err != nil {
		return nil, err
	}

	e.stats.Rows = e.m.NumConstrs()
	e.stats.Vars = e.m.NumVars()
	e.stats.Binaries = e.m.NumIntVars()
	e.stats.TuplesTracked = len(e.order)
	return &Result{
		Model:    e.m,
		Params:   e.params,
		Sigma:    e.sigma,
		Affected: e.affected,
		Stats:    e.stats,
		Eps:      e.eps,
	}, nil
}

// autoBound derives the big-M domain bound: twice the largest absolute
// value seen in the initial state, any replayed state, or any query
// constant, plus slack.
func autoBound(d0 *relation.Table, log []query.Query) float64 {
	maxAbs := 1.0
	scan := func(vs []float64) {
		for _, v := range vs {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	d0.Rows(func(t relation.Tuple) { scan(t.Values) })
	for _, q := range log {
		scan(q.Params())
	}
	if final, err := query.Replay(log, d0); err == nil {
		final.Rows(func(t relation.Tuple) { scan(t.Values) })
	}
	return 2*maxAbs + 10
}

// newTstate registers a tracked tuple whose current values are known
// constants (a D0 row or a non-parameterized insert).
func (e *encoder) newTstate(id int64, values []float64) *tstate {
	t := &tstate{
		id:          id,
		vals:        make([]aff, e.width),
		trackedAttr: make([]bool, e.width),
		dirtyVals:   append([]float64(nil), values...),
		dirtyAlive:  true,
		alive:       knownB(true),
		soft:        e.softIDs[id],
	}
	for a := 0; a < e.width; a++ {
		if e.attrSeed == nil || e.attrSeed[a] {
			t.trackedAttr[a] = true
			t.vals[a] = constAff(values[a])
		}
	}
	e.tracked[id] = t
	e.order = append(e.order, t)
	return t
}

// valOf reads attribute a of tuple t as an affine expression; frozen
// attributes read the dirty-replay constant.
func (e *encoder) valOf(t *tstate, a int) aff {
	if t.trackedAttr[a] {
		return t.vals[a]
	}
	return constAff(t.dirtyVals[a])
}

// promote upgrades a frozen attribute to tracked, seeding it with its
// current dirty value. Sound because frozen attributes always equal
// their dirty replay (see package comment).
func (e *encoder) promote(t *tstate, a int) {
	if t.trackedAttr[a] {
		return
	}
	t.trackedAttr[a] = true
	t.vals[a] = constAff(t.dirtyVals[a])
}

// refreshDirty re-reads every tracked tuple's dirty values after a log
// step; deleted tuples keep their last values and flip dirtyAlive.
func (e *encoder) refreshDirty() {
	for _, t := range e.order {
		if tp, ok := e.dirty.Get(t.id); ok {
			copy(t.dirtyVals, tp.Values)
			t.dirtyAlive = true
		} else {
			t.dirtyAlive = false
		}
	}
}

// paramize creates parameter variables (and distance objective terms)
// for query i when it is marked for repair.
func (e *encoder) paramize(i int, q query.Query) (pctx, error) {
	if !e.opt.ParamQueries[i] {
		return pctx{}, nil
	}
	pc := pctx{on: true, predVars: make(map[*query.Pred]milp.Var)}
	idx := 0
	newParam := func(orig float64) milp.Var {
		v := e.m.NewContinuous(orig-e.M, orig+e.M)
		e.params = append(e.params, ParamRef{Query: i, Index: idx, Orig: orig, Var: v})
		w := e.opt.ObjParamWeight
		if e.opt.Normalize {
			w /= math.Max(1, math.Abs(orig))
		}
		d := e.m.NewAbsDeviation([]milp.Term{{Var: v, Coef: 1}}, orig)
		e.m.SetObjCoef(d, w)
		e.paramOrig[v] = orig
		idx++
		return v
	}
	switch v := q.(type) {
	case *query.Update:
		for si := range v.Set {
			pc.setVars = append(pc.setVars, newParam(v.Set[si].Expr.Const))
		}
		query.WalkPreds(v.Where, func(p *query.Pred) {
			pc.predVars[p] = newParam(p.RHS)
		})
	case *query.Insert:
		for _, val := range v.Values {
			pc.setVars = append(pc.setVars, newParam(val))
		}
	case *query.Delete:
		query.WalkPreds(v.Where, func(p *query.Pred) {
			pc.predVars[p] = newParam(p.RHS)
		})
	}
	return pc, nil
}

// combineSet builds µ's value for one SET clause over the tuple's current
// symbolic state; the clause constant becomes a parameter variable when
// the query is parameterized.
func (e *encoder) combineSet(t *tstate, sc query.SetClause, pv milp.Var, on bool) aff {
	out := constAff(0)
	for _, tm := range sc.Expr.Terms {
		out = out.add(e.valOf(t, tm.Attr).scale(tm.Coef))
	}
	if on {
		out = out.add(varAff(e.m, pv))
	} else {
		out = out.add(constAff(sc.Expr.Const))
	}
	return out
}

// encodeUpdate walks all tracked tuples through an UPDATE (Eq. 1–4).
func (e *encoder) encodeUpdate(qi int, q *query.Update, pc pctx) {
	for _, t := range e.order {
		if t.alive.isFalse() {
			continue
		}
		x := e.evalCond(q.Where, t, pc)
		x = e.andB(x, t.alive)
		e.noteSigma(qi, t, pc, x)
		if x.isFalse() {
			continue
		}
		// Compute all µ values before assigning (simultaneous SET).
		newVals := make([]aff, len(q.Set))
		for si, sc := range q.Set {
			var pv milp.Var
			if pc.on {
				pv = pc.setVars[si]
			}
			newVals[si] = e.combineSet(t, sc, pv, pc.on)
		}
		if x.isTrue() {
			for si, sc := range q.Set {
				if !t.trackedAttr[sc.Attr] && newVals[si].isConst() {
					continue // frozen attribute follows the dirty replay
				}
				e.promote(t, sc.Attr)
				t.vals[sc.Attr] = newVals[si]
			}
			continue
		}
		// Symbolic σ: values become x·µ + (1−x)·old.
		assigned := make([]aff, len(q.Set))
		for si, sc := range q.Set {
			e.promote(t, sc.Attr)
			assigned[si] = e.choose(x, newVals[si], t.vals[sc.Attr])
		}
		for si, sc := range q.Set {
			t.vals[sc.Attr] = assigned[si]
		}
	}
}

// encodeDelete threads liveness through a DELETE (Eq. 6 with explicit
// liveness instead of the sentinel).
func (e *encoder) encodeDelete(qi int, q *query.Delete, pc pctx) {
	for _, t := range e.order {
		if t.alive.isFalse() {
			continue
		}
		x := e.evalCond(q.Where, t, pc)
		x = e.andB(x, t.alive)
		e.noteSigma(qi, t, pc, x)
		if x.isFalse() {
			continue
		}
		if x.isTrue() {
			t.alive = knownB(false)
			continue
		}
		// alive' = alive AND NOT x.
		na := e.m.NewBinary()
		e.stats.Binaries++
		xA := x.asAff(e.m)
		naA := varAff(e.m, na)
		// na <= 1 - x
		rowLE(e.m, naA.add(xA), 1)
		if t.alive.isTrue() {
			// na = 1 - x exactly.
			rowGE(e.m, naA.add(xA), 1)
		} else {
			aA := t.alive.asAff(e.m)
			// na <= alive ; na >= alive - x
			rowLE(e.m, naA.add(aA.scale(-1)), 0)
			rowGE(e.m, naA.add(aA.scale(-1)).add(xA), 0)
		}
		t.alive = varB(na)
	}
}

// encodeInsert registers the tuple born at query qi (Eq. 5). A
// parameterized insert's values are parameter variables; the tuple always
// exists (inserts are repaired by changing values, as in the paper).
func (e *encoder) encodeInsert(qi int, q *query.Insert, pc pctx, newID int64) {
	if !e.trackAll && !e.wantIDs[newID] {
		return
	}
	t := e.newTstate(newID, q.Values)
	if !pc.on {
		return
	}
	for a := 0; a < e.width; a++ {
		t.trackedAttr[a] = true
		t.vals[a] = varAff(e.m, pc.setVars[a])
	}
}

// noteSigma records σ literals of parameterized queries for diagnostics
// and the refinement objective.
func (e *encoder) noteSigma(qi int, t *tstate, pc pctx, x bval) {
	if !pc.on {
		return
	}
	k := SigmaKey{Query: qi, Tuple: t.id}
	if x.known {
		if x.b {
			e.sigmaTrue[k] = true
		}
		e.stats.FoldedSigmas++
		return
	}
	e.sigma[k] = x.v
	e.stats.SymbolSigmas++
}

// choose linearizes x·aTrue + (1−x)·aFalse via fresh u, v variables and
// the big-M box constraints of Eq. 3 (generalized to symmetric bounds).
func (e *encoder) choose(x bval, aTrue, aFalse aff) aff {
	xA := x.asAff(e.m)
	tl, th := finiteOr(aTrue.lo, e.M), finiteOr(aTrue.hi, e.M)
	fl, fh := finiteOr(aFalse.lo, e.M), finiteOr(aFalse.hi, e.M)

	u := e.m.NewContinuous(math.Min(tl, 0), math.Max(th, 0))
	uA := varAff(e.m, u)
	// u <= aTrue - tl(1-x)   <=>  u - aTrue - tl·x <= -tl
	rowLE(e.m, uA.add(aTrue.scale(-1)).add(xA.scale(-tl)), -tl)
	// u >= aTrue - th(1-x)
	rowGE(e.m, uA.add(aTrue.scale(-1)).add(xA.scale(-th)), -th)
	// u <= th·x ; u >= tl·x
	rowLE(e.m, uA.add(xA.scale(-th)), 0)
	rowGE(e.m, uA.add(xA.scale(-tl)), 0)

	v := e.m.NewContinuous(math.Min(fl, 0), math.Max(fh, 0))
	vA := varAff(e.m, v)
	// v <= aFalse - fl·x ; v >= aFalse - fh·x
	rowLE(e.m, vA.add(aFalse.scale(-1)).add(xA.scale(fl)), 0)
	rowGE(e.m, vA.add(aFalse.scale(-1)).add(xA.scale(fh)), 0)
	// v <= fh(1-x) ; v >= fl(1-x)
	rowLE(e.m, vA.add(xA.scale(fh)), fh)
	rowGE(e.m, vA.add(xA.scale(fl)), fl)

	out := uA.add(vA)
	out.lo = math.Min(aTrue.lo, aFalse.lo)
	out.hi = math.Max(aTrue.hi, aFalse.hi)
	return out
}
