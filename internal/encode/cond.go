package encode

import (
	"repro/internal/query"
)

// evalCond encodes σ_q(t) (Eq. 1): it folds to a constant when the
// operands are decisive and otherwise produces a binary literal linked to
// the predicate tree by big-M rows.
func (e *encoder) evalCond(c query.Cond, t *tstate, pc pctx) bval {
	switch v := c.(type) {
	case query.True:
		return knownB(true)
	case *query.Pred:
		lhs := constAff(0)
		for _, tm := range v.LHS.Terms {
			lhs = lhs.add(e.valOf(t, tm.Attr).scale(tm.Coef))
		}
		lhs = lhs.add(constAff(v.LHS.Const))
		var rhs aff
		if pv, ok := pc.predVars[v]; ok {
			rhs = varAff(e.m, pv)
			if !e.opt.NoParamWindows {
				e.widenWindow(pv, lhs.lo, lhs.hi)
			}
		} else {
			rhs = constAff(v.RHS)
		}
		return e.predB(lhs.add(rhs.scale(-1)), v.Op)
	case *query.And:
		kids := make([]bval, 0, len(v.Kids))
		for _, k := range v.Kids {
			b := e.evalCond(k, t, pc)
			if b.isFalse() {
				return knownB(false)
			}
			if !b.isTrue() {
				kids = append(kids, b)
			}
		}
		return e.andAll(kids)
	case *query.Or:
		kids := make([]bval, 0, len(v.Kids))
		for _, k := range v.Kids {
			b := e.evalCond(k, t, pc)
			if b.isTrue() {
				return knownB(true)
			}
			if !b.isFalse() {
				kids = append(kids, b)
			}
		}
		return e.orAll(kids)
	}
	panic("encode: unknown condition type")
}

// predB encodes "expr op 0" as a boolean. Strict comparisons and the
// complement of equality are separated by eps (exact for integer-valued
// domains). The fold rules use exact interval reasoning and therefore
// agree with plain replay whenever the operands are constants.
func (e *encoder) predB(expr aff, op query.CmpOp) bval {
	lo, hi := expr.lo, expr.hi
	eps := e.eps

	if e.opt.NoFolding {
		// Ablation mode: always emit the symbolic encoding. The big-M
		// rows force the binary to the decided value when the interval
		// is decisive, so this is equivalent but exhaustive.
		return e.predBinary(expr, op, lo, hi, eps)
	}

	// Constant folding on decisive intervals.
	switch op {
	case query.LE:
		if hi <= 0 {
			return knownB(true)
		}
		if lo > 0 {
			return knownB(false)
		}
	case query.GE:
		if lo >= 0 {
			return knownB(true)
		}
		if hi < 0 {
			return knownB(false)
		}
	case query.LT:
		if hi < 0 {
			return knownB(true)
		}
		if lo >= 0 {
			return knownB(false)
		}
	case query.GT:
		if lo > 0 {
			return knownB(true)
		}
		if hi <= 0 {
			return knownB(false)
		}
	case query.EQ:
		if lo == 0 && hi == 0 {
			return knownB(true)
		}
		if lo > 0 || hi < 0 {
			return knownB(false)
		}
	}
	return e.predBinary(expr, op, lo, hi, eps)
}

// predBinary emits the big-M rows linking a fresh binary to "expr op 0".
func (e *encoder) predBinary(expr aff, op query.CmpOp, lo, hi, eps float64) bval {
	lo = finiteOr(lo, e.M*4)
	hi = finiteOr(hi, e.M*4)
	// Decisive intervals can reach here in NoFolding mode; big-M factors
	// of the wrong sign would corrupt the rows, so clamp to zero-width.
	if hi < 0 {
		hi = 0
	}
	if lo > 0 {
		lo = 0
	}
	y := e.m.NewBinary()
	yA := varAff(e.m, y)
	switch op {
	case query.LE: // y=1 ⇔ expr <= 0
		rowLE(e.m, expr.add(yA.scale(hi)), hi)      // y=1 ⇒ expr <= 0
		rowGE(e.m, expr.add(yA.scale(eps-lo)), eps) // y=0 ⇒ expr >= eps
	case query.GE: // y=1 ⇔ expr >= 0
		rowGE(e.m, expr.add(yA.scale(lo)), lo)        // y=1 ⇒ expr >= 0
		rowLE(e.m, expr.add(yA.scale(-eps-hi)), -eps) // y=0 ⇒ expr <= -eps
	case query.LT: // y=1 ⇔ expr <= -eps
		rowLE(e.m, expr.add(yA.scale(hi+eps)), hi) // y=1 ⇒ expr <= -eps
		rowGE(e.m, expr.add(yA.scale(-lo)), 0)     // y=0 ⇒ expr >= 0
	case query.GT: // y=1 ⇔ expr >= eps
		rowGE(e.m, expr.add(yA.scale(lo-eps)), lo) // y=1 ⇒ expr >= eps
		rowLE(e.m, expr.add(yA.scale(-hi)), 0)     // y=0 ⇒ expr <= 0
	case query.EQ: // y=1 ⇔ expr = 0, with a side selector for y=0
		rowLE(e.m, expr.add(yA.scale(hi)), hi) // y=1 ⇒ expr <= 0
		rowGE(e.m, expr.add(yA.scale(lo)), lo) // y=1 ⇒ expr >= 0
		w := e.m.NewBinary()
		wA := varAff(e.m, w)
		// y=0 ∧ w=1 ⇒ expr >= eps:
		//   expr >= eps + (lo-eps)·(y + (1-w))
		rowGE(e.m, expr.add(yA.scale(eps-lo)).add(wA.scale(lo-eps)), lo)
		// y=0 ∧ w=0 ⇒ expr <= -eps:
		//   expr <= -eps + (hi+eps)·(y + w)
		rowLE(e.m, expr.add(yA.scale(-eps-hi)).add(wA.scale(-eps-hi)), -eps)
	}
	return varB(y)
}

// andAll conjoins symbolic booleans (none known): x <= y_i for each i and
// x >= Σy_i − (k−1). A single operand passes through unchanged.
func (e *encoder) andAll(kids []bval) bval {
	switch len(kids) {
	case 0:
		return knownB(true)
	case 1:
		return kids[0]
	}
	x := e.m.NewBinary()
	xA := varAff(e.m, x)
	sum := xA
	for _, k := range kids {
		kA := k.asAff(e.m)
		rowLE(e.m, xA.add(kA.scale(-1)), 0)
		sum = sum.add(kA.scale(-1))
	}
	// x - Σy_i >= -(k-1)
	rowGE(e.m, sum, -float64(len(kids)-1))
	return varB(x)
}

// orAll disjoins symbolic booleans: x >= y_i and x <= Σy_i.
func (e *encoder) orAll(kids []bval) bval {
	switch len(kids) {
	case 0:
		return knownB(false)
	case 1:
		return kids[0]
	}
	x := e.m.NewBinary()
	xA := varAff(e.m, x)
	sum := xA
	for _, k := range kids {
		kA := k.asAff(e.m)
		rowGE(e.m, xA.add(kA.scale(-1)), 0)
		sum = sum.add(kA.scale(-1))
	}
	// x - Σy_i <= 0
	rowLE(e.m, sum, 0)
	return varB(x)
}

// andB conjoins two booleans with folding (used to gate σ by liveness).
func (e *encoder) andB(a, b bval) bval {
	if a.isFalse() || b.isFalse() {
		return knownB(false)
	}
	if a.isTrue() {
		return b
	}
	if b.isTrue() {
		return a
	}
	return e.andAll([]bval{a, b})
}
