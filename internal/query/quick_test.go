package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// genExpr builds a random normalized LinExpr.
func genExpr(rng *rand.Rand, width int) LinExpr {
	n := rng.Intn(4)
	terms := make([]Term, n)
	for i := range terms {
		terms[i] = Term{Attr: rng.Intn(width), Coef: float64(rng.Intn(9) - 4)}
	}
	return NewLinExpr(float64(rng.Intn(21)-10), terms...)
}

func genVals(rng *rand.Rand, width int) []float64 {
	vs := make([]float64, width)
	for i := range vs {
		vs[i] = float64(rng.Intn(41) - 20)
	}
	return vs
}

// Property: LinExpr.Add is a homomorphism w.r.t. evaluation, and Scale
// distributes.
func TestQuickLinExprAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 5
		a, b := genExpr(rng, width), genExpr(rng, width)
		k := float64(rng.Intn(9) - 4)
		vals := genVals(rng, width)

		sum := a.Add(b)
		if math.Abs(sum.Eval(vals)-(a.Eval(vals)+b.Eval(vals))) > 1e-9 {
			return false
		}
		sc := a.Scale(k)
		if math.Abs(sc.Eval(vals)-k*a.Eval(vals)) > 1e-9 {
			return false
		}
		// (a+b)*k == a*k + b*k
		lhs := sum.Scale(k)
		rhs := a.Scale(k).Add(b.Scale(k))
		if !lhs.Equal(rhs, 1e-9) {
			return false
		}
		// normalization invariants: sorted attrs, no zero coefs
		for i, tm := range sum.Terms {
			if tm.Coef == 0 {
				return false
			}
			if i > 0 && sum.Terms[i-1].Attr >= tm.Attr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a.Add(a.Scale(-1)) is the zero expression.
func TestQuickLinExprInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genExpr(rng, 4)
		z := a.Add(a.Scale(-1))
		return z.IsConst() && z.Const == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clone produces behaviourally identical, aliasing-free
// queries.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 4
		q := NewUpdate(
			[]SetClause{{Attr: rng.Intn(width), Expr: genExpr(rng, width)}},
			NewAnd(
				NewPred(genNonConstExpr(rng, width), GE, float64(rng.Intn(20))),
				NewPred(genNonConstExpr(rng, width), LE, float64(rng.Intn(20)+20))))
		c := q.Clone().(*Update)
		// Mutating the clone's params must not affect the original.
		origParams := q.Params()
		p := c.Params()
		for i := range p {
			p[i] += 100
		}
		if err := c.SetParams(p); err != nil {
			return false
		}
		after := q.Params()
		for i := range origParams {
			if origParams[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func genNonConstExpr(rng *rand.Rand, width int) LinExpr {
	for {
		e := genExpr(rng, width)
		if !e.IsConst() {
			return e
		}
	}
}

// Property: applying a query twice from the same state gives the same
// result (execution is deterministic and side-effect free on inputs).
func TestQuickApplyDeterministic(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "b", "c"}, "")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d0 := relation.NewTable(sch)
		for i := 0; i < rng.Intn(10)+2; i++ {
			d0.MustInsert(genVals(rng, 3)...)
		}
		var q Query
		switch rng.Intn(3) {
		case 0:
			q = NewUpdate([]SetClause{{Attr: rng.Intn(3), Expr: genExpr(rng, 3)}},
				NewPred(genNonConstExpr(rng, 3), GE, float64(rng.Intn(10))))
		case 1:
			q = NewInsert(genVals(rng, 3)...)
		default:
			q = NewDelete(NewPred(genNonConstExpr(rng, 3), LT, float64(rng.Intn(10))))
		}
		r1, err1 := Replay([]Query{q}, d0)
		r2, err2 := Replay([]Query{q}, d0)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return len(relation.DiffTables(r1, r2, 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Distance is a metric-like function on parameter vectors:
// non-negative, zero iff equal params, symmetric, triangle inequality.
func TestQuickDistanceMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := NewUpdate(
			[]SetClause{{Attr: 0, Expr: ConstExpr(float64(rng.Intn(50)))}},
			AttrPred(1, GE, float64(rng.Intn(50))))
		mk := func() []Query {
			q := base.Clone()
			p := q.Params()
			for i := range p {
				p[i] = float64(rng.Intn(100))
			}
			if err := q.SetParams(p); err != nil {
				panic(err)
			}
			return []Query{q}
		}
		a, b, c := mk(), mk(), mk()
		dab, dba := Distance(a, b), Distance(b, a)
		if dab < 0 || math.Abs(dab-dba) > 1e-12 {
			return false
		}
		if Distance(a, a) != 0 {
			return false
		}
		if Distance(a, c) > dab+Distance(b, c)+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
