package query

import (
	"fmt"
	"math"
)

// Parameter canonical order:
//
//   - UPDATE: the Const of each SET clause expression in clause order,
//     then the RHS of each WHERE predicate in WalkPreds order.
//   - INSERT: the inserted values in attribute order.
//   - DELETE: the RHS of each WHERE predicate in WalkPreds order.
//
// This order is shared by Params/SetParams, the MILP encoder's parameter
// variables, and the log-repair distance function, so a parameter index
// is a stable address into a query.

// Params implements Query for Update.
func (u *Update) Params() []float64 {
	var p []float64
	for _, sc := range u.Set {
		p = append(p, sc.Expr.Const)
	}
	WalkPreds(u.Where, func(pr *Pred) { p = append(p, pr.RHS) })
	return p
}

// SetParams implements Query for Update.
func (u *Update) SetParams(p []float64) error {
	want := len(u.Params())
	if len(p) != want {
		return fmt.Errorf("query: UPDATE has %d params, got %d", want, len(p))
	}
	i := 0
	for j := range u.Set {
		u.Set[j].Expr.Const = p[i]
		i++
	}
	WalkPreds(u.Where, func(pr *Pred) { pr.RHS = p[i]; i++ })
	return nil
}

// Params implements Query for Insert.
func (q *Insert) Params() []float64 { return append([]float64(nil), q.Values...) }

// SetParams implements Query for Insert.
func (q *Insert) SetParams(p []float64) error {
	if len(p) != len(q.Values) {
		return fmt.Errorf("query: INSERT has %d params, got %d", len(q.Values), len(p))
	}
	copy(q.Values, p)
	return nil
}

// Params implements Query for Delete.
func (q *Delete) Params() []float64 {
	var p []float64
	WalkPreds(q.Where, func(pr *Pred) { p = append(p, pr.RHS) })
	return p
}

// SetParams implements Query for Delete.
func (q *Delete) SetParams(p []float64) error {
	want := len(q.Params())
	if len(p) != want {
		return fmt.Errorf("query: DELETE has %d params, got %d", want, len(p))
	}
	i := 0
	WalkPreds(q.Where, func(pr *Pred) { pr.RHS = p[i]; i++ })
	return nil
}

// LogParams concatenates the parameter vectors of all queries in a log.
func LogParams(log []Query) []float64 {
	var p []float64
	for _, q := range log {
		p = append(p, q.Params()...)
	}
	return p
}

// Distance is the Manhattan distance between the parameter vectors of two
// structurally identical logs (§4.3). It panics if the logs have
// different parameter arities, which indicates structural mismatch.
func Distance(a, b []Query) float64 {
	pa, pb := LogParams(a), LogParams(b)
	if len(pa) != len(pb) {
		panic(fmt.Sprintf("query: Distance on structurally different logs (%d vs %d params)",
			len(pa), len(pb)))
	}
	d := 0.0
	for i := range pa {
		d += math.Abs(pa[i] - pb[i])
	}
	return d
}

// SameStructure reports whether two queries share kind and parameter
// arity — the precondition for treating one as a parameter repair of the
// other.
func SameStructure(a, b Query) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	return len(a.Params()) == len(b.Params())
}
