// Package query models the update workload QFix diagnoses: UPDATE, INSERT
// and DELETE statements whose WHERE clauses are conjunctions/disjunctions
// of predicates over linear combinations of attributes, and whose SET
// clauses assign linear expressions (paper §3, "Problem scope").
//
// Queries are pure functions over relation.Table states (Di = qi(Di-1)).
// Every constant appearing in a query is an addressable *parameter*: the
// repair surface of QFix is exactly the parameter vector of the log
// (§3.1, "our repairs focus on altering query constants rather than query
// structure").
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Term is one attribute reference with a coefficient inside a LinExpr.
type Term struct {
	Attr int
	Coef float64
}

// LinExpr is a linear combination of attributes plus a constant:
// sum(Coef_i * A_i) + Const. The constant is a repairable parameter;
// coefficients are considered query structure and are not repaired,
// matching the paper's treatment (the Figure 2 repair changes the WHERE
// constant, not the 0.3 rate, though SET constants are repairable too).
type LinExpr struct {
	Terms []Term // sorted by Attr, no duplicates, no zero coefficients
	Const float64
}

// ConstExpr returns a LinExpr holding only a constant.
func ConstExpr(c float64) LinExpr { return LinExpr{Const: c} }

// AttrExpr returns a LinExpr referencing a single attribute.
func AttrExpr(attr int) LinExpr { return LinExpr{Terms: []Term{{Attr: attr, Coef: 1}}} }

// NewLinExpr builds a normalized LinExpr from possibly unsorted,
// possibly duplicated terms.
func NewLinExpr(c float64, terms ...Term) LinExpr {
	m := make(map[int]float64, len(terms))
	for _, t := range terms {
		m[t.Attr] += t.Coef
	}
	e := LinExpr{Const: c}
	for a, cf := range m {
		if cf != 0 {
			e.Terms = append(e.Terms, Term{Attr: a, Coef: cf})
		}
	}
	sort.Slice(e.Terms, func(i, j int) bool { return e.Terms[i].Attr < e.Terms[j].Attr })
	return e
}

// Eval evaluates the expression on a tuple's values.
func (e LinExpr) Eval(values []float64) float64 {
	v := e.Const
	for _, t := range e.Terms {
		v += t.Coef * values[t.Attr]
	}
	return v
}

// IsConst reports whether the expression references no attributes.
func (e LinExpr) IsConst() bool { return len(e.Terms) == 0 }

// Clone returns a deep copy.
func (e LinExpr) Clone() LinExpr {
	return LinExpr{Terms: append([]Term(nil), e.Terms...), Const: e.Const}
}

// Attrs appends the attribute indices referenced by e to dst.
func (e LinExpr) Attrs(dst []int) []int {
	for _, t := range e.Terms {
		dst = append(dst, t.Attr)
	}
	return dst
}

// Add returns e + o.
func (e LinExpr) Add(o LinExpr) LinExpr {
	terms := append(append([]Term(nil), e.Terms...), o.Terms...)
	return NewLinExpr(e.Const+o.Const, terms...)
}

// Scale returns k*e.
func (e LinExpr) Scale(k float64) LinExpr {
	out := LinExpr{Const: k * e.Const}
	if k == 0 {
		return out
	}
	for _, t := range e.Terms {
		out.Terms = append(out.Terms, Term{Attr: t.Attr, Coef: k * t.Coef})
	}
	return out
}

// Equal reports structural equality within eps on all coefficients.
func (e LinExpr) Equal(o LinExpr, eps float64) bool {
	if len(e.Terms) != len(o.Terms) || math.Abs(e.Const-o.Const) > eps {
		return false
	}
	for i, t := range e.Terms {
		if t.Attr != o.Terms[i].Attr || math.Abs(t.Coef-o.Terms[i].Coef) > eps {
			return false
		}
	}
	return true
}

// String renders the expression using the schema's attribute names.
func (e LinExpr) String(s *relation.Schema) string {
	var b strings.Builder
	first := true
	for _, t := range e.Terms {
		name := fmt.Sprintf("a%d", t.Attr)
		if s != nil {
			name = s.Attr(t.Attr)
		}
		switch {
		case first && t.Coef == 1:
			b.WriteString(name)
		case first && t.Coef == -1:
			b.WriteString("-" + name)
		case first:
			fmt.Fprintf(&b, "%s * %s", fmtNum(t.Coef), name)
		case t.Coef == 1:
			b.WriteString(" + " + name)
		case t.Coef == -1:
			b.WriteString(" - " + name)
		case t.Coef < 0:
			fmt.Fprintf(&b, " - %s * %s", fmtNum(-t.Coef), name)
		default:
			fmt.Fprintf(&b, " + %s * %s", fmtNum(t.Coef), name)
		}
		first = false
	}
	switch {
	case first:
		b.WriteString(fmtNum(e.Const))
	case e.Const > 0:
		b.WriteString(" + " + fmtNum(e.Const))
	case e.Const < 0:
		b.WriteString(" - " + fmtNum(-e.Const))
	}
	return b.String()
}

// fmtNum renders a float without a trailing ".0" for integral values.
func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
