package query

import "sort"

// AttrSet is a small set of attribute indices.
type AttrSet map[int]bool

// NewAttrSet builds a set from a list of indices.
func NewAttrSet(attrs ...int) AttrSet {
	s := make(AttrSet, len(attrs))
	for _, a := range attrs {
		s[a] = true
	}
	return s
}

// Add inserts all given attributes.
func (s AttrSet) Add(attrs ...int) {
	for _, a := range attrs {
		s[a] = true
	}
}

// Union merges o into s.
func (s AttrSet) Union(o AttrSet) {
	for a := range o {
		s[a] = true
	}
}

// Intersects reports whether the sets share an element.
func (s AttrSet) Intersects(o AttrSet) bool {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	for a := range small {
		if big[a] {
			return true
		}
	}
	return false
}

// ContainsAll reports whether s is a superset of o.
func (s AttrSet) ContainsAll(o AttrSet) bool {
	for a := range o {
		if !s[a] {
			return false
		}
	}
	return true
}

// Sorted returns the elements in increasing order.
func (s AttrSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Clone returns a copy of the set.
func (s AttrSet) Clone() AttrSet {
	c := make(AttrSet, len(s))
	for a := range s {
		c[a] = true
	}
	return c
}

// DirectImpact returns I(q), the attributes a query writes (Definition 7).
// INSERT and DELETE touch every attribute of the affected tuples: an
// insert determines all values of the new tuple, a delete removes them.
func DirectImpact(q Query, width int) AttrSet {
	s := make(AttrSet)
	switch v := q.(type) {
	case *Update:
		for _, sc := range v.Set {
			s[sc.Attr] = true
		}
	case *Insert, *Delete:
		for a := 0; a < width; a++ {
			s[a] = true
		}
	}
	return s
}

// Dependency returns P(q), the attributes a query's condition reads
// (Definition 7). SET-clause expression inputs are also included: an
// error in a query can propagate through "SET a = b + 5" reads as well,
// and treating them as dependencies keeps the causal read-write chain of
// §5.2 sound for relative SET clauses.
func Dependency(q Query) AttrSet {
	s := make(AttrSet)
	switch v := q.(type) {
	case *Update:
		s.Add(CondAttrs(v.Where, nil)...)
		for _, sc := range v.Set {
			s.Add(sc.Expr.Attrs(nil)...)
		}
	case *Delete:
		s.Add(CondAttrs(v.Where, nil)...)
	}
	return s
}
