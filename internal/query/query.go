package query

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Kind identifies the statement type of a query.
type Kind int

// Statement kinds in the supported update workload.
const (
	KindUpdate Kind = iota
	KindInsert
	KindDelete
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "UPDATE"
	case KindInsert:
		return "INSERT"
	case KindDelete:
		return "DELETE"
	}
	return "UNKNOWN"
}

// Query is one statement in the log: a function from database state to
// database state (§3.1). Apply mutates the given table in place; callers
// that need the previous state clone first (see Replay).
type Query interface {
	Kind() Kind
	Apply(tb *relation.Table) error
	Clone() Query
	// Params returns the query's constant vector in canonical order
	// (see package comment); SetParams writes it back.
	Params() []float64
	SetParams(p []float64) error
	String(s *relation.Schema) string
}

// SetClause assigns a linear expression to one attribute, e.g.
// "SET owed = 0.3*income" or "SET a1 = a1 + 5". The modifier function
// µ_q(t) of the paper is the simultaneous application of all SET clauses
// over the tuple's pre-update values.
type SetClause struct {
	Attr int
	Expr LinExpr
}

// Update is an UPDATE statement.
type Update struct {
	Set   []SetClause
	Where Cond
}

// NewUpdate builds an UPDATE with the given SET clauses and condition.
// A nil cond means no WHERE clause (all tuples match).
func NewUpdate(set []SetClause, cond Cond) *Update {
	if cond == nil {
		cond = True{}
	}
	return &Update{Set: set, Where: cond}
}

// Kind implements Query.
func (u *Update) Kind() Kind { return KindUpdate }

// Apply implements Query: tuples satisfying Where get all SET clauses
// applied simultaneously over their old values.
func (u *Update) Apply(tb *relation.Table) error {
	width := tb.Schema().Width()
	for _, sc := range u.Set {
		if sc.Attr < 0 || sc.Attr >= width {
			return fmt.Errorf("query: SET attribute %d out of range [0,%d)", sc.Attr, width)
		}
	}
	newVals := make([]float64, len(u.Set))
	tb.Update(func(t *relation.Tuple) {
		if !u.Where.Eval(t.Values) {
			return
		}
		for i, sc := range u.Set {
			newVals[i] = sc.Expr.Eval(t.Values)
		}
		for i, sc := range u.Set {
			t.Values[sc.Attr] = newVals[i]
		}
	})
	return nil
}

// Clone implements Query.
func (u *Update) Clone() Query {
	set := make([]SetClause, len(u.Set))
	for i, sc := range u.Set {
		set[i] = SetClause{Attr: sc.Attr, Expr: sc.Expr.Clone()}
	}
	return &Update{Set: set, Where: u.Where.Clone()}
}

// String implements Query.
func (u *Update) String(s *relation.Schema) string {
	name := "t"
	if s != nil {
		name = s.Name()
	}
	parts := make([]string, len(u.Set))
	for i, sc := range u.Set {
		an := fmt.Sprintf("a%d", sc.Attr)
		if s != nil {
			an = s.Attr(sc.Attr)
		}
		parts[i] = an + " = " + sc.Expr.String(s)
	}
	out := "UPDATE " + name + " SET " + strings.Join(parts, ", ")
	if _, isTrue := u.Where.(True); !isTrue {
		out += " WHERE " + u.Where.String(s)
	}
	return out
}

// Insert is an INSERT statement adding one tuple with constant values.
type Insert struct {
	Values []float64
}

// NewInsert builds an INSERT of the given row.
func NewInsert(values ...float64) *Insert {
	return &Insert{Values: append([]float64(nil), values...)}
}

// Kind implements Query.
func (q *Insert) Kind() Kind { return KindInsert }

// Apply implements Query.
func (q *Insert) Apply(tb *relation.Table) error {
	_, err := tb.Insert(q.Values)
	return err
}

// Clone implements Query.
func (q *Insert) Clone() Query {
	return &Insert{Values: append([]float64(nil), q.Values...)}
}

// String implements Query.
func (q *Insert) String(s *relation.Schema) string {
	name := "t"
	if s != nil {
		name = s.Name()
	}
	parts := make([]string, len(q.Values))
	for i, v := range q.Values {
		parts[i] = fmtNum(v)
	}
	return "INSERT INTO " + name + " VALUES (" + strings.Join(parts, ", ") + ")"
}

// Delete is a DELETE statement removing all tuples matching Where.
type Delete struct {
	Where Cond
}

// NewDelete builds a DELETE with the given condition (nil means all rows).
func NewDelete(cond Cond) *Delete {
	if cond == nil {
		cond = True{}
	}
	return &Delete{Where: cond}
}

// Kind implements Query.
func (q *Delete) Kind() Kind { return KindDelete }

// Apply implements Query.
func (q *Delete) Apply(tb *relation.Table) error {
	var doomed []int64
	tb.Rows(func(t relation.Tuple) {
		if q.Where.Eval(t.Values) {
			doomed = append(doomed, t.ID)
		}
	})
	for _, id := range doomed {
		tb.Delete(id)
	}
	return nil
}

// Clone implements Query.
func (q *Delete) Clone() Query { return &Delete{Where: q.Where.Clone()} }

// String implements Query.
func (q *Delete) String(s *relation.Schema) string {
	name := "t"
	if s != nil {
		name = s.Name()
	}
	out := "DELETE FROM " + name
	if _, isTrue := q.Where.(True); !isTrue {
		out += " WHERE " + q.Where.String(s)
	}
	return out
}

// Replay clones d0 and applies every query in the log, returning the
// final state Dn = Q(D0).
func Replay(log []Query, d0 *relation.Table) (*relation.Table, error) {
	cur := d0.Clone()
	for i, q := range log {
		if err := q.Apply(cur); err != nil {
			return nil, fmt.Errorf("query %d (%s): %w", i, q.Kind(), err)
		}
	}
	return cur, nil
}

// ReplayAll returns every intermediate state [D0, D1, ..., Dn]. Used by
// tests and the DecTree baseline; QFix itself needs only D0 and Dn.
func ReplayAll(log []Query, d0 *relation.Table) ([]*relation.Table, error) {
	states := make([]*relation.Table, 0, len(log)+1)
	cur := d0.Clone()
	states = append(states, cur)
	for i, q := range log {
		cur = cur.Clone()
		if err := q.Apply(cur); err != nil {
			return nil, fmt.Errorf("query %d (%s): %w", i, q.Kind(), err)
		}
		states = append(states, cur)
	}
	return states, nil
}

// CloneLog deep-copies a query log.
func CloneLog(log []Query) []Query {
	out := make([]Query, len(log))
	for i, q := range log {
		out[i] = q.Clone()
	}
	return out
}
