package query

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func taxSchema() *relation.Schema {
	return relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
}

// figure2D0 builds the D0 table of the paper's Figure 2.
func figure2D0() *relation.Table {
	tb := relation.NewTable(taxSchema())
	tb.MustInsert(9500, 950, 8550)
	tb.MustInsert(90000, 22500, 67500)
	tb.MustInsert(86000, 21500, 64500)
	tb.MustInsert(86500, 21625, 64875)
	return tb
}

// figure2Log returns the corrupted log of Figure 2 (q1 has the transposed
// digits 85700 instead of 87500).
func figure2Log() []Query {
	q1 := NewUpdate(
		[]SetClause{{Attr: 1, Expr: NewLinExpr(0, Term{Attr: 0, Coef: 0.3})}},
		AttrPred(0, GE, 85700),
	)
	q2 := NewInsert(85800, 21450, 0)
	q3 := NewUpdate(
		[]SetClause{{Attr: 2, Expr: NewLinExpr(0, Term{Attr: 0, Coef: 1}, Term{Attr: 1, Coef: -1})}},
		nil,
	)
	return []Query{q1, q2, q3}
}

func TestFigure2Replay(t *testing.T) {
	dn, err := Replay(figure2Log(), figure2D0())
	if err != nil {
		t.Fatal(err)
	}
	// Expected D3 from Figure 2 (the paper's table labels it D4).
	want := [][]float64{
		{9500, 950, 8550},
		{90000, 27000, 63000},
		{86000, 25800, 60200},
		{86500, 25950, 60550},
		{85800, 21450, 64350},
	}
	if dn.Len() != len(want) {
		t.Fatalf("Dn has %d rows, want %d", dn.Len(), len(want))
	}
	i := 0
	dn.Rows(func(tp relation.Tuple) {
		for j, w := range want[i] {
			if math.Abs(tp.Values[j]-w) > 1e-9 {
				t.Errorf("row %d attr %d = %v, want %v", i, j, tp.Values[j], w)
			}
		}
		i++
	})
}

func TestFigure2TrueLogReplay(t *testing.T) {
	log := figure2Log()
	// Repair q1's WHERE constant to 87500: only t2 (income 90000) matches.
	if err := log[0].SetParams([]float64{0, 87500}); err != nil {
		t.Fatal(err)
	}
	dn, err := Replay(log, figure2D0())
	if err != nil {
		t.Fatal(err)
	}
	t3, _ := dn.Get(3)
	if t3.Values[1] != 21500 || t3.Values[2] != 64500 {
		t.Errorf("true replay t3 = %v", t3.Values)
	}
	t4, _ := dn.Get(4)
	if t4.Values[1] != 21625 || t4.Values[2] != 64875 {
		t.Errorf("true replay t4 = %v", t4.Values)
	}
}

func TestUpdateSimultaneousSemantics(t *testing.T) {
	// SET a = b, b = a must swap, not chain.
	tb := relation.NewTable(relation.MustSchema("t", []string{"a", "b"}, ""))
	tb.MustInsert(1, 2)
	u := NewUpdate([]SetClause{
		{Attr: 0, Expr: AttrExpr(1)},
		{Attr: 1, Expr: AttrExpr(0)},
	}, nil)
	if err := u.Apply(tb); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Get(1)
	if got.Values[0] != 2 || got.Values[1] != 1 {
		t.Errorf("swap produced %v, want [2 1]", got.Values)
	}
}

func TestUpdateBadAttr(t *testing.T) {
	tb := relation.NewTable(relation.MustSchema("t", []string{"a"}, ""))
	tb.MustInsert(1)
	u := NewUpdate([]SetClause{{Attr: 5, Expr: ConstExpr(0)}}, nil)
	if err := u.Apply(tb); err == nil {
		t.Error("out-of-range SET attr accepted")
	}
}

func TestDeleteAndInsert(t *testing.T) {
	tb := relation.NewTable(relation.MustSchema("t", []string{"a", "b"}, ""))
	tb.MustInsert(1, 10)
	tb.MustInsert(2, 20)
	tb.MustInsert(3, 30)
	d := NewDelete(AttrPred(0, GE, 2))
	if err := d.Apply(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("after delete len=%d", tb.Len())
	}
	ins := NewInsert(7, 70)
	if err := ins.Apply(tb); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("after insert len=%d", tb.Len())
	}
}

func TestCondEval(t *testing.T) {
	vals := []float64{5, 10}
	cases := []struct {
		c    Cond
		want bool
	}{
		{True{}, true},
		{AttrPred(0, EQ, 5), true},
		{AttrPred(0, EQ, 6), false},
		{AttrPred(0, LT, 5), false},
		{AttrPred(0, LE, 5), true},
		{AttrPred(1, GT, 9), true},
		{AttrPred(1, GE, 11), false},
		{NewAnd(AttrPred(0, EQ, 5), AttrPred(1, EQ, 10)), true},
		{NewAnd(AttrPred(0, EQ, 5), AttrPred(1, EQ, 11)), false},
		{NewOr(AttrPred(0, EQ, 4), AttrPred(1, EQ, 10)), true},
		{NewOr(AttrPred(0, EQ, 4), AttrPred(1, EQ, 11)), false},
		{NewOr(), false},
		{NewAnd(), true},
		{NewPred(NewLinExpr(0, Term{0, 2}, Term{1, -1}), EQ, 0), true}, // 2*5-10=0
	}
	for i, tc := range cases {
		if got := tc.c.Eval(vals); got != tc.want {
			t.Errorf("case %d: %s = %v, want %v", i, tc.c.String(nil), got, tc.want)
		}
	}
}

func TestLinExprNormalization(t *testing.T) {
	e := NewLinExpr(3, Term{2, 1}, Term{0, 2}, Term{2, -1}, Term{1, 4})
	// attr 2 cancels; sorted by attr
	if len(e.Terms) != 2 || e.Terms[0].Attr != 0 || e.Terms[1].Attr != 1 {
		t.Fatalf("normalize = %+v", e)
	}
	if got := e.Eval([]float64{10, 100, 1000}); got != 3+20+400 {
		t.Errorf("Eval = %v", got)
	}
	sum := e.Add(NewLinExpr(-3, Term{0, -2}, Term{1, -4}))
	if !sum.IsConst() || sum.Const != 0 {
		t.Errorf("Add cancel = %+v", sum)
	}
	sc := e.Scale(2)
	if sc.Const != 6 || sc.Terms[0].Coef != 4 {
		t.Errorf("Scale = %+v", sc)
	}
	if z := e.Scale(0); !z.IsConst() || z.Const != 0 {
		t.Errorf("Scale(0) = %+v", z)
	}
}

func TestParamsRoundTrip(t *testing.T) {
	for _, q := range figure2Log() {
		p := q.Params()
		mod := make([]float64, len(p))
		for i := range p {
			mod[i] = p[i] + float64(i) + 1
		}
		q2 := q.Clone()
		if err := q2.SetParams(mod); err != nil {
			t.Fatalf("%s: %v", q.Kind(), err)
		}
		got := q2.Params()
		for i := range mod {
			if got[i] != mod[i] {
				t.Errorf("%s param %d: got %v want %v", q.Kind(), i, got[i], mod[i])
			}
		}
		// Original untouched by clone's SetParams.
		for i := range p {
			if q.Params()[i] != p[i] {
				t.Errorf("%s: SetParams on clone mutated original", q.Kind())
			}
		}
	}
}

func TestSetParamsArityErrors(t *testing.T) {
	for _, q := range figure2Log() {
		if err := q.SetParams([]float64{}); err == nil && len(q.Params()) > 0 {
			t.Errorf("%s accepted wrong arity", q.Kind())
		}
	}
}

func TestDistance(t *testing.T) {
	a := figure2Log()
	b := CloneLog(a)
	if d := Distance(a, b); d != 0 {
		t.Errorf("identical logs distance = %v", d)
	}
	if err := b[0].SetParams([]float64{0, 87500}); err != nil {
		t.Fatal(err)
	}
	if d := Distance(a, b); d != 1800 {
		t.Errorf("distance = %v, want 1800", d)
	}
}

func TestDirectImpactDependency(t *testing.T) {
	u := NewUpdate(
		[]SetClause{{Attr: 2, Expr: NewLinExpr(0, Term{0, 1}, Term{1, -1})}},
		AttrPred(3, GE, 10),
	)
	di := DirectImpact(u, 5)
	if !di[2] || len(di) != 1 {
		t.Errorf("DirectImpact = %v", di.Sorted())
	}
	dep := Dependency(u)
	want := NewAttrSet(0, 1, 3)
	if !dep.ContainsAll(want) || !want.ContainsAll(dep) {
		t.Errorf("Dependency = %v", dep.Sorted())
	}
	ins := NewInsert(1, 2, 3, 4, 5)
	if di := DirectImpact(ins, 5); len(di) != 5 {
		t.Errorf("INSERT DirectImpact = %v", di.Sorted())
	}
	if dep := Dependency(ins); len(dep) != 0 {
		t.Errorf("INSERT Dependency = %v", dep.Sorted())
	}
	del := NewDelete(AttrPred(1, LE, 3))
	if di := DirectImpact(del, 4); len(di) != 4 {
		t.Errorf("DELETE DirectImpact = %v", di.Sorted())
	}
	if dep := Dependency(del); !dep[1] || len(dep) != 1 {
		t.Errorf("DELETE Dependency = %v", dep.Sorted())
	}
}

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet(1, 2, 3)
	b := NewAttrSet(3, 4)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects failed")
	}
	if a.Intersects(NewAttrSet(9)) {
		t.Error("false intersection")
	}
	c := a.Clone()
	c.Union(b)
	if len(c) != 4 || len(a) != 3 {
		t.Error("Union/Clone wrong")
	}
	if !c.ContainsAll(a) || a.ContainsAll(c) {
		t.Error("ContainsAll wrong")
	}
	got := c.Sorted()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Error("Sorted not sorted")
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := taxSchema()
	log := figure2Log()
	want := []string{
		"UPDATE Taxes SET owed = 0.3 * income WHERE income >= 85700",
		"INSERT INTO Taxes VALUES (85800, 21450, 0)",
		"UPDATE Taxes SET pay = income - owed",
	}
	for i, q := range log {
		if got := q.String(s); got != want[i] {
			t.Errorf("q%d String = %q, want %q", i+1, got, want[i])
		}
	}
	del := NewDelete(NewOr(AttrPred(0, LT, 5), NewAnd(AttrPred(1, GE, 2), AttrPred(2, EQ, 0))))
	got := del.String(s)
	want2 := "DELETE FROM Taxes WHERE income < 5 OR (owed >= 2 AND pay = 0)"
	if got != want2 {
		t.Errorf("delete String = %q, want %q", got, want2)
	}
}

func TestReplayAllStates(t *testing.T) {
	states, err := ReplayAll(figure2Log(), figure2D0())
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("got %d states", len(states))
	}
	if states[0].Len() != 4 || states[2].Len() != 5 {
		t.Errorf("state sizes: D0=%d D2=%d", states[0].Len(), states[2].Len())
	}
	// States are independent snapshots.
	t1, _ := states[0].Get(3)
	if t1.Values[1] != 21500 {
		t.Errorf("D0 mutated by later queries: %v", t1.Values)
	}
}

func TestSameStructure(t *testing.T) {
	a := NewUpdate([]SetClause{{Attr: 0, Expr: ConstExpr(1)}}, AttrPred(0, EQ, 2))
	b := NewUpdate([]SetClause{{Attr: 1, Expr: ConstExpr(9)}}, AttrPred(1, EQ, 7))
	c := NewUpdate([]SetClause{{Attr: 0, Expr: ConstExpr(1)}},
		NewAnd(AttrPred(0, EQ, 2), AttrPred(1, LE, 3)))
	if !SameStructure(a, b) {
		t.Error("same-arity updates not recognized")
	}
	if SameStructure(a, c) {
		t.Error("different-arity updates recognized")
	}
	if SameStructure(a, NewInsert(1, 2)) {
		t.Error("cross-kind recognized")
	}
}
