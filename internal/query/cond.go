package query

import (
	"strings"

	"repro/internal/relation"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp int

// Comparison operators. Strict operators are supported in execution; the
// MILP encoder separates them from their weak forms by the configured
// epsilon (integer domains in the paper's workloads make this exact).
const (
	EQ CmpOp = iota
	LE
	GE
	LT
	GT
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case LE:
		return "<="
	case GE:
		return ">="
	case LT:
		return "<"
	case GT:
		return ">"
	}
	return "?"
}

// Cond is a WHERE-clause condition tree: predicates composed with AND/OR
// (§3, "WHERE clauses containing conjunctions and disjunctions of
// predicates").
type Cond interface {
	// Eval evaluates the condition on a tuple's values.
	Eval(values []float64) bool
	// Clone returns a deep copy.
	Clone() Cond
	// String renders the condition with the schema's attribute names.
	String(s *relation.Schema) string
}

// True is the always-true condition (an UPDATE/DELETE without WHERE).
type True struct{}

// Eval implements Cond.
func (True) Eval([]float64) bool { return true }

// Clone implements Cond.
func (True) Clone() Cond { return True{} }

// String implements Cond.
func (True) String(*relation.Schema) string { return "TRUE" }

// Pred is an atomic predicate LHS op RHS where LHS is a linear expression
// over attributes and RHS is a constant. The RHS constant is a repairable
// parameter. Predicates written with constants on the left or attributes
// on both sides are normalized into this form by the parser.
type Pred struct {
	LHS LinExpr
	Op  CmpOp
	RHS float64
}

// NewPred builds a predicate.
func NewPred(lhs LinExpr, op CmpOp, rhs float64) *Pred {
	return &Pred{LHS: lhs, Op: op, RHS: rhs}
}

// AttrPred builds the common single-attribute predicate "attr op rhs".
func AttrPred(attr int, op CmpOp, rhs float64) *Pred {
	return NewPred(AttrExpr(attr), op, rhs)
}

// Eval implements Cond.
func (p *Pred) Eval(values []float64) bool {
	v := p.LHS.Eval(values)
	switch p.Op {
	case EQ:
		return v == p.RHS
	case LE:
		return v <= p.RHS
	case GE:
		return v >= p.RHS
	case LT:
		return v < p.RHS
	case GT:
		return v > p.RHS
	}
	return false
}

// Clone implements Cond.
func (p *Pred) Clone() Cond { return &Pred{LHS: p.LHS.Clone(), Op: p.Op, RHS: p.RHS} }

// String implements Cond.
func (p *Pred) String(s *relation.Schema) string {
	return p.LHS.String(s) + " " + p.Op.String() + " " + fmtNum(p.RHS)
}

// And is a conjunction of conditions.
type And struct{ Kids []Cond }

// NewAnd builds a conjunction; zero kids yields a condition equal to True.
func NewAnd(kids ...Cond) *And { return &And{Kids: kids} }

// Eval implements Cond.
func (a *And) Eval(values []float64) bool {
	for _, k := range a.Kids {
		if !k.Eval(values) {
			return false
		}
	}
	return true
}

// Clone implements Cond.
func (a *And) Clone() Cond {
	kids := make([]Cond, len(a.Kids))
	for i, k := range a.Kids {
		kids[i] = k.Clone()
	}
	return &And{Kids: kids}
}

// String implements Cond.
func (a *And) String(s *relation.Schema) string {
	if len(a.Kids) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a.Kids))
	for i, k := range a.Kids {
		parts[i] = condChildString(k, s)
	}
	return strings.Join(parts, " AND ")
}

// Or is a disjunction of conditions.
type Or struct{ Kids []Cond }

// NewOr builds a disjunction; zero kids yields a condition equal to False
// (an Or with no satisfied disjunct).
func NewOr(kids ...Cond) *Or { return &Or{Kids: kids} }

// Eval implements Cond.
func (o *Or) Eval(values []float64) bool {
	for _, k := range o.Kids {
		if k.Eval(values) {
			return true
		}
	}
	return false
}

// Clone implements Cond.
func (o *Or) Clone() Cond {
	kids := make([]Cond, len(o.Kids))
	for i, k := range o.Kids {
		kids[i] = k.Clone()
	}
	return &Or{Kids: kids}
}

// String implements Cond.
func (o *Or) String(s *relation.Schema) string {
	if len(o.Kids) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(o.Kids))
	for i, k := range o.Kids {
		parts[i] = condChildString(k, s)
	}
	return strings.Join(parts, " OR ")
}

// condChildString parenthesizes composite children so the printed SQL
// parses back to the same tree.
func condChildString(c Cond, s *relation.Schema) string {
	switch c.(type) {
	case *And, *Or:
		return "(" + c.String(s) + ")"
	default:
		return c.String(s)
	}
}

// CondAttrs appends all attribute indices referenced anywhere in the
// condition to dst (with duplicates; callers dedupe as needed).
func CondAttrs(c Cond, dst []int) []int {
	switch v := c.(type) {
	case *Pred:
		dst = v.LHS.Attrs(dst)
	case *And:
		for _, k := range v.Kids {
			dst = CondAttrs(k, dst)
		}
	case *Or:
		for _, k := range v.Kids {
			dst = CondAttrs(k, dst)
		}
	}
	return dst
}

// WalkPreds visits every predicate in the condition tree in a fixed
// depth-first, left-to-right order. Both parameter extraction and the
// MILP encoder rely on this order, which makes parameter positions
// stable identifiers.
func WalkPreds(c Cond, f func(*Pred)) {
	switch v := c.(type) {
	case *Pred:
		f(v)
	case *And:
		for _, k := range v.Kids {
			WalkPreds(k, f)
		}
	case *Or:
		for _, k := range v.Kids {
			WalkPreds(k, f)
		}
	}
}
