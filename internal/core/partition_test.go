package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

// clusterWorkload builds `clusters` independent subproblems over one
// table: attribute a_k belongs to cluster k alone, rows are assigned to
// exactly one cluster (their other attributes hold a sentinel no
// predicate matches), and query k is "UPDATE SET a_k = 1 WHERE a_k >=
// theta_k". Corrupting theta_k yields complaints confined to cluster
// k's rows and attribute, so the interaction graph decomposes into
// `clusters` connected components.
func clusterWorkload(t testing.TB, clusters, rowsPer int) (*relation.Table, []query.Query, []query.Query, []Complaint) {
	t.Helper()
	attrs := make([]string, clusters)
	for k := range attrs {
		attrs[k] = fmt.Sprintf("a%d", k)
	}
	sch := relation.MustSchema("T", attrs, "")
	d0 := relation.NewTable(sch)
	for k := 0; k < clusters; k++ {
		for i := 0; i < rowsPer; i++ {
			row := make([]float64, clusters)
			for j := range row {
				row[j] = -1000 // sentinel: matched by no predicate
			}
			row[k] = float64(i * 10)
			d0.MustInsert(row...)
		}
	}
	mk := func(theta float64) []query.Query {
		log := make([]query.Query, clusters)
		for k := 0; k < clusters; k++ {
			log[k] = query.NewUpdate(
				[]query.SetClause{{Attr: k, Expr: query.ConstExpr(1)}},
				query.AttrPred(k, query.GE, theta))
		}
		return log
	}
	dirty, truth := mk(10), mk(30)
	df, err := query.Replay(dirty, d0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := query.Replay(truth, d0)
	if err != nil {
		t.Fatal(err)
	}
	complaints := ComplaintsFromDiff(df, tf, 1e-9)
	if len(complaints) == 0 {
		t.Fatal("cluster workload produced no complaints")
	}
	return d0, dirty, truth, complaints
}

// planFor runs the planning stage on raw inputs (what partitioned()
// does before scheduling).
func planFor(t testing.TB, d0 *relation.Table, log []query.Query, complaints []Complaint, candidates []int) []partition {
	t.Helper()
	width := d0.Schema().Width()
	final, err := query.Replay(log, d0)
	if err != nil {
		t.Fatal(err)
	}
	dirtyVals := make(map[int64][]float64)
	final.Rows(func(tp relation.Tuple) {
		dirtyVals[tp.ID] = append([]float64(nil), tp.Values...)
	})
	if candidates == nil {
		candidates = make([]int, len(log))
		for i := range log {
			candidates[i] = i
		}
	}
	return planPartitions(complaints, FullImpact(log, width), dirtyVals, width, candidates)
}

func TestPlanPartitionsConnectedComponents(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	parts := planFor(t, d0, dirty, complaints, nil)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions, want 3: %+v", len(parts), parts)
	}
	seenComplaints := 0
	for k, p := range parts {
		if len(p.candidates) != 1 || p.candidates[0] != k {
			t.Errorf("partition %d candidates = %v, want [%d]", k, p.candidates, k)
		}
		seenComplaints += len(p.complaintIdx)
	}
	if seenComplaints != len(complaints) {
		t.Errorf("partitions cover %d complaints, want %d", seenComplaints, len(complaints))
	}
}

func TestPlanPartitionsSharedCandidateUnion(t *testing.T) {
	// Two otherwise-independent clusters plus one bridging query that
	// writes both attributes: every complaint's candidate set contains
	// the bridge, so the components must union into one partition.
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	bridge := query.NewUpdate([]query.SetClause{
		{Attr: 0, Expr: query.ConstExpr(-1000)},
		{Attr: 1, Expr: query.ConstExpr(-1000)},
	}, query.AttrPred(0, query.LE, -5000)) // matches nothing, but impacts both attrs
	log := append(query.CloneLog(dirty), bridge)
	parts := planFor(t, d0, log, complaints, nil)
	if len(parts) != 1 {
		t.Fatalf("got %d partitions, want 1 (shared candidate must union): %+v", len(parts), parts)
	}
	want := []int{0, 1, 2}
	got := parts[0].candidates
	if len(got) != len(want) {
		t.Fatalf("unioned candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unioned candidates = %v, want %v", got, want)
		}
	}
}

func TestPlanPartitionsRespectsCandidateFilter(t *testing.T) {
	// Restricting the global candidate set (Options.Candidates / query
	// slicing) restricts the interaction sets: with cluster 1's query
	// excluded, its complaints have no candidates and attach to the
	// first partition rather than forming their own.
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	parts := planFor(t, d0, dirty, complaints, []int{0})
	if len(parts) != 1 {
		t.Fatalf("got %d partitions, want 1: %+v", len(parts), parts)
	}
	if len(parts[0].complaintIdx) != len(complaints) {
		t.Errorf("orphan complaints dropped: partition holds %d of %d",
			len(parts[0].complaintIdx), len(complaints))
	}
	if len(parts[0].candidates) != 1 || parts[0].candidates[0] != 0 {
		t.Errorf("candidates = %v, want [0]", parts[0].candidates)
	}
}

func TestPartitionedMatchesSequential(t *testing.T) {
	// Every cluster is corrupted, so the joint reference must be the
	// Basic algorithm (inc-k=1 parameterizes one query at a time and
	// cannot fix four independent corruptions; partitioning actually
	// lifts that restriction, see TestPartitionedLiftsIncremental).
	d0, dirty, truth, complaints := clusterWorkload(t, 4, 4)
	base := Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	}
	seq, err := Diagnose(d0, dirty, complaints, base)
	if err != nil {
		t.Fatal(err)
	}
	part := base
	part.Partition = 4
	par, err := Diagnose(d0, dirty, complaints, part)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Resolved || !par.Resolved {
		t.Fatalf("resolved: seq=%v par=%v (stats %+v / %+v)",
			seq.Resolved, par.Resolved, seq.Stats, par.Stats)
	}
	if par.Stats.Partitions != 4 {
		t.Errorf("Stats.Partitions = %d, want 4", par.Stats.Partitions)
	}
	if par.Stats.PartitionFallback {
		t.Error("independent clusters should not trigger the joint fallback")
	}
	if len(par.Changed) != len(seq.Changed) {
		t.Errorf("changed sets differ: seq=%v par=%v", seq.Changed, par.Changed)
	}
	// Both repairs must reproduce the true final state.
	truthFinal, _ := query.Replay(truth, d0)
	for name, rep := range map[string]*Repair{"seq": seq, "par": par} {
		final, err := query.Replay(rep.Log, d0)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := relation.DiffTables(final, truthFinal, 1e-6); len(diffs) != 0 {
			t.Errorf("%s repair diverges from truth: %+v", name, diffs)
		}
	}
}

func TestPartitionedBasicAlgorithm(t *testing.T) {
	// Partitioning composes with the Basic (one-MILP) algorithm too:
	// each component gets its own small MILP.
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm: Basic,
		Partition: 2,
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if rep.Stats.Partitions != 3 {
		t.Errorf("Stats.Partitions = %d, want 3", rep.Stats.Partitions)
	}
}

func TestPartitionedSingleComponentFallsThrough(t *testing.T) {
	// Figure 2's complaints share their candidate queries: planning must
	// find one component and fall through to the joint path, with
	// Stats.Partitions recording that planning ran.
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		Partition:    4,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if rep.Stats.Partitions != 1 {
		t.Errorf("Stats.Partitions = %d, want 1", rep.Stats.Partitions)
	}
}

func TestApplyPartitionParamsConflict(t *testing.T) {
	// Defensive merge check: two synthetic "partitions" repairing the
	// same query to different values must surface a conflict pair, and
	// agreeing assignments must not.
	mkLog := func(theta float64) []query.Query {
		return []query.Query{query.NewUpdate(
			[]query.SetClause{{Attr: 0, Expr: query.ConstExpr(1)}},
			query.AttrPred(0, query.GE, theta))}
	}
	orig := mkLog(10)
	repA := &Repair{Log: mkLog(30), Changed: []int{0}}
	repB := &Repair{Log: mkLog(50), Changed: []int{0}}
	if _, conflicts := applyPartitionParams(orig, []*Repair{repA, repB}); len(conflicts) == 0 {
		t.Error("conflicting assignments not detected")
	} else if conflicts[0] != [2]int{0, 1} {
		t.Errorf("conflict pair = %v, want [0 1]", conflicts[0])
	}
	merged, conflicts := applyPartitionParams(orig, []*Repair{repA, repA})
	if len(conflicts) != 0 {
		t.Errorf("agreeing assignments flagged as conflict: %v", conflicts)
	}
	if got := merged[0].Params(); got[len(got)-1] != 30 {
		t.Errorf("merged params = %v, want theta 30", got)
	}
}

func TestMergeConflictFallsBackToJointSolve(t *testing.T) {
	// Force the conflict path end-to-end: hand mergePartitionRepairs two
	// fabricated repairs that disagree on query 0. resolveConflicts must
	// union the partitions, re-solve jointly, and still produce a
	// verified repair.
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	d := &diagnoser{
		opt: Options{Algorithm: Basic, TupleSlicing: true,
			Partition: 2, TimeLimit: 30 * time.Second}.withDefaults(),
		d0: d0, log: dirty, complaints: complaints,
		width: d0.Schema().Width(),
	}
	var err error
	d.dirtyFinal, err = query.Replay(dirty, d0)
	if err != nil {
		t.Fatal(err)
	}
	d.plan()
	parts := planPartitions(d.complaints, d.full, d.dirtyVals, d.width, d.candidates)
	if len(parts) != 2 {
		t.Fatalf("setup: want 2 partitions, got %d", len(parts))
	}
	bad := func(theta float64) *Repair {
		log := query.CloneLog(dirty)
		p := log[0].Params()
		p[len(p)-1] = theta
		if err := log[0].SetParams(p); err != nil {
			t.Fatal(err)
		}
		return &Repair{Log: log, Changed: []int{0}, Resolved: true}
	}
	rep, err := d.mergePartitionRepairs(parts, []*Repair{bad(30), bad(50)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.PartitionFallback {
		t.Error("conflict did not set PartitionFallback")
	}
	if !rep.Resolved {
		t.Errorf("joint fallback failed to resolve: %+v", rep.Stats)
	}
}

// TestPartitionedLiftsIncremental documents a capability gain rather
// than a parity property: inc-k=1 jointly parameterizes one query per
// batch and therefore cannot repair several independently corrupted
// clusters, but the partition planner reduces each cluster to a
// single-corruption subproblem that inc-k=1 handles.
func TestPartitionedLiftsIncremental(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	base := Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	}
	joint, err := Diagnose(d0, dirty, complaints, base)
	if err != nil {
		t.Fatal(err)
	}
	if joint.Resolved {
		t.Fatal("setup: joint inc-1 unexpectedly resolved a 3-corruption workload")
	}
	part := base
	part.Partition = 3
	parted, err := Diagnose(d0, dirty, complaints, part)
	if err != nil {
		t.Fatal(err)
	}
	if !parted.Resolved {
		t.Fatalf("partitioned inc-1 should resolve per-cluster corruptions: %+v", parted.Stats)
	}
}

// Property: partitioned and unpartitioned Diagnose agree on Resolved
// and resolve the same complaints across generated multi-cluster
// workloads with every cluster corrupted (Basic joint reference, which
// handles multiple corruptions).
func TestQuickPartitionedAgreesWithJoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clusters := rng.Intn(3) + 2
		rowsPer := rng.Intn(3) + 3
		d0, dirty, truth := randomClusterWorkload(rng, clusters, rowsPer)
		df, err := query.Replay(dirty, d0)
		if err != nil {
			return true
		}
		tf, err := query.Replay(truth, d0)
		if err != nil {
			return true
		}
		complaints := ComplaintsFromDiff(df, tf, 1e-9)
		if len(complaints) == 0 {
			return true
		}
		base := Options{
			Algorithm:    Basic,
			TupleSlicing: true,
			QuerySlicing: true,
			TimeLimit:    20 * time.Second,
		}
		part := base
		part.Partition = 3
		joint, err1 := Diagnose(d0, dirty, complaints, base)
		parted, err2 := Diagnose(d0, dirty, complaints, part)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error mismatch %v vs %v", seed, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if joint.Resolved != parted.Resolved {
			t.Logf("seed %d: resolved mismatch joint=%v parted=%v (%+v / %+v)",
				seed, joint.Resolved, parted.Resolved, joint.Stats, parted.Stats)
			return false
		}
		// Both logs must resolve exactly the same complaints.
		jf, err := query.Replay(joint.Log, d0)
		if err != nil {
			return true
		}
		pf, err := query.Replay(parted.Log, d0)
		if err != nil {
			return true
		}
		for i, c := range complaints {
			one := []Complaint{c}
			if ComplaintsResolved(jf, one, 1e-6) != ComplaintsResolved(pf, one, 1e-6) {
				t.Logf("seed %d: complaint %d resolution differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// randomClusterWorkload is the randomized variant of clusterWorkload:
// per-cluster query counts, thresholds, and set constants vary, and one
// random query in every cluster is corrupted (so the complaint set
// decomposes into up to `clusters` components).
func randomClusterWorkload(rng *rand.Rand, clusters, rowsPer int) (*relation.Table, []query.Query, []query.Query) {
	attrs := make([]string, clusters)
	for k := range attrs {
		attrs[k] = fmt.Sprintf("a%d", k)
	}
	sch := relation.MustSchema("T", attrs, "")
	d0 := relation.NewTable(sch)
	for k := 0; k < clusters; k++ {
		for i := 0; i < rowsPer; i++ {
			row := make([]float64, clusters)
			for j := range row {
				row[j] = -1000
			}
			row[k] = float64(i*10 + rng.Intn(5))
			d0.MustInsert(row...)
		}
	}
	var log []query.Query
	byCluster := make([][]int, clusters)
	for k := 0; k < clusters; k++ {
		nq := rng.Intn(2) + 1
		for q := 0; q < nq; q++ {
			byCluster[k] = append(byCluster[k], len(log))
			log = append(log, query.NewUpdate(
				[]query.SetClause{{Attr: k, Expr: query.ConstExpr(float64(rng.Intn(50) + 100))}},
				query.AttrPred(k, query.GE, float64(rng.Intn(rowsPer*10)))))
		}
	}
	truth := query.CloneLog(log)
	for k := 0; k < clusters; k++ {
		corrupt := byCluster[k][rng.Intn(len(byCluster[k]))]
		p := log[corrupt].Params()
		p[rng.Intn(len(p))] = float64(rng.Intn(rowsPer * 10))
		_ = log[corrupt].SetParams(p)
	}
	return d0, log, truth
}
