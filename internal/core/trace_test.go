package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceDiagnose runs one diagnosis of the cluster workload under a
// fresh trace root and returns the ended root span.
func traceDiagnose(t *testing.T, opts Options) *obs.Span {
	t.Helper()
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	root := obs.NewTrace("test")
	opts.Trace = root
	rep, err := Diagnose(d0, dirty, complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("diagnosis unresolved: %+v", rep.Stats)
	}
	root.End()
	return root
}

func TestTraceSpanTreeWellNested(t *testing.T) {
	root := traceDiagnose(t, Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		Partition:    3,
		TimeLimit:    30 * time.Second,
	})
	if !root.WellNested(5 * time.Millisecond) {
		t.Fatalf("trace not well-nested:\n%s", root.Structure())
	}
	// The tree must actually cover the pipeline: planning with the
	// impact closure, per-partition encode+solve, and the merge.
	s := root.Structure()
	for _, want := range []string{"diagnose", "replay", "plan", "impact",
		"partition", "queue", "encode", "solve", "presolve", "merge"} {
		if !strings.Contains(s, want) {
			t.Errorf("structure missing %q span:\n%s", want, s)
		}
	}
}

func TestTraceStructureDeterministicAcrossSolverParallel(t *testing.T) {
	// The span STRUCTURE (shape + attr keys, no timings) must be
	// byte-identical whatever -solver-parallel is set to: parallel
	// branch-and-bound is speculative with sequential semantics, so it
	// consumes the same nodes and therefore rolls the same "nodes"
	// batch spans. Timings differ; the shape may not.
	base := Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		Partition:    3,
		TimeLimit:    30 * time.Second,
	}
	var want string
	for _, sp := range []int{1, 2, -1} {
		opts := base
		opts.SolverParallel = sp
		got := traceDiagnose(t, opts).Structure()
		if got == "" {
			t.Fatalf("SolverParallel=%d produced an empty structure", sp)
		}
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("SolverParallel=%d changed the span structure:\n--- SolverParallel=1\n%s\n--- SolverParallel=%d\n%s",
				sp, want, sp, got)
		}
	}
}

func TestTraceStatsAgreeWithSpans(t *testing.T) {
	// Stats phase timers are derived from the same intervals the spans
	// record ("one consistent truth"): a traced run must report
	// non-zero plan and solve times, and the root must contain the
	// whole diagnosis.
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	root := obs.NewTrace("test")
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
		Trace:        root,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := root.End()
	if rep.Stats.PlanTime <= 0 || rep.Stats.SolveTime <= 0 || rep.Stats.EncodeTime <= 0 {
		t.Fatalf("phase timers not populated: plan=%v encode=%v solve=%v",
			rep.Stats.PlanTime, rep.Stats.EncodeTime, rep.Stats.SolveTime)
	}
	if sum := rep.Stats.PlanTime + rep.Stats.EncodeTime + rep.Stats.SolveTime; sum > total+5*time.Millisecond {
		t.Errorf("phase times (%v) exceed the root span (%v)", sum, total)
	}
}

func TestUntracedDiagnoseStillTimesPhases(t *testing.T) {
	// With no trace attached, the phase helper falls back to plain
	// clock reads — Stats must come out the same way.
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.PlanTime <= 0 || rep.Stats.SolveTime <= 0 {
		t.Fatalf("untraced run lost phase timers: plan=%v solve=%v",
			rep.Stats.PlanTime, rep.Stats.SolveTime)
	}
}
