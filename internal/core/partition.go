package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// This file is the planning half of the plan/solve engine. FullImpact
// (Definition 7) already tells us which queries can possibly influence
// which attributes of the final state, so complaints whose
// relevant-query candidate sets are disjoint are provably independent
// subproblems: no parameter change that resolves one can touch the
// attributes the other complains about. planPartitions splits the
// complaint set into the connected components of that interaction
// graph; solvePartitions runs each component as an independent
// sub-diagnosis on the shared scheduler; mergePartitionRepairs stitches
// the per-partition repairs back into one log repair, falling back to a
// joint solve whenever independence turns out to be violated at merge
// or verification time.

// partition is one independent subproblem: a subset of the complaints
// plus the union of their relevant-query candidate sets.
type partition struct {
	complaintIdx []int // indices into the diagnoser's complaint slice
	candidates   []int // log indices, sorted ascending
	// size estimates the partition's MILP as rows × candidate queries ×
	// complaints — the largest-first dispatch key. It only needs to
	// rank partitions of one plan against each other, so the shared
	// rows factor stays in for intuition but never changes the order.
	size int
}

// partitionSize estimates one partition's MILP size. Each factor is
// floored at 1 so degenerate partitions (orphan complaints with no
// candidate queries) still rank deterministically instead of collapsing
// to zero.
func partitionSize(rows, candidates, complaints int) int {
	if rows < 1 {
		rows = 1
	}
	if candidates < 1 {
		candidates = 1
	}
	if complaints < 1 {
		complaints = 1
	}
	return rows * candidates * complaints
}

// largestFirst returns the dispatch order that starts the biggest
// partitions first, shortening the critical path: with more partitions
// than pool slots, round-robin start order can leave the one huge MILP
// at the back of the queue, making wall-clock ≈ queue wait + its solve.
// Ties keep index order (stable sort), so the order — and therefore the
// scheduler's start sequence — is deterministic for a given plan.
// Result adjudication stays in submission (index) order regardless; see
// scheduleOrder.
func largestFirst(parts []partition) []int {
	order := make([]int, len(parts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return parts[order[a]].size > parts[order[b]].size
	})
	return order
}

// interactionSets computes, for each complaint, the set of global
// candidates whose full impact intersects that complaint's A(c). These
// are the edges of the complaint–query interaction graph.
func interactionSets(complaints []Complaint, full []query.AttrSet,
	dirtyVals map[int64][]float64, width int, candidates []int) [][]int {
	sets := make([][]int, len(complaints))
	for ci, c := range complaints {
		ac := complaintAttrSet(c, dirtyVals, width)
		for _, qi := range candidates {
			if full[qi].Intersects(ac) {
				sets[ci] = append(sets[ci], qi)
			}
		}
	}
	return sets
}

// unionFind is a plain weighted union-find over 0..n-1.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// planPartitions splits the complaints into connected components of the
// interaction graph: two complaints are connected iff their candidate
// sets share a query (transitively). Components that share a candidate
// are therefore always unioned — the correctness requirement — because
// sharing a candidate *is* the graph's edge relation. Complaints with
// an empty candidate set (nothing can influence their attributes, or
// the complaint is already satisfied by the dirty state) attach to the
// first partition so they stay under the same verification umbrella
// instead of spawning unsolvable singletons.
//
// Partitions are ordered by their smallest complaint index, so planning
// is deterministic for a given input.
func planPartitions(complaints []Complaint, full []query.AttrSet,
	dirtyVals map[int64][]float64, width int, candidates []int) []partition {
	sets := interactionSets(complaints, full, dirtyVals, width, candidates)

	uf := newUnionFind(len(complaints))
	owner := make(map[int]int) // query index -> first complaint seen with it
	for ci, set := range sets {
		for _, qi := range set {
			if first, ok := owner[qi]; ok {
				uf.union(first, ci)
			} else {
				owner[qi] = ci
			}
		}
	}

	byRoot := make(map[int]*partition)
	var order []int
	var orphans []int // complaints with no candidate queries
	for ci := range complaints {
		if len(sets[ci]) == 0 {
			orphans = append(orphans, ci)
			continue
		}
		root := uf.find(ci)
		p, ok := byRoot[root]
		if !ok {
			p = &partition{}
			byRoot[root] = p
			order = append(order, root)
		}
		p.complaintIdx = append(p.complaintIdx, ci)
	}

	parts := make([]partition, 0, len(order))
	for _, root := range order {
		p := byRoot[root]
		cands := make(query.AttrSet)
		for _, ci := range p.complaintIdx {
			cands.Add(sets[ci]...)
		}
		parts = append(parts, partition{
			complaintIdx: p.complaintIdx,
			candidates:   cands.Sorted(),
		})
	}
	if len(orphans) > 0 {
		if len(parts) == 0 {
			parts = append(parts, partition{})
		}
		parts[0].complaintIdx = append(orphans, parts[0].complaintIdx...)
		sort.Ints(parts[0].complaintIdx)
	}
	rows := len(dirtyVals)
	for i := range parts {
		parts[i].size = partitionSize(rows, len(parts[i].candidates), len(parts[i].complaintIdx))
	}
	return parts
}

// partitioned is the partition-parallel solve path. handled=false means
// planning found fewer than two components and the caller should fall
// through to the joint path (the single-component stats still record
// that planning ran).
func (d *diagnoser) partitioned() (*Repair, bool, error) {
	parts := planPartitions(d.complaints, d.full, d.dirtyVals, d.width, d.candidates)
	d.stats.Partitions = len(parts)
	if len(parts) < 2 {
		return nil, false, nil
	}
	reps, err := d.solvePartitions(parts)
	if err != nil {
		return nil, true, err
	}
	rep, err := d.mergePartitionRepairs(parts, reps)
	return rep, true, err
}

// solvePartitions runs every partition as an independent sub-diagnosis
// on the shared scheduler with Options.Partition workers, started
// largest-first (by the planner's size estimate) so the biggest MILP
// never sits at the back of the queue defining the critical path. Each
// sub-diagnosis sees the full log and initial state but only its
// partition's complaints, with repair candidates pinned to the
// partition's candidate set; inner parallelism is disabled so the
// concurrency budget is spent at the partition level. Results are still
// adjudicated in plan (index) order, so the chosen repair is
// independent of the start order.
//
// With Options.PartitionSolver set, each partition is packaged as a
// self-contained Subproblem and dispatched through the hook (the
// distributed coordinator's entry point); otherwise it solves in
// process, adopting the parent's planning products so no partition
// re-runs the replay + FullImpact pass.
func (d *diagnoser) solvePartitions(parts []partition) ([]*Repair, error) {
	sub := d.opt
	sub.Partition = 0
	sub.Parallel = 1
	sub.TotalTimeLimit = 0 // the outer deadline is enforced per job below
	sub.PartitionSolver = nil
	sub.Workers = nil
	// Partition jobs already run on the scan's scheduler; a sub-diagnosis
	// scheduling nested scans from a pool worker could deadlock the pool,
	// so subs never carry one (their Parallel=1/Partition=0 settings make
	// this unreachable anyway — this pins the invariant).
	sub.Scheduler = nil

	// Partition spans are pre-created in plan (index) order by this
	// goroutine, so the trace's partition list is deterministic
	// regardless of the largest-first start order or which worker slot
	// runs which job; each job fills in only its own subtree. The queue
	// child measures how long the partition waited for a pool slot.
	pspans := make([]*obs.Span, len(parts))
	qspans := make([]*obs.Span, len(parts))
	created := make([]time.Time, len(parts))
	for i := range parts {
		pspans[i] = d.span.Start(fmt.Sprintf("partition[%d]", i))
		pspans[i].SetAttr("complaints", len(parts[i].complaintIdx))
		pspans[i].SetAttr("candidates", len(parts[i].candidates))
		qspans[i] = pspans[i].Start("queue")
		created[i] = time.Now()
	}

	type outcome struct {
		rep       *Repair
		err       error
		queueWait time.Duration
		solve     time.Duration
	}
	results, wait := scheduleOrder(d.opt.Scheduler, d.opt.Partition, len(parts), largestFirst(parts), func(i int) outcome {
		jobStart := time.Now()
		qspans[i].End()
		defer pspans[i].End()
		out := outcome{queueWait: jobStart.Sub(created[i])}
		o := sub
		o.Trace = pspans[i]
		if !d.deadline.IsZero() {
			remain := time.Until(d.deadline)
			if remain <= 0 {
				out.rep = &Repair{Log: query.CloneLog(d.log),
					Stats: Stats{LastStatus: "total-time-limit"}}
				return out
			}
			o.TotalTimeLimit = remain
		}
		o.Candidates = append([]int(nil), parts[i].candidates...)
		cs := make([]Complaint, len(parts[i].complaintIdx))
		for j, ci := range parts[i].complaintIdx {
			cs[j] = d.complaints[ci]
		}
		if d.opt.PartitionSolver != nil {
			out.rep, out.err = d.opt.PartitionSolver.SolvePartition(
				Subproblem{D0: d.d0, Log: d.log, Complaints: cs, Options: o})
		} else {
			out.rep, out.err = d.solveSub(cs, o)
		}
		out.solve = time.Since(jobStart)
		return out
	})
	defer wait()

	reps := make([]*Repair, len(parts))
	var firstErr error
	// As in the parallel batch scan: every partition job delivers one
	// outcome (deadline-expired jobs deliver a "total-time-limit" stub),
	// so the adjudication drain always completes; cancellation is the
	// jobs' own deadline check.
	//qfix:ctx-ok receives always complete: jobs deliver even on deadline expiry
	for i := range parts {
		out := <-results[i]
		ps := PartitionStat{
			Index:      i,
			Complaints: len(parts[i].complaintIdx),
			Candidates: len(parts[i].candidates),
			QueueWait:  out.queueWait,
			Solve:      out.solve,
		}
		if out.rep != nil {
			st := out.rep.Stats
			ps.Remote = st.RemoteJobs > 0
			ps.Worker = st.WorkerAddr
			ps.Attempts = st.DispatchAttempts
			ps.Nodes = st.Nodes
			ps.Status = st.LastStatus
		}
		d.stats.PartitionStats = append(d.stats.PartitionStats, ps)
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		reps[i] = out.rep
		d.mergeStats(out.rep.Stats)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return reps, nil
}

// solveSub runs one partition subproblem in process. Unlike a fresh
// Diagnose, it adopts the parent's planning products (replayed dirty
// state, FullImpact closure) and derives its slices from them, so the
// per-partition cost is pure solving — the ROADMAP's "partition-aware
// tuple slicing". Stats.PlanPasses across a locally partitioned
// diagnosis therefore totals exactly 1.
func (d *diagnoser) solveSub(cs []Complaint, o Options) (*Repair, error) {
	o = o.withDefaults()
	sub := &diagnoser{opt: o, d0: d.d0, log: d.log, complaints: cs,
		width: d.width, dirtyFinal: d.dirtyFinal,
		// The sub-diagnosis hangs its batch spans directly under the
		// partition's span (no nested "diagnose" level).
		span: o.Trace,
		// Sibling partitions share the parent's seed board, so the
		// largest (first-finishing) solve seeds any later sibling that
		// shares log coordinates with it.
		seeds: d.seeds}
	sub.adoptPlan(d)
	if o.TotalTimeLimit > 0 {
		sub.deadline = time.Now().Add(o.TotalTimeLimit)
	}
	return sub.solveJoint()
}

// mergePartitionRepairs combines the per-partition repairs into one log
// repair: parameter assignments from every partition are applied to the
// original log, distance is summed (Manhattan distance is additive over
// disjoint query sets), Changed is unioned, and Stats were already
// merged as results arrived. Safety nets, in order:
//
//   - conflicting parameter assignments to a shared query (impossible
//     when partitions are true connected components, but checked
//     defensively) → union the conflicting partitions and re-solve each
//     union jointly; if conflicts somehow persist, solve everything
//     jointly;
//   - a partition that failed to resolve → the joint outcome would be
//     unresolved too, so return the identity repair unresolved, exactly
//     like the sequential scan does;
//   - the merged log fails full-complaint verification (cross-partition
//     interference through tuples outside the complaint attributes) →
//     fall back to a joint solve.
func (d *diagnoser) mergePartitionRepairs(parts []partition, reps []*Repair) (*Repair, error) {
	// The merge phase covers parameter stitching, conflict resolution,
	// and the full-complaint re-verification; a fallback joint solve is
	// charged to the solve phases it runs, not to MergeTime. The phase
	// is stopped (exactly once per path) before any finish() snapshot or
	// fallback so rep.Stats carries the final MergeTime.
	mp := startPhase(d.span, "merge")
	merged, conflicts := applyPartitionParams(d.log, reps)
	if len(conflicts) > 0 {
		d.stats.PartitionFallback = true
		var err error
		parts, reps, err = d.resolveConflicts(parts, reps, conflicts)
		if err != nil {
			d.stats.MergeTime += mp.stop()
			return nil, err
		}
		merged, conflicts = applyPartitionParams(d.log, reps)
		if len(conflicts) > 0 {
			d.stats.MergeTime += mp.stop()
			return d.solveJoint()
		}
	}

	allResolved := true
	for _, rep := range reps {
		if rep == nil || !rep.Resolved {
			allResolved = false
			if rep != nil && rep.Stats.LastStatus != "" {
				d.stats.LastStatus = rep.Stats.LastStatus
			}
			break
		}
	}
	if !allResolved {
		d.stats.MergeTime += mp.stop()
		return d.finish(nil), nil
	}

	rep := d.finish(merged)
	if !rep.Resolved {
		// Every partition verified in isolation but the combined replay
		// violates a complaint: the partitions interfered outside the
		// attribute sets the planner reasons about. Solve jointly.
		d.stats.PartitionFallback = true
		d.stats.MergeTime += mp.stop()
		return d.solveJoint()
	}
	d.stats.MergeTime += mp.stop()
	rep.Stats = d.stats // refresh: finish() snapshotted before MergeTime landed
	return rep, nil
}

// resolveConflicts unions each group of partitions that fought over a
// query's parameters and re-solves every union as one joint
// sub-diagnosis; unconflicted partitions keep their existing repairs.
func (d *diagnoser) resolveConflicts(parts []partition, reps []*Repair, conflicts [][2]int) ([]partition, []*Repair, error) {
	uf := newUnionFind(len(parts))
	for _, pr := range conflicts {
		uf.union(pr[0], pr[1])
	}
	grouped := make(map[int][]int) // root -> member partition indices
	var order []int
	for i := range parts {
		root := uf.find(i)
		if len(grouped[root]) == 0 {
			order = append(order, root)
		}
		grouped[root] = append(grouped[root], i)
	}

	var newParts []partition
	var newReps []*Repair
	var resolve []int // indices into newParts that need a fresh solve
	for _, root := range order {
		members := grouped[root]
		if len(members) == 1 {
			newParts = append(newParts, parts[members[0]])
			newReps = append(newReps, reps[members[0]])
			continue
		}
		var u partition
		cands := make(query.AttrSet)
		for _, mi := range members {
			u.complaintIdx = append(u.complaintIdx, parts[mi].complaintIdx...)
			cands.Add(parts[mi].candidates...)
		}
		sort.Ints(u.complaintIdx)
		u.candidates = cands.Sorted()
		u.size = partitionSize(len(d.dirtyVals), len(u.candidates), len(u.complaintIdx))
		resolve = append(resolve, len(newParts))
		newParts = append(newParts, u)
		newReps = append(newReps, nil)
	}

	toSolve := make([]partition, len(resolve))
	for i, pi := range resolve {
		toSolve[i] = newParts[pi]
	}
	solved, err := d.solvePartitions(toSolve)
	if err != nil {
		return nil, nil, err
	}
	for i, pi := range resolve {
		newReps[pi] = solved[i]
	}
	return newParts, newReps, nil
}

// applyPartitionParams overlays every partition repair's changed
// parameters onto a clone of the original log. conflicts lists pairs of
// repair indices that assigned different values to the same query's
// parameters (each offending query contributes one pair).
func applyPartitionParams(orig []query.Query, reps []*Repair) (mergedLog []query.Query, conflicts [][2]int) {
	merged := query.CloneLog(orig)
	assigned := make(map[int][]float64)
	ownerOf := make(map[int]int) // query index -> repair that assigned it
	for ri, rep := range reps {
		if rep == nil {
			continue
		}
		for _, qi := range rep.Changed {
			params := rep.Log[qi].Params()
			if prev, ok := assigned[qi]; ok {
				if !sameParams(prev, params) {
					conflicts = append(conflicts, [2]int{ownerOf[qi], ri})
				}
				continue
			}
			assigned[qi] = params
			ownerOf[qi] = ri
			if err := merged[qi].SetParams(params); err != nil {
				// Structural mismatch cannot happen between clones of the
				// same log; route it through the conflict fallback anyway.
				conflicts = append(conflicts, [2]int{ri, ri})
			}
		}
	}
	if len(conflicts) > 0 {
		return nil, conflicts
	}
	return merged, nil
}

// sameParams compares two parameter vectors within solver tolerance.
func sameParams(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}
