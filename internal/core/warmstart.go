package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/encode"
	"repro/internal/lru"
	"repro/internal/milp"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/simplex"
)

// This file threads solver warm starts through the engine. Every MILP
// the engine builds is related to its neighbors — the incremental batch
// k+1 model extends batch k's, a refinement round re-encodes the same
// parameter set over the repaired log, sibling partitions parameterize
// query sets of the same log, and repeat diagnoses rebuild the same
// models outright — so each solve seeds branch-and-bound from the best
// available prior solution instead of discovering its first incumbent
// from scratch. Three sources, consulted in order of strength:
//
//   - SolutionCache (across diagnoses): an exact hit on the solve
//     digest replays the prior solution vector and final LP basis into
//     milp.Options.Incumbent/Basis directly;
//   - the diagnosis's seed board (within one diagnosis): accepted
//     solves publish their parameter assignments by log coordinate, and
//     later solves sharing coordinates project them onto their own
//     parameter space (encode.ProjectParams) and complete the
//     projection into a feasible MIP start (encode.SeedSolution);
//   - nothing — the solve runs cold, exactly as without WarmStart.
//
// Warm starts are bound seeds, never answers: milp vets every seed
// (snap, feasibility, exact re-pricing) and admits it exactly like a
// search-discovered incumbent, so the reported repair is the one the
// cold search would report, with the win showing up only in
// Stats.WarmSeeds and reduced Stats.Nodes/LPIters.

// DefaultSolutionCacheEntries bounds a SolutionCache constructed with
// NewSolutionCache(0).
const DefaultSolutionCacheEntries = 64

// seedCompletionNodes bounds the fix-and-solve completion that turns a
// projected parameter assignment into a full MIP start. The restricted
// model (every parameter fixed) typically solves in a handful of nodes;
// a completion that needs more than this is not worth its cost as a
// seed — the budget is the ceiling on what a failed seed attempt can
// waste, so it stays deliberately small.
const seedCompletionNodes = 500

// SolutionCache caches accepted MILP solutions across diagnoses, keyed
// by a digest of the exact solve (initial state, log SQL, complaint
// set, parameter set, soft tuples, and the slicing/encoder options —
// everything the model is a function of). A repeat diagnosis of the
// same history rebuilds the same models; the cache hands each solve its
// prior solution vector as the starting incumbent and its final simplex
// basis to seed the root LP, collapsing the search to the pruning pass.
// Install one via Options.SolutionCache next to Options.ImpactCache:
// histstore.Store keeps one per store, dist workers one per process.
// Safe for concurrent use; eviction is LRU.
type SolutionCache struct {
	mu      sync.Mutex
	entries *lru.Map[uint64, solutionEntry]
}

type solutionEntry struct {
	// Model fingerprint: digest collisions (or a cache shared across
	// schema-divergent stores) must degrade to a miss, not a bogus
	// seed. milp would reject a mis-shaped or infeasible seed anyway;
	// the fingerprint just keeps the failure path cheap.
	vars, rows, ints, params int
	x                        []float64
	basis                    *simplex.Snapshot
}

// NewSolutionCache returns a cache bounded to max solutions (0 picks
// DefaultSolutionCacheEntries).
func NewSolutionCache(max int) *SolutionCache {
	if max <= 0 {
		max = DefaultSolutionCacheEntries
	}
	return &SolutionCache{entries: lru.New[uint64, solutionEntry](max)}
}

// Len reports how many solutions the cache currently holds.
func (c *SolutionCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries.Len()
}

// get returns the cached solution and basis for the digest when its
// model fingerprint matches the encoding about to be solved.
func (c *SolutionCache) get(key uint64, res *encode.Result) ([]float64, *simplex.Snapshot, bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries.Get(key)
	if !ok || e.vars != res.Model.NumVars() || e.rows != res.Model.NumConstrs() ||
		e.ints != res.Model.NumIntVars() || e.params != len(res.Params) {
		return nil, nil, false
	}
	return e.x, e.basis, true
}

// put stores an accepted solve's solution vector and final basis. The
// slices are taken by reference and treated as immutable from here on
// (milp copies before mutating).
func (c *SolutionCache) put(key uint64, res *encode.Result, mres milp.Result) {
	if c == nil || !mres.HasSolution {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.Put(key, solutionEntry{
		vars:   res.Model.NumVars(),
		rows:   res.Model.NumConstrs(),
		ints:   res.Model.NumIntVars(),
		params: len(res.Params),
		x:      mres.X,
		basis:  mres.Basis,
	})
}

// seedBoard shares accepted parameter assignments between the solves of
// one diagnosis: refinement rounds seed from the step-1 repair they
// refine, and sibling partitions (solved largest-first) seed later
// solves that share log coordinates — which happens exactly when
// conflict resolution unions partitions over a contested query. The
// board is advisory and timing-dependent under the parallel scans;
// that is safe because seeds only ever bound the search.
type seedBoard struct {
	mu   sync.Mutex
	vals map[encode.ParamKey]float64
}

func newSeedBoard() *seedBoard {
	return &seedBoard{vals: make(map[encode.ParamKey]float64)}
}

// publish records a solved encoding's parameter assignment.
func (b *seedBoard) publish(params []encode.ParamRef, vals []float64) {
	if b == nil || len(params) != len(vals) {
		return
	}
	b.mu.Lock()
	for i, p := range params {
		b.vals[encode.ParamKey{Query: p.Query, Index: p.Index}] = vals[i]
	}
	b.mu.Unlock()
}

// snapshot copies the board for lock-free projection.
func (b *seedBoard) snapshot() map[encode.ParamKey]float64 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[encode.ParamKey]float64, len(b.vals))
	for k, v := range b.vals {
		out[k] = v
	}
	return out
}

// solveKey digests everything the about-to-be-built model is a function
// of: schema and log SQL (the rolling log digest discipline of
// impactcache.go), the initial state's tuple IDs and values, the
// complaint set, the parameter set, soft tuples, and the slicing and
// encoder options. Two attempts with equal keys build models with
// identical variables and solutions (constraint row order may differ,
// which the solution vector is insensitive to).
func (d *diagnoser) solveKey(baseLog []query.Query, paramSet map[int]bool, soft []int64) uint64 {
	sch := d.d0.Schema()
	h := DigestSeed(sch)
	for _, q := range baseLog {
		h = DigestStep(h, sch, q)
	}
	h = fnvString(h, "|d0|")
	d.d0.Rows(func(t relation.Tuple) {
		h = fnvU64(h, uint64(t.ID))
		for _, v := range t.Values {
			h = fnvF64(h, v)
		}
	})
	h = fnvString(h, "|complaints|")
	for _, c := range d.complaints {
		h = fnvU64(h, uint64(c.TupleID))
		h = fnvBool(h, c.Exists)
		for _, v := range c.Values {
			h = fnvF64(h, v)
		}
		h = fnvString(h, ";")
	}
	h = fnvString(h, "|params|")
	qs := make([]int, 0, len(paramSet))
	for qi := range paramSet {
		qs = append(qs, qi)
	}
	sort.Ints(qs)
	for _, qi := range qs {
		h = fnvU64(h, uint64(qi))
	}
	h = fnvString(h, "|soft|")
	for _, id := range soft {
		h = fnvU64(h, uint64(id))
	}
	h = fnvString(h, "|slices|")
	for _, id := range d.tupleIDs {
		h = fnvU64(h, uint64(id))
	}
	h = fnvString(h, ";")
	for _, a := range d.attrs {
		h = fnvU64(h, uint64(a))
	}
	h = fnvString(h, "|opts|")
	h = fnvBool(h, d.opt.TupleSlicing)
	h = fnvBool(h, d.opt.Normalize)
	h = fnvBool(h, d.opt.NoFolding)
	h = fnvBool(h, d.opt.NoParamWindows)
	// NoPresolve changes which of several tied optima the search settles
	// on, so cached seeds must not cross the configuration boundary.
	// SolverParallel is deliberately NOT digested: results are
	// byte-identical at any setting by construction.
	h = fnvBool(h, d.opt.NoPresolve)
	h = fnvF64(h, d.opt.DomainBound)
	h = fnvF64(h, d.opt.Eps)
	return h
}

// seedSolve arms the MILP options with the strongest available warm
// seed for this encoding: an exact SolutionCache hit replays the prior
// solution and basis outright; otherwise a seed-board projection with
// at least one shared coordinate is completed into a MIP start by a
// small fix-and-solve. The completion's work is charged to st so the
// warm statistics stay honest.
func (d *diagnoser) seedSolve(res *encode.Result, key uint64, mopt *milp.Options, st *Stats) {
	if x, basis, ok := d.opt.SolutionCache.get(key, res); ok {
		mopt.Incumbent = x
		// The cache entry is this model's own prior answer: let it
		// prune at full strength (a tie with it IS the cold answer).
		mopt.IncumbentPrior = true
		mopt.Basis = basis
		return
	}
	if d.seeds == nil || len(res.Params) == 0 {
		return
	}
	prior := d.seeds.snapshot()
	if len(prior) == 0 {
		return
	}
	vals, shared := encode.ProjectParams(prior, res.Params)
	if shared == 0 {
		return
	}
	budget := milp.Options{
		TimeLimit:  mopt.TimeLimit / 4,
		MaxNodes:   seedCompletionNodes,
		ColdLP:     d.opt.ColdLP,
		NoPresolve: d.opt.NoPresolve,
	}
	x, sres, ok := res.SeedSolution(vals, budget)
	st.Nodes += sres.Nodes
	st.LPIters += sres.LPIters
	st.Refactorizations += sres.Refactorizations
	st.PresolvedRows += sres.PresolvedRows
	if ok {
		mopt.Incumbent = x
	}
}

// FNV-1a folds over the value kinds solveKey digests.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvF64(h uint64, v float64) uint64 { return fnvU64(h, math.Float64bits(v)) }

func fnvBool(h uint64, b bool) uint64 {
	if b {
		return fnvU64(h, 1)
	}
	return fnvU64(h, 0)
}
