// External test: solver warm starts against the paper's workload
// generator and the partition bench generator. This is the acceptance
// property for the warm-start layer: a warm-started diagnosis returns a
// repair byte-identical to the cold one — across the incremental batch
// scan (including refinement rounds), the partition scan, and repeat
// diagnoses through a SolutionCache — while the warm statistics show
// the seeds landing and the search shrinking.
package core_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestWarmIncrementalMatchesCold sweeps generator workloads through the
// incremental scan (tuple slicing on, so refinement rounds run and seed
// from their step-1 repairs) and pins warm == cold byte-identically.
func TestWarmIncrementalMatchesCold(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2 // solver-bound; keep the race-short pass fast
	}
	cold := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 30 * time.Second}
	rng := rand.New(rand.NewSource(41))
	done := 0
	for trial := 0; trial < 30 && done < trials; trial++ {
		w, err := workload.Generate(workload.Config{
			ND: 25, Na: 4, Nq: 20, Mix: workload.UpdateOnly, Seed: int64(trial) + 3})
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.MakeInstance(10 + rng.Intn(9))
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue // no-op corruption: nothing to diagnose
		}
		done++
		want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cold)
		if err != nil {
			t.Fatal(err)
		}
		warm := cold
		warm.WarmStart = true
		got, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, warm)
		if err != nil {
			t.Fatal(err)
		}
		if gf, wf := diagFingerprint(in, got), diagFingerprint(in, want); gf != wf {
			t.Errorf("trial %d: warm repair differs from cold:\n got %s\nwant %s", trial, gf, wf)
		}
	}
	if done == 0 {
		t.Fatal("setup: no seed produced a complaint-carrying instance")
	}
}

// TestWarmRepeatSeedsFromSolutionCache repeats a diagnosis through a
// shared SolutionCache: the second run must admit cached seeds
// (Stats.WarmSeeds), spend no more search than the first, and return
// the byte-identical repair.
func TestWarmRepeatSeedsFromSolutionCache(t *testing.T) {
	cold := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 30 * time.Second}
	done := 0
	for trial := 0; trial < 30 && done < 3; trial++ {
		w, err := workload.Generate(workload.Config{
			ND: 25, Na: 4, Nq: 20, Mix: workload.UpdateOnly, Seed: int64(trial) + 5})
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.MakeInstance(16)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue
		}
		want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cold)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Resolved {
			continue // seeds only exist for accepted solves
		}
		done++

		warm := cold
		warm.WarmStart = true
		warm.SolutionCache = core.NewSolutionCache(0)
		first, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, warm)
		if err != nil {
			t.Fatal(err)
		}
		second, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, warm)
		if err != nil {
			t.Fatal(err)
		}
		if warm.SolutionCache.Len() == 0 {
			t.Errorf("trial %d: no solutions cached by the first warm run", trial)
		}
		if second.Stats.WarmSeeds == 0 {
			t.Errorf("trial %d: repeat run admitted no warm seeds: %+v", trial, second.Stats)
		}
		if second.Stats.Nodes > first.Stats.Nodes {
			t.Errorf("trial %d: repeat run explored more nodes (%d) than the first (%d)",
				trial, second.Stats.Nodes, first.Stats.Nodes)
		}
		wf := diagFingerprint(in, want)
		for name, rep := range map[string]*core.Repair{"first warm": first, "repeat warm": second} {
			if got := diagFingerprint(in, rep); got != wf {
				t.Errorf("trial %d: %s repair differs from cold:\n got %s\nwant %s",
					trial, name, got, wf)
			}
		}
	}
	if done == 0 {
		t.Fatal("setup: no seed produced a resolved instance")
	}
}

// TestWarmPartitionScanMatchesCold pins warm == cold across the
// partition scan, and shows the repeat diagnosis of a partitioned
// instance seeding every partition's solve from the cache.
func TestWarmPartitionScanMatchesCold(t *testing.T) {
	w, corruptIdx, err := bench.PartitionClusters(6, 5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Fatal("setup: cluster workload raised no complaints")
	}
	cold := core.Options{Algorithm: core.Basic, TupleSlicing: true,
		QuerySlicing: true, Partition: 3, TimeLimit: 30 * time.Second}
	want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cold)
	if err != nil {
		t.Fatal(err)
	}

	warm := cold
	warm.WarmStart = true
	warm.SolutionCache = core.NewSolutionCache(0)
	first, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, warm)
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, warm)
	if err != nil {
		t.Fatal(err)
	}
	wf := diagFingerprint(in, want)
	for name, rep := range map[string]*core.Repair{"first warm": first, "repeat warm": second} {
		if got := diagFingerprint(in, rep); got != wf {
			t.Errorf("%s partitioned repair differs from cold:\n got %s\nwant %s", name, got, wf)
		}
	}
	if second.Stats.WarmSeeds == 0 {
		t.Errorf("repeat partitioned run admitted no warm seeds: %+v", second.Stats)
	}
	if second.Stats.Nodes > first.Stats.Nodes {
		t.Errorf("repeat partitioned run explored more nodes (%d) than the first (%d)",
			second.Stats.Nodes, first.Stats.Nodes)
	}
}

// TestWarmParallelScansMatchSequentialCold runs the warm layer under
// both parallel scans (batch and partition workers > 1): seeds are then
// published concurrently, which must stay invisible in the output.
func TestWarmParallelScansMatchSequentialCold(t *testing.T) {
	w, corruptIdx, err := bench.PartitionClusters(5, 5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	cold := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 30 * time.Second,
		Partition: 4, Parallel: 4}
	want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cold)
	if err != nil {
		t.Fatal(err)
	}
	warm := cold
	warm.WarmStart = true
	warm.SolutionCache = core.NewSolutionCache(0)
	for run := 0; run < 2; run++ {
		got, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, warm)
		if err != nil {
			t.Fatal(err)
		}
		if gf, wf := diagFingerprint(in, got), diagFingerprint(in, want); gf != wf {
			t.Errorf("run %d: warm parallel repair differs from cold parallel:\n got %s\nwant %s",
				run, gf, wf)
		}
	}
}
