package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestParallelMatchesSequentialFigure2(t *testing.T) {
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	seqOpts := Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	}
	parOpts := seqOpts
	parOpts.Parallel = 4

	seq, err := Diagnose(d0, dirty, complaints, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Diagnose(d0, dirty, complaints, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Resolved || !par.Resolved {
		t.Fatalf("resolved: seq=%v par=%v", seq.Resolved, par.Resolved)
	}
	if query.Distance(seq.Log, par.Log) > 1e-9 {
		t.Errorf("parallel repair differs from sequential:\n seq: %v\n par: %v",
			query.LogParams(seq.Log), query.LogParams(par.Log))
	}
}

// Property: the parallel scan picks the same repair as the sequential
// scan on random single-corruption instances.
func TestQuickParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d0, dirty, truth, _ := randomWorkload(rng)
		dirtyFinal, err := query.Replay(dirty, d0)
		if err != nil {
			return true
		}
		truthFinal, err := query.Replay(truth, d0)
		if err != nil {
			return true
		}
		complaints := ComplaintsFromDiff(dirtyFinal, truthFinal, 1e-9)
		if len(complaints) == 0 {
			return true
		}
		base := Options{
			Algorithm:    Incremental,
			TupleSlicing: true,
			TimeLimit:    20 * time.Second,
		}
		par := base
		par.Parallel = 3
		seqRep, err1 := Diagnose(d0, dirty, complaints, base)
		parRep, err2 := Diagnose(d0, dirty, complaints, par)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("seed %d: error mismatch %v vs %v", seed, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if seqRep.Resolved != parRep.Resolved {
			t.Logf("seed %d: resolved mismatch", seed)
			return false
		}
		if !seqRep.Resolved {
			return true
		}
		if query.Distance(seqRep.Log, parRep.Log) > 1e-9 {
			t.Logf("seed %d: repairs differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelPinsDecisiveStatus(t *testing.T) {
	// Regression: with more batches than workers and the corruption in
	// the newest query, the winning batch decides early and the
	// abandoned older batches report "skipped" afterwards. Their merge
	// must not clobber the decisive batch's solver status.
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 5; i++ {
		d0.MustInsert(float64(i*10), 0)
	}
	mk := func(theta float64) []query.Query {
		log := []query.Query{}
		// Plenty of decoy queries older than the corruption so the scan
		// has many batches to abandon.
		for i := 0; i < 12; i++ {
			log = append(log, query.NewUpdate(
				[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(float64(i+1),
					query.Term{Attr: 1, Coef: 1})}},
				query.AttrPred(0, query.GE, 500))) // matches nothing
		}
		return append(log, query.NewUpdate(
			[]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
			query.AttrPred(0, query.GE, theta))) // corrupted (newest)
	}
	dirty, truth := mk(10), mk(30)
	complaints := completeComplaints(t, d0, dirty, truth)
	for trial := 0; trial < 5; trial++ {
		rep, err := Diagnose(d0, dirty, complaints, Options{
			Algorithm:    Incremental,
			TupleSlicing: true,
			Parallel:     2,
			TimeLimit:    30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Resolved {
			t.Fatalf("not resolved: %+v", rep.Stats)
		}
		if rep.Stats.LastStatus == "skipped" {
			t.Fatalf("trial %d: LastStatus clobbered by a skipped worker: %+v",
				trial, rep.Stats)
		}
	}
}

func TestParallelOldCorruption(t *testing.T) {
	// Corruption in the oldest query: the parallel scan must still find
	// it (newer batches yield nothing clean) and match sequential.
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		Parallel:     8, // more workers than batches
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if len(rep.Changed) != 1 || rep.Changed[0] != 0 {
		t.Errorf("changed = %v, want [0]", rep.Changed)
	}
}
