package core

import (
	"time"

	"repro/internal/obs"
)

// phase times one pipeline phase through a single pair of
// instrumentation points: when tracing, the span's own clock is the
// measurement; when not, a plain wall-clock read at the same two points
// is. Stats durations and trace spans therefore always describe the
// same interval — the "one consistent truth" contract of Stats.
type phase struct {
	sp *obs.Span
	t0 time.Time
}

// startPhase opens a phase under parent (nil parent → untraced phase).
func startPhase(parent *obs.Span, name string) phase {
	return phase{sp: parent.Start(name), t0: time.Now()}
}

// stop ends the phase and returns its duration. Call exactly once.
func (p phase) stop() time.Duration {
	if p.sp != nil {
		return p.sp.End()
	}
	return time.Since(p.t0)
}

// Process-wide metrics the engine publishes into (obs.Default()),
// rendered by qfix-worker's -telemetry endpoint and `qfix -metrics`.
var (
	mDiagnoses = obs.Default().Counter("qfix_diagnoses_total",
		"Diagnoses run by this process (including partition subproblems solved as worker jobs).")
	mDiagnosesResolved = obs.Default().Counter("qfix_diagnoses_resolved_total",
		"Diagnoses that returned a replay-verified repair.")
	mPlanSeconds = obs.Default().Histogram("qfix_plan_seconds",
		"Per-diagnosis planning wall time (replay + FullImpact + slicing).", nil)
	mEncodeSeconds = obs.Default().Histogram("qfix_encode_seconds",
		"Per-diagnosis total MILP encoding wall time.", nil)
	mSolveSeconds = obs.Default().Histogram("qfix_solve_seconds",
		"Per-diagnosis total MILP solving wall time.", nil)
	mImpactCacheHits = obs.Default().Counter("qfix_impact_cache_hits_total",
		"FullImpact closures served from the impact cache (exact hits and incremental extends).")
	mImpactCacheMisses = obs.Default().Counter("qfix_impact_cache_misses_total",
		"FullImpact closures computed from scratch despite a configured impact cache.")
	mWarmSeeds = obs.Default().Counter("qfix_warm_seeds_total",
		"MILP solves whose branch-and-bound admitted a warm-start incumbent.")
)
