package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
)

// Property: F(q) always contains I(q), and equals I(q) when no later
// query depends on any written attribute.
func TestQuickFullImpactInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 6
		n := rng.Intn(10) + 1
		log := make([]query.Query, n)
		for i := range log {
			set := query.SetClause{Attr: rng.Intn(width),
				Expr: query.ConstExpr(float64(rng.Intn(50)))}
			if rng.Intn(3) == 0 { // relative set reads its attribute
				set.Expr = query.NewLinExpr(1, query.Term{Attr: set.Attr, Coef: 1})
			}
			log[i] = query.NewUpdate([]query.SetClause{set},
				query.AttrPred(rng.Intn(width), query.GE, float64(rng.Intn(50))))
		}
		full := FullImpact(log, width)
		for i, q := range log {
			di := query.DirectImpact(q, width)
			if !full[i].ContainsAll(di) {
				t.Logf("seed %d: F(q%d) missing direct impact", seed, i)
				return false
			}
			// If nothing later reads F(qi)'s attrs, F == I.
			touched := false
			for j := i + 1; j < n; j++ {
				if query.Dependency(log[j]).Intersects(di) {
					touched = true
					break
				}
			}
			if !touched && len(full[i]) != len(di) {
				t.Logf("seed %d: F(q%d) grew with no dependent successors", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// slicingInstance builds a random single-corruption instance and returns
// what the slicing-soundness properties need.
func slicingInstance(rng *rand.Rand) (log []query.Query, idx int, complaints []Complaint,
	dirtyVals map[int64][]float64, width int, ok bool) {
	d0, dirty, truth, corrupt := randomWorkload(rng)
	dirtyFinal, err := query.Replay(dirty, d0)
	if err != nil {
		return nil, 0, nil, nil, 0, false
	}
	truthFinal, err := query.Replay(truth, d0)
	if err != nil {
		return nil, 0, nil, nil, 0, false
	}
	complaints = ComplaintsFromDiff(dirtyFinal, truthFinal, 1e-9)
	if len(complaints) == 0 {
		return nil, 0, nil, nil, 0, false
	}
	dirtyVals = make(map[int64][]float64, dirtyFinal.Len())
	dirtyFinal.Rows(func(tp relation.Tuple) {
		dirtyVals[tp.ID] = append([]float64(nil), tp.Values...)
	})
	return dirty, corrupt, complaints, dirtyVals, d0.Schema().Width(), true
}

// Property: query slicing never discards the corrupted query when the
// corruption produced complaints (the candidate set stays sound).
func TestQuickQuerySlicingSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log, idx, complaints, dirtyVals, width, ok := slicingInstance(rng)
		if !ok {
			return true
		}
		ac := complaintAttrs(complaints, dirtyVals, width)
		full := FullImpact(log, width)
		for _, r := range relevantQueries(full, ac, false) {
			if r == idx {
				return true
			}
		}
		t.Logf("seed %d: corrupted q%d excluded (A(C)=%v)", seed, idx, ac.Sorted())
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the strict single-corruption filter also keeps the corrupted
// query.
func TestQuickSingleCorruptionSlicingSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		log, idx, complaints, dirtyVals, width, ok := slicingInstance(rng)
		if !ok {
			return true
		}
		ac := complaintAttrs(complaints, dirtyVals, width)
		full := FullImpact(log, width)
		for _, r := range relevantQueries(full, ac, true) {
			if r == idx {
				return true
			}
		}
		t.Logf("seed %d: corrupted q%d excluded under single-corruption filter", seed, idx)
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
