package core

import (
	"sync"

	"repro/internal/lru"
	"repro/internal/query"
	"repro/internal/relation"
)

// This file implements the impact cache: FullImpact closures reused
// across diagnoses of the same (or a growing) log. The closure depends
// only on the log's structure — not on D0's contents or the complaint
// set — so it is keyed by a rolling digest of the log's canonical SQL
// forms. An exact digest match returns the cached closure outright; a
// match on a proper prefix seeds ExtendFullImpact, which touches only
// the prefix entries whose impact reaches the appended queries. Both
// paths hand out the cached sets by reference: the engine treats impact
// sets as read-only, and sharing them is the point of caching.

// DigestSeed starts a rolling log digest, binding it to the schema so
// logs over different tables never collide on identical SQL text.
func DigestSeed(sch *relation.Schema) uint64 {
	h := fnvOffset64
	h = fnvString(h, sch.Name())
	for _, a := range sch.Attrs() {
		h = fnvString(h, ",")
		h = fnvString(h, a)
	}
	return h
}

// DigestStep folds one appended statement into a rolling digest.
// Append-only log growth therefore extends a digest in O(|statement|):
// histstore keeps the rolling value alongside its log.
func DigestStep(h uint64, sch *relation.Schema, q query.Query) uint64 {
	return fnvString(fnvString(h, q.String(sch)), ";")
}

// DigestLog computes the rolling digests of every log prefix:
// digests[i] covers log[:i+1].
func DigestLog(sch *relation.Schema, log []query.Query) []uint64 {
	out := make([]uint64, len(log))
	h := DigestSeed(sch)
	for i, q := range log {
		h = DigestStep(h, sch, q)
		out[i] = h
	}
	return out
}

// FNV-1a, inlined so the digest needs no allocation per statement.
const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// DefaultImpactCacheEntries bounds an ImpactCache constructed with
// NewImpactCache(0).
const DefaultImpactCacheEntries = 32

// ImpactCache caches FullImpact closures across diagnoses, keyed by log
// digest. Install one via Options.ImpactCache (histstore.Store and the
// dist worker each keep their own) and repeated diagnoses of the same
// log skip the O(n²) closure entirely, while diagnoses of a grown log
// pay only the incremental ExtendFullImpact update. Safe for concurrent
// use; eviction is LRU.
type ImpactCache struct {
	mu      sync.Mutex
	entries *lru.Map[uint64, impactEntry]
}

type impactEntry struct {
	n    int // log length the closure covers (guards digest collisions)
	full []query.AttrSet
}

// NewImpactCache returns a cache bounded to max closures (0 picks
// DefaultImpactCacheEntries).
func NewImpactCache(max int) *ImpactCache {
	if max <= 0 {
		max = DefaultImpactCacheEntries
	}
	return &ImpactCache{entries: lru.New[uint64, impactEntry](max)}
}

// Cached returns the closure stored under the given digest, if it
// covers exactly n queries. The returned sets are shared and read-only.
func (c *ImpactCache) Cached(digest uint64, n int) ([]query.AttrSet, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries.Get(digest); ok && e.n == n {
		return e.full, true
	}
	return nil, false
}

// Put stores a closure for a log of n queries under its digest. The
// cache takes the slice by reference; callers must not mutate it after.
func (c *ImpactCache) Put(digest uint64, n int, full []query.AttrSet) {
	if c == nil || n == 0 || len(full) != n {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.Put(digest, impactEntry{n: n, full: full})
}

// Len reports how many closures the cache currently holds.
func (c *ImpactCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries.Len()
}

// fullImpact is the planner's entry point: return FullImpact(log),
// reusing an exact cached closure, extending the longest cached prefix,
// or computing from scratch, and record what happened in st. A nonzero
// hint (Options.LogDigest, maintained rolling by histstore) resolves an
// exact hit without re-rendering the log's SQL at all.
func (c *ImpactCache) fullImpact(log []query.Query, sch *relation.Schema, width int, hint uint64, st *Stats) []query.AttrSet {
	if hint != 0 {
		if full, ok := c.Cached(hint, len(log)); ok {
			st.ImpactCacheHits++
			mImpactCacheHits.Inc()
			return full
		}
	}
	digests := DigestLog(sch, log)
	if len(digests) == 0 {
		return nil
	}
	key := digests[len(digests)-1]
	if full, ok := c.Cached(key, len(log)); ok {
		st.ImpactCacheHits++
		mImpactCacheHits.Inc()
		return full
	}
	var full []query.AttrSet
	prefix := 0
	for i := len(digests) - 2; i >= 0; i-- {
		if cached, ok := c.Cached(digests[i], i+1); ok {
			full, prefix = cached, i+1
			break
		}
	}
	if prefix > 0 {
		st.ImpactCacheHits++
		st.ImpactCacheExtends++
		mImpactCacheHits.Inc()
		full = ExtendFullImpact(full, log, width)
	} else {
		mImpactCacheMisses.Inc()
		full = FullImpact(log, width)
	}
	c.Put(key, len(log), full)
	return full
}
