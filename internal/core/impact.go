package core

import (
	"repro/internal/query"
)

// FullImpact computes F(q) for every query in the log (Definition 7,
// Algorithm 2): the transitive closure of each query's written attributes
// through later queries that read them. Computed back-to-front so each
// F(qj) is final when earlier queries consult it, giving O(n²) set work
// rather than the naive O(n³).
func FullImpact(log []query.Query, width int) []query.AttrSet {
	n := len(log)
	full := make([]query.AttrSet, n)
	deps := make([]query.AttrSet, n)
	for i, q := range log {
		deps[i] = query.Dependency(q)
	}
	for i := n - 1; i >= 0; i-- {
		full[i] = closureScan(log[i], deps, full, i, n, width)
	}
	return full
}

// ExtendFullImpact updates the FullImpact closure of a log prefix to
// cover an extended log: prev is FullImpact(log[:len(prev)], width) and
// the result equals FullImpact(log, width) element for element.
//
// The closure is log-structural and complaint-independent, so repeated
// diagnoses of a growing log can reuse the prefix instead of paying the
// O(n²) recompute (the ROADMAP's impact-cache item). New suffix entries
// are computed fresh — their backward scans only consult later entries,
// all of which are new. A prefix entry i is recomputed only when its old
// impact reaches the dependency set of a *dirty* later query (a new
// query, or a prefix query whose own closure changed): until the scan
// for i touches a dirty entry it replays the original scan exactly, and
// since the scan's working set only ever grows toward prev[i], an old
// closure disjoint from every dirty dependency set can never diverge.
// Kept entries alias prev's sets; callers must treat both as read-only.
//
// Malformed input (prev longer than the log) falls back to the full
// recompute rather than guessing.
//
// Cost is proportional to what actually changed: dependency sets
// materialize lazily and the staleness scan walks the list of dirty
// entries rather than the whole log, so appending one statement that
// nothing upstream feeds into costs O(n) set-intersection checks — not
// a rebuild of all n dependency sets or an O(n²) scan.
func ExtendFullImpact(prev []query.AttrSet, log []query.Query, width int) []query.AttrSet {
	prevN := len(prev)
	n := len(log)
	if prevN == 0 || prevN > n {
		return FullImpact(log, width)
	}
	deps := make([]query.AttrSet, n)
	depOf := func(j int) query.AttrSet {
		if deps[j] == nil { // Dependency always returns a non-nil set
			deps[j] = query.Dependency(log[j])
		}
		return deps[j]
	}
	// fillDeps materializes the range a closure scan consults.
	fillDeps := func(from int) {
		for j := from; j < n; j++ {
			depOf(j)
		}
	}
	full := make([]query.AttrSet, n)
	// dirtyIdx lists entries whose closure is new or changed. Entries
	// are appended while processing descending i, so while handling
	// entry i every listed index exceeds i.
	var dirtyIdx []int
	for i := n - 1; i >= prevN; i-- {
		fillDeps(i + 1)
		full[i] = closureScan(log[i], deps, full, i, n, width)
		dirtyIdx = append(dirtyIdx, i)
	}
	for i := prevN - 1; i >= 0; i-- {
		stale := false
		for _, j := range dirtyIdx {
			if prev[i].Intersects(depOf(j)) {
				stale = true
				break
			}
		}
		if !stale {
			full[i] = prev[i]
			continue
		}
		fillDeps(i + 1)
		full[i] = closureScan(log[i], deps, full, i, n, width)
		if !attrSetsEqual(full[i], prev[i]) {
			dirtyIdx = append(dirtyIdx, i)
		}
	}
	return full
}

// closureScan is one backward-pass step of Algorithm 2: the transitive
// impact of log[i] through the (already final) closures of later queries.
func closureScan(q query.Query, deps, full []query.AttrSet, i, n, width int) query.AttrSet {
	f := query.DirectImpact(q, width)
	for j := i + 1; j < n; j++ {
		if f.Intersects(deps[j]) {
			f.Union(full[j])
		}
	}
	return f
}

// attrSetsEqual reports set equality.
func attrSetsEqual(a, b query.AttrSet) bool {
	if len(a) != len(b) {
		return false
	}
	return a.ContainsAll(b)
}

// complaintAttrs computes A(C) (Definition 6) against the dirty final
// state: the attributes identified as incorrect.
func complaintAttrs(complaints []Complaint, dirtyVals map[int64][]float64, width int) query.AttrSet {
	a := make(query.AttrSet)
	for _, c := range complaints {
		a.Union(complaintAttrSet(c, dirtyVals, width))
	}
	return a
}

// complaintAttrSet computes A(c) for a single complaint: value
// complaints contribute the attributes where the target disagrees with
// the dirty final state; existence complaints (insert/delete repairs)
// contribute every attribute. The per-complaint sets drive the
// partition planner's interaction graph; their union is A(C).
func complaintAttrSet(c Complaint, dirtyVals map[int64][]float64, width int) query.AttrSet {
	a := make(query.AttrSet)
	dirty, inFinal := dirtyVals[c.TupleID]
	if !c.Exists || !inFinal {
		// Tuple existence is wrong: every attribute is implicated.
		for i := 0; i < width; i++ {
			a[i] = true
		}
		return a
	}
	for i := 0; i < width; i++ {
		if dirty[i] != c.Values[i] {
			a[i] = true
		}
	}
	return a
}

// relevantQueries applies query slicing (§5.2): candidates are queries
// whose full impact intersects A(C); under the single-corruption
// assumption, queries whose full impact covers all of A(C).
func relevantQueries(full []query.AttrSet, ac query.AttrSet, single bool) []int {
	var rel []int
	for i, f := range full {
		if single {
			if f.ContainsAll(ac) {
				rel = append(rel, i)
			}
		} else if f.Intersects(ac) {
			rel = append(rel, i)
		}
	}
	return rel
}

// relevantAttrs applies attribute slicing (§5.3): the union of full
// impacts and dependencies of relevant queries, always including A(C).
func relevantAttrs(log []query.Query, full []query.AttrSet, rel []int, ac query.AttrSet) []int {
	s := ac.Clone()
	for _, i := range rel {
		s.Union(full[i])
		s.Union(query.Dependency(log[i]))
	}
	return s.Sorted()
}
