package core

import (
	"repro/internal/query"
)

// FullImpact computes F(q) for every query in the log (Definition 7,
// Algorithm 2): the transitive closure of each query's written attributes
// through later queries that read them. Computed back-to-front so each
// F(qj) is final when earlier queries consult it, giving O(n²) set work
// rather than the naive O(n³).
func FullImpact(log []query.Query, width int) []query.AttrSet {
	n := len(log)
	full := make([]query.AttrSet, n)
	deps := make([]query.AttrSet, n)
	for i, q := range log {
		deps[i] = query.Dependency(q)
	}
	for i := n - 1; i >= 0; i-- {
		f := query.DirectImpact(log[i], width)
		for j := i + 1; j < n; j++ {
			if f.Intersects(deps[j]) {
				f.Union(full[j])
			}
		}
		full[i] = f
	}
	return full
}

// complaintAttrs computes A(C) (Definition 6) against the dirty final
// state: the attributes identified as incorrect.
func complaintAttrs(complaints []Complaint, dirtyVals map[int64][]float64, width int) query.AttrSet {
	a := make(query.AttrSet)
	for _, c := range complaints {
		a.Union(complaintAttrSet(c, dirtyVals, width))
	}
	return a
}

// complaintAttrSet computes A(c) for a single complaint: value
// complaints contribute the attributes where the target disagrees with
// the dirty final state; existence complaints (insert/delete repairs)
// contribute every attribute. The per-complaint sets drive the
// partition planner's interaction graph; their union is A(C).
func complaintAttrSet(c Complaint, dirtyVals map[int64][]float64, width int) query.AttrSet {
	a := make(query.AttrSet)
	dirty, inFinal := dirtyVals[c.TupleID]
	if !c.Exists || !inFinal {
		// Tuple existence is wrong: every attribute is implicated.
		for i := 0; i < width; i++ {
			a[i] = true
		}
		return a
	}
	for i := 0; i < width; i++ {
		if dirty[i] != c.Values[i] {
			a[i] = true
		}
	}
	return a
}

// relevantQueries applies query slicing (§5.2): candidates are queries
// whose full impact intersects A(C); under the single-corruption
// assumption, queries whose full impact covers all of A(C).
func relevantQueries(full []query.AttrSet, ac query.AttrSet, single bool) []int {
	var rel []int
	for i, f := range full {
		if single {
			if f.ContainsAll(ac) {
				rel = append(rel, i)
			}
		} else if f.Intersects(ac) {
			rel = append(rel, i)
		}
	}
	return rel
}

// relevantAttrs applies attribute slicing (§5.3): the union of full
// impacts and dependencies of relevant queries, always including A(C).
func relevantAttrs(log []query.Query, full []query.AttrSet, rel []int, ac query.AttrSet) []int {
	s := ac.Clone()
	for _, i := range rel {
		s.Union(full[i])
		s.Union(query.Dependency(log[i]))
	}
	return s.Sorted()
}
