// Package core implements QFix itself: given an initial database state, a
// log of update queries, and a set of complaints about the final state,
// it finds the minimal-distance parameter repair of the log that resolves
// every complaint (paper Definition 5, "optimal diagnosis").
//
// The package wires together the paper's algorithms: the basic MILP
// formulation (Algorithm 1, §4), the slicing optimizations (§5.1–5.3),
// and the incremental repair Inc_k (Algorithm 3, §5.4) with the
// tuple-slicing refinement step (§5.1 step 2).
package core

import (
	"runtime"
	"time"

	"repro/internal/encode"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sched"
)

// Complaint identifies one tuple of the final state together with its
// correct value assignment (Definition 4): the tuple with ID TupleID
// should equal Values (Exists=true), or should have been deleted
// (Exists=false).
type Complaint struct {
	TupleID int64
	Exists  bool
	Values  []float64
}

// ComplaintsFromDiff derives the complete complaint set between the dirty
// final state and the true final state (the experimental setup of §7.1:
// "perform a tuple-wise comparison between the resulting database states
// to generate a true complaint set").
func ComplaintsFromDiff(dirty, truth *relation.Table, eps float64) []Complaint {
	var out []Complaint
	for _, d := range relation.DiffTables(dirty, truth, eps) {
		switch {
		case d.After == nil:
			out = append(out, Complaint{TupleID: d.ID, Exists: false})
		default:
			out = append(out, Complaint{TupleID: d.ID, Exists: true,
				Values: append([]float64(nil), d.After.Values...)})
		}
	}
	return out
}

// Algorithm selects the diagnosis strategy.
type Algorithm int

// Strategies.
const (
	// Basic encodes the whole log in one MILP (Algorithm 1).
	Basic Algorithm = iota
	// Incremental parameterizes K consecutive queries at a time, newest
	// first, and stops at the first verified repair (Algorithm 3).
	Incremental
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == Incremental {
		return "incremental"
	}
	return "basic"
}

// Options selects the algorithm and optimizations.
type Options struct {
	Algorithm Algorithm
	// K is the incremental batch size (default 1; the paper finds k>1
	// impractical, §7.2).
	K int
	// Parallel > 1 scans incremental batches with that many concurrent
	// workers. The chosen repair is identical to the sequential scan
	// (batches are adjudicated newest-first); only wall-clock time and
	// wasted-work statistics differ. Parallel = -1 sizes the pool
	// adaptively from runtime.GOMAXPROCS. Extension beyond the paper.
	Parallel int
	// Partition > 0 enables partition-parallel diagnosis with that many
	// concurrent partition workers: planning splits the complaint set
	// into connected components of the complaint–query interaction graph
	// (two complaints are connected iff their relevant-query candidate
	// sets, derived from FullImpact, intersect), solves each component as
	// an independent sub-diagnosis on a shared worker pool, and merges
	// the per-partition repairs. The merged repair is re-verified against
	// the full complaint set; on cross-partition interference or
	// conflicting parameter assignments the engine falls back to a joint
	// solve. A resolved partitioned diagnosis is therefore always a
	// replay-verified repair, and it matches the unpartitioned outcome
	// whenever the joint path can solve the instance at all — but
	// partitioning can resolve strictly more: each partition reduces to
	// a single-corruption subproblem, so Incremental with K=1 repairs
	// multi-cluster corruptions the joint scan cannot. Partition = -1
	// sizes the pool adaptively from runtime.GOMAXPROCS. Extension
	// beyond the paper (its closing "additional methods of scaling the
	// constraint analysis" direction).
	Partition int

	// Scheduler, when non-nil, runs the engine's solve scans (the
	// incremental batch scan and the partition scan) on this resident
	// shared worker pool instead of spinning up fresh goroutines per
	// scan. Parallel/Partition still bound each scan's share of the
	// pool; the pool's own size bounds the process total, which is what
	// a resident multi-tenant service (internal/qfixd) needs when many
	// diagnoses run concurrently. Process-local: never serialized, and
	// partition subproblems shipped to workers solve without it. The
	// chosen repair is identical with or without a Scheduler (results
	// are adjudicated in submission order either way).
	Scheduler *sched.Pool

	// PartitionSolver, when non-nil, dispatches each partition
	// subproblem instead of the in-process engine — the hook behind
	// internal/dist's coordinator, which ships subproblems to remote
	// workers. Implementations must return a repair equivalent to
	// Subproblem.SolveLocal (the distributed coordinator guarantees this
	// by falling back to the local engine when a worker fails). Ignored
	// unless Partition enables partitioning.
	PartitionSolver PartitionSolver
	// Workers lists remote diagnosis workers ("host:port"). The core
	// engine treats this as opaque configuration: the top-level qfix
	// package turns it into a dist coordinator and installs it as
	// PartitionSolver. Kept here so Options stays the single
	// configuration surface.
	Workers []string
	// MuxWorkers makes the Workers coordinator keep one persistent
	// multiplexed connection per worker (wire v3) instead of dialing a
	// fresh connection per job: concurrent partition jobs share the
	// connection and results stream back as each solve lands
	// (Stats.StreamedResults). Workers built one protocol generation
	// back are negotiated down to the dial-per-job path automatically.
	// Like Workers, opaque to the core engine.
	MuxWorkers bool

	// ImpactCache, when non-nil, caches FullImpact closures across
	// diagnoses keyed by a digest of the log (impactcache.go). Repeat
	// diagnoses of the same log reuse the closure outright; diagnoses of
	// a grown log extend the cached prefix incrementally
	// (ExtendFullImpact). The cache is process-local and never
	// serialized: histstore.Store installs one per store, and dist
	// workers keep one per process so repeat jobs skip re-planning.
	ImpactCache *ImpactCache
	// LogDigest, when nonzero, is the caller-maintained rolling digest
	// of the log (DigestSeed folded through DigestStep — what
	// histstore.Store keeps alongside its log). It lets the impact
	// cache take its exact-hit path without re-rendering the whole
	// log's SQL. It MUST describe exactly the log passed to Diagnose;
	// ignored without ImpactCache.
	LogDigest uint64

	// WarmStart enables solver warm starts through the whole solve
	// stack (warmstart.go): each MILP seeds branch-and-bound from the
	// best available prior solution — refinement rounds from the repair
	// they refine, later sibling partitions from earlier ones that
	// share log coordinates, and repeat diagnoses from SolutionCache —
	// with the prior basis seeding the root LP on exact cache hits.
	// Warm starts are bit-for-bit invisible in the output: every seed
	// is vetted and admitted exactly like a search-discovered
	// incumbent, so repairs stay byte-identical to cold solves while
	// Stats.WarmSeeds counts admissions and Stats.Nodes/LPIters drop.
	WarmStart bool
	// SolutionCache, when non-nil (and WarmStart set), caches accepted
	// MILP solutions and final LP bases across diagnoses, keyed by a
	// digest of the exact solve next to ImpactCache's log digests.
	// Process-local and never serialized: histstore.Store installs one
	// per store, dist workers keep one per process.
	SolutionCache *SolutionCache

	// TupleSlicing encodes only complaint tuples (§5.1) and enables the
	// refinement step unless SkipRefine is set.
	TupleSlicing bool
	// QuerySlicing restricts repair candidates to queries whose full
	// impact intersects the complaint attributes (§5.2).
	QuerySlicing bool
	// AttrSlicing encodes only attributes reachable from relevant
	// queries (§5.3).
	AttrSlicing bool
	// SingleCorruption strengthens query slicing to candidates whose
	// full impact covers every complaint attribute (§5.2's special case).
	SingleCorruption bool
	// SkipRefine disables the §5.1 step-2 refinement MILP.
	SkipRefine bool

	// Candidates, when non-nil, overrides the repair-candidate set with
	// explicit log indices (used by experiments that fix the
	// parameterized query, e.g. Figure 4's single-parameterization
	// series). Query slicing still intersects with it.
	Candidates []int

	// TimeLimit bounds each MILP solve (the paper uses a 1000-second
	// CPLEX limit; default here 60s).
	TimeLimit time.Duration
	// TotalTimeLimit bounds the whole diagnosis across incremental
	// batches (0 = none).
	TotalTimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes per solve (0 = default).
	MaxNodes int

	// DomainBound, Eps, Normalize pass through to the encoder.
	DomainBound float64
	Eps         float64
	Normalize   bool

	// SolverParallel explores branch-and-bound nodes of each MILP with
	// this many concurrent LP workers (0 or 1 = sequential, -1 = one per
	// CPU). Independent of Parallel/Partition, which run whole encodings
	// concurrently; this parallelizes inside a single solve. The search
	// is speculative with sequential semantics (milp.Options.Parallel):
	// repairs and solver stats are byte-identical at any setting.
	SolverParallel int

	// Trace, when non-nil, is the parent span the diagnosis hangs its
	// phase spans under (internal/obs): replay, plan (with the impact
	// closure), per-batch encode/seed/solve, per-partition subtrees with
	// queue waits, MILP presolve and node batches, and the merge. Nil
	// (the default) disables tracing at near-zero cost — every span
	// operation is a nil no-op. Opaque to the wire protocol: subproblems
	// shipped to remote workers solve untraced, and the coordinator
	// records their dispatch/wire segments client-side instead.
	Trace *obs.Span
	// Logf, when non-nil, receives structured operational warnings from
	// the engine and the distributed coordinator (slow jobs, retries)
	// as printf-style calls. Nil discards them. Like Trace, opaque to
	// the wire protocol.
	Logf func(format string, args ...any)

	// Ablation switches (extensions beyond the paper; see DESIGN.md):
	// NoFolding disables the encoder's constant-folding presolve,
	// NoParamWindows disables predicate-parameter window tightening,
	// ColdLP disables warm-started LP relaxations in branch-and-bound,
	// NoPresolve disables the MILP root presolve (forced-variable
	// fixing, implied big-M bound tightening, redundant row dropping).
	NoFolding      bool
	NoParamWindows bool
	ColdLP         bool
	NoPresolve     bool
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.TimeLimit <= 0 {
		o.TimeLimit = 60 * time.Second
	}
	if o.Parallel < 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Partition < 0 {
		o.Partition = runtime.GOMAXPROCS(0)
	}
	if o.SolverParallel < 0 {
		o.SolverParallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats reports how a diagnosis went.
type Stats struct {
	// Encode aggregates encoder sizes across every attempted batch.
	Rows, Vars, Binaries int
	// BatchesTried counts encode+solve attempts (1 for basic).
	BatchesTried int
	// RelevantQueries is the candidate set size after query slicing
	// (len(log) when slicing is off).
	RelevantQueries int
	// Partitions is how many independent complaint components the
	// partition planner found (0 when partitioning is disabled, 1 when
	// the interaction graph is fully connected and the engine fell
	// through to the joint path).
	Partitions int
	// PartitionFallback tells whether partition merging hit a conflict
	// or interference and re-solved jointly.
	PartitionFallback bool
	// PlanPasses counts full planning passes (log replay plus the
	// FullImpact closure). Partition subproblems solved in-process adopt
	// the coordinator's plan instead of re-planning, so a partitioned
	// diagnosis reports 1; remote workers plan once per shipped job.
	PlanPasses int
	// RemoteJobs counts partition subproblems solved by a remote worker
	// (via Options.PartitionSolver / internal/dist). Jobs that fell back
	// to the local engine are not counted.
	RemoteJobs int
	// StreamedResults counts the subset of RemoteJobs whose result
	// streamed back over a persistent multiplexed worker connection
	// (Options.MuxWorkers, wire v3) — written by the worker the moment
	// the solve landed rather than over a per-job dialed connection.
	StreamedResults int
	// ImpactCacheHits counts planning passes that reused a cached
	// FullImpact closure (Options.ImpactCache) instead of computing one
	// from scratch — exact-digest reuse and prefix extension both
	// count. On the distributed path this aggregates worker-side hits
	// too (each worker diagnosis plans with the worker's process
	// cache), so a cold client run against a warm fleet reports them —
	// distinct from WorkerCacheHits, which counts decode reuse.
	ImpactCacheHits int
	// ImpactCacheExtends counts the subset of hits that found a proper
	// prefix and ran the incremental ExtendFullImpact update.
	ImpactCacheExtends int
	// WorkerCacheHits counts remote jobs whose worker reused its cached
	// decode of the job's D0 and log (same-digest repeat jobs within or
	// across runs) instead of re-decoding and re-planning.
	WorkerCacheHits int
	// ImpactTime is the wall clock spent obtaining the FullImpact
	// closure (cached, extended, or computed), part of planning.
	ImpactTime time.Duration
	// WarmSeeds counts MILP solves whose branch-and-bound admitted a
	// warm-start incumbent (Options.WarmStart): a prior solution from
	// the SolutionCache or a completed seed-board projection that
	// survived milp's snap/feasibility/re-pricing vetting. On the
	// distributed path this aggregates worker-side admissions too.
	WarmSeeds int
	// Nodes and LPIters total across solves.
	Nodes, LPIters int
	// Refactorizations totals sparse-LU basis rebuilds across solves
	// (simplex/factor.go); PresolvedRows totals constraint rows dropped
	// by the MILP root presolve (milp/presolve.go).
	Refactorizations int
	PresolvedRows    int
	// PlanTime, EncodeTime, SolveTime, and MergeTime split the wall
	// clock by pipeline phase. PlanTime covers the log replay, the
	// FullImpact closure (ImpactTime is the subset spent there), and
	// slicing; MergeTime covers stitching and re-verifying partition
	// repairs. All four are derived from the same instrumentation points
	// as the trace spans (Options.Trace), so the CLI, bench, and wire
	// report one consistent truth.
	PlanTime   time.Duration
	EncodeTime time.Duration
	SolveTime  time.Duration
	MergeTime  time.Duration
	// PartitionStats breaks a partitioned diagnosis down per partition,
	// in plan (index) order; empty when partitioning found fewer than
	// two components. Conflict re-solves append additional entries.
	// Coordinator-level only: never merged upward from sub-diagnoses.
	PartitionStats []PartitionStat
	// WorkerAddr and DispatchAttempts are stamped by the distributed
	// coordinator onto each partition repair's Stats: the address of the
	// worker that solved the job ("local" after fallback) and how many
	// dispatch attempts it took. Per-job fields — read into
	// PartitionStats during collection, never merged into totals.
	WorkerAddr       string
	DispatchAttempts int
	// Refined tells whether the step-2 refinement ran.
	Refined bool
	// LastStatus is the MILP status of the final (successful or last
	// attempted) solve.
	LastStatus string
}

// PartitionStat is one partition's slice of a partitioned diagnosis.
type PartitionStat struct {
	// Index is the partition's plan-order index.
	Index int
	// Complaints and Candidates size the subproblem.
	Complaints int
	Candidates int
	// QueueWait is how long the partition sat scheduled before a worker
	// slot started it; Solve is the wall clock of the solve itself
	// (including wire time on the distributed path).
	QueueWait time.Duration
	Solve     time.Duration
	// Remote tells whether a remote worker solved the partition; Worker
	// is its address ("local" when the coordinator fell back) and
	// Attempts the dispatch attempts spent (0 on the purely local path).
	Remote   bool
	Worker   string
	Attempts int
	// Nodes and Status summarize the partition's solve.
	Nodes  int
	Status string
}

// Repair is a log repair Q* (Definition 5) plus bookkeeping.
type Repair struct {
	// Log is the repaired query log, structurally identical to the input.
	Log []query.Query
	// Changed lists indices of queries whose parameters moved.
	Changed []int
	// Distance is the Manhattan distance d(Q, Q*) to the original log.
	Distance float64
	// Resolved reports that replaying Log from D0 satisfies every
	// complaint (verified by execution, not just by the MILP).
	Resolved bool
	Stats    Stats
}

// Subproblem is one partition of a diagnosis, packaged so it can be
// solved anywhere: the full initial state and log (replay verification
// needs both), the partition's complaint subset, and sub-Options with
// the repair candidates pinned to the partition's candidate set and
// partitioning/parallelism disabled. A Subproblem is self-contained —
// solving it requires nothing from the coordinating diagnosis.
type Subproblem struct {
	D0         *relation.Table
	Log        []query.Query
	Complaints []Complaint
	Options    Options
}

// SolveLocal runs the subproblem on the in-process engine. It is the
// reference semantics every PartitionSolver must match, and the fallback
// path distributed solvers use when a worker fails.
func (s Subproblem) SolveLocal() (*Repair, error) {
	return Diagnose(s.D0, s.Log, s.Complaints, s.Options)
}

// PartitionSolver solves partition subproblems on behalf of the engine.
// The distributed coordinator in internal/dist implements it by shipping
// jobs to workers over the wire protocol; tests implement it to inject
// faults. Implementations are called concurrently (one goroutine per
// partition, bounded by Options.Partition) and must be safe for
// concurrent use.
type PartitionSolver interface {
	SolvePartition(sub Subproblem) (*Repair, error)
}

// encOptions builds encoder options shared by all strategies.
func (o Options) encOptions() encode.Options {
	return encode.Options{
		DomainBound:    o.DomainBound,
		Eps:            o.Eps,
		Normalize:      o.Normalize,
		NoFolding:      o.NoFolding,
		NoParamWindows: o.NoParamWindows,
	}
}
