package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
)

// randomImpactLog builds a log mixing UPDATE (constant and relative
// SETs), INSERT and DELETE over `width` attributes — every statement
// shape the impact analysis distinguishes.
func randomImpactLog(rng *rand.Rand, n, width int) []query.Query {
	log := make([]query.Query, n)
	for i := range log {
		switch rng.Intn(8) {
		case 0:
			vals := make([]float64, width)
			for j := range vals {
				vals[j] = float64(rng.Intn(50))
			}
			log[i] = query.NewInsert(vals...)
		case 1:
			log[i] = query.NewDelete(
				query.AttrPred(rng.Intn(width), query.GE, float64(rng.Intn(40)+60)))
		default:
			set := query.SetClause{Attr: rng.Intn(width),
				Expr: query.ConstExpr(float64(rng.Intn(50)))}
			if rng.Intn(3) == 0 { // relative SET reads another attribute
				set.Expr = query.NewLinExpr(1, query.Term{Attr: rng.Intn(width), Coef: 1})
			}
			log[i] = query.NewUpdate([]query.SetClause{set},
				query.AttrPred(rng.Intn(width), query.GE, float64(rng.Intn(50))))
		}
	}
	return log
}

// Property: extending the closure of any prefix yields exactly the
// fresh closure of the whole log, for every prefix length including the
// degenerate ones.
func TestQuickExtendFullImpactMatchesFresh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := rng.Intn(5) + 2
		n := rng.Intn(14) + 1
		log := randomImpactLog(rng, n, width)
		want := FullImpact(log, width)
		for _, prevN := range []int{0, 1, n / 2, n - 1, n} {
			if prevN < 0 || prevN > n {
				continue
			}
			prev := FullImpact(log[:prevN], width)
			got := ExtendFullImpact(prev, log, width)
			if len(got) != n {
				t.Logf("seed %d prevN %d: len %d != %d", seed, prevN, len(got), n)
				return false
			}
			for i := range got {
				if !attrSetsEqual(got[i], want[i]) {
					t.Logf("seed %d prevN %d: F(q%d) = %v, want %v",
						seed, prevN, i, got[i].Sorted(), want[i].Sorted())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ExtendFullImpact must fall back to the full recompute on malformed
// input (prev longer than the log) instead of producing garbage.
func TestExtendFullImpactMalformedPrevFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	log := randomImpactLog(rng, 8, 3)
	prev := FullImpact(log, 3)
	short := log[:5]
	got := ExtendFullImpact(prev, short, 3)
	want := FullImpact(short, 3)
	for i := range want {
		if !attrSetsEqual(got[i], want[i]) {
			t.Fatalf("F(q%d) = %v, want %v", i, got[i].Sorted(), want[i].Sorted())
		}
	}
}

// Digest chain: DigestLog must equal folding DigestStep, and the digest
// must distinguish logs, prefix lengths, and schemas.
func TestDigestLogRolling(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a0", "a1", "a2"}, "")
	rng := rand.New(rand.NewSource(11))
	log := randomImpactLog(rng, 6, 3)

	digests := DigestLog(sch, log)
	h := DigestSeed(sch)
	for i, q := range log {
		h = DigestStep(h, sch, q)
		if digests[i] != h {
			t.Fatalf("digest[%d] = %x, want rolling %x", i, digests[i], h)
		}
	}
	seen := map[uint64]bool{}
	for i, d := range digests {
		if seen[d] {
			t.Fatalf("digest collision at prefix %d", i+1)
		}
		seen[d] = true
	}
	other := relation.MustSchema("U", []string{"a0", "a1", "a2"}, "")
	if DigestLog(other, log)[len(log)-1] == digests[len(log)-1] {
		t.Error("digest ignores the schema")
	}
}

// An exact repeat must return the identical (shared) closure and count
// a hit; a grown log must extend; unrelated logs must miss.
func TestImpactCacheHitExtendMiss(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a0", "a1", "a2"}, "")
	rng := rand.New(rand.NewSource(3))
	log := randomImpactLog(rng, 10, 3)
	c := NewImpactCache(0)

	var st Stats
	full := c.fullImpact(log[:7], sch, 3, 0, &st)
	if st.ImpactCacheHits != 0 || st.ImpactCacheExtends != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	for i := range full {
		if !attrSetsEqual(full[i], FullImpact(log[:7], 3)[i]) {
			t.Fatalf("cold closure wrong at %d", i)
		}
	}

	st = Stats{}
	again := c.fullImpact(log[:7], sch, 3, 0, &st)
	if st.ImpactCacheHits != 1 || st.ImpactCacheExtends != 0 {
		t.Fatalf("repeat stats = %+v, want exact hit", st)
	}
	if &again[0] != &full[0] {
		t.Error("exact hit did not share the cached closure")
	}

	st = Stats{}
	grown := c.fullImpact(log, sch, 3, 0, &st)
	if st.ImpactCacheHits != 1 || st.ImpactCacheExtends != 1 {
		t.Fatalf("grown stats = %+v, want prefix extension", st)
	}
	want := FullImpact(log, 3)
	for i := range want {
		if !attrSetsEqual(grown[i], want[i]) {
			t.Fatalf("extended closure wrong at %d: %v want %v",
				i, grown[i].Sorted(), want[i].Sorted())
		}
	}

	st = Stats{}
	other := randomImpactLog(rand.New(rand.NewSource(99)), 5, 3)
	c.fullImpact(other, sch, 3, 0, &st)
	if st.ImpactCacheHits != 0 {
		t.Fatalf("unrelated log hit the cache: %+v", st)
	}
}

func TestImpactCacheLRUEviction(t *testing.T) {
	c := NewImpactCache(2)
	mk := func(n int) []query.AttrSet {
		out := make([]query.AttrSet, n)
		for i := range out {
			out[i] = query.NewAttrSet(0)
		}
		return out
	}
	c.Put(1, 1, mk(1))
	c.Put(2, 2, mk(2))
	if _, ok := c.Cached(1, 1); !ok { // touch 1 so 2 is the LRU victim
		t.Fatal("entry 1 missing before eviction")
	}
	c.Put(3, 3, mk(3))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Cached(2, 2); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := c.Cached(1, 1); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Cached(3, 3); !ok {
		t.Error("newest entry missing")
	}
}

// A digest collision with a different log length must read as a miss,
// never as a wrong closure.
func TestImpactCacheLengthGuard(t *testing.T) {
	c := NewImpactCache(0)
	c.Put(42, 3, []query.AttrSet{query.NewAttrSet(0), query.NewAttrSet(1), query.NewAttrSet(2)})
	if _, ok := c.Cached(42, 4); ok {
		t.Error("length mismatch served from cache")
	}
}

// A nil cache must be inert (histstore constructs stores without
// forcing callers to think about it).
func TestImpactCacheNilSafe(t *testing.T) {
	var c *ImpactCache
	if _, ok := c.Cached(1, 1); ok {
		t.Error("nil cache returned a closure")
	}
	c.Put(1, 1, nil)
	if c.Len() != 0 {
		t.Error("nil cache has entries")
	}
}
