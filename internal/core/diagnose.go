package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/encode"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// Diagnose runs QFix: it analyzes the log and the complaint set and
// returns a log repair. A nil error with Repair.Resolved=false means the
// search completed without finding a verified repair (the paper reports
// these runs as infeasible/timeout); hard failures (malformed inputs)
// return an error.
func Diagnose(d0 *relation.Table, log []query.Query, complaints []Complaint, opt Options) (*Repair, error) {
	opt = opt.withDefaults()
	if len(log) == 0 {
		return nil, fmt.Errorf("core: empty query log")
	}
	width := d0.Schema().Width()

	span := opt.Trace.Start("diagnose")
	span.SetAttr("algorithm", opt.Algorithm.String())
	span.SetAttr("queries", len(log))
	span.SetAttr("complaints", len(complaints))
	defer span.End()

	rp := startPhase(span, "replay")
	dirtyFinal, err := query.Replay(log, d0)
	replayTime := rp.stop()
	if err != nil {
		return nil, fmt.Errorf("core: replaying log: %w", err)
	}
	if len(complaints) == 0 {
		// Nothing to diagnose: the identity repair is optimal.
		mDiagnoses.Inc()
		mDiagnosesResolved.Inc()
		return &Repair{Log: query.CloneLog(log), Resolved: true,
			Stats: Stats{RelevantQueries: len(log), LastStatus: "trivial",
				PlanTime: replayTime}}, nil
	}

	d := &diagnoser{
		opt: opt, d0: d0, log: log, complaints: complaints,
		width: width, dirtyFinal: dirtyFinal, span: span,
	}
	d.stats.PlanTime += replayTime
	if opt.WarmStart {
		d.seeds = newSeedBoard()
	}
	d.plan()
	if opt.TotalTimeLimit > 0 {
		d.deadline = time.Now().Add(opt.TotalTimeLimit)
	}

	rep, err := d.dispatch()
	mDiagnoses.Inc()
	if rep != nil {
		if rep.Resolved {
			mDiagnosesResolved.Inc()
		}
		mPlanSeconds.Observe(rep.Stats.PlanTime.Seconds())
		mEncodeSeconds.Observe(rep.Stats.EncodeTime.Seconds())
		mSolveSeconds.Observe(rep.Stats.SolveTime.Seconds())
	}
	return rep, err
}

// dispatch routes the planned diagnosis to the partitioned or joint
// solve path.
func (d *diagnoser) dispatch() (*Repair, error) {
	if d.opt.Partition > 0 {
		if rep, handled, err := d.partitioned(); handled {
			return rep, err
		}
	}
	return d.solveJoint()
}

// solveJoint runs the configured algorithm over the whole complaint set
// (the solve stage when partition planning is off or found a single
// component, and the fallback when partition merging detects a
// conflict or cross-partition interference).
func (d *diagnoser) solveJoint() (*Repair, error) {
	switch d.opt.Algorithm {
	case Incremental:
		if d.opt.Parallel > 1 {
			return d.incrementalParallel()
		}
		return d.incremental()
	default:
		return d.basic()
	}
}

type diagnoser struct {
	opt        Options
	d0         *relation.Table
	log        []query.Query
	complaints []Complaint
	width      int
	dirtyFinal *relation.Table
	deadline   time.Time
	seeds      *seedBoard // warm-start seed sharing (nil unless WarmStart)
	span       *obs.Span  // phase spans hang here (nil = tracing off)

	// planning products
	candidates []int // repair candidates (query slicing or all)
	attrs      []int // encoded attributes (attr slicing or nil)
	tupleIDs   []int64
	full       []query.AttrSet     // full impact F(q) per query (nil unless needed)
	dirtyVals  map[int64][]float64 // dirty final state by tuple id
	ac         query.AttrSet       // complaint attributes A(C)

	stats Stats
}

// plan computes the slicing sets (§5.2–5.3) and the tuple slice (§5.1).
// Its products stay on the diagnoser: the partition planner reuses the
// full-impact sets and per-tuple dirty values to build the
// complaint–query interaction graph without recomputing them, and
// partition subproblems adopt them wholesale (adoptPlan) so only the
// coordinating diagnosis pays for the FullImpact closure.
func (d *diagnoser) plan() {
	d.stats.PlanPasses++
	pp := startPhase(d.span, "plan")
	d.dirtyVals = make(map[int64][]float64, d.dirtyFinal.Len())
	d.dirtyFinal.Rows(func(t relation.Tuple) {
		d.dirtyVals[t.ID] = append([]float64(nil), t.Values...)
	})
	if d.opt.QuerySlicing || d.opt.AttrSlicing || d.opt.Partition > 0 {
		ip := startPhase(pp.sp, "impact")
		if d.opt.ImpactCache != nil {
			d.full = d.opt.ImpactCache.fullImpact(d.log, d.d0.Schema(), d.width, d.opt.LogDigest, &d.stats)
		} else {
			d.full = FullImpact(d.log, d.width)
		}
		d.stats.ImpactTime += ip.stop()
	}
	d.planSlices()
	d.stats.PlanTime += pp.stop()
}

// adoptPlan initializes a partition sub-diagnoser from its parent's
// planning products: the replayed dirty state and FullImpact closure are
// shared read-only, so the sub-diagnosis derives its slices by cheap set
// arithmetic instead of a planning pass of its own (Stats.PlanPasses
// stays at the parent's single pass). The derived candidate set is
// provably the one a fresh plan would compute: Options.Candidates is
// pinned to the partition's candidates, and relevantQueries over the
// shared impact sets is deterministic.
func (sub *diagnoser) adoptPlan(parent *diagnoser) {
	sub.dirtyVals = parent.dirtyVals
	sub.full = parent.full
	sub.planSlices()
}

// planSlices derives the per-diagnosis slicing sets from the (computed
// or adopted) dirty values and impact closure.
func (d *diagnoser) planSlices() {
	d.ac = complaintAttrs(d.complaints, d.dirtyVals, d.width)
	if d.opt.QuerySlicing {
		d.candidates = relevantQueries(d.full, d.ac, d.opt.SingleCorruption)
	} else {
		d.candidates = make([]int, len(d.log))
		for i := range d.log {
			d.candidates[i] = i
		}
	}
	if d.opt.AttrSlicing {
		d.attrs = relevantAttrs(d.log, d.full, d.candidates, d.ac)
	}
	if d.opt.Candidates != nil {
		allowed := make(map[int]bool, len(d.opt.Candidates))
		for _, i := range d.opt.Candidates {
			allowed[i] = true
		}
		var kept []int
		for _, i := range d.candidates {
			if allowed[i] {
				kept = append(kept, i)
			}
		}
		d.candidates = kept
	}
	d.stats.RelevantQueries = len(d.candidates)

	if d.opt.TupleSlicing {
		d.tupleIDs = make([]int64, 0, len(d.complaints))
		for _, c := range d.complaints {
			d.tupleIDs = append(d.tupleIDs, c.TupleID)
		}
	}
}

// encComplaints converts to the encoder's complaint type.
func (d *diagnoser) encComplaints() []encode.Complaint {
	out := make([]encode.Complaint, len(d.complaints))
	for i, c := range d.complaints {
		out[i] = encode.Complaint{TupleID: c.TupleID, Exists: c.Exists, Values: c.Values}
	}
	return out
}

// attempt encodes the given parameter set over the given log and solves,
// returning the repaired log when the solver finds a solution. Solver
// statistics accumulate into st (shared for the sequential scan,
// per-worker under the parallel scan); encode/seed/solve spans hang
// under sp (typically a per-batch span).
func (d *diagnoser) attempt(baseLog []query.Query, paramSet map[int]bool, soft []int64, st *Stats, sp *obs.Span) ([]query.Query, bool, error) {
	eo := d.opt.encOptions()
	eo.ParamQueries = paramSet
	eo.TupleIDs = d.tupleIDs
	eo.Attrs = d.attrs
	eo.FixNonComplaints = !d.opt.TupleSlicing
	eo.SoftTupleIDs = soft

	ep := startPhase(sp, "encode")
	res, err := encode.Encode(d.d0, baseLog, d.encComplaints(), eo)
	st.EncodeTime += ep.stop()
	if err != nil {
		return nil, false, err
	}
	ep.sp.SetAttr("rows", res.Stats.Rows)
	ep.sp.SetAttr("vars", res.Stats.Vars)
	st.Rows += res.Stats.Rows
	st.Vars += res.Stats.Vars
	st.Binaries += res.Stats.Binaries
	st.BatchesTried++

	limit := d.opt.TimeLimit
	if !d.deadline.IsZero() {
		remain := time.Until(d.deadline)
		if remain <= 0 {
			st.LastStatus = "total-time-limit"
			return nil, false, nil
		}
		if remain < limit {
			limit = remain
		}
	}
	mopt := milp.Options{
		TimeLimit:  limit,
		MaxNodes:   d.opt.MaxNodes,
		ColdLP:     d.opt.ColdLP,
		Parallel:   d.opt.SolverParallel,
		NoPresolve: d.opt.NoPresolve,
	}
	var warmKey uint64
	if d.opt.WarmStart {
		sdp := startPhase(sp, "seed")
		if d.opt.SolutionCache != nil {
			// The key digests D0, the log SQL, and the complaint set —
			// only worth computing when there is a cache to consult.
			warmKey = d.solveKey(baseLog, paramSet, soft)
		}
		d.seedSolve(res, warmKey, &mopt, st)
		st.SolveTime += sdp.stop()
		if !d.deadline.IsZero() {
			// The seed completion spent wall clock; re-clamp the main
			// solve so seeding can never stretch the shared deadline.
			remain := time.Until(d.deadline)
			if remain <= 0 {
				st.LastStatus = "total-time-limit"
				return nil, false, nil
			}
			if remain < mopt.TimeLimit {
				mopt.TimeLimit = remain
			}
		}
	}
	svp := startPhase(sp, "solve")
	mopt.Trace = svp.sp
	mres, vals := res.SolveOpts(mopt)
	st.SolveTime += svp.stop()
	svp.sp.SetAttr("status", mres.Status.String())
	svp.sp.SetAttr("nodes", mres.Nodes)
	svp.sp.SetAttr("lp_iters", mres.LPIters)
	st.Nodes += mres.Nodes
	st.LPIters += mres.LPIters
	st.Refactorizations += mres.Refactorizations
	st.PresolvedRows += mres.PresolvedRows
	if mres.SeedUsed {
		st.WarmSeeds++
		mWarmSeeds.Inc()
	}
	st.LastStatus = mres.Status.String()
	if !mres.HasSolution {
		return nil, false, nil
	}
	if d.opt.WarmStart {
		// Publish the accepted assignment for related solves (refinement
		// rounds, sibling partitions) and cache the full solution and
		// basis for repeat diagnoses of this exact history.
		d.seeds.publish(res.Params, vals)
		d.opt.SolutionCache.put(warmKey, res, mres)
	}

	repaired := query.CloneLog(baseLog)
	byQuery := map[int][]float64{}
	for qi := range repaired {
		byQuery[qi] = repaired[qi].Params()
	}
	for i, ref := range res.Params {
		byQuery[ref.Query][ref.Index] = vals[i]
	}
	for qi, q := range repaired {
		if err := q.SetParams(byQuery[qi]); err != nil {
			return nil, false, fmt.Errorf("core: applying repair to query %d: %w", qi, err)
		}
	}
	return repaired, true, nil
}

// basic runs Algorithm 1: one MILP parameterizing every candidate query.
func (d *diagnoser) basic() (*Repair, error) {
	paramSet := make(map[int]bool, len(d.candidates))
	for _, i := range d.candidates {
		paramSet[i] = true
	}
	bsp := d.span.Start("batch")
	bsp.SetAttr("queries", len(paramSet))
	defer bsp.End()
	repaired, ok, err := d.attempt(d.log, paramSet, nil, &d.stats, bsp)
	if err != nil {
		return nil, err
	}
	if !ok {
		return d.finish(nil), nil
	}
	repaired = d.maybeRefine(repaired, paramSet, &d.stats, bsp)
	return d.finish(repaired), nil
}

// incremental runs Algorithm 3: batches of K consecutive candidates,
// newest first. A verified repair that leaves every non-complaint tuple
// at its dirty value is returned immediately. A repair that resolves the
// complaints but disturbs other tuples is kept as a fallback while older
// batches are scanned — without tuple slicing this cannot happen (hard
// constraints forbid disturbance, as in the paper's Basic_params), and
// with tuple slicing this gate is what keeps repair precision high when
// a newer query admits a spurious fix.
func (d *diagnoser) incremental() (*Repair, error) {
	// Candidates sorted most to least recent.
	cands := append([]int(nil), d.candidates...)
	for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
		cands[i], cands[j] = cands[j], cands[i]
	}
	var fallback *Repair
	fallbackDamage := 0
	k := d.opt.K
	for start := 0; start < len(cands); start += k {
		if !d.deadline.IsZero() && time.Now().After(d.deadline) {
			d.stats.LastStatus = "total-time-limit"
			break
		}
		end := start + k
		if end > len(cands) {
			end = len(cands)
		}
		paramSet := make(map[int]bool, end-start)
		for _, qi := range cands[start:end] {
			paramSet[qi] = true
		}
		bsp := d.span.Start("batch")
		bsp.SetAttr("queries", len(paramSet))
		repaired, ok, err := d.attempt(d.log, paramSet, nil, &d.stats, bsp)
		if err != nil {
			bsp.End()
			return nil, err
		}
		if !ok {
			bsp.End()
			continue
		}
		repaired = d.maybeRefine(repaired, paramSet, &d.stats, bsp)
		bsp.End()
		rep := d.finish(repaired)
		if !rep.Resolved {
			continue // failed replay verification; scan older batches
		}
		damage := d.nonComplaintDamage(rep.Log)
		if damage == 0 {
			return rep, nil
		}
		if fallback == nil || damage < fallbackDamage ||
			(damage == fallbackDamage && rep.Distance < fallback.Distance) {
			fallback, fallbackDamage = rep, damage
		}
	}
	if fallback != nil {
		fallback.Stats = d.stats
		return fallback, nil
	}
	return d.finish(nil), nil
}

// nonComplaintDamage counts non-complaint tuples whose replayed final
// state differs from the dirty final state under the repair.
func (d *diagnoser) nonComplaintDamage(repaired []query.Query) int {
	final, err := query.Replay(repaired, d.d0)
	if err != nil {
		return int(^uint(0) >> 1)
	}
	complaintIDs := make(map[int64]bool, len(d.complaints))
	for _, c := range d.complaints {
		complaintIDs[c.TupleID] = true
	}
	n := 0
	for _, df := range relation.DiffTables(d.dirtyFinal, final, 1e-9) {
		if !complaintIDs[df.ID] {
			n++
		}
	}
	return n
}

// maybeRefine runs the §5.1 step-2 refinement: if the step-1 repair
// touches non-complaint tuples, re-solve with those tuples soft and an
// objective that minimizes how many stay affected. The step iterates (up
// to a small bound) because excluding one batch of non-complaint tuples
// can move the repaired clause onto previously untouched tuples the
// earlier soft set did not cover; the soft set accumulates across rounds.
func (d *diagnoser) maybeRefine(repaired []query.Query, paramSet map[int]bool, st *Stats, sp *obs.Span) []query.Query {
	if !d.opt.TupleSlicing || d.opt.SkipRefine {
		return repaired
	}
	complaintIDs := make(map[int64]bool, len(d.complaints))
	for _, c := range d.complaints {
		complaintIDs[c.TupleID] = true
	}
	// The paper's refinement MILP is "significantly smaller" than step 1
	// (§5.1); if the step-1 repair disturbed a huge set of tuples, a full
	// re-encode would dwarf it. Cap how many NEW soft tuples each round
	// may add (a global cap would starve later rounds and fake
	// convergence); the incremental loop's damage gate re-checks the
	// final replay regardless.
	const maxSoftPerRound = 60
	const maxRounds = 3

	softSet := make(map[int64]bool)
	var soft []int64
	for round := 0; round < maxRounds; round++ {
		repairedFinal, err := query.Replay(repaired, d.d0)
		if err != nil {
			return repaired
		}
		fresh := 0
		for _, df := range relation.DiffTables(d.dirtyFinal, repairedFinal, 1e-9) {
			if complaintIDs[df.ID] || softSet[df.ID] {
				continue
			}
			if fresh >= maxSoftPerRound {
				break
			}
			softSet[df.ID] = true
			soft = append(soft, df.ID)
			fresh++
		}
		if fresh == 0 {
			return repaired // converged: no newly affected tuples
		}
		st.Refined = true
		// Re-encode over the *repaired* log so distance is measured from
		// the current solution, parameterizing only the repaired queries.
		rsp := sp.Start("refine")
		rsp.SetAttr("soft", len(soft))
		refined, ok, err := d.attempt(repaired, paramSet, soft, st, rsp)
		rsp.End()
		if err != nil || !ok {
			return repaired
		}
		repaired = refined
	}
	return repaired
}

// finish verifies and packages the repair.
func (d *diagnoser) finish(repaired []query.Query) *Repair {
	if repaired == nil {
		return &Repair{Log: query.CloneLog(d.log), Resolved: false, Stats: d.stats}
	}
	rep := &Repair{Log: repaired, Stats: d.stats}
	rep.Distance = query.Distance(d.log, repaired)
	origParams := make([][]float64, len(d.log))
	for i, q := range d.log {
		origParams[i] = q.Params()
	}
	for i, q := range repaired {
		rp := q.Params()
		for j := range rp {
			if math.Abs(rp[j]-origParams[i][j]) > 1e-9 {
				rep.Changed = append(rep.Changed, i)
				break
			}
		}
	}
	rep.Resolved = d.verify(repaired)
	return rep
}

// verify replays the repaired log and checks every complaint against the
// resulting final state.
func (d *diagnoser) verify(repaired []query.Query) bool {
	final, err := query.Replay(repaired, d.d0)
	if err != nil {
		return false
	}
	return ComplaintsResolved(final, d.complaints, 1e-6)
}

// ComplaintsResolved checks a final state against a complaint set.
func ComplaintsResolved(final *relation.Table, complaints []Complaint, eps float64) bool {
	for _, c := range complaints {
		t, ok := final.Get(c.TupleID)
		if c.Exists != ok {
			return false
		}
		if !c.Exists {
			continue
		}
		for a, want := range c.Values {
			if math.Abs(t.Values[a]-want) > eps {
				return false
			}
		}
	}
	return true
}
