package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

func figure2() (*relation.Table, []query.Query, []query.Query) {
	sch := relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(9500, 950, 8550)
	d0.MustInsert(90000, 22500, 67500)
	d0.MustInsert(86000, 21500, 64500)
	d0.MustInsert(86500, 21625, 64875)
	mk := func(theta float64) []query.Query {
		return []query.Query{
			query.NewUpdate(
				[]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(0, query.Term{Attr: 0, Coef: 0.3})}},
				query.AttrPred(0, query.GE, theta)),
			query.NewInsert(85800, 21450, 0),
			query.NewUpdate(
				[]query.SetClause{{Attr: 2, Expr: query.NewLinExpr(0,
					query.Term{Attr: 0, Coef: 1}, query.Term{Attr: 1, Coef: -1})}},
				nil),
		}
	}
	return d0, mk(85700), mk(87500) // dirty, truth
}

func completeComplaints(t *testing.T, d0 *relation.Table, dirty, truth []query.Query) []Complaint {
	t.Helper()
	df, err := query.Replay(dirty, d0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := query.Replay(truth, d0)
	if err != nil {
		t.Fatal(err)
	}
	return ComplaintsFromDiff(df, tf, 1e-9)
}

func TestFigure2Incremental(t *testing.T) {
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	if len(complaints) != 2 {
		t.Fatalf("expected 2 complaints, got %d", len(complaints))
	}
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("repair not resolved: %+v", rep.Stats)
	}
	if len(rep.Changed) != 1 || rep.Changed[0] != 0 {
		t.Errorf("changed queries = %v, want [0]", rep.Changed)
	}
	// The repaired final state must equal the true final state exactly.
	repFinal, err := query.Replay(rep.Log, d0)
	if err != nil {
		t.Fatal(err)
	}
	truthFinal, _ := query.Replay(truth, d0)
	if diffs := relation.DiffTables(repFinal, truthFinal, 1e-6); len(diffs) != 0 {
		t.Errorf("repaired state differs from truth: %+v", diffs)
	}
	if rep.Distance <= 0 {
		t.Errorf("distance = %v", rep.Distance)
	}
}

func TestFigure2Basic(t *testing.T) {
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm: Basic,
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("basic repair not resolved: %+v", rep.Stats)
	}
}

func TestEmptyComplaints(t *testing.T) {
	d0, dirty, _ := figure2()
	rep, err := Diagnose(d0, dirty, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved || rep.Distance != 0 || len(rep.Changed) != 0 {
		t.Errorf("identity repair expected: %+v", rep)
	}
}

func TestEmptyLogError(t *testing.T) {
	d0, _, _ := figure2()
	if _, err := Diagnose(d0, nil, nil, Options{}); err == nil {
		t.Error("empty log accepted")
	}
}

func TestFullImpact(t *testing.T) {
	// q0 writes a0; q1 reads a0 writes a1; q2 reads a1 writes a2;
	// q3 reads a3 writes a3 (detached chain).
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.ConstExpr(1)}}, nil),
		query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
			query.AttrPred(0, query.GE, 0)),
		query.NewUpdate([]query.SetClause{{Attr: 2, Expr: query.ConstExpr(1)}},
			query.AttrPred(1, query.GE, 0)),
		query.NewUpdate([]query.SetClause{{Attr: 3, Expr: query.ConstExpr(1)}},
			query.AttrPred(3, query.GE, 0)),
	}
	full := FullImpact(log, 4)
	check := func(i int, want ...int) {
		t.Helper()
		ws := query.NewAttrSet(want...)
		if !full[i].ContainsAll(ws) || !ws.ContainsAll(full[i]) {
			t.Errorf("F(q%d) = %v, want %v", i, full[i].Sorted(), want)
		}
	}
	check(0, 0, 1, 2) // a0 -> q1 writes a1 -> q2 writes a2
	check(1, 1, 2)
	check(2, 2)
	check(3, 3)
}

func TestFullImpactSetExprDependency(t *testing.T) {
	// Relative SET reads count as dependencies: q1's "SET b = a + 1"
	// reads a, so q0's impact propagates through it.
	log := []query.Query{
		query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.ConstExpr(5)}}, nil),
		query.NewUpdate([]query.SetClause{{Attr: 1,
			Expr: query.NewLinExpr(1, query.Term{Attr: 0, Coef: 1})}}, nil),
	}
	full := FullImpact(log, 2)
	if !full[0][1] {
		t.Errorf("F(q0) = %v, want to include attr 1", full[0].Sorted())
	}
}

func TestQuerySlicingReducesCandidates(t *testing.T) {
	// Two detached attribute groups; corruption in the a0/a1 chain means
	// queries touching only a2/a3 are irrelevant.
	sch := relation.MustSchema("T", []string{"a0", "a1", "a2", "a3"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 6; i++ {
		d0.MustInsert(float64(i*10), 0, float64(i*10), 0)
	}
	mk := func(theta float64) []query.Query {
		return []query.Query{
			query.NewUpdate([]query.SetClause{{Attr: 3, Expr: query.ConstExpr(7)}},
				query.AttrPred(2, query.GE, 20)), // irrelevant chain
			query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
				query.AttrPred(0, query.GE, theta)), // corrupted
			query.NewUpdate([]query.SetClause{{Attr: 3, Expr: query.ConstExpr(9)}},
				query.AttrPred(2, query.GE, 40)), // irrelevant chain
		}
	}
	dirty, truth := mk(10), mk(30)
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:        Incremental,
		TupleSlicing:     true,
		QuerySlicing:     true,
		AttrSlicing:      true,
		SingleCorruption: true,
		TimeLimit:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if rep.Stats.RelevantQueries != 1 {
		t.Errorf("relevant queries = %d, want 1", rep.Stats.RelevantQueries)
	}
	if len(rep.Changed) != 1 || rep.Changed[0] != 1 {
		t.Errorf("changed = %v, want [1]", rep.Changed)
	}
}

func TestIncrementalScansBatches(t *testing.T) {
	// Corruption in the OLDEST query: incremental must walk past the
	// newer candidates before finding it.
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 5; i++ {
		d0.MustInsert(float64(i*10), 0)
	}
	mk := func(theta float64) []query.Query {
		return []query.Query{
			query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
				query.AttrPred(0, query.GE, theta)), // corrupted (oldest)
			query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(10, query.Term{Attr: 1, Coef: 1})}},
				query.AttrPred(0, query.GE, 100)), // matches nothing
			query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.NewLinExpr(100, query.Term{Attr: 1, Coef: 1})}},
				query.AttrPred(0, query.GE, 200)), // matches nothing
		}
	}
	dirty, truth := mk(10), mk(30)
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if rep.Stats.BatchesTried < 2 {
		t.Errorf("batches tried = %d, want >= 2 (newest batches first)", rep.Stats.BatchesTried)
	}
	if len(rep.Changed) != 1 || rep.Changed[0] != 0 {
		t.Errorf("changed = %v, want [0]", rep.Changed)
	}
}

func TestRefinementExcludesNonComplaints(t *testing.T) {
	// Figure 5(b): the dirty and true range intervals are disjoint and a
	// non-complaint tuple sits between them. Minimizing distance alone
	// stretches the repaired interval over the middle tuple; the
	// refinement step must pull it back.
	sch := relation.MustSchema("T", []string{"a", "v"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(15, 0) // id 1: inside the true interval
	d0.MustInsert(30, 0) // id 2: between the intervals (non-complaint)
	d0.MustInsert(50, 0) // id 3: inside the dirty interval
	mk := func(lo, hi float64) []query.Query {
		return []query.Query{
			query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(1)}},
				query.NewAnd(query.AttrPred(0, query.GE, lo), query.AttrPred(0, query.LE, hi))),
		}
	}
	dirty, truth := mk(40, 60), mk(10, 20)
	complaints := completeComplaints(t, d0, dirty, truth)
	// Complete complaint set: id1 (should be matched) and id3 (should
	// not); id2 matched under neither log, so it is a non-complaint.
	if len(complaints) != 2 {
		t.Fatalf("expected 2 complaints, got %+v", complaints)
	}
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if !rep.Stats.Refined {
		t.Error("refinement did not run (step-1 should have over-generalized)")
	}
	final, _ := query.Replay(rep.Log, d0)
	t1, _ := final.Get(1)
	t2, _ := final.Get(2)
	t3, _ := final.Get(3)
	if t1.Values[1] != 1 {
		t.Errorf("t1.v = %v, want 1 (complaint)", t1.Values[1])
	}
	if t2.Values[1] != 0 {
		t.Errorf("t2.v = %v, want 0 (refinement must exclude the middle tuple)", t2.Values[1])
	}
	if t3.Values[1] != 0 {
		t.Errorf("t3.v = %v, want 0 (complaint)", t3.Values[1])
	}
}

func TestSkipRefine(t *testing.T) {
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		SkipRefine:   true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatal("not resolved")
	}
	if rep.Stats.Refined {
		t.Error("refinement ran despite SkipRefine")
	}
}

func TestComplaintsResolved(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a"}, "")
	tb := relation.NewTable(sch)
	tb.MustInsert(5)
	ok := ComplaintsResolved(tb, []Complaint{{TupleID: 1, Exists: true, Values: []float64{5}}}, 1e-9)
	if !ok {
		t.Error("resolved complaint reported unresolved")
	}
	bad := ComplaintsResolved(tb, []Complaint{{TupleID: 1, Exists: true, Values: []float64{6}}}, 1e-9)
	if bad {
		t.Error("unresolved complaint reported resolved")
	}
	if ComplaintsResolved(tb, []Complaint{{TupleID: 1, Exists: false}}, 1e-9) {
		t.Error("existing tuple passed nonexistence complaint")
	}
	if !ComplaintsResolved(tb, []Complaint{{TupleID: 9, Exists: false}}, 1e-9) {
		t.Error("missing tuple failed nonexistence complaint")
	}
}

// randomWorkload builds a random log over a small table, corrupts one
// query, and returns everything needed for an end-to-end check.
func randomWorkload(rng *rand.Rand) (*relation.Table, []query.Query, []query.Query, int) {
	sch := relation.MustSchema("T", []string{"a0", "a1", "a2"}, "")
	d0 := relation.NewTable(sch)
	nd := rng.Intn(10) + 5
	for i := 0; i < nd; i++ {
		d0.MustInsert(float64(rng.Intn(100)), float64(rng.Intn(100)), float64(rng.Intn(100)))
	}
	nq := rng.Intn(4) + 2
	var log []query.Query
	for i := 0; i < nq; i++ {
		switch rng.Intn(6) {
		case 0:
			log = append(log, query.NewInsert(float64(rng.Intn(100)),
				float64(rng.Intn(100)), float64(rng.Intn(100))))
		case 1:
			log = append(log, query.NewDelete(
				query.NewAnd(query.AttrPred(rng.Intn(3), query.GE, float64(rng.Intn(40)+60)),
					query.AttrPred(rng.Intn(3), query.LE, 200))))
		default:
			lo := float64(rng.Intn(80))
			log = append(log, query.NewUpdate(
				[]query.SetClause{{Attr: rng.Intn(3), Expr: query.ConstExpr(float64(rng.Intn(100)))}},
				query.NewAnd(query.AttrPred(rng.Intn(3), query.GE, lo),
					query.AttrPred(rng.Intn(3), query.LE, lo+float64(rng.Intn(30)+10)))))
		}
	}
	corrupt := rng.Intn(nq)
	truth := query.CloneLog(log)
	cq := log[corrupt]
	p := cq.Params()
	for j := range p {
		if rng.Intn(2) == 0 {
			p[j] = float64(rng.Intn(100))
		}
	}
	_ = cq.SetParams(p)
	return d0, log, truth, corrupt
}

// Property: for random single-corruption logs with complete complaint
// sets, incremental QFix finds a repair that resolves every complaint.
func TestQuickIncrementalResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d0, dirty, truth, _ := randomWorkload(rng)
		dirtyFinal, err := query.Replay(dirty, d0)
		if err != nil {
			return true
		}
		truthFinal, err := query.Replay(truth, d0)
		if err != nil {
			return true
		}
		complaints := ComplaintsFromDiff(dirtyFinal, truthFinal, 1e-9)
		if len(complaints) == 0 {
			return true
		}
		rep, err := Diagnose(d0, dirty, complaints, Options{
			Algorithm:    Incremental,
			TupleSlicing: true,
			QuerySlicing: true,
			TimeLimit:    20 * time.Second,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !rep.Resolved {
			t.Logf("seed %d: unresolved (stats %+v)", seed, rep.Stats)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the repair distance never exceeds the corruption distance
// (the truth itself is a feasible repair for the parameterized query).
func TestQuickRepairDistanceBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d0, dirty, truth, corrupt := randomWorkload(rng)
		dirtyFinal, err := query.Replay(dirty, d0)
		if err != nil {
			return true
		}
		truthFinal, err := query.Replay(truth, d0)
		if err != nil {
			return true
		}
		complaints := ComplaintsFromDiff(dirtyFinal, truthFinal, 1e-9)
		if len(complaints) == 0 {
			return true
		}
		rep, err := Diagnose(d0, dirty, complaints, Options{
			Algorithm:    Incremental,
			TupleSlicing: true,
			SkipRefine:   true,
			TimeLimit:    20 * time.Second,
		})
		if err != nil || !rep.Resolved {
			return true // covered by the other property
		}
		corruptionDist := query.Distance(dirty, truth)
		// Only comparable when the repair touched exactly the corrupted
		// query (otherwise an earlier batch found a cheaper fix, which is
		// fine and typically even smaller).
		if len(rep.Changed) == 1 && rep.Changed[0] == corrupt {
			if rep.Distance > corruptionDist+1e-6 {
				t.Logf("seed %d: distance %v > corruption %v", seed, rep.Distance, corruptionDist)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTotalTimeLimit(t *testing.T) {
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	start := time.Now()
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:      Incremental,
		TupleSlicing:   true,
		TotalTimeLimit: time.Nanosecond, // expires immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("total time limit ignored")
	}
	if rep.Resolved {
		t.Log("resolved despite tiny budget (first batch won the race); acceptable")
	}
	_ = rep
}

func TestDistanceAccountsAllParams(t *testing.T) {
	d0, dirty, truth := figure2()
	complaints := completeComplaints(t, d0, dirty, truth)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil || !rep.Resolved {
		t.Fatalf("setup failed: %v %+v", err, rep)
	}
	// Recompute distance by hand and compare.
	want := query.Distance(dirty, rep.Log)
	if math.Abs(rep.Distance-want) > 1e-9 {
		t.Errorf("distance %v != recomputed %v", rep.Distance, want)
	}
}
