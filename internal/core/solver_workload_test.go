// External test: the solver rebuild against the paper's workload
// generator. This is the acceptance property for the sparse
// revised-simplex + presolve + parallel branch-and-bound stack: every
// solver configuration — parallel node search on or off, presolve on or
// off — returns a repair byte-identical to the sequential
// presolve-enabled baseline, across the incremental batch scan and the
// partition scan. Parallel search is additionally pinned to identical
// solver statistics (nodes, LP iterations, refactorizations): the
// speculation must be invisible in the accounting, not just the answer.
package core_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestSolverParallelMatchesSequential sweeps generator workloads through
// the incremental scan with parallel in-solve search and pins both the
// repair and the solver statistics to the sequential run.
func TestSolverParallelMatchesSequential(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2 // solver-bound; keep the race-short pass fast
	}
	// The generous limit matters: the identity property holds for solves
	// that complete. A time-limited stop is wall-clock-dependent, and a
	// slower configuration legitimately diverges when it runs out of
	// budget mid-scan (it still returns a valid, verified repair).
	base := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 600 * time.Second}
	rng := rand.New(rand.NewSource(61))
	done := 0
	for trial := 0; trial < 30 && done < trials; trial++ {
		w, err := workload.Generate(workload.Config{
			ND: 25, Na: 4, Nq: 20, Mix: workload.UpdateOnly, Seed: int64(trial) + 7})
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.MakeInstance(10 + rng.Intn(9))
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue // no-op corruption: nothing to diagnose
		}
		done++
		want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, base)
		if err != nil {
			t.Fatal(err)
		}
		wf := diagFingerprint(in, want)
		for _, spar := range []int{2, 4, -1} {
			opt := base
			opt.SolverParallel = spar
			got, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, opt)
			if err != nil {
				t.Fatal(err)
			}
			if gf := diagFingerprint(in, got); gf != wf {
				t.Errorf("trial %d SolverParallel=%d: repair differs from sequential:\n got %s\nwant %s",
					trial, spar, gf, wf)
			}
			if got.Stats.Nodes != want.Stats.Nodes ||
				got.Stats.LPIters != want.Stats.LPIters ||
				got.Stats.Refactorizations != want.Stats.Refactorizations {
				t.Errorf("trial %d SolverParallel=%d: solver stats diverged: nodes %d/%d iters %d/%d refac %d/%d",
					trial, spar, got.Stats.Nodes, want.Stats.Nodes,
					got.Stats.LPIters, want.Stats.LPIters,
					got.Stats.Refactorizations, want.Stats.Refactorizations)
			}
		}
	}
	if done == 0 {
		t.Fatal("setup: no seed produced a complaint-carrying instance")
	}
}

// TestNoPresolveMatchesDefault pins the presolve ablation: presolve
// changes the work (PresolvedRows > 0, usually fewer nodes), never the
// repair.
func TestNoPresolveMatchesDefault(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	// NoPresolve can be ~25x slower on big-M batches; the limit must be
	// high enough that it still completes every solve, or the scans
	// legitimately diverge (see TestSolverParallelMatchesSequential).
	base := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 600 * time.Second}
	rng := rand.New(rand.NewSource(71))
	done := 0
	sawReduction := false
	for trial := 0; trial < 30 && done < trials; trial++ {
		w, err := workload.Generate(workload.Config{
			ND: 25, Na: 4, Nq: 20, Mix: workload.UpdateOnly, Seed: int64(trial) + 11})
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.MakeInstance(10 + rng.Intn(9))
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue
		}
		done++
		want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, base)
		if err != nil {
			t.Fatal(err)
		}
		if want.Stats.PresolvedRows > 0 {
			sawReduction = true
		}
		off := base
		off.NoPresolve = true
		got, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, off)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.PresolvedRows != 0 {
			t.Errorf("trial %d: NoPresolve run reported %d presolved rows", trial, got.Stats.PresolvedRows)
		}
		if gf, wf := diagFingerprint(in, got), diagFingerprint(in, want); gf != wf {
			t.Errorf("trial %d: NoPresolve repair differs from default:\n got %s\nwant %s", trial, gf, wf)
		}
	}
	if done == 0 {
		t.Fatal("setup: no seed produced a complaint-carrying instance")
	}
	if !sawReduction {
		t.Error("presolve never reduced a model across the sweep; the ablation is vacuous")
	}
}

// TestSolverParallelPartitionScanMatches runs parallel in-solve search
// under the partition scan (partition workers solving concurrent MILPs,
// each itself searching in parallel) and pins the repair to the fully
// sequential run.
func TestSolverParallelPartitionScanMatches(t *testing.T) {
	w, corruptIdx, err := bench.PartitionClusters(6, 5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Fatal("setup: cluster workload raised no complaints")
	}
	base := core.Options{Algorithm: core.Basic, TupleSlicing: true,
		QuerySlicing: true, Partition: 3, TimeLimit: 600 * time.Second}
	want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, base)
	if err != nil {
		t.Fatal(err)
	}
	wf := diagFingerprint(in, want)
	for _, opt := range []core.Options{
		func() core.Options { o := base; o.SolverParallel = 4; return o }(),
		func() core.Options { o := base; o.SolverParallel = 4; o.NoPresolve = true; return o }(),
	} {
		got, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, opt)
		if err != nil {
			t.Fatal(err)
		}
		if gf := diagFingerprint(in, got); gf != wf {
			t.Errorf("SolverParallel=%d NoPresolve=%v: partitioned repair differs:\n got %s\nwant %s",
				opt.SolverParallel, opt.NoPresolve, gf, wf)
		}
	}
}
