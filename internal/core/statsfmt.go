package core

import (
	"fmt"
	"strings"
	"time"
)

// This file is the single renderer of Stats for humans. `qfix` (both
// the default and -v output), the dist worker's per-job log lines, and
// anything else that wants to narrate a diagnosis all format through
// here, so the same statistic never prints two different ways.

// Format renders the stats as report lines (no prefix, no trailing
// newline; the CLI adds its "-- " marker). Non-verbose output includes
// only the lines a casual run cares about — cache and warm-start wins,
// partition/remote shape; verbose adds solver totals, model sizes, the
// per-phase time split, and per-partition breakdowns.
func (s Stats) Format(verbose bool) []string {
	var out []string
	if s.ImpactCacheHits > 0 {
		out = append(out, fmt.Sprintf("impact cache: %d hits (%d incremental extends)",
			s.ImpactCacheHits, s.ImpactCacheExtends))
	}
	if s.WarmSeeds > 0 {
		out = append(out, fmt.Sprintf("warm starts: %d seeded solves (%d nodes, %d LP iterations total)",
			s.WarmSeeds, s.Nodes, s.LPIters))
	}
	if verbose {
		out = append(out,
			fmt.Sprintf("solver: %d nodes, %d LP iterations, %d refactorizations, %d presolved rows",
				s.Nodes, s.LPIters, s.Refactorizations, s.PresolvedRows),
			fmt.Sprintf("model: %d rows, %d vars (%d binary); %d batches tried",
				s.Rows, s.Vars, s.Binaries, s.BatchesTried),
			fmt.Sprintf("phases: plan %v (impact %v), encode %v, solve %v, merge %v",
				fmtDur(s.PlanTime), fmtDur(s.ImpactTime),
				fmtDur(s.EncodeTime), fmtDur(s.SolveTime), fmtDur(s.MergeTime)))
	}
	if s.Partitions > 0 {
		out = append(out, fmt.Sprintf("partitions: %d (fallback to joint solve: %v)",
			s.Partitions, s.PartitionFallback))
	}
	if verbose {
		for _, p := range s.PartitionStats {
			line := fmt.Sprintf("partition[%d]: complaints=%d candidates=%d queue=%v solve=%v status=%s",
				p.Index, p.Complaints, p.Candidates, fmtDur(p.QueueWait), fmtDur(p.Solve), orDash(p.Status))
			if p.Remote || p.Attempts > 0 {
				line += fmt.Sprintf(" worker=%s attempts=%d", orDash(p.Worker), p.Attempts)
			}
			out = append(out, line)
		}
	}
	if s.RemoteJobs > 0 || s.StreamedResults > 0 || s.WorkerCacheHits > 0 {
		out = append(out, fmt.Sprintf("remote jobs: %d of %d partitions (%d streamed over mux; rest solved locally; worker cache hits: %d)",
			s.RemoteJobs, s.Partitions, s.StreamedResults, s.WorkerCacheHits))
	}
	return out
}

// Brief renders the stats as one key=value line — the form the dist
// worker appends to its per-job log entries.
func (s Stats) Brief() string {
	parts := []string{
		fmt.Sprintf("status=%s", orDash(s.LastStatus)),
		fmt.Sprintf("nodes=%d", s.Nodes),
		fmt.Sprintf("lp=%d", s.LPIters),
		fmt.Sprintf("plan=%v", fmtDur(s.PlanTime)),
		fmt.Sprintf("encode=%v", fmtDur(s.EncodeTime)),
		fmt.Sprintf("solve=%v", fmtDur(s.SolveTime)),
	}
	if s.WarmSeeds > 0 {
		parts = append(parts, fmt.Sprintf("warm=%d", s.WarmSeeds))
	}
	if s.ImpactCacheHits > 0 {
		parts = append(parts, fmt.Sprintf("impacthits=%d", s.ImpactCacheHits))
	}
	return strings.Join(parts, " ")
}

// fmtDur rounds for humans: sub-millisecond values keep microseconds,
// everything else rounds to milliseconds.
func fmtDur(d time.Duration) time.Duration {
	if d < time.Millisecond {
		return d.Round(time.Microsecond)
	}
	return d.Round(time.Millisecond)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
