// External test: regressions for the simplex feasibility-drift repair.
// Two single-cluster subproblems of the partition bench workload used
// to kill their whole diagnosis at the root node: the LP walked past a
// bound over a sub-threshold ratio-test row (one big-M step of ~1e7
// carried a basic binary to -0.0146), or steered into a basis the
// refactorization declares singular — either way branch-and-bound saw
// NumFail at node 1, reported "limit" with no incumbent, and the
// partitioned diagnosis above it went unresolved. The repair loop in
// simplex.optimize (refactorize → phase 1 → phase 2) plus the
// feasibility-bounded ratio-test tie rule fix both; these instances pin
// them solved.
package core_test

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// clusterSubproblem rebuilds one cluster's complaint subset of the
// partition bench workload (tuple IDs are rowsPer-per-cluster in
// insertion order).
func clusterSubproblem(t *testing.T, clusters, rowsPer, queriesPer int, seed int64, cluster int) (
	*core.Repair, error) {
	t.Helper()
	w, corruptIdx, err := bench.PartitionClusters(clusters, rowsPer, queriesPer, seed)
	if err != nil {
		t.Fatal(err)
	}
	in, err := w.MakeInstance(corruptIdx...)
	if err != nil {
		t.Fatal(err)
	}
	var cs []core.Complaint
	for _, c := range in.Complaints {
		if int((c.TupleID-1)/int64(rowsPer)) == cluster {
			cs = append(cs, c)
		}
	}
	if len(cs) == 0 {
		t.Fatalf("setup: cluster %d raised no complaints", cluster)
	}
	return core.Diagnose(in.W.D0, in.Dirty, cs, core.Options{
		Algorithm: core.Basic, TupleSlicing: true, QuerySlicing: true,
		TimeLimit: 60 * time.Second})
}

// The bound-overshoot instance: before the repair loop, the root LP
// reported Optimal with a basic binary at -0.0146, the final validity
// gate turned that into NumFail, and the solve died at node 1.
func TestSimplexDriftRepairUnsticksRootLP(t *testing.T) {
	rep, err := clusterSubproblem(t, 64, 6, 3, 65, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("cluster subproblem unresolved: status=%q nodes=%d",
			rep.Stats.LastStatus, rep.Stats.Nodes)
	}
	if rep.Stats.Nodes <= 1 {
		t.Fatalf("solve died at the root again: %+v", rep.Stats)
	}
}

// The singular-basis instance: before the ratio-test tie fix, pricing
// steered into sub-1e-10 pivots whose product-form updates left a basis
// the repair loop's refactorization declared singular.
func TestSimplexTieRuleAvoidsSingularBasis(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second solver regression; skipped under -short")
	}
	rep, err := clusterSubproblem(t, 128, 6, 3, 129, 72)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("cluster subproblem unresolved: status=%q nodes=%d",
			rep.Stats.LastStatus, rep.Stats.Nodes)
	}
	if rep.Stats.Nodes <= 1 {
		t.Fatalf("solve died at the root again: %+v", rep.Stats)
	}
}
