package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingSolver is a PartitionSolver that solves locally while
// recording what the engine handed it — the contract internal/dist's
// coordinator builds on.
type countingSolver struct {
	calls      atomic.Int64
	badPackage atomic.Int64 // subproblems that were not self-contained
	fail       bool
}

func (s *countingSolver) SolvePartition(sub Subproblem) (*Repair, error) {
	s.calls.Add(1)
	if s.fail {
		return nil, errors.New("injected solver failure")
	}
	if sub.Options.Partition != 0 || sub.Options.Parallel > 1 ||
		sub.Options.PartitionSolver != nil || sub.Options.Workers != nil ||
		len(sub.Options.Candidates) == 0 || len(sub.Complaints) == 0 ||
		sub.D0 == nil || len(sub.Log) == 0 {
		s.badPackage.Add(1)
	}
	rep, err := sub.SolveLocal()
	if err == nil {
		// What a remote transport would stamp on a worker-solved repair.
		rep.Stats.RemoteJobs = 1
	}
	return rep, err
}

func TestPartitionSolverHookDispatchesEveryPartition(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	solver := &countingSolver{}
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:       Basic,
		TupleSlicing:    true,
		QuerySlicing:    true,
		Partition:       2,
		PartitionSolver: solver,
		TimeLimit:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	if got := solver.calls.Load(); got != 3 {
		t.Errorf("solver called %d times, want once per partition (3)", got)
	}
	if n := solver.badPackage.Load(); n != 0 {
		t.Errorf("%d subproblem(s) were not self-contained", n)
	}
	if rep.Stats.RemoteJobs != 3 {
		t.Errorf("Stats.RemoteJobs = %d, want 3 (merged from per-partition stats)", rep.Stats.RemoteJobs)
	}
}

func TestPartitionSolverHookErrorPropagates(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	_, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:       Basic,
		TupleSlicing:    true,
		QuerySlicing:    true,
		Partition:       2,
		PartitionSolver: &countingSolver{fail: true},
		TimeLimit:       30 * time.Second,
	})
	if err == nil {
		t.Fatal("solver error did not propagate")
	}
}

// TestPartitionedSinglePlanPass pins the partition-aware slicing
// optimization: subproblems adopt the coordinator's planning products,
// so the replay + FullImpact pass runs exactly once no matter how many
// partitions solve.
func TestPartitionedSinglePlanPass(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 4, 4)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		Partition:    4,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved || rep.Stats.Partitions != 4 {
		t.Fatalf("setup: resolved=%v partitions=%d", rep.Resolved, rep.Stats.Partitions)
	}
	if rep.Stats.PlanPasses != 1 {
		t.Errorf("Stats.PlanPasses = %d, want 1 (partitions must not re-plan)", rep.Stats.PlanPasses)
	}
}

func TestJointDiagnosisPlansOnce(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 2, 4)
	rep, err := Diagnose(d0, dirty, complaints, Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.PlanPasses != 1 {
		t.Errorf("Stats.PlanPasses = %d, want 1", rep.Stats.PlanPasses)
	}
}

// TestAdaptivePoolSizes: Partition/Parallel = -1 size the pool from
// GOMAXPROCS instead of a fixed constant. The pool size only affects
// concurrency, never the outcome, so the repair must match a fixed-size
// run.
func TestAdaptivePoolSizes(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	base := Options{
		Algorithm:    Basic,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	}
	fixed := base
	fixed.Partition = 3
	want, err := Diagnose(d0, dirty, complaints, fixed)
	if err != nil {
		t.Fatal(err)
	}
	auto := base
	auto.Partition = -1
	got, err := Diagnose(d0, dirty, complaints, auto)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resolved || got.Stats.Partitions != want.Stats.Partitions {
		t.Fatalf("auto partition: resolved=%v partitions=%d, want resolved with %d",
			got.Resolved, got.Stats.Partitions, want.Stats.Partitions)
	}
	if got.Distance != want.Distance || len(got.Changed) != len(want.Changed) {
		t.Errorf("auto pool changed the repair: distance %v vs %v, changed %v vs %v",
			got.Distance, want.Distance, got.Changed, want.Changed)
	}

	// Parallel = -1 on the incremental batch scan.
	inc := Options{
		Algorithm:    Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		Parallel:     -1,
		TimeLimit:    30 * time.Second,
	}
	d0b, dirtyB, _, complaintsB := clusterWorkload(t, 1, 4)
	rep, err := Diagnose(d0b, dirtyB, complaintsB, inc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("adaptive parallel scan failed to resolve: %+v", rep.Stats)
	}
}
