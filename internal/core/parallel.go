package core

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// incrementalParallel runs the Inc_k batch scan with Options.Parallel
// workers on the shared scheduler (sched.go). Batches are independent
// MILPs, so they solve concurrently; the *choice* stays deterministic
// and identical to the sequential scan: batches are adjudicated in
// newest-first order, the first clean repair wins, and the
// least-damaging resolved repair is the fallback. Workers that are
// still pending behind an accepted result are abandoned (their
// statistics still count).
//
// This addresses the paper's closing direction ("we plan to investigate
// additional methods of scaling the constraint analysis") with the
// natural Go construction; partition.go layers the complaint-level
// decomposition on the same scheduler.
func (d *diagnoser) incrementalParallel() (*Repair, error) {
	cands := append([]int(nil), d.candidates...)
	for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
		cands[i], cands[j] = cands[j], cands[i]
	}
	k := d.opt.K
	var batches [][]int
	for start := 0; start < len(cands); start += k {
		end := start + k
		if end > len(cands) {
			end = len(cands)
		}
		batches = append(batches, cands[start:end])
	}
	if len(batches) == 0 {
		return d.finish(nil), nil
	}

	// Batch spans are pre-created in index order by this (coordinating)
	// goroutine, so the trace's top-level shape is fixed before any
	// worker runs; each worker fills in only its own subtree. Which
	// batches end up skipped still depends on timing — the determinism
	// pin covers -solver-parallel, not the batch scan.
	bspans := make([]*obs.Span, len(batches))
	for bi := range batches {
		bspans[bi] = d.span.Start("batch")
		bspans[bi].SetAttr("queries", len(batches[bi]))
	}

	type outcome struct {
		repaired []query.Query // nil: no solution for this batch
		err      error
		stats    Stats
	}
	var stop atomic.Bool
	results, wait := schedule(d.opt.Scheduler, d.opt.Parallel, len(batches), func(bi int) outcome {
		defer bspans[bi].End()
		var st Stats
		if stop.Load() || (!d.deadline.IsZero() && time.Now().After(d.deadline)) {
			st.LastStatus = "skipped"
			return outcome{stats: st}
		}
		batch := batches[bi]
		paramSet := make(map[int]bool, len(batch))
		for _, qi := range batch {
			paramSet[qi] = true
		}
		repaired, ok, err := d.attempt(d.log, paramSet, nil, &st, bspans[bi])
		if err == nil && ok {
			repaired = d.maybeRefine(repaired, paramSet, &st, bspans[bi])
		} else {
			repaired = nil
		}
		return outcome{repaired: repaired, err: err, stats: st}
	})

	// Adjudicate in order; merge worker statistics as they arrive. The
	// status of the batch that produces the returned repair is pinned
	// after the scan: late-arriving workers (typically "skipped" ones
	// abandoned behind the accepted result) must not clobber the
	// decisive solver status.
	var fallback *Repair
	fallbackDamage := 0
	fallbackStatus := ""
	var firstErr error
	decided := false
	var winner *Repair
	winnerStatus := ""
	// Every scheduled job delivers exactly one outcome into its own
	// 1-buffered channel, even when skipped, so each receive completes;
	// cancellation lives in the jobs (stop flag + deadline checks) and
	// the merge MUST drain all of them for deterministic stats.
	//qfix:ctx-ok receives always complete: jobs deliver even when skipped; jobs own cancellation
	for bi := range batches {
		out := <-results[bi]
		d.mergeStats(out.stats)
		if out.err != nil && firstErr == nil {
			firstErr = out.err
		}
		if decided || out.repaired == nil {
			continue
		}
		rep := d.finish(out.repaired)
		if !rep.Resolved {
			continue
		}
		damage := d.nonComplaintDamage(rep.Log)
		if damage == 0 {
			winner = rep
			winnerStatus = out.stats.LastStatus
			decided = true
			stop.Store(true) // later (older) batches need not start
			continue
		}
		if fallback == nil || damage < fallbackDamage ||
			(damage == fallbackDamage && rep.Distance < fallback.Distance) {
			fallback, fallbackDamage = rep, damage
			fallbackStatus = out.stats.LastStatus
		}
	}
	wait()

	if firstErr != nil && winner == nil && fallback == nil {
		return nil, firstErr
	}
	if winner != nil {
		if winnerStatus != "" {
			d.stats.LastStatus = winnerStatus
		}
		winner.Stats = d.stats
		return winner, nil
	}
	if fallback != nil {
		if fallbackStatus != "" {
			d.stats.LastStatus = fallbackStatus
		}
		fallback.Stats = d.stats
		return fallback, nil
	}
	return d.finish(nil), nil
}

// mergeStats folds a worker's statistics into the shared totals. Called
// only from the adjudication goroutine.
func (d *diagnoser) mergeStats(st Stats) {
	d.stats.Rows += st.Rows
	d.stats.Vars += st.Vars
	d.stats.Binaries += st.Binaries
	d.stats.BatchesTried += st.BatchesTried
	d.stats.Nodes += st.Nodes
	d.stats.LPIters += st.LPIters
	d.stats.Refactorizations += st.Refactorizations
	d.stats.PresolvedRows += st.PresolvedRows
	d.stats.EncodeTime += st.EncodeTime
	d.stats.SolveTime += st.SolveTime
	d.stats.PlanTime += st.PlanTime
	d.stats.MergeTime += st.MergeTime
	d.stats.PlanPasses += st.PlanPasses
	d.stats.RemoteJobs += st.RemoteJobs
	d.stats.StreamedResults += st.StreamedResults
	d.stats.WarmSeeds += st.WarmSeeds
	d.stats.ImpactCacheHits += st.ImpactCacheHits
	d.stats.ImpactCacheExtends += st.ImpactCacheExtends
	d.stats.WorkerCacheHits += st.WorkerCacheHits
	d.stats.ImpactTime += st.ImpactTime
	if st.Refined {
		d.stats.Refined = true
	}
	if st.Partitions > d.stats.Partitions {
		d.stats.Partitions = st.Partitions
	}
	if st.PartitionFallback {
		d.stats.PartitionFallback = true
	}
	if st.LastStatus != "" {
		d.stats.LastStatus = st.LastStatus
	}
}
