package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
)

// incrementalParallel runs the Inc_k batch scan with Options.Parallel
// workers. Batches are independent MILPs, so they solve concurrently;
// the *choice* stays deterministic and identical to the sequential scan:
// batches are adjudicated in newest-first order, the first clean repair
// wins, and the least-damaging resolved repair is the fallback. Workers
// that are still running batches older than an accepted result are
// abandoned (their statistics still count).
//
// This addresses the paper's closing direction ("we plan to investigate
// additional methods of scaling the constraint analysis") with the
// natural Go construction.
func (d *diagnoser) incrementalParallel() (*Repair, error) {
	cands := append([]int(nil), d.candidates...)
	for i, j := 0, len(cands)-1; i < j; i, j = i+1, j-1 {
		cands[i], cands[j] = cands[j], cands[i]
	}
	k := d.opt.K
	var batches [][]int
	for start := 0; start < len(cands); start += k {
		end := start + k
		if end > len(cands) {
			end = len(cands)
		}
		batches = append(batches, cands[start:end])
	}
	if len(batches) == 0 {
		return d.finish(nil), nil
	}

	type outcome struct {
		repaired []query.Query // nil: no solution for this batch
		err      error
		stats    Stats
	}
	results := make([]chan outcome, len(batches))
	for i := range results {
		results[i] = make(chan outcome, 1)
	}

	var stop atomic.Bool
	sem := make(chan struct{}, d.opt.Parallel)
	var wg sync.WaitGroup
	for bi, batch := range batches {
		wg.Add(1)
		go func(bi int, batch []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var st Stats
			if stop.Load() || (!d.deadline.IsZero() && time.Now().After(d.deadline)) {
				st.LastStatus = "skipped"
				results[bi] <- outcome{stats: st}
				return
			}
			paramSet := make(map[int]bool, len(batch))
			for _, qi := range batch {
				paramSet[qi] = true
			}
			repaired, ok, err := d.attempt(d.log, paramSet, nil, &st)
			if err == nil && ok {
				repaired = d.maybeRefine(repaired, paramSet, &st)
			} else {
				repaired = nil
			}
			results[bi] <- outcome{repaired: repaired, err: err, stats: st}
		}(bi, batch)
	}

	// Adjudicate in order; merge worker statistics as they arrive.
	var fallback *Repair
	fallbackDamage := 0
	var firstErr error
	decided := false
	var winner *Repair
	for bi := range batches {
		out := <-results[bi]
		d.mergeStats(out.stats)
		if out.err != nil && firstErr == nil {
			firstErr = out.err
		}
		if decided || out.repaired == nil {
			continue
		}
		rep := d.finish(out.repaired)
		if !rep.Resolved {
			continue
		}
		damage := d.nonComplaintDamage(rep.Log)
		if damage == 0 {
			winner = rep
			decided = true
			stop.Store(true) // later (older) batches need not start
			continue
		}
		if fallback == nil || damage < fallbackDamage ||
			(damage == fallbackDamage && rep.Distance < fallback.Distance) {
			fallback, fallbackDamage = rep, damage
		}
	}
	wg.Wait()

	if firstErr != nil && winner == nil && fallback == nil {
		return nil, firstErr
	}
	if winner != nil {
		winner.Stats = d.stats
		return winner, nil
	}
	if fallback != nil {
		fallback.Stats = d.stats
		return fallback, nil
	}
	return d.finish(nil), nil
}

// mergeStats folds a worker's statistics into the shared totals. Called
// only from the adjudication goroutine.
func (d *diagnoser) mergeStats(st Stats) {
	d.stats.Rows += st.Rows
	d.stats.Vars += st.Vars
	d.stats.Binaries += st.Binaries
	d.stats.BatchesTried += st.BatchesTried
	d.stats.Nodes += st.Nodes
	d.stats.LPIters += st.LPIters
	d.stats.EncodeTime += st.EncodeTime
	d.stats.SolveTime += st.SolveTime
	if st.Refined {
		d.stats.Refined = true
	}
	if st.LastStatus != "" {
		d.stats.LastStatus = st.LastStatus
	}
}
