// External test: the impact cache against the paper's workload
// generator (an import cycle keeps workload out of the in-package
// tests). This is the acceptance property for the cache subsystem: over
// randomized generator logs and append points, the cached/extended
// closure is identical to a fresh FullImpact, and a cached diagnosis
// returns the exact repair an uncached one does.
package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestExtendFullImpactMatchesFreshOnGeneratorLogs(t *testing.T) {
	mixes := []workload.QueryMix{workload.UpdateOnly, workload.InsertOnly,
		workload.DeleteOnly, workload.Mixed}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		mix := mixes[trial%len(mixes)]
		nq := rng.Intn(50) + 10
		w, err := workload.Generate(workload.Config{
			ND: 30, Na: rng.Intn(6) + 2, Nq: nq, Mix: mix, Seed: int64(trial) + 1})
		if err != nil {
			t.Fatal(err)
		}
		width := w.Schema.Width()
		want := core.FullImpact(w.Log, width)
		for _, prevN := range []int{rng.Intn(nq), nq - 1, nq} {
			prev := core.FullImpact(w.Log[:prevN], width)
			got := core.ExtendFullImpact(prev, w.Log, width)
			for i := range want {
				if !got[i].ContainsAll(want[i]) || !want[i].ContainsAll(got[i]) {
					t.Fatalf("trial %d mix %d prevN %d: F(q%d) = %v, want %v",
						trial, mix, prevN, i, got[i].Sorted(), want[i].Sorted())
				}
			}
		}
	}
}

// A cached diagnosis must return the exact repair of an uncached one —
// same repaired SQL, same distance, same verdict — while reporting the
// cache activity in Stats.
func TestCachedDiagnosisMatchesUncached(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2 // solver-bound; keep the race-short pass fast
	}
	opts := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 30 * time.Second}
	done := 0
	for trial := 0; trial < 30 && done < trials; trial++ {
		w, err := workload.Generate(workload.Config{
			ND: 25, Na: 4, Nq: 20, Mix: workload.UpdateOnly, Seed: int64(trial) + 5})
		if err != nil {
			t.Fatal(err)
		}
		in, err := w.MakeInstance(16)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue // no-op corruption: the diagnosis never plans
		}
		done++
		want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, opts)
		if err != nil {
			t.Fatal(err)
		}

		cached := opts
		cached.ImpactCache = core.NewImpactCache(0)
		first, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cached)
		if err != nil {
			t.Fatal(err)
		}
		second, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cached)
		if err != nil {
			t.Fatal(err)
		}
		if first.Stats.ImpactCacheHits != 0 {
			t.Errorf("trial %d: first run reported %d hits", trial, first.Stats.ImpactCacheHits)
		}
		if second.Stats.ImpactCacheHits != 1 || second.Stats.ImpactCacheExtends != 0 {
			t.Errorf("trial %d: second run stats = hits %d extends %d, want exact hit",
				trial, second.Stats.ImpactCacheHits, second.Stats.ImpactCacheExtends)
		}
		wf := diagFingerprint(in, want)
		for name, rep := range map[string]*core.Repair{"first": first, "second": second} {
			if got := diagFingerprint(in, rep); got != wf {
				t.Errorf("trial %d: %s cached repair differs from uncached:\n got %s\nwant %s",
					trial, name, got, wf)
			}
		}
	}
	if done == 0 {
		t.Fatal("setup: no seed produced a complaint-carrying instance")
	}
}

func diagFingerprint(in *workload.Instance, rep *core.Repair) string {
	var b strings.Builder
	sch := in.W.Schema
	for _, q := range rep.Log {
		b.WriteString(q.String(sch))
		b.WriteString(";")
	}
	fmt.Fprintf(&b, " changed=%v distance=%.9f resolved=%v", rep.Changed, rep.Distance, rep.Resolved)
	return b.String()
}

// The growing-log path end to end: diagnose a prefix, append, diagnose
// the full log. The second diagnosis must extend the cached closure
// (not recompute) and still produce the uncached repair.
func TestCachedDiagnosisAfterAppendExtends(t *testing.T) {
	opts := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 30 * time.Second}
	const cut = 17
	// Scan seeds for an instance whose corruption (inside the prefix)
	// raises complaints both at the cut and over the full log.
	var in *workload.Instance
	var prefixComplaints []core.Complaint
	for seed := int64(1); seed < 40 && in == nil; seed++ {
		w, err := workload.Generate(workload.Config{
			ND: 25, Na: 4, Nq: 20, Mix: workload.UpdateOnly, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cand, err := w.MakeInstance(13)
		if err != nil {
			t.Fatal(err)
		}
		if len(cand.Complaints) == 0 {
			continue
		}
		prefixDirty, err := query.Replay(cand.Dirty[:cut], cand.W.D0)
		if err != nil {
			t.Fatal(err)
		}
		prefixTruth, err := query.Replay(cand.W.Log[:cut], cand.W.D0)
		if err != nil {
			t.Fatal(err)
		}
		if cs := core.ComplaintsFromDiff(prefixDirty, prefixTruth, 1e-9); len(cs) > 0 {
			in, prefixComplaints = cand, cs
		}
	}
	if in == nil {
		t.Fatal("setup: no seed yields complaints at both the cut and the full log")
	}

	want, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, opts)
	if err != nil {
		t.Fatal(err)
	}

	cached := opts
	cached.ImpactCache = core.NewImpactCache(0)
	if _, err := core.Diagnose(in.W.D0, in.Dirty[:cut], prefixComplaints, cached); err != nil {
		t.Fatal(err)
	}
	grown, err := core.Diagnose(in.W.D0, in.Dirty, in.Complaints, cached)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Stats.ImpactCacheHits != 1 || grown.Stats.ImpactCacheExtends != 1 {
		t.Errorf("grown-log stats = hits %d extends %d, want one prefix extension",
			grown.Stats.ImpactCacheHits, grown.Stats.ImpactCacheExtends)
	}
	if got, wf := diagFingerprint(in, grown), diagFingerprint(in, want); got != wf {
		t.Errorf("extended-closure repair differs from uncached:\n got %s\nwant %s", got, wf)
	}
}
