package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sched"
)

// schedPools returns the scheduler variants every contract test must
// hold under: the legacy per-scan goroutines (nil) and a resident
// shared pool (Options.Scheduler). The determinism contract — results
// adjudicated in submission order via per-job 1-buffered channels — is
// identical in both modes, and these tests pin that.
func schedPools(t *testing.T) map[string]*sched.Pool {
	t.Helper()
	p := sched.NewPool(2)
	t.Cleanup(p.Close)
	return map[string]*sched.Pool{"goroutines": nil, "pool": p}
}

// With a single scan worker the start sequence is exactly the feed
// order, so the explicit order is observable deterministically.
func TestScheduleOrderStartsJobsInGivenOrder(t *testing.T) {
	for name, pool := range schedPools(t) {
		t.Run(name, func(t *testing.T) {
			order := []int{3, 1, 0, 2}
			var mu sync.Mutex
			var started []int
			results, wait := scheduleOrder(pool, 1, 4, order, func(i int) int {
				mu.Lock()
				started = append(started, i)
				mu.Unlock()
				return i * i
			})
			wait()
			if !reflect.DeepEqual(started, order) {
				t.Errorf("start order = %v, want %v", started, order)
			}
			// Adjudication stays in submission (index) order regardless of
			// the start order: results[i] always carries job i's result.
			for i := 0; i < 4; i++ {
				if got := <-results[i]; got != i*i {
					t.Errorf("results[%d] = %d, want %d", i, got, i*i)
				}
			}
		})
	}
}

// Nil order is the identity: the legacy schedule contract.
func TestScheduleIdentityOrder(t *testing.T) {
	for name, pool := range schedPools(t) {
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			var started []int
			results, wait := schedule(pool, 1, 5, func(i int) int {
				mu.Lock()
				started = append(started, i)
				mu.Unlock()
				return i
			})
			wait()
			if !reflect.DeepEqual(started, []int{0, 1, 2, 3, 4}) {
				t.Errorf("start order = %v, want identity", started)
			}
			for i := 0; i < 5; i++ {
				if got := <-results[i]; got != i {
					t.Errorf("results[%d] = %d, want %d", i, got, i)
				}
			}
		})
	}
}

// Every job must deliver exactly once even when the scan is wider than
// the job list or bounded below it — including when the scan width
// exceeds the resident pool's own worker count (jobs then queue on the
// pool but still all complete).
func TestScheduleDeliversAllJobs(t *testing.T) {
	for name, pool := range schedPools(t) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{0, 1, 2, 7, 100} {
				results, wait := schedule(pool, workers, 7, func(i int) int { return i + 1 })
				wait()
				for i := 0; i < 7; i++ {
					if got := <-results[i]; got != i+1 {
						t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, got, i+1)
					}
				}
			}
		})
	}
}

func TestLargestFirstOrder(t *testing.T) {
	parts := []partition{{size: 5}, {size: 9}, {size: 5}, {size: 20}, {size: 1}}
	want := []int{3, 1, 0, 2, 4} // ties (indices 0 and 2) keep index order
	if got := largestFirst(parts); !reflect.DeepEqual(got, want) {
		t.Errorf("largestFirst = %v, want %v", got, want)
	}
	if got := largestFirst(nil); len(got) != 0 {
		t.Errorf("largestFirst(nil) = %v, want empty", got)
	}
}

func TestPartitionSizeFloorsDegenerateFactors(t *testing.T) {
	if got := partitionSize(0, 0, 0); got != 1 {
		t.Errorf("partitionSize(0,0,0) = %d, want 1", got)
	}
	if got := partitionSize(10, 3, 2); got != 60 {
		t.Errorf("partitionSize(10,3,2) = %d, want 60", got)
	}
	// An orphan-only partition (no candidates) still ranks below a real
	// one over the same rows.
	if partitionSize(10, 0, 1) >= partitionSize(10, 2, 1) {
		t.Error("degenerate partition does not rank below a populated one")
	}
}

// planPartitions must stamp every partition with a positive size
// estimate consistent with the rows × candidates × complaints formula.
func TestPlanPartitionsSizes(t *testing.T) {
	d0, dirty, _, complaints := clusterWorkload(t, 3, 4)
	parts := planFor(t, d0, dirty, complaints, nil)
	if len(parts) != 3 {
		t.Fatalf("planned %d partitions, want 3", len(parts))
	}
	rows := d0.Len() // the cluster workload neither inserts nor deletes
	for i, p := range parts {
		want := partitionSize(rows, len(p.candidates), len(p.complaintIdx))
		if p.size != want || p.size <= 0 {
			t.Errorf("partition %d: size = %d, want %d (>0)", i, p.size, want)
		}
	}
}
