package core

import "sync"

// schedule fans jobs 0..n-1 out over a pool of at most workers
// concurrent goroutines. It is the shared scheduler behind both solve
// scans: the incremental batch scan (parallel.go) and the partition
// scan (partition.go).
//
// Every job gets its own 1-buffered result channel, so the consumer can
// adjudicate results in submission order while later jobs are still
// running — the property both scans rely on for determinism: whichever
// job finishes first, the *choice* among results is made in a fixed
// order. Jobs that want to short-circuit after a decision (e.g. batches
// older than an accepted repair) check their own cancellation flag
// inside job; the scheduler itself never drops a slot.
//
// wait blocks until every job has delivered its result.
func schedule[R any](workers, n int, job func(i int) R) (results []chan R, wait func()) {
	if workers < 1 {
		workers = 1
	}
	results = make([]chan R, n)
	for i := range results {
		results[i] = make(chan R, 1)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] <- job(i)
		}(i)
	}
	return results, wg.Wait
}
