package core

import "repro/internal/sched"

// schedule fans jobs 0..n-1 out over a pool of at most workers
// concurrent goroutines, starting them in index order. It is the shared
// scheduler behind both solve scans: the incremental batch scan
// (parallel.go) and the partition scan (partition.go). The machinery
// lives in internal/sched (a leaf package) so the milp parallel
// branch-and-bound can share it without an import cycle.
//
// With Options.Scheduler set (resident services: internal/qfixd), the
// jobs run on that long-lived shared pool instead of fresh goroutines,
// `workers` then bounding this scan's share of the pool; the
// determinism contract (adjudication in submission order via per-job
// 1-buffered channels) is identical either way, so the chosen repair
// does not depend on which mode ran the scan.
func schedule[R any](p *sched.Pool, workers, n int, job func(i int) R) (results []chan R, wait func()) {
	return scheduleOrder(p, workers, n, nil, job)
}

// scheduleOrder is schedule with an explicit start order; see
// sched.ScheduleOrder for the determinism contract.
func scheduleOrder[R any](p *sched.Pool, workers, n int, order []int, job func(i int) R) (results []chan R, wait func()) {
	if p != nil {
		return sched.OnPool(p, workers, n, order, job)
	}
	return sched.ScheduleOrder(workers, n, order, job)
}
