package core

import "repro/internal/sched"

// schedule fans jobs 0..n-1 out over a pool of at most workers
// concurrent goroutines, starting them in index order. It is the shared
// scheduler behind both solve scans: the incremental batch scan
// (parallel.go) and the partition scan (partition.go). The machinery
// lives in internal/sched (a leaf package) so the milp parallel
// branch-and-bound can share it without an import cycle.
func schedule[R any](workers, n int, job func(i int) R) (results []chan R, wait func()) {
	return sched.Schedule(workers, n, job)
}

// scheduleOrder is schedule with an explicit start order; see
// sched.ScheduleOrder for the determinism contract.
func scheduleOrder[R any](workers, n int, order []int, job func(i int) R) (results []chan R, wait func()) {
	return sched.ScheduleOrder(workers, n, order, job)
}
