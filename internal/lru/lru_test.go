package lru

import "testing"

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	m := New[int, string](2)
	m.Put(1, "a")
	m.Put(2, "b")
	if _, ok := m.Get(1); !ok { // touch 1 so 2 becomes the victim
		t.Fatal("entry 1 missing")
	}
	m.Put(3, "c")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if _, ok := m.Get(2); ok {
		t.Error("LRU entry survived eviction")
	}
	if v, ok := m.Get(1); !ok || v != "a" {
		t.Errorf("recently used entry lost: %q %v", v, ok)
	}
	if v, ok := m.Get(3); !ok || v != "c" {
		t.Errorf("newest entry lost: %q %v", v, ok)
	}
}

func TestPutOverwritesInPlace(t *testing.T) {
	m := New[string, int](1)
	m.Put("k", 1)
	m.Put("k", 2)
	if v, _ := m.Get("k"); v != 2 || m.Len() != 1 {
		t.Errorf("overwrite: v=%d len=%d", v, m.Len())
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New[int, int](0)
}
