// Package lru provides the tiny least-recently-used map shared by the
// caches in this repository (the impact cache in internal/core, the
// worker decode cache in internal/dist). It is deliberately minimal: a
// map plus a recency tick and a linear victim scan — right for the
// single-digit-to-dozens entry counts those caches hold, with no
// intrusive list to maintain.
//
// A Map is NOT safe for concurrent use; callers hold their own lock
// (both existing callers already serialize access for semantics beyond
// the map itself).
package lru

// Map is a bounded map evicting the least recently used entry.
type Map[K comparable, V any] struct {
	max     int
	tick    int64
	entries map[K]*entry[V]
}

type entry[V any] struct {
	val  V
	used int64
}

// New returns a map bounded to max entries (max must be positive).
func New[K comparable, V any](max int) *Map[K, V] {
	if max <= 0 {
		panic("lru: non-positive capacity")
	}
	return &Map[K, V]{max: max, entries: make(map[K]*entry[V])}
}

// Get returns the value under k and marks it recently used.
func (m *Map[K, V]) Get(k K) (V, bool) {
	if e, ok := m.entries[k]; ok {
		m.tick++
		e.used = m.tick
		return e.val, true
	}
	var zero V
	return zero, false
}

// Put stores v under k (marking it recently used), evicting the least
// recently used entry if the map is at capacity.
func (m *Map[K, V]) Put(k K, v V) {
	m.tick++
	if e, ok := m.entries[k]; ok {
		e.val, e.used = v, m.tick
		return
	}
	if len(m.entries) >= m.max {
		var victim K
		oldest := int64(1<<63 - 1)
		for key, e := range m.entries {
			if e.used < oldest {
				oldest, victim = e.used, key
			}
		}
		delete(m.entries, victim)
	}
	m.entries[k] = &entry[V]{val: v, used: m.tick}
}

// Len reports the number of entries.
func (m *Map[K, V]) Len() int { return len(m.entries) }
