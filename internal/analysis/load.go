package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages without golang.org/x/tools: package and
// dependency discovery comes from `go list -export -json`, and imports
// are satisfied from the compiler's export data in the build cache via
// the stdlib gc importer. Everything works offline and from source.
type Loader struct {
	Dir  string // directory to resolve patterns in (module root or below)
	fset *token.FileSet
	imp  types.Importer
	// exports maps import paths to export-data files harvested from go
	// list; grown across calls so analysistest fixtures can resolve
	// both std and module imports.
	exports map[string]string
	// importMap canonicalizes source-level import paths first (the go
	// vet driver supplies one per compilation unit).
	importMap map[string]string
	// checked caches packages this loader already type-checked from
	// source, keyed by import path. Imports resolve here before falling
	// back to export data, which both keeps one loader's view of a
	// package consistent and lets analysistest fixtures import each
	// other under scoped import paths (the cross-package fact tests).
	checked map[string]*types.Package
}

// NewLoader returns a loader resolving package patterns relative to dir.
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		checked: map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := l.importMap[path]; ok {
			path = canon
		}
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// Import satisfies types.Importer: source-checked packages first, then
// the gc export data harvested from go list. The loader itself is the
// types.Config importer, so every Check in its lifetime shares one view.
func (l *Loader) Import(path string) (*types.Package, error) {
	canon := path
	if c, ok := l.importMap[path]; ok {
		canon = c
	}
	if pkg, ok := l.checked[canon]; ok {
		return pkg, nil
	}
	return l.imp.Import(path)
}

// SetExports installs an externally supplied import resolution — the go
// vet driver's ImportMap and PackageFile tables — instead of harvesting
// one from go list.
func (l *Loader) SetExports(importMap, packageFile map[string]string) {
	l.importMap = importMap
	for path, file := range packageFile {
		l.exports[path] = file
	}
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// golist runs `go list -export -json -deps` over the given patterns and
// folds every export-data file it reports into the loader's import
// resolution map, returning the listed packages.
func (l *Loader) golist(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses, and type-checks every non-test package matching
// the patterns (e.g. "./..."), skipping standard-library dependencies:
// those are import targets, not analysis targets.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.golist(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.Check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the .go files directly inside dir as a
// single package under the given import path. It is the analysistest
// entry point: fixture directories live under testdata (invisible to
// go list patterns), so their imports are listed explicitly here to
// pull in export data before checking.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	asts, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	var imports []string
	for _, f := range asts {
		for _, im := range f.Imports {
			imports = append(imports, strings.Trim(im.Path.Value, `"`))
		}
	}
	if len(imports) > 0 {
		if _, err := l.golist(imports...); err != nil {
			return nil, err
		}
	}
	return l.check(importPath, dir, files, asts)
}

// Check parses files and type-checks them as the package at importPath.
func (l *Loader) Check(importPath, dir string, files []string) (*Package, error) {
	asts, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	return l.check(importPath, dir, files, asts)
}

func (l *Loader) parse(files []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return asts, nil
}

func (l *Loader) check(importPath, dir string, files []string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, errors.Join(errs...))
	}
	l.checked[importPath] = tpkg
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}
