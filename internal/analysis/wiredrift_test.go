package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWireDrift(t *testing.T) {
	analysistest.Run(t, "testdata/wiredrift", analysis.WireDrift, "repro/internal/dist")
}

// TestWireDriftMissingLock pins the bootstrap report: wire structs with
// no committed golden at all are themselves a finding.
func TestWireDriftMissingLock(t *testing.T) {
	dir := copyFixture(t, "testdata/wiredrift", func(name string) bool {
		return name == analysis.WireLockFile
	})
	diags := runWireDrift(t, dir)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no wire.lock golden") {
		t.Fatalf("diagnostics with missing lock = %v, want exactly the no-golden report", diags)
	}
}

// TestWireDriftRegenIsClean is the mutation test's other direction:
// regenerating the lock from the drifted fixture restores a clean run
// (modulo the directives the regeneration makes stale).
func TestWireDriftRegenIsClean(t *testing.T) {
	dir := copyFixture(t, "testdata/wiredrift", nil)
	loader := analysis.NewLoader(".")
	pkg, err := loader.LoadDir(dir, "repro/internal/dist")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analysis.WriteWireLock(pkg); err != nil {
		t.Fatal(err)
	}
	for _, d := range runWireDrift(t, dir) {
		if d.Analyzer == analysis.WireDrift.Name {
			t.Errorf("diagnostic after regeneration: %s", d.String())
		}
	}
}

// TestCommittedWireLocksCurrent fails when a committed wire.lock golden
// is stale against its package — the same gate CI applies by
// regenerating and diffing.
func TestCommittedWireLocksCurrent(t *testing.T) {
	pkgs, err := analysis.NewLoader(".").Load("repro/internal/dist", "repro/internal/qfixd")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, pkg := range pkgs {
		if pkg.Path != "repro/internal/dist" && pkg.Path != "repro/internal/qfixd" {
			continue
		}
		checked++
		want, ok := analysis.FormatWireLock(pkg)
		if !ok {
			t.Errorf("%s: no wire structs extracted", pkg.Path)
			continue
		}
		got, err := os.ReadFile(filepath.Join(pkg.Dir, analysis.WireLockFile))
		if err != nil {
			t.Errorf("%s: %v", pkg.Path, err)
			continue
		}
		if string(got) != want {
			t.Errorf("%s: committed %s is stale; regenerate with `go run ./cmd/qfix-vet -write-wire-lock ./...`",
				pkg.Path, analysis.WireLockFile)
		}
	}
	if checked != 2 {
		t.Fatalf("checked %d wire packages, want 2", checked)
	}
}

// runWireDrift runs the analyzer alone over dir as the dist package.
func runWireDrift(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := analysis.NewLoader(".").LoadDir(dir, "repro/internal/dist")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.WireDrift}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Analyzer == analysis.WireDrift.Name {
			out = append(out, d)
		}
	}
	return out
}

// copyFixture clones a fixture directory into a temp dir, skipping
// entries the filter rejects.
func copyFixture(t *testing.T, src string, skip func(name string) bool) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || (skip != nil && skip(e.Name())) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
