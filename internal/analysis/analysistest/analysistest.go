// Package analysistest is the golden-file test driver for the qfix-vet
// analyzers, modeled on x/tools/go/analysis/analysistest: fixture
// packages live under testdata/, and every line that should be flagged
// carries a `// want "regexp"` comment. The driver runs the analyzer
// (through the same suite runner qfix-vet uses, so //qfix: directives
// and unused-directive reporting behave identically) and fails the test
// on any unmatched expectation or unexpected diagnostic.
//
// Fixture directories are plain directories of .go files — testdata is
// invisible to go build and go vet, so fixtures are free to contain the
// violations they exist to pin. Imports (std or module packages such as
// repro/internal/obs) are resolved through the same `go list -export`
// loader the standalone tool uses.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE matches `// want "..."` expectation comments. The quoted text
// is a regular expression matched against "analyzer: message".
var wantRE = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture directory as a package with the given import
// path and checks the produced diagnostics against the fixture's want
// comments. The import path matters: analyzers scoped to solver
// packages only fire when it matches, which lets fixtures assert both
// in-scope findings and out-of-scope silence.
func Run(t *testing.T, dir string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	RunSuite(t, dir, []*analysis.Analyzer{a}, importPath)
}

// RunSuite is Run with several analyzers sharing the package walk, the
// directive index, and the unused-directive check — exactly how the
// qfix-vet binary drives them.
func RunSuite(t *testing.T, dir string, analyzers []*analysis.Analyzer, importPath string) {
	t.Helper()
	RunDirs(t, analyzers, Dir{Path: dir, ImportPath: importPath})
}

// A Dir names one fixture directory and the import path to check it
// under.
type Dir struct {
	Path       string
	ImportPath string
}

// RunDirs analyzes several fixture directories in order through one
// shared loader and fact store — the multi-package analogue of
// RunSuite, for fixtures that exercise cross-package facts. Earlier
// directories play the dependency role (their checked types and
// exported facts are visible to later ones), and every directory's
// want expectations are checked.
func RunDirs(t *testing.T, analyzers []*analysis.Analyzer, dirs ...Dir) {
	t.Helper()
	loader := analysis.NewLoader(".")
	facts := analysis.NewFactStore()
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d.Path, d.ImportPath)
		if err != nil {
			t.Fatalf("loading %s: %v", d.Path, err)
		}
		diags, err := analysis.Run(pkg, analyzers, facts)
		if err != nil {
			t.Fatalf("running suite on %s: %v", d.Path, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// checkExpectations matches diagnostics against the fixture's want
// comments in both directions.
func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	expects := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.file == d.Pos.Filename && e.line == d.Pos.Line &&
				e.re.MatchString(d.Analyzer+": "+d.Message) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants harvests the `// want "re"` expectations from the
// fixture's comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				quoted := m[1]
				text, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", pkg.Fset.Position(c.Slash), quoted, err)
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Slash), text, err)
				}
				pos := pkg.Fset.Position(c.Slash)
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// Describe renders a position set for failure messages (kept exported
// for ad-hoc debugging of new fixtures).
func Describe(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s\n", d.String())
	}
	return b.String()
}
