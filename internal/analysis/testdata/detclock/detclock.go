// Fixture for the detclock analyzer: wall-clock and randomness calls
// inside the deterministic solver scope (flagged), caller-provided
// time values (silent), and the directive escape hatch.
package fixture

import (
	"math/rand"
	"time"
)

// budgetDeadline reads the wall clock inside the solver.
func budgetDeadline(limit time.Duration) time.Time {
	return time.Now().Add(limit) // want "wall-clock use time.Now"
}

// elapsed measures with the wall clock.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock use time.Since"
}

// jitter injects randomness into a solver choice.
func jitter(n int) int {
	return rand.Intn(n) // want "randomness rand.Intn"
}

// formatStamp only formats a caller-provided time: silent.
func formatStamp(t time.Time) string {
	return t.Format(time.RFC3339)
}

// allowlisted carries the contract on the directive.
func allowlisted(limit time.Duration) time.Time {
	//qfix:det-ok fixture: the TimeLimit contract sanctions this clock
	return time.Now().Add(limit)
}
