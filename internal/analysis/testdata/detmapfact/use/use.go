// Consumer half of the interprocedural detmap fixture. Loaded under a
// fact-consuming (not range-scoped) import path: local map ranges are
// not checked here, but calls to fact-carrying functions from the src
// fixture are flagged unless the result is sorted or discarded.
package fixture

import (
	"sort"

	"repro/internal/encode"
)

// unsortedUse lets an order-dependent result flow onward: flagged.
func unsortedUse(m map[string]int) string {
	keys := encode.Leaky(m) // want "map-iteration-order dependent"
	return keys[0]
}

// sortedUse sorts the result in the following statement.
func sortedUse(m map[string]int) string {
	keys := encode.Leaky(m)
	sort.Strings(keys)
	return keys[0]
}

// inlineSorted feeds the result straight into a sort call.
func inlineSorted(m map[string]int) {
	sort.Strings(encode.Leaky(m))
}

// discarded never uses the result.
func discarded(m map[string]int) {
	encode.Leaky(m)
}

// cleanUse calls a function with no fact.
func cleanUse(m map[string]int) []string {
	return encode.Clean(m)
}

// vouchedUse: the callee's directive withheld the fact, so this call
// site needs no annotation of its own.
func vouchedUse(m map[string]int) []string {
	return encode.Vouched(m)
}

// methodUse resolves the method fact key across the package boundary.
func methodUse(m map[int]int) []int {
	var e encode.Enc
	return e.Leak(m) // want "map-iteration-order dependent"
}

// suppressedUse carries its own reasoning at the consumption site.
func suppressedUse(m map[string]int) []string {
	//qfix:det-ok fixture: result feeds an unordered membership set
	return encode.Leaky(m)
}
