// Fact-exporting half of the interprocedural detmap fixture. Loaded
// under a range-scoped import path: unsorted map ranges are flagged
// here, and functions returning data written under one export an
// order-dependent fact for consumer packages. Named encode (not the
// usual fixture) so the consumer fixture's import binds that name.
package encode

import "sort"

// Leaky returns keys collected under an unsorted map range: flagged
// here and exported as an order-dependent fact.
func Leaky(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

// Clean sorts before returning: no flag, no fact.
func Clean(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Vouched carries a reasoned directive: suppressed here, and the
// suppression also withholds the fact so callers stay quiet.
func Vouched(m map[string]int) []string {
	var keys []string
	//qfix:det-ok fixture: callers use the result as an unordered set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

type Enc struct{}

// Leak is the method variant: its fact is keyed "Enc.Leak".
func (Enc) Leak(m map[int]int) []int {
	var out []int
	for k := range m { // want "range over map"
		out = append(out, k)
	}
	return out
}
