// Fixture for the //qfix: directive machinery, run under the full
// suite: suppression on the same line and the line above, the unused-
// directive report, and the eligibility rule (directives owned by
// analyzers that did not run on this package are not "unused").
package fixture

import "time"

// suppressedAbove: directive on the line above the finding.
func suppressedAbove(m map[int]int) int {
	last := 0
	//qfix:det-ok fixture: order deliberately immaterial here
	for _, v := range m {
		last = v
	}
	return last
}

// suppressedSameLine: directive rides the flagged line itself.
func suppressedSameLine(limit time.Duration) time.Time {
	return time.Now().Add(limit) //qfix:det-ok fixture: sanctioned wall clock
}

// unusedDirective annotates a slice range nothing would ever flag.
func unusedDirective(xs []int) int {
	total := 0
	//qfix:det-ok fixture: nothing here needs it // want "unused //qfix:det-ok directive"
	for _, v := range xs {
		total += v
	}
	return total
}

// foreignDirective is owned by ctxloop, which is not scoped to this
// package: it is exempt from the unused check rather than noise.
func foreignDirective(ch chan int) int {
	n := 0
	//qfix:ctx-ok fixture: ctxloop does not run on solver packages
	for range ch {
		n++
	}
	return n
}
