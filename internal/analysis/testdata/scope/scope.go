// Fixture for the package-scope filter: the same last-writer map
// range detmap flags in solver packages stays silent when the package
// is outside every determinism scope.
package fixture

func lastWriter(m map[int]int) int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}
