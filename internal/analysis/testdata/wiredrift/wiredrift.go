// Fixture for the wiredrift analyzer, paired with a wire.lock golden
// that is deliberately out of sync with these structs. Struct removals
// anchor on the package's first wire struct (Aaa); field drift anchors
// on the struct or field that drifted.
package fixture

// Aaa matches its lock entry; it only hosts the removed-struct report.
type Aaa struct { // want "wire struct Gone was removed"
	A int `json:"a"`
}

// Drift concentrates the field-level breaks.
type Drift struct { // want "removed or renamed"
	Renamed string `json:"renamed,omitempty"` // the rename's addition half: omitempty, so it passes
	Count   int64  `json:"count"`             // want "changed type int -> int64"
	Flag    bool   `json:"flag"`              // want "changed omitempty -> always-present"
	Extra   string `json:"extra"`             // want "must be omitempty"
	Keep    string `json:"keep"`
}

// Vetted carries an intentional, annotated type bump.
type Vetted struct {
	Old int64 `json:"old"` //qfix:wire-ok v2 widened Old; all peers ship the v2 decoder
}

// Clean is a new struct: not locked, nothing to diff — so its stale
// directive is itself reported.
type Clean struct {
	F int `json:"f,omitempty"` //qfix:wire-ok stale // want "unused //qfix:wire-ok directive"
}
