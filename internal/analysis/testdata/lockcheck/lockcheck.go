// Fixture for the lockcheck analyzer: accesses to //qfix:guarded-by
// annotated fields with the named mutex held (silent) next to the
// violations the dominance walk must catch. Loaded under an in-scope
// import path.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //qfix:guarded-by mu
}

// good holds the lock across the write.
func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferred: defer mu.Unlock() holds the lock to function exit.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want "read c.n without holding mu"
}

func (c *counter) badWrite() {
	c.n = 1 // want "write to c.n without holding mu"
}

// unlockEnds: the hold stops at Unlock, later accesses are bare.
func (c *counter) unlockEnds() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want "write to c.n without holding mu"
}

// joined: a lock taken on only one branch is not held after the join.
func (c *counter) joined(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "write to c.n without holding mu"
	if b {
		c.mu.Unlock()
	}
}

// closure: function literals are analyzed lock-free — they may run on
// another goroutine or after the caller unlocked.
func (c *counter) closure() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want "write to c.n without holding mu"
	}
}

// newCounter: construction-time writes before publication carry the
// reasoning as a directive.
func newCounter() *counter {
	c := &counter{}
	//qfix:lock-ok c is unpublished until return
	c.n = 1
	return c
}

// fine is properly locked, so the stale directive itself is reported.
func (c *counter) fine() {
	c.mu.Lock()
	//qfix:lock-ok stale reason // want "unused //qfix:lock-ok directive"
	c.n = 2
	c.mu.Unlock()
}

type table struct {
	mu   sync.RWMutex
	rows []int //qfix:guarded-by mu
}

// readShared: RLock suffices for reads of an RWMutex-guarded field.
func (t *table) readShared() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// writeShared: writes always need the exclusive lock.
func (t *table) writeShared() {
	t.mu.RLock()
	t.rows = nil // want "write to t.rows without holding mu"
	t.mu.RUnlock()
}

// clearLocked: methods named *Locked are assumed entered with every
// annotated mutex of their receiver held.
func (t *table) clearLocked() {
	t.rows = t.rows[:0]
}

func getTable() *table { return nil }

// unresolvable receivers (call results) cannot carry a lock identity.
func unresolvable() int {
	return len(getTable().rows) // want "cannot prove"
}

// orphan's annotation names a field that is not a sync mutex.
type orphan struct {
	lock string
	data int //qfix:guarded-by lock // want "no sync.Mutex or sync.RWMutex field named"
}
