// Fixture for the detmap analyzer: map ranges whose visit order can
// reach output (flagged) next to the recognized order-insensitive
// shapes (silent). Loaded under a solver import path so the scope
// filter admits the analyzer.
package fixture

import "sort"

// collectThenSort is the blessed shape: append inside, sort after.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectNoSort appends but never sorts: iteration order leaks into
// the returned slice.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

// accumulate only counts and integer-sums: commutative, silent.
func accumulate(m map[int]int) (int, int) {
	n, total := 0, 0
	for _, v := range m {
		n++
		total += v
	}
	return n, total
}

// floatSum accumulates floats: addition order changes the low bits,
// so the "commutative accumulation" shape does not apply.
func floatSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map"
		s += v
	}
	return s
}

// keyedWrites only touch the ranged key's own element of another
// container: distinct keys keep iterations independent.
func keyedWrites(m map[int]float64, cols [][]float64, dead map[int]bool) {
	for k, v := range m {
		if v != 0 {
			cols[k] = append(cols[k], v)
		}
		delete(dead, k)
	}
}

// localTemp binds an iteration-local temporary before accumulating.
func localTemp(m map[int]int) int {
	total := 0
	for k, v := range m {
		w := k * v
		total += w
	}
	return total
}

// lastWriter keeps whichever value the iterator happens to visit last.
func lastWriter(m map[int]int) int {
	last := 0
	for _, v := range m { // want "range over map"
		last = v
	}
	return last
}

// constantFlag writes a single constant: idempotent, hence silent.
func constantFlag(m map[int]bool, probe int) bool {
	found := false
	for k := range m {
		if k == probe {
			found = true
		}
	}
	return found
}

// conflictingConstants is last-writer-wins between two constants.
func conflictingConstants(m map[int]bool) int {
	cls := 0
	for k := range m { // want "range over map"
		if k >= 0 {
			cls = 1
		} else {
			cls = 2
		}
	}
	return cls
}

// loopCarried reads a value the loop itself wrote: even though max is
// mathematically order-free, the analyzer stays conservative because
// the guard depends on earlier iterations.
func loopCarried(m map[int]int) int {
	best := 0
	for _, v := range m { // want "range over map"
		if v > best {
			best = v
		}
	}
	return best
}

// allowlisted documents the directive form: the reason rides on the
// comment, the report is suppressed, and the directive counts as used.
func allowlisted(m map[int]int) int {
	last := 0
	//qfix:det-ok fixture: last-writer result is discarded by the caller
	for _, v := range m {
		last = v
	}
	return last
}
