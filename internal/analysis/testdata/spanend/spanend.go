// Fixture for the spanend analyzer: obs span Start calls whose End
// obligation is dropped, discharged, or handed off. Imports the real
// obs package so the receiver-type detection runs against the same
// types the production code uses.
package fixture

import (
	"errors"

	"repro/internal/obs"
)

var errFixture = errors.New("fixture")

// dropped discards the child span handle: it can never End.
func dropped(tr *obs.Span) {
	tr.Start("phase") // want "immediately dropped"
}

// blanked assigns the handle to _: same hole, different spelling.
func blanked(tr *obs.Span) {
	_ = tr.Start("phase") // want "assigned to _"
}

// chained Ends inline: fine.
func chained(tr *obs.Span) {
	tr.Start("blip").End()
}

// deferred is the canonical pairing: silent.
func deferred(tr *obs.Span, work func()) {
	sp := tr.Start("phase")
	defer sp.End()
	work()
}

// straightLine Ends on the only path out: silent.
func straightLine(tr *obs.Span, work func()) {
	sp := tr.Start("phase")
	work()
	sp.End()
}

// earlyReturn leaks the span on the failure path.
func earlyReturn(tr *obs.Span, fail bool) error {
	sp := tr.Start("phase") // want "not ended on every path"
	if fail {
		return errFixture
	}
	sp.End()
	return nil
}

// branchesEnd closes the span on both exits: silent.
func branchesEnd(tr *obs.Span, fail bool) error {
	sp := tr.Start("phase")
	if fail {
		sp.End()
		return errFixture
	}
	sp.End()
	return nil
}

// neverEnded opens a span, decorates it, and falls off the end.
func neverEnded(tr *obs.Span) {
	sp := tr.Start("phase") // want "not ended on every path"
	sp.SetAttr("k", 1)
}

// loopLeak breaks out of the iteration with the span still open.
func loopLeak(tr *obs.Span, items []int) {
	for _, it := range items {
		sp := tr.Start("item") // want "not ended on every path"
		if it < 0 {
			break
		}
		sp.End()
	}
}

// loopClean Ends on both iteration exits: silent.
func loopClean(tr *obs.Span, items []int) {
	for _, it := range items {
		sp := tr.Start("item")
		if it < 0 {
			sp.End()
			break
		}
		sp.End()
	}
}

// handoff returns the handle: ownership escapes to the caller, silent.
func handoff(tr *obs.Span) *obs.Span {
	return tr.Start("child")
}

// aliasedReturn escapes through a variable: still the caller's
// problem, silent.
func aliasedReturn(tr *obs.Span) *obs.Span {
	sp := tr.Start("child")
	sp.SetAttr("k", 1)
	return sp
}

// allowlisted hands the span to a helper that Ends it — real pairing,
// beyond the walker, documented by the directive.
func allowlisted(tr *obs.Span, work func()) {
	//qfix:span-ok fixture: finish ends the span for us
	sp := tr.Start("phase")
	work()
	finish(sp)
}

func finish(sp *obs.Span) {
	sp.End()
}
