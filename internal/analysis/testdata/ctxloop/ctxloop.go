// Fixture for the ctxloop analyzer: blocking loops, goroutines, and
// channel operations that never consult a context (flagged) next to
// ctx-aware and non-blocking shapes (silent).
package fixture

import "context"

// drainDeaf blocks receiving with no cancellation story in sight.
func drainDeaf(ch chan int) int {
	total := 0
	for v := range ch { // want "loop blocks on channel operations"
		total += v
	}
	return total
}

// sendDeaf blocks sending with no cancellation story.
func sendDeaf(ch chan int, n int) {
	for i := 0; i < n; i++ { // want "loop blocks on channel operations"
		ch <- i
	}
}

// drainAware selects on ctx.Done: silent.
func drainAware(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// spinDeaf can spin past cancellation forever.
func spinDeaf(done *bool) {
	for { // want "unconditional loop never consults"
		if *done {
			return
		}
	}
}

// spinAware polls ctx.Err: silent.
func spinAware(ctx context.Context, step func() bool) {
	for {
		if ctx.Err() != nil || step() {
			return
		}
	}
}

// fireDeaf parks a goroutine on the send forever if nobody receives.
func fireDeaf(ch chan int) {
	go func() { // want "goroutine blocks on channel operations"
		ch <- 1
	}()
}

// fireAware gives the send an escape hatch: silent.
func fireAware(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// pollNonBlocking uses a default clause: nothing blocks, silent.
func pollNonBlocking(ch chan int, tries int) {
	for i := 0; i < tries; i++ {
		select {
		case ch <- i:
		default:
		}
	}
}

// allowlisted documents the directive: the cancellation story lives in
// the producer's close, not in a select at this site.
func allowlisted(ch chan int) int {
	n := 0
	//qfix:ctx-ok fixture: producer closes ch, so the drain terminates
	for range ch {
		n++
	}
	return n
}
