// Fixture for the goleak analyzer: goroutines with a provable
// termination path (silent) next to the leaks. Loaded under a
// long-lived daemon import path so the scope filter admits the
// analyzer.
package fixture

import (
	"context"
	"sync"
)

// leakyLoop: unconditional loop, no ctx, no join, no close-owned range.
func leakyLoop(ch chan int) {
	go func() { // want "no provable termination path: an unconditional loop"
		for {
			<-ch
		}
	}()
}

// condBlocking: the loop is conditional but blocks on channel receives.
func condBlocking(ch chan int, stop *bool) {
	go func() { // want "no provable termination path: a loop blocking on channel operations"
		for !*stop {
			<-ch
		}
	}()
}

// ctxLoop: a context at the body's own level is the exit path.
func ctxLoop(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// wgLoop: a WaitGroup.Done participates in a join the closer waits on.
func wgLoop(wg *sync.WaitGroup, ch chan int) {
	go func() {
		defer wg.Done()
		for {
			if _, ok := <-ch; !ok {
				return
			}
		}
	}()
}

// closeOwned: range over a channel ends when the owner closes it.
func closeOwned(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// bounded: no suspect loop at all.
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			_ = i
		}
	}()
}

type pump struct{ ch chan int }

func (p *pump) run() {
	for {
		<-p.ch
	}
}

// start: named callees resolve to their declared bodies.
func (p *pump) start() {
	go p.run() // want "no provable termination path: an unconditional loop"
}

// suppressed: the lifecycle story rides a directive.
func suppressed(ch chan int) {
	//qfix:leak-ok reader exits when the conn owner closes ch
	go func() {
		for {
			<-ch
		}
	}()
}

// fine terminates on its own, so the stale directive is reported.
func fine(ch chan int) {
	//qfix:leak-ok stale story // want "unused //qfix:leak-ok directive"
	go func() {
		for range ch {
		}
	}()
}
