package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDetClock(t *testing.T) {
	analysistest.Run(t, "testdata/detclock", analysis.DetClock, "repro/internal/milp")
}
