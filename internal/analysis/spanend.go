package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanEnd protects the obs.WellNested invariant the trace exporters
// depend on: every Trace.Start / Span.Start must be paired with a
// guaranteed End on every path out of the span's scope. The analyzer
// tracks the span handle returned by Start:
//
//   - a dropped result (`tr.Start("x")` as a statement) can never End
//     and is always reported;
//   - `defer sp.End()` (directly or inside a deferred closure)
//     discharges the obligation;
//   - a handle that escapes the function — returned, stored in a
//     struct, slice, or channel, aliased to another variable, or
//     captured by a non-deferred closure — transfers ownership, and the
//     analyzer stays silent;
//   - otherwise a conservative path walk over the declaring block must
//     see an End on every exit (fallthrough, return, and — for spans
//     started inside a loop body — break/continue).
//
// All findings for a span are reported at its Start call, so one
// //qfix:span-ok directive covers the whole obligation when the pairing
// is real but beyond the walker (e.g. a helper that Ends for you).
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "flag obs span Start calls without a guaranteed End on every return path " +
		"(defer or a dominating call), which would break trace well-nesting",
	Directive: "span-ok",
	Run:       runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				spanEndFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// spanEndFunc checks the Start calls directly inside one function body
// (nested function literals get their own visit).
func spanEndFunc(pass *Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			return false
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok && isSpanStart(pass, call) {
			checkStart(pass, call, stack, body)
		}
		return true
	})
}

// isSpanStart reports whether call is a Start method call on an
// obs.Trace or obs.Span receiver.
func isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	return isObsHandle(selection.Recv())
}

func isObsHandle(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	name := obj.Name()
	return (name == "Span" || name == "Trace") && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// checkStart classifies one Start call by how its result is consumed
// and reports when the End obligation cannot be discharged. stack holds
// the path from the function body down to the call itself.
func checkStart(pass *Pass, call *ast.CallExpr, stack []ast.Node, funcBody *ast.BlockStmt) {
	parent := parentOf(stack, 1)
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "span started here is immediately dropped and can never End")
	case *ast.SelectorExpr:
		// Chained call like tr.Start("x").End(): fine.
	case *ast.AssignStmt:
		var lhs ast.Expr
		for i, r := range p.Rhs {
			if r == call && i < len(p.Lhs) {
				lhs = p.Lhs[i]
			}
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // stored straight into a field/slice: ownership escapes
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span started here is assigned to _ and can never End")
			return
		}
		obj := identObj(pass, id)
		if obj == nil {
			return
		}
		checkSpanVar(pass, call, id.Name, obj, p, stack, funcBody)
	default:
		// Used as a call argument, return value, composite element, …:
		// ownership escapes to the consumer.
	}
}

func parentOf(stack []ast.Node, up int) ast.Node {
	if len(stack) <= up {
		return nil
	}
	return stack[len(stack)-1-up]
}

// checkSpanVar enforces the End obligation for a span bound to a local
// variable.
func checkSpanVar(pass *Pass, call *ast.CallExpr, name string, obj types.Object, assign *ast.AssignStmt, stack []ast.Node, funcBody *ast.BlockStmt) {
	if deferEnds(pass, funcBody, obj) {
		return
	}
	if spanEscapes(pass, funcBody, obj, assign) {
		return
	}
	// Locate the statement list the assignment lives in; the span's
	// scope — and hence its exits — is that block.
	block, idx, loopScoped := declBlock(stack, assign)
	if block == nil || assign.Tok == token.ASSIGN {
		// Assigned into a variable declared elsewhere (or a non-block
		// position like an if-init): settle for any End call at all.
		if !anyEndCall(pass, funcBody, obj) {
			pass.Reportf(call.Pos(), "span %s is never ended; every Start needs a guaranteed End (defer %s.End())", name, name)
		}
		return
	}
	w := &spanWalker{pass: pass, obj: obj, loopScoped: loopScoped}
	st, terminated := w.evalList(block.List[idx+1:], spanOpen)
	if !terminated && st == spanOpen {
		if loopScoped {
			w.leaks++
		} else if block == funcBody {
			w.leaks++ // falls off the end of the function still open
		} else {
			// Fell out of a nested block with the variable dying open.
			w.leaks++
		}
	}
	if w.leaks > 0 {
		pass.Reportf(call.Pos(), "span %s is not ended on every path out of its scope; use defer %s.End() or End it before each exit", name, name)
	}
}

// declBlock walks the stack from the assignment outward to its
// enclosing block, noting whether a loop intervenes before the
// function body (span scoped to a loop iteration).
func declBlock(stack []ast.Node, assign *ast.AssignStmt) (*ast.BlockStmt, int, bool) {
	ai := -1
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == assign {
			ai = i
			break
		}
	}
	if ai <= 0 {
		return nil, 0, false
	}
	block, ok := stack[ai-1].(*ast.BlockStmt)
	if !ok {
		return nil, 0, false
	}
	idx := -1
	for i, st := range block.List {
		if st == assign {
			idx = i
		}
	}
	if idx < 0 {
		return nil, 0, false
	}
	loopScoped := false
	for i := ai - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopScoped = true
		}
	}
	return block, idx, loopScoped
}

// deferEnds reports whether the function defers an End on obj, either
// directly or inside a deferred closure.
func deferEnds(pass *Pass, funcBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCallOn(pass, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && anyEndCall(pass, lit.Body, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isEndCallOn(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	return identObj(pass, sel.X) == obj
}

func anyEndCall(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isEndCallOn(pass, call, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// spanEscapes reports whether the span handle's ownership leaves the
// current function: returned, aliased, stored into a structure, sent on
// a channel, address-taken, or captured by a non-deferred closure.
// Method calls on the handle and nil comparisons are not escapes, and
// passing the handle as a call argument is not either — by convention
// callees start children under it, they don't End their parent.
func spanEscapes(pass *Pass, funcBody *ast.BlockStmt, obj types.Object, def *ast.AssignStmt) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		// A use inside a closure that is not part of a defer hands the
		// handle to code running later (or elsewhere).
		deferred := false
		for i := len(stack) - 2; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.DeferStmt:
				deferred = true
			case *ast.FuncLit:
				if !deferred {
					escaped = true
					return false
				}
			}
		}
		switch p := parentOf(stack, 1).(type) {
		case *ast.SelectorExpr:
			// Receiver of a method call / field access: not an escape.
		case *ast.BinaryExpr:
			// Comparisons (sp != nil): not an escape.
		case *ast.CallExpr:
			// Passed as an argument: the callee nests under it.
		case *ast.AssignStmt:
			onLhs := false
			for _, l := range p.Lhs {
				if l == ast.Expr(id) {
					onLhs = true
				}
			}
			if !onLhs {
				escaped = true // aliased into another variable or location
			}
		default:
			escaped = true
		}
		return true
	})
	return escaped
}

// --- path walk ---------------------------------------------------------

type spanState int

const (
	spanOpen spanState = iota
	spanEnded
)

type spanWalker struct {
	pass       *Pass
	obj        types.Object
	loopScoped bool
	leaks      int
}

// evalList walks a statement list tracking whether the span has been
// ended, counting exits taken while it is still open. The second result
// reports that control cannot fall out of the list.
func (w *spanWalker) evalList(stmts []ast.Stmt, st spanState) (spanState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = w.evalStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *spanWalker) evalStmt(s ast.Stmt, st spanState) (spanState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isEndCallOn(w.pass, call, w.obj) {
				return spanEnded, false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return st, true
			}
		}
		return st, false
	case *ast.DeferStmt:
		if isEndCallOn(w.pass, s.Call, w.obj) {
			return spanEnded, false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && anyEndCall(w.pass, lit.Body, w.obj) {
			return spanEnded, false
		}
		return st, false
	case *ast.ReturnStmt:
		if st == spanOpen {
			ended := false
			for _, r := range s.Results {
				if anyEndCall(w.pass, r, w.obj) {
					ended = true
				}
			}
			if !ended {
				w.leaks++
			}
		}
		return st, true
	case *ast.BranchStmt:
		if (s.Tok == token.BREAK || s.Tok == token.CONTINUE) && w.loopScoped && st == spanOpen {
			w.leaks++
		}
		return st, true
	case *ast.BlockStmt:
		return w.evalList(s.List, st)
	case *ast.LabeledStmt:
		return w.evalStmt(s.Stmt, st)
	case *ast.IfStmt:
		st1, t1 := w.evalList(s.Body.List, st)
		st2, t2 := st, false
		if s.Else != nil {
			st2, t2 = w.evalStmt(s.Else, st)
		}
		switch {
		case t1 && t2:
			return spanEnded, true
		case t1:
			return st2, false
		case t2:
			return st1, false
		default:
			if st1 == spanEnded && st2 == spanEnded {
				return spanEnded, false
			}
			return spanOpen, false
		}
	case *ast.ForStmt:
		// The body may run zero times; evaluate it for leaks on its own
		// returns (loop-local break/continue are not span exits here)
		// but keep the pre-loop state afterwards.
		inner := &spanWalker{pass: w.pass, obj: w.obj, loopScoped: false}
		inner.evalList(s.Body.List, st)
		w.leaks += inner.leaks
		return st, false
	case *ast.RangeStmt:
		inner := &spanWalker{pass: w.pass, obj: w.obj, loopScoped: false}
		inner.evalList(s.Body.List, st)
		w.leaks += inner.leaks
		return st, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.evalCases(s, st)
	default:
		return st, false
	}
}

// evalCases merges the clause bodies of a switch or select: the state
// after is ended only if every clause guarantees it and, for switches,
// a default clause makes the case set exhaustive.
func (w *spanWalker) evalCases(s ast.Stmt, st spanState) (spanState, bool) {
	var clauses []ast.Stmt
	exhaustive := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		exhaustive = true // select always runs exactly one clause
	}
	allEnd, allTerm := true, true
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				exhaustive = true
			}
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		cst, cterm := w.evalList(body, st)
		if !cterm {
			allTerm = false
			if cst != spanEnded {
				allEnd = false
			}
		}
	}
	if len(clauses) == 0 {
		return st, false
	}
	if exhaustive && allTerm {
		return spanEnded, true
	}
	if exhaustive && allEnd {
		return spanEnded, false
	}
	return st, false
}
