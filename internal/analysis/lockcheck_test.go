package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata/lockcheck", analysis.LockCheck, "repro/internal/histstore")
}

// TestLockCheckScope pins the package filter: the same unguarded
// accesses stay silent outside the concurrency-heavy scope (and with
// the analyzer skipped, its directives are not "unused" either).
func TestLockCheckScope(t *testing.T) {
	pkg, err := analysis.NewLoader(".").LoadDir("testdata/lockcheck", "repro/internal/query")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.LockCheck}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package produced diagnostic: %s", d.String())
	}
}
