package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// WireLockFile is the per-package golden's filename.
const WireLockFile = "wire.lock"

// WireDrift turns wire-protocol compatibility into a build-time
// invariant. Every struct with json-tagged fields in a protocol package
// (the dist job/result frames, the qfixd request/response frames) is a
// wire message; its schema — field json names, Go types, omitempty —
// is extracted and diffed against the package's committed wire.lock
// golden:
//
//   - a locked struct or field missing from the code is a removal (or a
//     json rename, which is a removal plus an addition): old peers
//     still send or expect it — fail;
//   - a locked field whose Go type changed decodes differently — fail;
//   - a locked field whose omitempty changed alters which frames carry
//     it — fail;
//   - a new field must be omitempty, so frames from updated peers stay
//     decodable as-if-absent by old ones and golden frame bytes don't
//     grow silently.
//
// Additions (new omitempty fields, new message structs) pass the
// analyzer but leave the golden stale; the CI wire.lock step
// regenerates and diffs it, forcing the schema change to be committed —
// and therefore reviewed — alongside the code. Regenerate with
// `qfix-vet -write-wire-lock`. Intentional breaks ride a version bump
// plus //qfix:wire-ok on the field (or the struct, for removals).
var WireDrift = &Analyzer{
	Name: "wiredrift",
	Doc: "diff wire message structs (json tag schema) against committed wire.lock goldens; " +
		"removals, renames, type and omitempty changes fail, additions must be omitempty",
	Directive: "wire-ok",
	Packages:  []string{"internal/dist", "internal/qfixd"},
	Run:       runWireDrift,
}

// A wireField is one json-serialized field of a wire message struct.
type wireField struct {
	GoName    string
	JSONName  string
	Type      string
	OmitEmpty bool
	pos       token.Pos // declaration site (zero for lock-side fields)
}

// A wireStruct is one wire message struct's extracted schema.
type wireStruct struct {
	Name   string
	Fields []wireField // declaration order
	pos    token.Pos
}

func (ws *wireStruct) field(jsonName string) *wireField {
	for i := range ws.Fields {
		if ws.Fields[i].JSONName == jsonName {
			return &ws.Fields[i]
		}
	}
	return nil
}

func runWireDrift(pass *Pass) error {
	schema := extractWireSchema(pass.TypesInfo, pass.Files)
	if len(schema) == 0 {
		return nil
	}
	lockPath := filepath.Join(pass.Dir, WireLockFile)
	data, err := os.ReadFile(lockPath)
	if err != nil {
		pass.Reportf(schema[0].pos,
			"package has wire message structs but no %s golden; generate one with `qfix-vet -write-wire-lock` and commit it", WireLockFile)
		return nil
	}
	locked, err := parseWireLock(string(data))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", lockPath, err)
	}
	code := map[string]*wireStruct{}
	for i := range schema {
		code[schema[i].Name] = &schema[i]
	}
	firstPos := schema[0].pos
	for _, ls := range locked {
		cs, ok := code[ls.Name]
		if !ok {
			pass.Reportf(firstPos,
				"wire struct %s was removed but is locked in %s: old peers still speak it; restore it or bump the protocol version, regenerate the lock, and annotate //qfix:wire-ok",
				ls.Name, WireLockFile)
			continue
		}
		for _, lf := range ls.Fields {
			cf := cs.field(lf.JSONName)
			if cf == nil {
				pass.Reportf(cs.pos,
					"wire field %s.%s (json %q) was removed or renamed but is locked in %s: a rename is a removal on the wire; restore the json name or bump the protocol version and annotate //qfix:wire-ok",
					ls.Name, lf.GoName, lf.JSONName, WireLockFile)
				continue
			}
			if cf.Type != lf.Type {
				pass.Reportf(cf.pos,
					"wire field %s.%s changed type %s -> %s but is locked in %s: old peers decode the locked type; bump the protocol version and annotate //qfix:wire-ok if intentional",
					ls.Name, cf.GoName, lf.Type, cf.Type, WireLockFile)
			}
			if cf.OmitEmpty != lf.OmitEmpty {
				was, now := omitLabel(lf.OmitEmpty), omitLabel(cf.OmitEmpty)
				pass.Reportf(cf.pos,
					"wire field %s.%s changed %s -> %s but is locked in %s: presence of the field on the wire changes; annotate //qfix:wire-ok if intentional",
					ls.Name, cf.GoName, was, now, WireLockFile)
			}
		}
		// Additions to a locked struct must be omitempty so frames stay
		// decodable by old peers and golden frame bytes don't change
		// when the field is unset.
		for _, cf := range cs.Fields {
			if ls.field(cf.JSONName) != nil {
				continue
			}
			if !cf.OmitEmpty {
				pass.Reportf(cf.pos,
					"new wire field %s.%s (json %q) must be omitempty for cross-version compatibility (then regenerate %s), or annotate //qfix:wire-ok with the compatibility story",
					cs.Name, cf.GoName, cf.JSONName, WireLockFile)
			}
		}
	}
	return nil
}

func omitLabel(omit bool) string {
	if omit {
		return "omitempty"
	}
	return "always-present"
}

// extractWireSchema collects every struct with at least one json-tagged
// field, sorted by type name, fields in declaration order.
func extractWireSchema(info *types.Info, files []*ast.File) []wireStruct {
	var out []wireStruct
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			ws := wireStruct{Name: ts.Name.Name, pos: ts.Pos()}
			for _, field := range st.Fields.List {
				if field.Tag == nil {
					continue
				}
				tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`")).Get("json")
				if tag == "" || tag == "-" {
					continue
				}
				parts := strings.Split(tag, ",")
				omit := false
				for _, opt := range parts[1:] {
					if opt == "omitempty" {
						omit = true
					}
				}
				typeStr := ""
				if tv, ok := info.Types[field.Type]; ok && tv.Type != nil {
					typeStr = typeLabel(tv.Type)
				}
				for _, name := range field.Names {
					jsonName := parts[0]
					if jsonName == "" {
						jsonName = name.Name
					}
					ws.Fields = append(ws.Fields, wireField{
						GoName:    name.Name,
						JSONName:  jsonName,
						Type:      typeStr,
						OmitEmpty: omit,
						pos:       name.Pos(),
					})
				}
			}
			if len(ws.Fields) > 0 {
				out = append(out, ws)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FormatWireLock renders a package's wire schema as the wire.lock
// golden text. The format is line-oriented and diff-friendly:
//
//	struct Job
//		field version go=Version type=int
//		field attempt_ttl_ns go=AttemptTTLNS type=int64 omitempty
func FormatWireLock(pkg *Package) (string, bool) {
	schema := extractWireSchema(pkg.Info, pkg.Files)
	if len(schema) == 0 {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — wire message schema golden for %s.\n", WireLockFile, pkg.Path)
	b.WriteString("# Regenerate with: go run ./cmd/qfix-vet -write-wire-lock ./...\n")
	b.WriteString("# Removing, renaming, retyping, or changing omitempty on a locked field\n")
	b.WriteString("# is a protocol break; qfix-vet's wiredrift analyzer enforces this.\n")
	for _, ws := range schema {
		fmt.Fprintf(&b, "struct %s\n", ws.Name)
		for _, f := range ws.Fields {
			fmt.Fprintf(&b, "\tfield %s go=%s type=%s", f.JSONName, f.GoName, f.Type)
			if f.OmitEmpty {
				b.WriteString(" omitempty")
			}
			b.WriteString("\n")
		}
	}
	return b.String(), true
}

// parseWireLock reads the golden text back into schema form.
func parseWireLock(text string) ([]wireStruct, error) {
	var out []wireStruct
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		fields := strings.Fields(trimmed)
		switch fields[0] {
		case "struct":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want `struct Name`, got %q", i+1, trimmed)
			}
			out = append(out, wireStruct{Name: fields[1]})
		case "field":
			if len(out) == 0 {
				return nil, fmt.Errorf("line %d: field before any struct", i+1)
			}
			wf := wireField{}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: want `field <json> go=<name> type=<type> [omitempty]`", i+1)
			}
			wf.JSONName = fields[1]
			for _, tok := range fields[2:] {
				switch {
				case strings.HasPrefix(tok, "go="):
					wf.GoName = tok[len("go="):]
				case strings.HasPrefix(tok, "type="):
					wf.Type = tok[len("type="):]
				case tok == "omitempty":
					wf.OmitEmpty = true
				default:
					return nil, fmt.Errorf("line %d: unknown token %q", i+1, tok)
				}
			}
			ws := &out[len(out)-1]
			ws.Fields = append(ws.Fields, wf)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", i+1, fields[0])
		}
	}
	return out, nil
}

// WriteWireLock regenerates the package's wire.lock in its source
// directory. It returns the written path, or "" when the package has no
// wire structs (no file is written or removed).
func WriteWireLock(pkg *Package) (string, error) {
	content, ok := FormatWireLock(pkg)
	if !ok {
		return "", nil
	}
	path := filepath.Join(pkg.Dir, WireLockFile)
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		return "", err
	}
	return path, nil
}
