package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDirectives runs the whole suite over the directive fixture:
// allowlisted sites stay silent, a directive on a line nothing flags
// is reported as unused, and directives owned by analyzers that did
// not run on the package are exempt from the unused check.
func TestDirectives(t *testing.T) {
	analysistest.RunSuite(t, "testdata/directive", analysis.Suite(), "repro/internal/simplex")
}
