package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` statements over maps in the packages whose
// outputs are pinned byte-identical (solver decisions, emitted repairs,
// BENCH rows). Go randomizes map iteration order on purpose, so any
// map range whose body can influence ordered output is a determinism
// bug waiting for a hash-seed change. Two shapes are recognized as safe
// without annotation:
//
//   - collect-then-sort: the body only appends to slices that are later
//     sorted (sort.* or slices.Sort*) in the same function;
//   - commutative accumulation: the body only increments/accumulates
//     integer values, writes m[k] under the ranged key, or deletes the
//     ranged key from another map — operations whose result is
//     independent of visit order.
//
// Anything else needs an explicit //qfix:det-ok directive carrying the
// reason the order cannot reach observable output.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "flag map iteration whose nondeterministic order can reach solver decisions or output; " +
		"safe shapes: collect-then-sort, integer accumulation, keyed map writes/deletes",
	Directive: "det-ok",
	Packages: []string{
		"internal/simplex", "internal/milp", "internal/encode",
		"internal/core", "internal/bench",
	},
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				detmapFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// detmapFunc checks the map ranges directly inside one function body,
// leaving nested function literals to their own visit.
func detmapFunc(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			t := pass.TypesInfo.Types[n.X].Type
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if !safeMapRange(pass, n, body) {
				pass.Reportf(n.For,
					"range over map %s: iteration order is nondeterministic; collect and sort keys, or annotate //qfix:det-ok with why order cannot reach output",
					typeLabel(t))
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// safeMapRange reports whether every statement in the range body is an
// order-insensitive shape, and every append target is sorted later in
// the enclosing function. The shape rules are sound against the classic
// hole — feeding one iteration's mutation into another's — because a
// shape may only read loop-carried state the body never writes (the
// rangeCheck tracks both sets).
func safeMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) bool {
	c := &rangeCheck{
		pass:          pass,
		body:          rs.Body,
		keyObj:        identObj(pass, rs.Key),
		valObj:        identObj(pass, rs.Value),
		appendTargets: map[types.Object]bool{},
		constWrites:   map[types.Object]string{},
	}
	c.collectWrites(rs.Body)
	for _, st := range rs.Body.List {
		if !c.safeStmt(st) {
			return false
		}
	}
	for obj := range c.appendTargets {
		if !sortedAfter(pass, funcBody, obj, rs.End()) {
			return false
		}
	}
	return true
}

func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// rangeCheck validates one map-range body against the order-insensitive
// shape rules.
type rangeCheck struct {
	pass           *Pass
	body           *ast.BlockStmt
	keyObj, valObj types.Object
	// written holds the loop-carried objects (declared outside the
	// body) that the body assigns; reading them from another shape
	// would smuggle iteration order back in.
	written       map[types.Object]bool
	appendTargets map[types.Object]bool
	// constWrites records the single constant each object may be
	// assigned; two different constants to one object is last-writer-
	// wins and therefore order-sensitive.
	constWrites map[types.Object]string
}

// collectWrites gathers every loop-carried object the body assigns.
func (c *rangeCheck) collectWrites(n ast.Node) {
	c.written = map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				c.markWrite(l)
			}
		case *ast.IncDecStmt:
			c.markWrite(n.X)
		}
		return true
	})
}

func (c *rangeCheck) markWrite(e ast.Expr) {
	obj := rootObj(c.pass, e)
	if obj == nil || c.iterationScoped(obj) {
		return
	}
	c.written[obj] = true
}

// rootObj resolves the object at the base of an assignable expression
// (x, x[i], x.f, *x, …): writes through any of those mutate x's state.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return identObj(pass, e)
		}
	}
}

// iterationScoped reports whether obj lives only within one iteration:
// the range key/value or a variable declared inside the body.
func (c *rangeCheck) iterationScoped(obj types.Object) bool {
	if obj == c.keyObj || obj == c.valObj {
		return true
	}
	return obj.Pos() >= c.body.Pos() && obj.Pos() < c.body.End()
}

// readsWritten reports whether e reads any loop-carried object the body
// also writes (other than exempt, the accumulation target itself).
func (c *rangeCheck) readsWritten(e ast.Expr, exempt types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && obj != exempt && c.written[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *rangeCheck) safeStmt(st ast.Stmt) bool {
	pass := c.pass
	switch st := st.(type) {
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, st.X)
	case *ast.DeclStmt:
		// Iteration-local declarations; initializers must not read
		// loop-carried writes.
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if c.readsWritten(v, nil) {
					return false
				}
			}
		}
		return true
	case *ast.IfStmt:
		// A guard is order-insensitive when it depends only on this
		// iteration's key/value and unwritten state, and everything it
		// guards is itself a safe shape.
		if st.Init != nil && !c.safeStmt(st.Init) {
			return false
		}
		if c.readsWritten(st.Cond, nil) {
			return false
		}
		for _, s := range st.Body.List {
			if !c.safeStmt(s) {
				return false
			}
		}
		switch e := st.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, s := range e.List {
				if !c.safeStmt(s) {
					return false
				}
			}
		case *ast.IfStmt:
			return c.safeStmt(e)
		default:
			return false
		}
		return true
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative, associative accumulation — but only over
			// integers: float addition order changes low bits.
			return len(st.Lhs) == 1 && isIntegerExpr(pass, st.Lhs[0]) &&
				!c.readsWritten(st.Rhs[0], identObj(pass, st.Lhs[0]))
		case token.DEFINE:
			// Iteration-local temps; their initializers must not read
			// loop-carried writes.
			for _, r := range st.Rhs {
				if c.readsWritten(r, nil) {
					return false
				}
			}
			return true
		case token.ASSIGN:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			lhs, rhs := st.Lhs[0], st.Rhs[0]
			// x[k] = v / x[k] = append(x[k], v) under the ranged key:
			// each iteration touches a distinct element, so visit order
			// cannot matter as long as the value reads no loop-carried
			// writes.
			if ix, ok := lhs.(*ast.IndexExpr); ok && c.keyObj != nil &&
				identObj(pass, ix.Index) == c.keyObj && isIndexable(pass, ix.X) {
				// The container itself is exempt so self-updates like
				// x[k] = append(x[k], v) pass; distinct keys keep the
				// elements independent.
				return !c.readsWritten(rhs, rootObj(pass, ix.X))
			}
			// s = append(s, ...) — safe once s is sorted later.
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
				obj := identObj(pass, lhs)
				if obj == nil {
					return false
				}
				for _, a := range call.Args[1:] {
					if c.readsWritten(a, nil) {
						return false
					}
				}
				c.appendTargets[obj] = true
				return true
			}
			// x = <constant>: idempotent, hence order-insensitive — but
			// only while every constant written to x is the same one.
			if obj := identObj(pass, lhs); obj != nil {
				if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
					repr := tv.Value.ExactString()
					if prev, seen := c.constWrites[obj]; seen && prev != repr {
						return false
					}
					c.constWrites[obj] = repr
					return true
				}
			}
			return false
		}
		return false
	case *ast.ExprStmt:
		// delete(other, k) under the ranged key.
		if call, ok := st.X.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "delete") && len(call.Args) == 2 && c.keyObj != nil {
			return identObj(pass, call.Args[1]) == c.keyObj
		}
		return false
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE && st.Label == nil
	}
	return false
}

// isIndexable reports whether e is a map or slice value (the containers
// whose keyed writes the shape rules accept).
func isIndexable(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether obj (a slice) is passed to a sort.* or
// slices.Sort* call positioned after pos in the function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if identObj(pass, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
