package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// DetMap flags `range` statements over maps in the packages whose
// outputs are pinned byte-identical (solver decisions, emitted repairs,
// BENCH rows). Go randomizes map iteration order on purpose, so any
// map range whose body can influence ordered output is a determinism
// bug waiting for a hash-seed change. Two shapes are recognized as safe
// without annotation:
//
//   - collect-then-sort: the body only appends to slices that are later
//     sorted (sort.* or slices.Sort*) in the same function;
//   - commutative accumulation: the body only increments/accumulates
//     integer values, writes m[k] under the ranged key, or deletes the
//     ranged key from another map — operations whose result is
//     independent of visit order.
//
// Anything else needs an explicit //qfix:det-ok directive carrying the
// reason the order cannot reach observable output.
//
// The analyzer is also interprocedural across packages: a function
// whose return value was written under an unsafe (unsuppressed) map
// range exports an order-dependent fact, and call sites in *other*
// packages — anywhere detmap runs, which includes the daemon-era
// consumers dist, qfixd, and histstore — are flagged unless the result
// is sorted (or discarded) before use. That closes the
// encode→core→dist boundary the intra-package pass is blind to.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "flag map iteration whose nondeterministic order can reach solver decisions or output; " +
		"safe shapes: collect-then-sort, integer accumulation, keyed map writes/deletes; " +
		"exports order-dependent-result facts and flags unsorted cross-package uses",
	Directive: "det-ok",
	Packages: []string{
		"internal/simplex", "internal/milp", "internal/encode",
		"internal/core", "internal/bench",
		// Fact-consumption-only scope: the range check stays restricted
		// to the solver packages above (detmapRangePackages).
		"internal/dist", "internal/qfixd", "internal/histstore",
	},
	Run: runDetMap,
}

// detmapRangePackages scopes the map-range shape check itself: the
// packages whose outputs are pinned byte-identical. The wider
// Analyzer.Packages list adds the packages that only consume facts.
var detmapRangePackages = []string{
	"internal/simplex", "internal/milp", "internal/encode",
	"internal/core", "internal/bench",
}

func runDetMap(pass *Pass) error {
	rangeScope := pathInScope(pass.Pkg.Path(), detmapRangePackages)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if rangeScope {
					tainted := detmapFunc(pass, fn.Body)
					exportOrderFacts(pass, fn, tainted)
				}
				scanFactCalls(pass, fn.Body)
			case *ast.FuncLit:
				if fn.Body == nil {
					return true
				}
				if rangeScope {
					detmapFunc(pass, fn.Body)
				}
				scanFactCalls(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// detmapFunc checks the map ranges directly inside one function body,
// leaving nested function literals to their own visit. It returns the
// loop-carried objects whose contents depend on iteration order after
// an unsafe, unsuppressed range (append targets that are sorted later
// are excluded — sorting launders the order away).
func detmapFunc(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			t := pass.TypesInfo.Types[n.X].Type
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			safe, c := safeMapRange(pass, n, body)
			if safe {
				return true
			}
			pass.Reportf(n.For,
				"range over map %s: iteration order is nondeterministic; collect and sort keys, or annotate //qfix:det-ok with why order cannot reach output",
				typeLabel(t))
			// A reasoned directive on the range also vouches for the
			// data it produced: don't export facts for suppressed sites.
			if pass.SuppressedAt(n.For) {
				return true
			}
			for obj := range c.written {
				if c.appendTargets[obj] && sortedAfter(pass, body, obj, n.End()) {
					continue
				}
				tainted[obj] = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return tainted
}

// exportOrderFacts exports an order-dependent fact for fn when any
// tainted object reaches a return statement.
func exportOrderFacts(pass *Pass, fn *ast.FuncDecl, tainted map[types.Object]bool) {
	if len(tainted) == 0 {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	leaks := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if leaks {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				ast.Inspect(r, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if o := pass.TypesInfo.Uses[id]; o != nil && tainted[o] {
							leaks = true
						}
					}
					return !leaks
				})
			}
		}
		return true
	})
	if leaks {
		pos := pass.Fset.Position(fn.Pos())
		pass.ExportOrderFact(funcKey(obj),
			fmt.Sprintf("returns data written under an unsorted map range (%s:%d)",
				filepath.Base(pos.Filename), pos.Line))
	}
}

// funcKey names a function for the facts file: "Name" for package
// functions, "Recv.Name" for methods.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// scanFactCalls flags call sites of functions another package exported
// order-dependent facts for, unless the result is discarded, sorted
// directly, or assigned and sorted later in the same function.
func scanFactCalls(pass *Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, note := factCallee(pass, call); fn != nil {
				var parent ast.Node
				if len(stack) > 0 {
					parent = stack[len(stack)-1]
				}
				checkFactCall(pass, body, call, fn, note, parent)
			}
		}
		stack = append(stack, n)
		return true
	})
}

// factCallee resolves a call to a cross-package function carrying an
// order-dependent fact.
func factCallee(pass *Pass, call *ast.CallExpr) (*types.Func, string) {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return nil, ""
	}
	note, ok := pass.ImportedFacts(fn.Pkg().Path()).OrderDependent[funcKey(fn)]
	if !ok {
		return nil, ""
	}
	return fn, note
}

func checkFactCall(pass *Pass, body *ast.BlockStmt, call *ast.CallExpr, fn *types.Func, note string, parent ast.Node) {
	switch p := parent.(type) {
	case *ast.ExprStmt:
		return // result discarded: order cannot reach output
	case *ast.AssignStmt:
		if len(p.Rhs) == 1 && p.Rhs[0] == ast.Expr(call) && len(p.Lhs) == 1 {
			if obj := identObj(pass, p.Lhs[0]); obj != nil && sortedAfter(pass, body, obj, call.End()) {
				return
			}
		}
	case *ast.CallExpr:
		if isSortCall(pass, p) && len(p.Args) > 0 && p.Args[0] == ast.Expr(call) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"result of %s.%s is map-iteration-order dependent (%s); sort it before it reaches ordered output, or annotate //qfix:det-ok with why order cannot matter here",
		fn.Pkg().Name(), funcKey(fn), note)
}

func typeLabel(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// safeMapRange reports whether every statement in the range body is an
// order-insensitive shape, and every append target is sorted later in
// the enclosing function. The shape rules are sound against the classic
// hole — feeding one iteration's mutation into another's — because a
// shape may only read loop-carried state the body never writes (the
// rangeCheck tracks both sets, and returns them so an unsafe range's
// writes can be tainted for fact export).
func safeMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) (bool, *rangeCheck) {
	c := &rangeCheck{
		pass:          pass,
		body:          rs.Body,
		keyObj:        identObj(pass, rs.Key),
		valObj:        identObj(pass, rs.Value),
		appendTargets: map[types.Object]bool{},
		constWrites:   map[types.Object]string{},
	}
	c.collectWrites(rs.Body)
	for _, st := range rs.Body.List {
		if !c.safeStmt(st) {
			return false, c
		}
	}
	for obj := range c.appendTargets {
		if !sortedAfter(pass, funcBody, obj, rs.End()) {
			return false, c
		}
	}
	return true, c
}

func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

// rangeCheck validates one map-range body against the order-insensitive
// shape rules.
type rangeCheck struct {
	pass           *Pass
	body           *ast.BlockStmt
	keyObj, valObj types.Object
	// written holds the loop-carried objects (declared outside the
	// body) that the body assigns; reading them from another shape
	// would smuggle iteration order back in.
	written       map[types.Object]bool
	appendTargets map[types.Object]bool
	// constWrites records the single constant each object may be
	// assigned; two different constants to one object is last-writer-
	// wins and therefore order-sensitive.
	constWrites map[types.Object]string
}

// collectWrites gathers every loop-carried object the body assigns.
func (c *rangeCheck) collectWrites(n ast.Node) {
	c.written = map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				c.markWrite(l)
			}
		case *ast.IncDecStmt:
			c.markWrite(n.X)
		}
		return true
	})
}

func (c *rangeCheck) markWrite(e ast.Expr) {
	obj := rootObj(c.pass, e)
	if obj == nil || c.iterationScoped(obj) {
		return
	}
	c.written[obj] = true
}

// rootObj resolves the object at the base of an assignable expression
// (x, x[i], x.f, *x, …): writes through any of those mutate x's state.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return identObj(pass, e)
		}
	}
}

// iterationScoped reports whether obj lives only within one iteration:
// the range key/value or a variable declared inside the body.
func (c *rangeCheck) iterationScoped(obj types.Object) bool {
	if obj == c.keyObj || obj == c.valObj {
		return true
	}
	return obj.Pos() >= c.body.Pos() && obj.Pos() < c.body.End()
}

// readsWritten reports whether e reads any loop-carried object the body
// also writes (other than exempt, the accumulation target itself).
func (c *rangeCheck) readsWritten(e ast.Expr, exempt types.Object) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && obj != exempt && c.written[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *rangeCheck) safeStmt(st ast.Stmt) bool {
	pass := c.pass
	switch st := st.(type) {
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, st.X)
	case *ast.DeclStmt:
		// Iteration-local declarations; initializers must not read
		// loop-carried writes.
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if c.readsWritten(v, nil) {
					return false
				}
			}
		}
		return true
	case *ast.IfStmt:
		// A guard is order-insensitive when it depends only on this
		// iteration's key/value and unwritten state, and everything it
		// guards is itself a safe shape.
		if st.Init != nil && !c.safeStmt(st.Init) {
			return false
		}
		if c.readsWritten(st.Cond, nil) {
			return false
		}
		for _, s := range st.Body.List {
			if !c.safeStmt(s) {
				return false
			}
		}
		switch e := st.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, s := range e.List {
				if !c.safeStmt(s) {
					return false
				}
			}
		case *ast.IfStmt:
			return c.safeStmt(e)
		default:
			return false
		}
		return true
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative, associative accumulation — but only over
			// integers: float addition order changes low bits.
			return len(st.Lhs) == 1 && isIntegerExpr(pass, st.Lhs[0]) &&
				!c.readsWritten(st.Rhs[0], identObj(pass, st.Lhs[0]))
		case token.DEFINE:
			// Iteration-local temps; their initializers must not read
			// loop-carried writes.
			for _, r := range st.Rhs {
				if c.readsWritten(r, nil) {
					return false
				}
			}
			return true
		case token.ASSIGN:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return false
			}
			lhs, rhs := st.Lhs[0], st.Rhs[0]
			// x[k] = v / x[k] = append(x[k], v) under the ranged key:
			// each iteration touches a distinct element, so visit order
			// cannot matter as long as the value reads no loop-carried
			// writes.
			if ix, ok := lhs.(*ast.IndexExpr); ok && c.keyObj != nil &&
				identObj(pass, ix.Index) == c.keyObj && isIndexable(pass, ix.X) {
				// The container itself is exempt so self-updates like
				// x[k] = append(x[k], v) pass; distinct keys keep the
				// elements independent.
				return !c.readsWritten(rhs, rootObj(pass, ix.X))
			}
			// s = append(s, ...) — safe once s is sorted later.
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
				obj := identObj(pass, lhs)
				if obj == nil {
					return false
				}
				for _, a := range call.Args[1:] {
					if c.readsWritten(a, nil) {
						return false
					}
				}
				c.appendTargets[obj] = true
				return true
			}
			// x = <constant>: idempotent, hence order-insensitive — but
			// only while every constant written to x is the same one.
			if obj := identObj(pass, lhs); obj != nil {
				if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
					repr := tv.Value.ExactString()
					if prev, seen := c.constWrites[obj]; seen && prev != repr {
						return false
					}
					c.constWrites[obj] = repr
					return true
				}
			}
			return false
		}
		return false
	case *ast.ExprStmt:
		// delete(other, k) under the ranged key.
		if call, ok := st.X.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "delete") && len(call.Args) == 2 && c.keyObj != nil {
			return identObj(pass, call.Args[1]) == c.keyObj
		}
		return false
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE && st.Label == nil
	}
	return false
}

// isIndexable reports whether e is a map or slice value (the containers
// whose keyed writes the shape rules accept).
func isIndexable(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isSortCall reports whether call invokes anything from package sort or
// slices — the order-laundering calls the shape rules recognize.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	if !ok {
		return false
	}
	path := pkgName.Imported().Path()
	return path == "sort" || path == "slices"
}

// sortedAfter reports whether obj (a slice) is passed to a sort.* or
// slices.Sort* call positioned after pos in the function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		if identObj(pass, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
