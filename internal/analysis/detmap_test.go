package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDetMap(t *testing.T) {
	analysistest.Run(t, "testdata/detmap", analysis.DetMap, "repro/internal/simplex")
}

// TestDetMapScope pins the package filter: the same order-sensitive
// range stays silent outside the determinism scope.
func TestDetMapScope(t *testing.T) {
	analysistest.Run(t, "testdata/scope", analysis.DetMap, "repro/internal/query")
}
