// Package analysis is qfix's static-analysis suite: a small, stdlib-only
// clone of the golang.org/x/tools/go/analysis model (Analyzer, Pass,
// Diagnostic) plus the seven domain analyzers that mechanically enforce
// the invariants the engine's guarantees rest on — deterministic map
// handling (detmap, interprocedural via exported facts), context-aware
// blocking loops (ctxloop), balanced obs spans (spanend), no wall-clock
// or randomness in deterministic solver paths (detclock), mutex
// contracts on annotated struct fields (lockcheck), provable goroutine
// termination in the resident daemon's packages (goleak), and wire
// protocol schema stability against committed goldens (wiredrift). The
// x/tools module itself is deliberately not a dependency: the repo
// builds offline, so the framework here mirrors the upstream API shape
// on top of go/ast + go/types only, and cmd/qfix-vet speaks enough of
// the vet tool protocol to run either standalone or as `go vet
// -vettool`.
//
// Findings are suppressed site-by-site with comment directives:
//
//	//qfix:det-ok <reason>   (detmap, detclock)
//	//qfix:ctx-ok <reason>   (ctxloop)
//	//qfix:span-ok <reason>  (spanend)
//	//qfix:lock-ok <reason>  (lockcheck)
//	//qfix:leak-ok <reason>  (goleak)
//	//qfix:wire-ok <reason>  (wiredrift)
//
// A directive suppresses diagnostics on its own line or the line
// directly below it (so it can ride at end-of-line or as a standalone
// comment above the site). Directives that suppress nothing are
// themselves reported — a stale allowlist is exactly the kind of silent
// rot this suite exists to prevent. One directive is not a suppression:
// //qfix:guarded-by <mutex> on a struct field declares the lockcheck
// contract for that field.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one suite check. The shape mirrors
// x/tools/go/analysis.Analyzer so the checks read idiomatically and
// could be ported onto the upstream driver wholesale if the dependency
// ever lands.
type Analyzer struct {
	Name string
	Doc  string

	// Directive is the //qfix: directive name (e.g. "det-ok") that
	// suppresses this analyzer's findings at a site.
	Directive string

	// Packages restricts the analyzer to packages whose import path
	// ends with one of these suffixes (after stripping any test-variant
	// decoration). Empty means every package.
	Packages []string

	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer runs on the package with the
// given import path. Test-variant paths like "p [p.test]" are matched
// by their base package.
func (a *Analyzer) AppliesTo(path string) bool {
	return pathInScope(path, a.Packages)
}

// pathInScope is the suffix-match scope rule shared by AppliesTo and
// analyzers with internally narrower sub-scopes (detmap's range check).
func pathInScope(path string, suffixes []string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if len(suffixes) == 0 {
		return true
	}
	for _, suf := range suffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Dir       string // package source directory (for per-package goldens)
	Pkg       *types.Package
	TypesInfo *types.Info

	suite *suiteState // shared directive index + diagnostic sink
	facts *FactStore  // dependency facts in, this package's facts out
}

// ImportedFacts returns the fact set exported by the package at the
// given import path (empty when the dependency exported none or was not
// analyzed).
func (p *Pass) ImportedFacts(path string) *FactSet {
	return p.facts.Package(path)
}

// ExportOrderFact records that the named function's result depends on
// map iteration order, for consumption at call sites in dependent
// packages.
func (p *Pass) ExportOrderFact(fn, note string) {
	if p.facts == nil {
		return
	}
	fs := p.facts.exporting(p.Pkg.Path())
	if fs.OrderDependent == nil {
		fs.OrderDependent = map[string]string{}
	}
	fs.OrderDependent[fn] = note
}

// Reportf records a finding at pos unless a matching directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suite.suppress(p.Analyzer.Directive, position) {
		return
	}
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether a directive for this analyzer covers
// pos, without consuming it: a site the author has reasoned about
// should not keep leaking derived facts to other packages.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	return p.suite.covered(p.Analyzer.Directive, p.Fset.Position(pos))
}

// A Diagnostic is one reported finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// directiveRE matches a qfix suppression directive comment. The reason
// text is free-form but encouraged: it is the durable record of why the
// site is exempt.
var directiveRE = regexp.MustCompile(`^//qfix:([a-z-]+)(?:\s+(.*))?$`)

// A directive is one //qfix:NAME-ok comment, tracked so unused ones can
// be reported.
type directive struct {
	name string // e.g. "det-ok"
	pos  token.Position
	used bool
}

type suiteState struct {
	directives []*directive
	// eligible collects the directive names owned by analyzers that
	// actually ran on the package; only those can be declared unused.
	eligible map[string]bool
	diags    []Diagnostic
}

// suppress consumes a directive covering the diagnostic position:
// same file, and the directive sits on the diagnostic's line or the
// line above it.
func (s *suiteState) suppress(name string, pos token.Position) bool {
	ok := false
	for _, d := range s.directives {
		if d.name != name || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			d.used = true
			ok = true
		}
	}
	return ok
}

// covered is suppress without consuming: analyzers use it to keep
// derived state (exported facts) consistent with a suppressed finding.
func (s *suiteState) covered(name string, pos token.Position) bool {
	for _, d := range s.directives {
		if d.name != name || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			return true
		}
	}
	return false
}

// Run executes every applicable analyzer from the suite over pkg and
// returns the surviving diagnostics (including unused-directive
// findings), sorted by position. Directives are shared across the
// analyzers of one package so a single site needs a single annotation.
// facts carries dependency fact sets in and receives this package's
// exports under its import path; nil disables fact propagation.
func Run(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	st := &suiteState{eligible: map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				st.directives = append(st.directives, &directive{
					name: m[1],
					pos:  pkg.Fset.Position(c.Slash),
				})
			}
		}
	}
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		st.eligible[a.Directive] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Dir:       pkg.Dir,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			suite:     st,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	for _, d := range st.directives {
		if !d.used && st.eligible[d.name] {
			st.diags = append(st.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  fmt.Sprintf("unused //qfix:%s directive: nothing on this or the next line is flagged", d.name),
			})
		}
	}
	sort.Slice(st.diags, func(i, j int) bool {
		a, b := st.diags[i], st.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return st.diags, nil
}

// Suite returns the full qfix-vet analyzer set in a fixed order.
func Suite() []*Analyzer {
	return []*Analyzer{DetMap, CtxLoop, SpanEnd, DetClock, LockCheck, GoLeak, WireDrift}
}
