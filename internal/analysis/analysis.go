// Package analysis is qfix's static-analysis suite: a small, stdlib-only
// clone of the golang.org/x/tools/go/analysis model (Analyzer, Pass,
// Diagnostic) plus the four domain analyzers that mechanically enforce
// the invariants the engine's guarantees rest on — deterministic map
// handling (detmap), context-aware blocking loops (ctxloop), balanced
// obs spans (spanend), and no wall-clock or randomness in deterministic
// solver paths (detclock). The x/tools module itself is deliberately
// not a dependency: the repo builds offline, so the framework here
// mirrors the upstream API shape on top of go/ast + go/types only, and
// cmd/qfix-vet speaks enough of the vet tool protocol to run either
// standalone or as `go vet -vettool`.
//
// Findings are suppressed site-by-site with comment directives:
//
//	//qfix:det-ok <reason>   (detmap, detclock)
//	//qfix:ctx-ok <reason>   (ctxloop)
//	//qfix:span-ok <reason>  (spanend)
//
// A directive suppresses diagnostics on its own line or the line
// directly below it (so it can ride at end-of-line or as a standalone
// comment above the site). Directives that suppress nothing are
// themselves reported — a stale allowlist is exactly the kind of silent
// rot this suite exists to prevent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one suite check. The shape mirrors
// x/tools/go/analysis.Analyzer so the checks read idiomatically and
// could be ported onto the upstream driver wholesale if the dependency
// ever lands.
type Analyzer struct {
	Name string
	Doc  string

	// Directive is the //qfix: directive name (e.g. "det-ok") that
	// suppresses this analyzer's findings at a site.
	Directive string

	// Packages restricts the analyzer to packages whose import path
	// ends with one of these suffixes (after stripping any test-variant
	// decoration). Empty means every package.
	Packages []string

	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer runs on the package with the
// given import path. Test-variant paths like "p [p.test]" are matched
// by their base package.
func (a *Analyzer) AppliesTo(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, suf := range a.Packages {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suite *suiteState // shared directive index + diagnostic sink
}

// Reportf records a finding at pos unless a matching directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suite.suppress(p.Analyzer.Directive, position) {
		return
	}
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// directiveRE matches a qfix suppression directive comment. The reason
// text is free-form but encouraged: it is the durable record of why the
// site is exempt.
var directiveRE = regexp.MustCompile(`^//qfix:([a-z-]+)(?:\s+(.*))?$`)

// A directive is one //qfix:NAME-ok comment, tracked so unused ones can
// be reported.
type directive struct {
	name string // e.g. "det-ok"
	pos  token.Position
	used bool
}

type suiteState struct {
	directives []*directive
	// eligible collects the directive names owned by analyzers that
	// actually ran on the package; only those can be declared unused.
	eligible map[string]bool
	diags    []Diagnostic
}

// suppress consumes a directive covering the diagnostic position:
// same file, and the directive sits on the diagnostic's line or the
// line above it.
func (s *suiteState) suppress(name string, pos token.Position) bool {
	ok := false
	for _, d := range s.directives {
		if d.name != name || d.pos.Filename != pos.Filename {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			d.used = true
			ok = true
		}
	}
	return ok
}

// Run executes every applicable analyzer from the suite over pkg and
// returns the surviving diagnostics (including unused-directive
// findings), sorted by position. Directives are shared across the
// analyzers of one package so a single site needs a single annotation.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	st := &suiteState{eligible: map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				st.directives = append(st.directives, &directive{
					name: m[1],
					pos:  pkg.Fset.Position(c.Slash),
				})
			}
		}
	}
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		st.eligible[a.Directive] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			suite:     st,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	for _, d := range st.directives {
		if !d.used && st.eligible[d.name] {
			st.diags = append(st.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  fmt.Sprintf("unused //qfix:%s directive: nothing on this or the next line is flagged", d.name),
			})
		}
	}
	sort.Slice(st.diags, func(i, j int) bool {
		a, b := st.diags[i], st.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return st.diags, nil
}

// Suite returns the full qfix-vet analyzer set in a fixed order.
func Suite() []*Analyzer {
	return []*Analyzer{DetMap, CtxLoop, SpanEnd, DetClock}
}
