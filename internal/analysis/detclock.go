package analysis

import (
	"go/ast"
	"go/types"
)

// DetClock flags wall-clock reads and randomness inside the
// deterministic solver packages. The engine's headline guarantee —
// repairs and Stats byte-identical at any parallelism or partitioning —
// cannot survive a time.Now-dependent branch or a math/rand draw in
// simplex pivoting, branch-and-bound, or encoding. Timing for Stats and
// traces belongs to the callers (core's phase helper, obs spans), not
// in here. The one sanctioned exception — enforcing a caller-supplied
// TimeLimit, where divergence is the documented contract of hitting the
// limit — carries a //qfix:det-ok directive at the site. The resident
// daemon (internal/qfixd) is covered too: its repairs promise byte
// identity with CLI runs, so any clock read on its serving path must
// document that it is observability-only, never a decision input.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc: "flag time.Now/time.Since and math/rand in deterministic solver paths; " +
		"wall-clock and randomness break byte-identical repairs",
	Directive: "det-ok",
	Packages:  []string{"internal/simplex", "internal/milp", "internal/encode", "internal/qfixd"},
	Run:       runDetClock,
}

// clockFuncs are the time package functions that read the wall clock,
// sleep, or arm timers. Durations, constants, and time arithmetic on
// caller-supplied values stay legal.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runDetClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pkgName.Imported().Path(); path {
			case "time":
				if clockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall-clock use time.%s in a deterministic solver path; derive timing from the caller (Stats/obs own it) or annotate //qfix:det-ok with the contract",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"randomness %s.%s in a deterministic solver path; byte-identical repairs forbid it — derive choices from input order or annotate //qfix:det-ok with the contract",
					pkg.Name, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
