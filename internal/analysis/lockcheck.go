package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces the mutex contracts PR 9's concurrent subsystems
// rely on. A struct field annotated
//
//	//qfix:guarded-by mu
//
// (doc comment or end-of-line comment on the field) may only be read or
// written while the named mutex — a sync.Mutex or sync.RWMutex field of
// the same struct — is held on the same receiver path. The checker runs
// a pragmatic dominance walk over each function body: Lock/RLock set
// the held state, Unlock/RUnlock clear it, `defer mu.Unlock()` holds it
// to function exit, and control-flow joins keep only what is held on
// every non-terminating path. For sync.RWMutex an RLock suffices for
// reads; writes always need the exclusive lock. Two conventions are
// honored: methods whose name ends in "Locked" are assumed entered with
// every annotated mutex of their receiver held exclusively, and
// function literals are analyzed lock-free (they may run on another
// goroutine or after the caller unlocked), so closures must take the
// lock themselves. Accesses the walk cannot prove (snapshot reads of an
// unpublished struct, intentional unlocked reads) carry //qfix:lock-ok
// with the reasoning.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flag accesses to //qfix:guarded-by annotated struct fields made without holding " +
		"the named mutex (RLock suffices for reads of RWMutex-guarded fields)",
	Directive: "lock-ok",
	Packages: []string{
		"internal/histstore", "internal/qfixd", "internal/dist", "internal/sched",
	},
	Run: runLockCheck,
}

// guardInfo is one field's contract: the guarding mutex field's name
// and whether it is an RWMutex (shared holds satisfy reads).
type guardInfo struct {
	mutex string
	rw    bool
}

func runLockCheck(pass *Pass) error {
	c := &lockChecker{
		pass:    pass,
		guarded: map[*types.Var]guardInfo{},
		mutexes: map[*types.TypeName][]guardInfo{},
	}
	c.collectAnnotations()
	if len(c.guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn)
		}
	}
	return nil
}

type lockChecker struct {
	pass *Pass
	// guarded maps annotated field objects to their contract.
	guarded map[*types.Var]guardInfo
	// mutexes lists, per struct type, the mutex fields named by its
	// annotations — the set assumed held inside *Locked methods.
	mutexes map[*types.TypeName][]guardInfo
	// queue holds function literals to analyze lock-free once the
	// enclosing function's walk finishes.
	queue []*ast.FuncLit
}

// collectAnnotations walks struct declarations for //qfix:guarded-by
// directives and validates each against the struct's fields.
func (c *lockChecker) collectAnnotations() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			for _, field := range st.Fields.List {
				mutex, pos := fieldGuardDirective(field)
				if mutex == "" {
					continue
				}
				info, ok := c.lookupMutex(st, mutex)
				if !ok {
					c.pass.Reportf(pos,
						"//qfix:guarded-by %s: no sync.Mutex or sync.RWMutex field named %q in this struct", mutex, mutex)
					continue
				}
				for _, name := range field.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.guarded[v] = info
					}
				}
				if tn != nil && !containsGuard(c.mutexes[tn], info) {
					c.mutexes[tn] = append(c.mutexes[tn], info)
				}
			}
			return true
		})
	}
}

func containsGuard(gs []guardInfo, g guardInfo) bool {
	for _, x := range gs {
		if x.mutex == g.mutex {
			return true
		}
	}
	return false
}

// fieldGuardDirective extracts the mutex name from a //qfix:guarded-by
// directive riding the field (doc comment or same-line comment).
func fieldGuardDirective(field *ast.Field) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			m := directiveRE.FindStringSubmatch(cmt.Text)
			if m == nil || m[1] != "guarded-by" {
				continue
			}
			name := strings.Fields(m[2])
			if len(name) == 0 {
				return "", 0
			}
			return name[0], cmt.Slash
		}
	}
	return "", 0
}

// lookupMutex finds the named field in the struct AST and reports
// whether it is a sync mutex (and which kind).
func (c *lockChecker) lookupMutex(st *ast.StructType, name string) (guardInfo, bool) {
	for _, field := range st.Fields.List {
		for _, fname := range field.Names {
			if fname.Name != name {
				continue
			}
			t := c.pass.TypesInfo.Types[field.Type].Type
			switch mutexKind(t) {
			case "Mutex":
				return guardInfo{mutex: name}, true
			case "RWMutex":
				return guardInfo{mutex: name, rw: true}, true
			}
			return guardInfo{}, false
		}
	}
	return guardInfo{}, false
}

// mutexKind returns "Mutex" or "RWMutex" for the sync types, "" else.
func mutexKind(t types.Type) string {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return obj.Name()
	}
	return ""
}

// --- the per-function lock-state walk ---

// A lockKey names one mutex instance as an access path: the root object
// plus the field path from it ("" for s.mu, "enc" for c.enc.mu).
type lockKey struct {
	root  types.Object
	path  string
	mutex string
}

const (
	holdShared    = 1
	holdExclusive = 2
)

type lockState map[lockKey]int

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps the weakest hold present in both states.
func intersect(a, b lockState) lockState {
	out := lockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				va = vb
			}
			out[k] = va
		}
	}
	return out
}

// checkFunc walks one declared function. Methods named *Locked are
// assumed entered with every annotated mutex of their receiver held.
func (c *lockChecker) checkFunc(fn *ast.FuncDecl) {
	entry := lockState{}
	if strings.HasSuffix(fn.Name.Name, "Locked") && fn.Recv != nil && len(fn.Recv.List) == 1 {
		if names := fn.Recv.List[0].Names; len(names) == 1 {
			recvObj := c.pass.TypesInfo.Defs[names[0]]
			if tn := receiverTypeName(c.pass, fn.Recv.List[0].Type); tn != nil && recvObj != nil {
				for _, g := range c.mutexes[tn] {
					entry[lockKey{recvObj, "", g.mutex}] = holdExclusive
				}
			}
		}
	}
	c.walkBlock(fn.Body.List, entry)
	c.drainQueue()
}

// drainQueue analyzes queued function literals lock-free; literals they
// themselves enqueue are drained too.
func (c *lockChecker) drainQueue() {
	for len(c.queue) > 0 {
		lit := c.queue[0]
		c.queue = c.queue[1:]
		if lit.Body != nil {
			c.walkBlock(lit.Body.List, lockState{})
		}
	}
}

func receiverTypeName(pass *Pass, e ast.Expr) *types.TypeName {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return nil
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// walkBlock runs the state machine over a statement list. It returns
// the fall-through state and whether every path through the list
// terminates (return/branch/infinite loop) before falling through.
func (c *lockChecker) walkBlock(stmts []ast.Stmt, state lockState) (lockState, bool) {
	for _, st := range stmts {
		var terminated bool
		state, terminated = c.walkStmt(st, state)
		if terminated {
			return nil, true
		}
	}
	return state, false
}

func (c *lockChecker) walkStmt(st ast.Stmt, state lockState) (lockState, bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if key, op, ok := c.lockOp(st.X); ok {
			c.applyLockOp(state, key, op)
			return state, false
		}
		c.scanExpr(st.X, state)
		return state, false
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			c.scanExpr(r, state)
		}
		for _, l := range st.Lhs {
			c.scanWriteTarget(l, state)
		}
		return state, false
	case *ast.IncDecStmt:
		c.scanWriteTarget(st.X, state)
		return state, false
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if _, isLit := n.(*ast.FuncLit); isLit {
					c.queue = append(c.queue, n.(*ast.FuncLit))
					return false
				}
				c.checkSelector(e, state, false)
			}
			return true
		})
		return state, false
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to function exit, so
		// it changes nothing in the forward walk. Other deferred calls
		// evaluate their arguments now; deferred closures run at exit
		// with unknown state and are analyzed lock-free.
		if _, op, ok := c.lockOp(st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return state, false
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.queue = append(c.queue, lit)
		} else {
			c.scanExpr(st.Call.Fun, state)
		}
		for _, a := range st.Call.Args {
			c.scanExpr(a, state)
		}
		return state, false
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.queue = append(c.queue, lit)
		} else {
			c.scanExpr(st.Call.Fun, state)
		}
		for _, a := range st.Call.Args {
			c.scanExpr(a, state)
		}
		return state, false
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.scanExpr(r, state)
		}
		return nil, true
	case *ast.BranchStmt:
		return nil, true
	case *ast.BlockStmt:
		return c.walkBlock(st.List, state)
	case *ast.IfStmt:
		if st.Init != nil {
			state, _ = c.walkStmt(st.Init, state)
		}
		c.scanExpr(st.Cond, state)
		thenState, thenTerm := c.walkBlock(st.Body.List, state.clone())
		elseState, elseTerm := state, false
		if st.Else != nil {
			elseState, elseTerm = c.walkStmt(st.Else, state.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return nil, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return intersect(thenState, elseState), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			state, _ = c.walkStmt(st.Init, state)
		}
		if st.Cond != nil {
			c.scanExpr(st.Cond, state)
		}
		bodyState, bodyTerm := c.walkBlock(st.Body.List, state.clone())
		if st.Post != nil && !bodyTerm {
			c.walkStmt(st.Post, bodyState)
		}
		if st.Cond == nil && !hasBreak(st.Body) {
			return nil, true // infinite loop: code after is unreachable
		}
		if bodyTerm {
			return state, false
		}
		return intersect(state, bodyState), false
	case *ast.RangeStmt:
		c.scanExpr(st.X, state)
		bodyState, bodyTerm := c.walkBlock(st.Body.List, state.clone())
		if bodyTerm {
			return state, false
		}
		return intersect(state, bodyState), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			state, _ = c.walkStmt(st.Init, state)
		}
		if st.Tag != nil {
			c.scanExpr(st.Tag, state)
		}
		return c.walkClauses(st.Body, state, true)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			state, _ = c.walkStmt(st.Init, state)
		}
		if st.Assign != nil {
			state, _ = c.walkStmt(st.Assign, state)
		}
		return c.walkClauses(st.Body, state, true)
	case *ast.SelectStmt:
		return c.walkClauses(st.Body, state, false)
	case *ast.SendStmt:
		c.scanExpr(st.Chan, state)
		c.scanExpr(st.Value, state)
		return state, false
	case *ast.LabeledStmt:
		return c.walkStmt(st.Stmt, state)
	case *ast.EmptyStmt:
		return state, false
	default:
		// Unknown statement kinds: scan expressions conservatively.
		ast.Inspect(st, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.queue = append(c.queue, lit)
				return false
			}
			if e, ok := n.(ast.Expr); ok {
				c.checkSelector(e, state, false)
			}
			return true
		})
		return state, false
	}
}

// walkClauses joins switch/select case bodies. mayFallThrough says the
// statement can execute no clause at all (a switch with no default), in
// which case the entry state joins the intersection.
func (c *lockChecker) walkClauses(body *ast.BlockStmt, state lockState, isSwitch bool) (lockState, bool) {
	var exits []lockState
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.scanExpr(e, state)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				// Comm clauses carry no lock ops; scan them for accesses.
				c.walkStmt(cl.Comm, state.clone())
			}
			stmts = cl.Body
		}
		exit, term := c.walkBlock(stmts, state.clone())
		if !term {
			exits = append(exits, exit)
		}
	}
	if isSwitch && !hasDefault {
		exits = append(exits, state)
	}
	if len(exits) == 0 {
		if len(body.List) == 0 {
			return state, false
		}
		return nil, true
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersect(out, e)
	}
	return out, false
}

// hasBreak reports whether the loop body contains an unlabeled break
// not swallowed by a nested loop/switch/select (conservatively: any
// break at all outside nested function literals counts).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok.String() == "break" {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockOp recognizes `path.mu.Lock()`-shaped calls on an annotated-kind
// mutex field and returns the key and method name.
func (c *lockChecker) lockOp(e ast.Expr) (lockKey, string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return lockKey{}, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	msel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	if mutexKind(c.pass.TypesInfo.Types[msel].Type) == "" {
		return lockKey{}, "", false
	}
	root, path, ok := accessPath(c.pass, msel.X)
	if !ok {
		return lockKey{}, "", false
	}
	return lockKey{root, path, msel.Sel.Name}, sel.Sel.Name, true
}

func (c *lockChecker) applyLockOp(state lockState, key lockKey, op string) {
	switch op {
	case "Lock":
		state[key] = holdExclusive
	case "RLock":
		state[key] = holdShared
	case "Unlock", "RUnlock":
		delete(state, key)
	}
}

// accessPath resolves an expression like `s` or `c.enc` to its root
// object and dotted field path. Anything else (calls, indexing) is not
// a stable lock identity.
func accessPath(pass *Pass, e ast.Expr) (types.Object, string, bool) {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			parts = append([]string{x.Sel.Name}, parts...)
			e = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return nil, "", false
			}
			return obj, strings.Join(parts, "."), true
		default:
			return nil, "", false
		}
	}
}

// scanExpr checks every guarded-field read inside e (function literals
// are deferred to the lock-free queue).
func (c *lockChecker) scanExpr(e ast.Expr, state lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.queue = append(c.queue, n)
			return false
		case *ast.UnaryExpr:
			// Taking a guarded field's address lets it escape the lock's
			// scope; require the exclusive lock like a write.
			if n.Op.String() == "&" {
				if sel := stripToSelector(n.X); sel != nil && c.checkSelector(sel, state, true) {
					c.scanIndexes(n.X, state)
					return false
				}
			}
		case *ast.CallExpr:
			// delete(s.m, k) mutates the guarded map: a write.
			if isBuiltin(c.pass, n.Fun, "delete") && len(n.Args) == 2 {
				if sel := stripToSelector(n.Args[0]); sel != nil && c.checkSelector(sel, state, true) {
					c.scanExpr(n.Args[1], state)
					return false
				}
			}
		case *ast.SelectorExpr:
			if c.checkSelector(n, state, false) {
				// Guarded field handled; still scan the base and any
				// nested expressions (indexes) it hangs off.
				c.scanExpr(n.X, state)
				return false
			}
		}
		return true
	})
}

// scanWriteTarget classifies an assignment LHS: the base selector (if
// guarded) needs the exclusive lock, everything else in the expression
// (indexes, nested selectors) is read.
func (c *lockChecker) scanWriteTarget(l ast.Expr, state lockState) {
	if sel := stripToSelector(l); sel != nil && c.checkSelector(sel, state, true) {
		c.scanIndexes(l, state)
		c.scanExpr(sel.X, state)
		return
	}
	// Not a guarded-field target (plain ident, or unresolvable): the
	// expression's reads still need checking (e.g. s.m[k] indexes).
	c.scanIndexes(l, state)
	if sel, ok := l.(*ast.SelectorExpr); ok {
		c.scanExpr(sel.X, state)
	}
}

// scanIndexes checks the index expressions hanging off an assignable
// chain (x[i].f[j] = ...): they are reads.
func (c *lockChecker) scanIndexes(e ast.Expr, state lockState) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			c.scanExpr(x.Index, state)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return
		}
	}
}

// stripToSelector unwraps an assignable chain (x[i], *x, (x)) down to
// the base selector expression, if any.
func stripToSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// checkSelector verifies one selector access against the lock state if
// it resolves to a guarded field; it reports a violation and returns
// whether the selector was a guarded field.
func (c *lockChecker) checkSelector(e ast.Expr, state lockState, write bool) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fieldVar, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return false
	}
	info, ok := c.guarded[fieldVar]
	if !ok {
		return false
	}
	root, path, resolvable := accessPath(c.pass, sel.X)
	verb := "read"
	if write {
		verb = "write to"
	}
	if !resolvable {
		c.pass.Reportf(sel.Pos(),
			"cannot prove %s.%s is accessed with %s held: receiver is not a plain field path; annotate //qfix:lock-ok with why this %s is safe",
			render(sel.X), sel.Sel.Name, info.mutex, verb)
		return true
	}
	have := state[lockKey{root, path, info.mutex}]
	need := holdExclusive
	if !write && info.rw {
		need = holdShared
	}
	if have >= need {
		return true
	}
	lockName := info.mutex
	hint := "hold " + lockName
	if !write && info.rw {
		hint = "hold " + lockName + " (RLock suffices for reads)"
	}
	c.pass.Reportf(sel.Pos(),
		"%s %s.%s without holding %s (field is //qfix:guarded-by %s); %s or annotate //qfix:lock-ok with why this access is safe",
		verb, render(sel.X), sel.Sel.Name, lockName, lockName, hint)
	return true
}

// render prints a small expression for diagnostics.
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return render(x.X)
	case *ast.StarExpr:
		return "*" + render(x.X)
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.CallExpr:
		return render(x.Fun) + "(...)"
	default:
		return "expr"
	}
}
