package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata/spanend", analysis.SpanEnd, "repro/internal/core")
}
