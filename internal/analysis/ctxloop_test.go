package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, "testdata/ctxloop", analysis.CtxLoop, "repro/internal/dist")
}
