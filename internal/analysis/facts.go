package analysis

import "encoding/json"

// A FactSet is one package's exported analysis facts: properties of its
// declarations that downstream packages' passes consume. It is the
// suite's (much smaller) analogue of x/tools analysis facts, and it
// rides the same transport the go vet driver already provides — the
// per-unit .vetx files — so cross-package results work identically in
// standalone and -vettool mode.
type FactSet struct {
	// OrderDependent maps function keys ("Name" for package functions,
	// "Recv.Name" for methods) to a short note explaining why the
	// function's result depends on map iteration order. detmap exports
	// these and flags unsorted uses of such results at call sites in
	// other packages.
	OrderDependent map[string]string `json:"order_dependent,omitempty"`
}

// Empty reports whether the set carries no facts (so drivers can skip
// serializing it).
func (fs *FactSet) Empty() bool {
	return fs == nil || len(fs.OrderDependent) == 0
}

// EncodeFacts serializes a fact set for a .vetx file. An empty set
// encodes to nil: the driver still writes the (empty) file, and
// DecodeFacts accepts it back.
func EncodeFacts(fs *FactSet) ([]byte, error) {
	if fs.Empty() {
		return nil, nil
	}
	return json.Marshal(fs)
}

// DecodeFacts parses a .vetx payload produced by EncodeFacts. Empty
// payloads (including the zero-byte files written for factless units)
// yield an empty set.
func DecodeFacts(data []byte) (*FactSet, error) {
	fs := &FactSet{}
	if len(data) == 0 {
		return fs, nil
	}
	if err := json.Unmarshal(data, fs); err != nil {
		return nil, err
	}
	return fs, nil
}

// A FactStore holds the fact sets visible to one analysis run: the
// facts of every already-analyzed dependency plus the facts the current
// package is exporting. Standalone mode shares one store across the
// whole load (go list -deps guarantees dependencies are analyzed
// first); vettool mode hydrates a fresh store from the driver's
// PackageVetx files per compilation unit.
type FactStore struct {
	byPath map[string]*FactSet
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byPath: map[string]*FactSet{}}
}

// Package returns the fact set recorded for the import path, or an
// empty set; the result is read-only for consumers.
func (s *FactStore) Package(path string) *FactSet {
	if s == nil {
		return &FactSet{}
	}
	if fs, ok := s.byPath[path]; ok {
		return fs
	}
	return &FactSet{}
}

// Add records (or replaces) the fact set for an import path.
func (s *FactStore) Add(path string, fs *FactSet) {
	if s == nil || fs == nil {
		return
	}
	s.byPath[path] = fs
}

// exporting returns the mutable fact set under construction for path,
// creating it on first use. Passes reach it via Pass.ExportOrderFact.
func (s *FactStore) exporting(path string) *FactSet {
	if fs, ok := s.byPath[path]; ok {
		return fs
	}
	fs := &FactSet{}
	s.byPath[path] = fs
	return fs
}
