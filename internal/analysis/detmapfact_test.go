package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDetMapFacts drives the interprocedural half of detmap: the src
// fixture (checked as a range-scoped encode package) exports
// order-dependence facts for functions returning map-range output, and
// the use fixture (checked as the fact-consuming dist package, which
// imports src by its scoped path) is flagged exactly where those
// results flow onward unsorted.
func TestDetMapFacts(t *testing.T) {
	analysistest.RunDirs(t, []*analysis.Analyzer{analysis.DetMap},
		analysistest.Dir{Path: "testdata/detmapfact/src", ImportPath: "repro/internal/encode"},
		analysistest.Dir{Path: "testdata/detmapfact/use", ImportPath: "repro/internal/dist"},
	)
}
