package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop flags the exact shape of the ctx-deaf bugs fixed in PRs 3–4
// (InProc.Do ignoring cancellation, loops pinning budget after the
// coordinator moved on): blocking loops and goroutines in the
// concurrent packages that neither select on nor consult a
// context.Context. Three triggers:
//
//   - a loop containing a blocking channel operation (send, receive,
//     range over a channel, or a select with neither default nor a
//     context case) with no context value mentioned anywhere in the
//     loop;
//   - an unconditional `for { ... }` loop with no context mention —
//     even without channel ops it can spin past cancellation;
//   - a goroutine whose body performs blocking channel operations
//     outside any loop, with no context mention.
//
// Mentioning a context (ctx.Done, ctx.Err, passing ctx onward) is
// deliberately sufficient: the analyzer enforces that cancellation was
// considered at the site, not a particular select shape. Sites whose
// cancellation story lives elsewhere (drained channels, close-based
// teardown) carry //qfix:ctx-ok with that story spelled out.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "flag blocking loops, channel operations, and goroutines that never consult a " +
		"context.Context and so cannot be cancelled",
	Directive: "ctx-ok",
	Packages:  []string{"internal/dist", "internal/sched", "internal/core", "internal/qfixd"},
	Run:       runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				return !checkLoop(pass, n, n.Body, n.Cond == nil)
			case *ast.RangeStmt:
				return !checkLoop(pass, n, n.Body, false)
			case *ast.GoStmt:
				checkGoroutine(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkLoop reports a ctx-deaf loop and returns whether it fired; a
// fired report swallows the loop's subtree so nested loops aren't
// re-reported under the same fix.
func checkLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt, infinite bool) bool {
	if mentionsContext(pass, loop) {
		return false
	}
	rng, isRange := loop.(*ast.RangeStmt)
	blocking := hasBlockingChanOp(pass, body)
	if isRange && !blocking {
		// Ranging over a channel is itself a blocking receive.
		if t := pass.TypesInfo.Types[rng.X].Type; t != nil {
			_, blocking = t.Underlying().(*types.Chan)
		}
	}
	switch {
	case blocking:
		pass.Reportf(loop.Pos(),
			"loop blocks on channel operations but never consults a context.Context; select on ctx.Done or annotate //qfix:ctx-ok with the cancellation story")
	case infinite:
		pass.Reportf(loop.Pos(),
			"unconditional loop never consults a context.Context; check ctx.Err in the loop or annotate //qfix:ctx-ok with the cancellation story")
	default:
		return false
	}
	return true
}

// checkGoroutine flags `go func(){...}` bodies that block on channels
// outside any loop without mentioning a context (loops inside the body
// are checkLoop's job).
func checkGoroutine(pass *Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok || lit.Body == nil {
		return
	}
	if mentionsContext(pass, lit.Body) {
		return
	}
	if scanBlockingChanOps(pass, lit.Body, true) {
		pass.Reportf(g.Pos(),
			"goroutine blocks on channel operations but never consults a context.Context; thread a ctx or annotate //qfix:ctx-ok with the cancellation story")
	}
}

// mentionsContext reports whether any expression under n has type
// context.Context (including uses inside nested function literals:
// handing the ctx to spawned work counts as having a story).
func mentionsContext(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasBlockingChanOp scans a subtree for channel operations that can
// block, skipping nested function literals (their bodies run on other
// goroutines) and the comm clauses of select statements that have a
// default case (those never block).
func hasBlockingChanOp(pass *Pass, n ast.Node) bool {
	return scanBlockingChanOps(pass, n, false)
}

// scanBlockingChanOps is hasBlockingChanOp with an option to skip
// loops, for goroutine bodies where loops are checkLoop's job.
func scanBlockingChanOps(pass *Pass, n ast.Node, skipLoops bool) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		if skipLoops {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return false
			}
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				found = true
				return false
			}
			// Non-blocking select: only the clause bodies matter.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
			}
			return false
		}
		if isBlockingChanNode(pass, n) {
			found = true
			return false
		}
		return true
	}
	ast.Inspect(n, walk)
	return found
}

// isBlockingChanNode reports whether n is, by itself, a potentially
// blocking channel operation: a send, a receive, or a range over a
// channel.
func isBlockingChanNode(pass *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		if t := pass.TypesInfo.Types[n.X].Type; t != nil {
			_, ok := t.Underlying().(*types.Chan)
			return ok
		}
	}
	return false
}
