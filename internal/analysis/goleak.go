package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeak is the resident-daemon generalization of ctxloop: goroutines
// launched in the long-lived packages must have a provable termination
// path, or the daemon accretes them forever. A `go` statement passes
// when the goroutine's body (a function literal, or a same-package
// function/method resolved from the call) shows one of:
//
//   - a context.Context mentioned at the body's own level (nested
//     literals excluded — handing a ctx to *another* goroutine is not
//     this goroutine's exit path);
//   - a sync.WaitGroup.Done call at the body's own level (the join side
//     then owns proving termination — and is what Close/Wait blocks on);
//   - no suspect loops at all: every loop is either bounded with no
//     blocking channel operations, or a range over a channel (a
//     close-owned loop — the channel's closer ends it).
//
// A loop is suspect when it is unconditional (`for { ... }`) or blocks
// on channel operations, and is not a channel range. Goroutines whose
// lifecycle is genuinely owned elsewhere (a read loop that exits when
// Close tears the connection down) carry //qfix:leak-ok telling that
// story. Straight-line goroutine bodies are not flagged here — a
// blocking send/receive without a loop is ctxloop's beat.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "flag goroutines in long-lived packages with no provable termination path " +
		"(no ctx, no WaitGroup join, no close-owned channel range)",
	Directive: "leak-ok",
	Packages: []string{
		"internal/qfixd", "internal/dist", "internal/sched", "internal/obs",
	},
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass, g, decls)
			if body == nil {
				return true // external callee: its package owns the proof
			}
			kind := suspectLoop(pass, body)
			if kind == "" {
				return true
			}
			if topLevelMentionsContext(pass, body) || callsWaitGroupDone(pass, body) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine has no provable termination path: %s with no ctx, no WaitGroup.Done, and no close-owned channel range; annotate //qfix:leak-ok with the lifecycle story",
				kind)
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes the package's function declarations by their
// types object, so `go s.handle(conn)` resolves to handle's body.
func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// goroutineBody resolves the block a `go` statement will run: the
// literal's body, or the declared body of a same-package callee.
func goroutineBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// suspectLoop scans the body (nested function literals excluded: they
// run on yet other goroutines) for a loop with no intrinsic exit and
// describes the first one found, or returns "".
func suspectLoop(pass *Pass, body *ast.BlockStmt) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				kind = "an unconditional loop"
				return false
			}
			if hasBlockingChanOp(pass, n.Body) {
				kind = "a loop blocking on channel operations"
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					// Close-owned: skip the range header, but keep
					// scanning the body for nested suspects.
					return true
				}
			}
			if hasBlockingChanOp(pass, n.Body) {
				kind = "a loop blocking on channel operations"
				return false
			}
		}
		return true
	})
	return kind
}

// topLevelMentionsContext is mentionsContext restricted to the body's
// own level: context uses inside nested function literals don't count
// as this goroutine's termination story.
func topLevelMentionsContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := pass.TypesInfo.Types[e]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsWaitGroupDone reports a sync.WaitGroup Done call at the body's
// own level (including deferred): the goroutine participates in a join.
func callsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		t := pass.TypesInfo.Types[sel.X].Type
		if t == nil {
			return true
		}
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
