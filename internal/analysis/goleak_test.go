package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata/goleak", analysis.GoLeak, "repro/internal/qfixd")
}

// TestGoLeakScope pins the package filter: short-lived CLI packages may
// launch fire-and-forget goroutines without a termination proof.
func TestGoLeakScope(t *testing.T) {
	pkg, err := analysis.NewLoader(".").LoadDir("testdata/goleak", "repro/internal/query")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{analysis.GoLeak}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package produced diagnostic: %s", d.String())
	}
}
