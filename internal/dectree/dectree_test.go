package dectree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestBuildSeparableConcept(t *testing.T) {
	// Concept: a0 in [30, 60].
	var features [][]float64
	var labels []bool
	for v := 0.0; v <= 100; v += 2 {
		features = append(features, []float64{v, 50})
		labels = append(labels, v >= 30 && v <= 60)
	}
	tree := Build(features, labels, Options{})
	errs := 0
	for i, f := range features {
		if tree.Predict(f) != labels[i] {
			errs++
		}
	}
	if errs > 2 {
		t.Errorf("tree misclassifies %d/%d training samples", errs, len(features))
	}
	cond := tree.Cond()
	// The learned condition must behave like the concept on fresh points.
	for _, v := range []float64{10, 35, 45, 59, 75} {
		want := v >= 30 && v <= 60
		if got := cond.Eval([]float64{v, 50}); got != want {
			t.Errorf("cond(%v) = %v, want %v", v, got, want)
		}
	}
}

func TestPureLeaves(t *testing.T) {
	tree := Build([][]float64{{1}, {2}, {3}}, []bool{true, true, true}, Options{})
	if !tree.Predict([]float64{99}) {
		t.Error("all-true training should predict true")
	}
	if _, ok := tree.Cond().(query.True); !ok {
		t.Errorf("all-true concept should be TRUE, got %T", tree.Cond())
	}
	tree2 := Build([][]float64{{1}, {2}, {3}}, []bool{false, false, false}, Options{})
	if tree2.Predict([]float64{2}) {
		t.Error("all-false training should predict false")
	}
	or, ok := tree2.Cond().(*query.Or)
	if !ok || len(or.Kids) != 0 {
		t.Errorf("all-false concept should be empty Or (FALSE), got %#v", tree2.Cond())
	}
}

func TestHighSelectivityFailureMode(t *testing.T) {
	// Appendix A: a single changed tuple among many is ignored by the
	// learner (imbalanced classes + MinLeaf), yielding rule FALSE.
	var features [][]float64
	labels := make([]bool, 200)
	for i := 0; i < 200; i++ {
		features = append(features, []float64{float64(i)})
	}
	labels[117] = true
	tree := Build(features, labels, Options{})
	matched := 0
	for _, f := range features {
		if tree.Predict(f) {
			matched++
		}
	}
	if matched != 0 {
		t.Errorf("expected the singleton class to be ignored, matched %d", matched)
	}
}

func TestRulesRoundTrip(t *testing.T) {
	// Predictions and Cond().Eval must agree everywhere.
	rng := rand.New(rand.NewSource(7))
	var features [][]float64
	var labels []bool
	for i := 0; i < 150; i++ {
		f := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
		features = append(features, f)
		labels = append(labels, f[0] > 40 && f[1] <= 70)
	}
	tree := Build(features, labels, Options{})
	cond := tree.Cond()
	for i := 0; i < 500; i++ {
		x := []float64{float64(rng.Intn(100)), float64(rng.Intn(100))}
		if tree.Predict(x) != cond.Eval(x) {
			t.Fatalf("Predict and Cond disagree on %v", x)
		}
	}
}

// Property: tree predictions always agree with the extracted condition.
func TestQuickPredictCondAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 10
		var features [][]float64
		var labels []bool
		for i := 0; i < n; i++ {
			features = append(features, []float64{float64(rng.Intn(50)), float64(rng.Intn(50))})
			labels = append(labels, rng.Intn(2) == 0)
		}
		tree := Build(features, labels, Options{MaxDepth: 5})
		cond := tree.Cond()
		for i := 0; i < 100; i++ {
			x := []float64{float64(rng.Intn(50)), float64(rng.Intn(50))}
			if tree.Predict(x) != cond.Eval(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRepairQueryRecoversSimpleCorruption(t *testing.T) {
	// Favourable case for DecTree: wide range, constant SET, many changed
	// tuples. It should roughly recover the query.
	w := workload.MustGenerate(workload.Config{ND: 200, Na: 3, Nq: 1, Seed: 31, Range: 80})
	in, err := w.MakeInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) < 5 {
		t.Skip("not enough signal for this seed")
	}
	repaired, err := RepairQuery(w.D0, in.Dirty[0].(*query.Update), in.TruthFinal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := in.Evaluate([]query.Query{repaired})
	if err != nil {
		t.Fatal(err)
	}
	// DecTree is lossy; demand rough recovery only (F1 >= 0.5 in its
	// favourable regime, cf. Figure 10's starting point).
	if acc.F1 < 0.5 {
		t.Errorf("F1 = %v (%+v)", acc.F1, acc)
	}
}

func TestRepairQuerySetConstant(t *testing.T) {
	// Hand-built: truth sets a1=77 for a0 >= 50; dirty used 12 and a
	// wrong predicate. The learner must recover both the region and 77.
	sch := relation.MustSchema("T", []string{"a0", "a1"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 100; i++ {
		d0.MustInsert(float64(i), 5)
	}
	truthQ := query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(77)}},
		query.AttrPred(0, query.GE, 50))
	dirtyQ := query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(12)}},
		query.AttrPred(0, query.GE, 20))
	truth, err := query.Replay([]query.Query{truthQ}, d0)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := RepairQuery(d0, dirtyQ, truth, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Set[0].Expr.Const != 77 {
		t.Errorf("SET const = %v, want 77", repaired.Set[0].Expr.Const)
	}
	repFinal, err := query.Replay([]query.Query{repaired}, d0)
	if err != nil {
		t.Fatal(err)
	}
	diffs := relation.DiffTables(repFinal, truth, 1e-9)
	if len(diffs) > 4 {
		t.Errorf("repaired state differs from truth on %d tuples", len(diffs))
	}
}

func TestRepairQueryRelativeSet(t *testing.T) {
	// Relative clause: truth a1 = a1 + 10 for a0 <= 30; recover the +10.
	sch := relation.MustSchema("T", []string{"a0", "a1"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 80; i++ {
		d0.MustInsert(float64(i), float64(i%7))
	}
	truthQ := query.NewUpdate([]query.SetClause{{Attr: 1,
		Expr: query.NewLinExpr(10, query.Term{Attr: 1, Coef: 1})}},
		query.AttrPred(0, query.LE, 30))
	dirtyQ := query.NewUpdate([]query.SetClause{{Attr: 1,
		Expr: query.NewLinExpr(99, query.Term{Attr: 1, Coef: 1})}},
		query.AttrPred(0, query.LE, 55))
	truth, _ := query.Replay([]query.Query{truthQ}, d0)
	repaired, err := RepairQuery(d0, dirtyQ, truth, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Set[0].Expr.Const != 10 {
		t.Errorf("relative const = %v, want 10", repaired.Set[0].Expr.Const)
	}
}

func TestRepairQueryEmptyState(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a0"}, "")
	d0 := relation.NewTable(sch)
	q := query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.ConstExpr(1)}}, nil)
	if _, err := RepairQuery(d0, q, d0.Clone(), Options{}); err == nil {
		t.Error("empty state accepted")
	}
}
