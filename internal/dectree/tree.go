// Package dectree implements the decision-tree repair baseline of the
// QFix paper's Appendix A: a C4.5-style rule learner re-derives the WHERE
// clause of a single corrupted UPDATE from tuples labeled
// changed/unchanged, and a linear-system solve re-derives the SET clause.
// The appendix (and Figure 10) shows this baseline is fast but produces
// low-quality repairs; this package exists to reproduce that comparison.
package dectree

import (
	"math"
	"sort"

	"repro/internal/query"
)

// Options tunes tree induction.
type Options struct {
	// MaxDepth bounds tree depth (default 8).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2, C4.5's
	// default); it is the baseline's overfitting guard and the reason
	// highly selective updates are missed (Appendix A, "High
	// Selectivity, Low Precision").
	MinLeaf int
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 8
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 2
	}
	return o
}

// Tree is a binary decision tree over numeric features with boolean
// labels.
type Tree struct {
	root *node
	opt  Options
}

type node struct {
	leaf  bool
	label bool
	attr  int
	thr   float64 // left: feature[attr] <= thr; right: > thr
	left  *node
	right *node
}

// Build induces a tree from the feature matrix (rows are samples) and
// labels using gain-ratio splitting on numeric thresholds.
func Build(features [][]float64, labels []bool, opt Options) *Tree {
	opt = opt.withDefaults()
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{opt: opt}
	t.root = t.grow(features, labels, idx, 0)
	return t
}

// grow recursively splits the sample set.
func (t *Tree) grow(features [][]float64, labels []bool, idx []int, depth int) *node {
	pos := 0
	for _, i := range idx {
		if labels[i] {
			pos++
		}
	}
	majority := pos*2 >= len(idx)
	if pos == 0 || pos == len(idx) || depth >= t.opt.MaxDepth || len(idx) < 2*t.opt.MinLeaf {
		return &node{leaf: true, label: majority}
	}

	attr, thr, ok := t.bestSplit(features, labels, idx)
	if !ok {
		return &node{leaf: true, label: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if features[i][attr] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < t.opt.MinLeaf || len(ri) < t.opt.MinLeaf {
		return &node{leaf: true, label: majority}
	}
	return &node{
		attr: attr, thr: thr,
		left:  t.grow(features, labels, li, depth+1),
		right: t.grow(features, labels, ri, depth+1),
	}
}

// entropy of a boolean split.
func entropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// bestSplit scans every attribute and candidate threshold, scoring by
// gain ratio (information gain normalized by split entropy, C4.5's
// criterion).
func (t *Tree) bestSplit(features [][]float64, labels []bool, idx []int) (int, float64, bool) {
	n := len(idx)
	posAll := 0
	for _, i := range idx {
		if labels[i] {
			posAll++
		}
	}
	h := entropy(posAll, n)
	bestGR, bestAttr, bestThr := 1e-9, -1, 0.0

	width := len(features[idx[0]])
	type vl struct {
		v   float64
		lab bool
	}
	vals := make([]vl, n)
	for attr := 0; attr < width; attr++ {
		for k, i := range idx {
			vals[k] = vl{features[i][attr], labels[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		posLeft, nLeft := 0, 0
		for k := 0; k < n-1; k++ {
			if vals[k].lab {
				posLeft++
			}
			nLeft++
			if vals[k].v == vals[k+1].v {
				continue
			}
			// Candidate threshold between distinct values.
			thr := (vals[k].v + vals[k+1].v) / 2
			hl := entropy(posLeft, nLeft)
			hr := entropy(posAll-posLeft, n-nLeft)
			gain := h - (float64(nLeft)*hl+float64(n-nLeft)*hr)/float64(n)
			split := entropy(nLeft, n)
			if split == 0 {
				continue
			}
			if gr := gain / split; gr > bestGR {
				bestGR, bestAttr, bestThr = gr, attr, thr
			}
		}
	}
	return bestAttr, bestThr, bestAttr >= 0
}

// Predict classifies one feature vector.
func (t *Tree) Predict(x []float64) bool {
	n := t.root
	for !n.leaf {
		if x[n.attr] <= n.thr {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Rule is a conjunction of threshold predicates describing one
// true-labeled leaf.
type Rule struct {
	Preds []RulePred
}

// RulePred is one decision on the path to a leaf.
type RulePred struct {
	Attr int
	LE   bool // true: attr <= Thr; false: attr > Thr
	Thr  float64
}

// Rules extracts the paths to all true leaves; their disjunction is the
// learned concept (the re-derived WHERE clause).
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(n *node, path []RulePred)
	walk = func(n *node, path []RulePred) {
		if n.leaf {
			if n.label {
				out = append(out, Rule{Preds: append([]RulePred(nil), path...)})
			}
			return
		}
		walk(n.left, append(path, RulePred{Attr: n.attr, LE: true, Thr: n.thr}))
		walk(n.right, append(path, RulePred{Attr: n.attr, LE: false, Thr: n.thr}))
	}
	walk(t.root, nil)
	return out
}

// Cond converts the learned rules into a query condition: an OR of ANDed
// comparison predicates (Appendix A, "Repairing the WHERE Clause").
// A tree with no true leaves yields the empty Or (i.e. FALSE), which is
// exactly the degenerate "rule FALSE" failure mode the appendix
// describes for highly selective updates.
func (t *Tree) Cond() query.Cond {
	rules := t.Rules()
	kids := make([]query.Cond, 0, len(rules))
	for _, r := range rules {
		preds := make([]query.Cond, 0, len(r.Preds))
		for _, p := range r.Preds {
			if p.LE {
				preds = append(preds, query.AttrPred(p.Attr, query.LE, p.Thr))
			} else {
				preds = append(preds, query.AttrPred(p.Attr, query.GT, p.Thr))
			}
		}
		switch len(preds) {
		case 0:
			return query.True{} // a bare true root: everything matches
		case 1:
			kids = append(kids, preds[0])
		default:
			kids = append(kids, query.NewAnd(preds...))
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return query.NewOr(kids...)
}
