package dectree

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// RepairQuery implements the two-step DecTree baseline (Appendix A) for a
// single-query log: learn the WHERE clause from changed/unchanged labels
// over D0, then solve a small linear system for the SET clause constants.
//
// d0 is the state before the corrupted query; truth is the correct state
// after it (in the appendix's setup, the dirty final state with the
// complete complaint set applied); dirty is the corrupted query whose
// SET-clause *structure* (which attributes, constant vs relative) is
// reused, mirroring how QFix repairs parameters rather than structure.
func RepairQuery(d0 *relation.Table, dirty *query.Update, truth *relation.Table, opt Options) (*query.Update, error) {
	// Label every D0 tuple: did it change between D0 and truth?
	var features [][]float64
	var labels []bool
	var changedIDs []int64
	d0.Rows(func(t relation.Tuple) {
		features = append(features, append([]float64(nil), t.Values...))
		after, ok := truth.Get(t.ID)
		changed := ok && !t.Equal(after, 1e-9)
		labels = append(labels, changed)
		if changed {
			changedIDs = append(changedIDs, t.ID)
		}
	})
	if len(features) == 0 {
		return nil, fmt.Errorf("dectree: empty initial state")
	}

	tree := Build(features, labels, opt)
	where := tree.Cond()

	// SET repair: each clause's constant comes from a linear system over
	// the changed tuples: target = expr(old) for the clause's attribute.
	repaired := dirty.Clone().(*query.Update)
	repaired.Where = where
	for si, sc := range repaired.Set {
		c, err := solveSetConst(sc, changedIDs, d0, truth)
		if err != nil {
			// Keep the dirty constant: no evidence to update it (e.g. the
			// tree matched nothing). This mirrors the baseline's failure
			// mode rather than hiding it.
			continue
		}
		repaired.Set[si].Expr.Const = c
		_ = si
	}
	return repaired, nil
}

// solveSetConst solves for the constant of one SET clause: for each
// changed tuple, target.Attr = (expr without const)(old) + c, a linear
// system in the single unknown c; solved by least squares (the mean of
// the per-tuple estimates), as in Appendix A's "simple linear system of
// equations".
func solveSetConst(sc query.SetClause, changedIDs []int64, d0, truth *relation.Table) (float64, error) {
	if len(changedIDs) == 0 {
		return 0, fmt.Errorf("dectree: no changed tuples")
	}
	sum, n := 0.0, 0
	for _, id := range changedIDs {
		before, ok1 := d0.Get(id)
		after, ok2 := truth.Get(id)
		if !ok1 || !ok2 {
			continue
		}
		base := 0.0
		for _, tm := range sc.Expr.Terms {
			base += tm.Coef * before.Values[tm.Attr]
		}
		sum += after.Values[sc.Attr] - base
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("dectree: no usable evidence")
	}
	return sum / float64(n), nil
}
