package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
)

func schema() *relation.Schema {
	return relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
}

func TestParseFigure2Log(t *testing.T) {
	s := schema()
	sql := `
		UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;
		INSERT INTO Taxes VALUES (85800, 21450, 0);
		UPDATE Taxes SET pay = income - owed
	`
	log, err := ParseLog(s, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 3 {
		t.Fatalf("got %d statements", len(log))
	}
	u1, ok := log[0].(*query.Update)
	if !ok {
		t.Fatalf("q1 is %T", log[0])
	}
	if len(u1.Set) != 1 || u1.Set[0].Attr != 1 {
		t.Errorf("q1 SET = %+v", u1.Set)
	}
	if got := u1.Set[0].Expr.Eval([]float64{1000, 0, 0}); got != 300 {
		t.Errorf("q1 SET expr eval = %v", got)
	}
	pr, ok := u1.Where.(*query.Pred)
	if !ok || pr.Op != query.GE || pr.RHS != 85700 {
		t.Errorf("q1 WHERE = %#v", u1.Where)
	}
	if _, ok := log[1].(*query.Insert); !ok {
		t.Errorf("q2 is %T", log[1])
	}
}

func TestParseDelete(t *testing.T) {
	q, err := Parse(schema(), "DELETE FROM Taxes WHERE owed > 100 AND pay <= 5")
	if err != nil {
		t.Fatal(err)
	}
	d := q.(*query.Delete)
	and, ok := d.Where.(*query.And)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("WHERE = %#v", d.Where)
	}
	if !d.Where.Eval([]float64{0, 101, 5}) {
		t.Error("cond should match")
	}
	if d.Where.Eval([]float64{0, 100, 5}) {
		t.Error("cond should not match")
	}
}

func TestParseNormalization(t *testing.T) {
	// Constant on the left, attributes on both sides.
	q := MustParse(schema(), "DELETE FROM Taxes WHERE 100 <= owed - 2*pay + 5")
	pr := q.(*query.Delete).Where.(*query.Pred)
	// 100 <= owed - 2*pay + 5  =>  100 - owed + 2*pay - 5 <= 0
	// canonical: (-owed + 2*pay) <= -95 ... normalizePred computes
	// lhs-rhs = 100 - (owed - 2 pay + 5) = 95 - owed + 2 pay
	// => terms (-owed + 2 pay) LE rhs 5-100 = -95
	if pr.Op != query.LE || pr.RHS != -95 {
		t.Errorf("normalized pred = %s", pr.String(schema()))
	}
	if !pr.Eval([]float64{0, 105, 0}) { // 100 <= 105-0+5 = 110: true
		t.Error("normalized pred wrong truth value")
	}
	if pr.Eval([]float64{0, 90, 0}) { // 100 <= 95: false
		t.Error("normalized pred wrong truth value (false case)")
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	a := MustParse(schema(), "UPDATE Taxes SET owed = 5 WHERE income BETWEEN 10 AND 20")
	b := MustParse(schema(), "UPDATE Taxes SET owed = 5 WHERE income IN [10, 20]")
	for name, q := range map[string]query.Query{"between": a, "in": b} {
		u := q.(*query.Update)
		if !u.Where.Eval([]float64{10, 0, 0}) || !u.Where.Eval([]float64{20, 0, 0}) {
			t.Errorf("%s: endpoints not inclusive", name)
		}
		if u.Where.Eval([]float64{9, 0, 0}) || u.Where.Eval([]float64{21, 0, 0}) {
			t.Errorf("%s: outside range matched", name)
		}
	}
}

func TestParseParenthesizedConditions(t *testing.T) {
	q := MustParse(schema(),
		"DELETE FROM Taxes WHERE (income < 5 OR owed > 10) AND pay = 0")
	w := q.(*query.Delete).Where
	if !w.Eval([]float64{1, 0, 0}) {
		t.Error("(T or F) and T should hold")
	}
	if w.Eval([]float64{1, 0, 1}) {
		t.Error("pay=1 should fail")
	}
	if w.Eval([]float64{50, 0, 0}) {
		t.Error("(F or F) and T should fail")
	}
}

func TestParenthesizedArithmeticNotCondition(t *testing.T) {
	q := MustParse(schema(), "DELETE FROM Taxes WHERE (income + owed) * 2 >= 10")
	pr, ok := q.(*query.Delete).Where.(*query.Pred)
	if !ok {
		t.Fatalf("WHERE = %#v", q.(*query.Delete).Where)
	}
	if !pr.Eval([]float64{3, 2, 0}) {
		t.Error("(3+2)*2 >= 10 should hold")
	}
	if pr.Eval([]float64{2, 2, 0}) {
		t.Error("(2+2)*2 >= 10 should fail")
	}
}

func TestParseDivisionAndNegation(t *testing.T) {
	q := MustParse(schema(), "UPDATE Taxes SET owed = -income / 4 + 100")
	u := q.(*query.Update)
	if got := u.Set[0].Expr.Eval([]float64{400, 0, 0}); got != 0 {
		t.Errorf("eval = %v, want 0", got)
	}
}

func TestParseErrors(t *testing.T) {
	s := schema()
	bad := []string{
		"",
		"SELECT * FROM Taxes",
		"UPDATE Nope SET owed = 1",
		"UPDATE Taxes SET bogus = 1",
		"UPDATE Taxes SET owed = income * owed",       // nonlinear
		"UPDATE Taxes SET owed = income / owed",       // nonconst divisor
		"UPDATE Taxes SET owed = income / 0",          // zero divisor
		"INSERT INTO Taxes VALUES (1, 2)",             // arity
		"INSERT INTO Taxes VALUES (income, 1, 2)",     // non-const
		"DELETE FROM Taxes WHERE 5 > 3",               // no attributes
		"DELETE FROM Taxes WHERE income >",            // truncated
		"DELETE FROM Taxes WHERE income ! 3",          // bad op
		"UPDATE Taxes SET owed = 1 WHERE income @ 3",  // bad char
		"UPDATE Taxes SET owed = 1 extra",             // trailing
		"DELETE FROM Taxes WHERE income IN [1 2]",     // missing comma
		"DELETE FROM Taxes WHERE income BETWEEN 1 OR", // bad between
	}
	for _, sql := range bad {
		if _, err := Parse(s, sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	q, err := Parse(schema(), "update taxes set OWED = 1 -- fix\n where INCOME >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind() != query.KindUpdate {
		t.Error("case-insensitive parse failed")
	}
	// attribute names are case sensitive (schema has lowercase)
	if _, err := Parse(schema(), "UPDATE Taxes SET owed = 1"); err != nil {
		t.Errorf("lowercase attr failed: %v", err)
	}
}

func TestPrintParseFixpoint(t *testing.T) {
	s := schema()
	stmts := []string{
		"UPDATE Taxes SET owed = 0.3 * income WHERE income >= 85700",
		"UPDATE Taxes SET pay = income - owed",
		"UPDATE Taxes SET owed = owed + 5, pay = 2 WHERE income < 10 AND owed >= 3",
		"INSERT INTO Taxes VALUES (85800, 21450, 0)",
		"DELETE FROM Taxes WHERE income < 5 OR (owed >= 2 AND pay = 0)",
		"DELETE FROM Taxes",
	}
	for _, sql := range stmts {
		q1, err := Parse(s, sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		printed := q1.String(s)
		q2, err := Parse(s, printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if got := q2.String(s); got != printed {
			t.Errorf("fixpoint broken:\n  first:  %q\n  second: %q", printed, got)
		}
	}
}

// randomCond builds a random condition tree for the property test.
func randomCond(rng *rand.Rand, width, depth int) query.Cond {
	if depth <= 0 || rng.Intn(3) == 0 {
		lhs := query.AttrExpr(rng.Intn(width))
		if rng.Intn(4) == 0 {
			lhs = query.NewLinExpr(0,
				query.Term{Attr: rng.Intn(width), Coef: float64(rng.Intn(5) + 1)},
				query.Term{Attr: rng.Intn(width), Coef: -float64(rng.Intn(5) + 1)})
			if lhs.IsConst() { // coefficients cancelled
				lhs = query.AttrExpr(rng.Intn(width))
			}
		}
		ops := []query.CmpOp{query.EQ, query.LE, query.GE, query.LT, query.GT}
		return query.NewPred(lhs, ops[rng.Intn(len(ops))], float64(rng.Intn(200)-100))
	}
	n := rng.Intn(2) + 2
	kids := make([]query.Cond, n)
	for i := range kids {
		kids[i] = randomCond(rng, width, depth-1)
	}
	if rng.Intn(2) == 0 {
		return query.NewAnd(kids...)
	}
	return query.NewOr(kids...)
}

// Property: printing any random supported query and reparsing yields a
// query with identical behaviour on random tuples, and printing is a
// fixpoint.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	s := schema()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q query.Query
		switch rng.Intn(3) {
		case 0:
			nset := rng.Intn(2) + 1
			set := make([]query.SetClause, 0, nset)
			seen := map[int]bool{}
			for len(set) < nset {
				a := rng.Intn(3)
				if seen[a] {
					continue
				}
				seen[a] = true
				set = append(set, query.SetClause{Attr: a,
					Expr: query.NewLinExpr(float64(rng.Intn(100)),
						query.Term{Attr: rng.Intn(3), Coef: float64(rng.Intn(3) + 1)})})
			}
			q = query.NewUpdate(set, randomCond(rng, 3, 2))
		case 1:
			q = query.NewInsert(float64(rng.Intn(100)), float64(rng.Intn(100)), float64(rng.Intn(100)))
		default:
			q = query.NewDelete(randomCond(rng, 3, 2))
		}
		printed := q.String(s)
		q2, err := Parse(s, printed)
		if err != nil {
			t.Logf("parse error on %q: %v", printed, err)
			return false
		}
		if q2.String(s) != printed {
			t.Logf("fixpoint broken: %q -> %q", printed, q2.String(s))
			return false
		}
		// Behavioural equivalence on random tuples.
		for i := 0; i < 20; i++ {
			vals := []float64{float64(rng.Intn(200) - 100), float64(rng.Intn(200) - 100), float64(rng.Intn(200) - 100)}
			switch v := q.(type) {
			case *query.Update:
				if v.Where.Eval(vals) != q2.(*query.Update).Where.Eval(vals) {
					return false
				}
			case *query.Delete:
				if v.Where.Eval(vals) != q2.(*query.Delete).Where.Eval(vals) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestParseLogSemicolons(t *testing.T) {
	log, err := ParseLog(schema(), ";;UPDATE Taxes SET owed = 1;;DELETE FROM Taxes;")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("got %d statements", len(log))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse(schema(), "not sql")
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("1.5e3 2E-2 .5 42")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1500, 0.02, 0.5, 42}
	var got []float64
	for _, tk := range toks {
		if tk.kind == tokNumber {
			got = append(got, tk.num)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("num %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := lex("1.2.3"); err == nil {
		t.Error("bad number accepted")
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := lex("a $ b"); err == nil {
		t.Error("garbage accepted")
	}
	if !strings.Contains(func() string { _, e := lex("#"); return e.Error() }(), "unexpected") {
		t.Error("error message unhelpful")
	}
}
