package sqlparse

import (
	"os"
	"strings"
	"testing"

	"repro/internal/relation"
)

// FuzzParseRoundTrip is the native fuzz target behind the
// testing/quick properties above: any input the parser accepts must
// print to a canonical SQL string that re-parses, and that canonical
// form must be a fixed point (printing the re-parse yields the same
// string). The seed corpus is the demo query history plus statements
// covering every query kind and operator the grammar knows.
//
// Run locally with
//
//	go test -fuzz=FuzzParseRoundTrip -fuzztime=30s ./internal/sqlparse/
//
// CI runs a short smoke (see .github/workflows/ci.yml) so the target
// itself cannot rot.
func FuzzParseRoundTrip(f *testing.F) {
	for _, s := range []string{
		"UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700",
		"UPDATE Taxes SET owed = owed + 100, pay = income - owed WHERE owed BETWEEN 1 AND 5",
		"INSERT INTO Taxes VALUES (85800, 21450, 0)",
		"DELETE FROM Taxes WHERE (income < 1 OR owed > 2) AND pay = 3",
		"DELETE FROM Taxes WHERE income IN [1, 5]",
		"UPDATE Taxes SET pay = 0 - owed",
		"update taxes set pay = income where income <= 9500;",
		"", ";", "WHERE", "UPDATE Taxes SET",
	} {
		f.Add(s)
	}
	// The demo history doubles as corpus: real statements reach deeper
	// parser states than synthetic ones.
	if data, err := os.ReadFile("../../cmd/qfix/testdata/history.sql"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				f.Add(line)
			}
		}
	}
	sch := relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(sch, input)
		if err != nil {
			// Rejected inputs only need to not panic; exercise the log
			// splitter on them too.
			_, _ = ParseLog(sch, input)
			return
		}
		printed := q.String(sch)
		q2, err := Parse(sch, printed)
		if err != nil {
			t.Fatalf("accepted %q but cannot re-parse its canonical print %q: %v", input, printed, err)
		}
		if printed2 := q2.String(sch); printed2 != printed {
			t.Fatalf("canonical print is not a fixed point: %q prints %q which prints %q", input, printed, printed2)
		}
	})
}
