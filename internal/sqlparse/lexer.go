// Package sqlparse parses the SQL subset QFix supports (paper §3:
// UPDATE/INSERT/DELETE, WHERE clauses of AND/OR-composed predicates over
// linear expressions, linear SET clauses) into the query model. It exists
// so the CLI, examples, and tests can express logs as text; queries print
// back to SQL via query.Query.String, and print→parse→print is a fixpoint.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokSymbol
)

// token is one lexeme with its source offset (for error messages).
type token struct {
	kind tokKind
	text string // keywords upper-cased, symbols literal
	num  float64
	pos  int
}

var keywords = map[string]bool{
	"UPDATE": true, "SET": true, "WHERE": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "FROM": true,
	"AND": true, "OR": true, "BETWEEN": true,
	"TRUE": true, "FALSE": true, "IN": true, "NOT": true,
}

// lex splits input into tokens. It returns an error for any character
// outside the supported subset.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' ||
				input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			text := input[start:i]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q at %d", text, start)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			text := input[start:i]
			up := strings.ToUpper(text)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: text, pos: start})
			}
		case c == '<' || c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else if c == '<' && i+1 < n && input[i+1] == '>' {
				toks = append(toks, token{kind: tokSymbol, text: "<>", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
				i++
			}
		case c == '!' && i+1 < n && input[i+1] == '=':
			toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
			i += 2
		case strings.ContainsRune("=,()+-*/;[]", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
