package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// Property: the parser never panics — arbitrary byte soup yields an
// error or a query, not a crash.
func TestQuickParserNeverPanics(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(sch, input)
		_, _ = ParseLog(sch, input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: mutations of valid statements never panic either (these
// reach deeper parser states than random bytes).
func TestQuickParserMutationRobust(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "b"}, "")
	seeds := []string{
		"UPDATE T SET a = 1 WHERE b >= 2",
		"UPDATE T SET a = a + 1, b = 2 * a WHERE a BETWEEN 1 AND 5",
		"INSERT INTO T VALUES (1, 2)",
		"DELETE FROM T WHERE (a < 1 OR b > 2) AND a = 3",
		"DELETE FROM T WHERE a IN [1, 5]",
	}
	tokens := []string{"UPDATE", "SET", "WHERE", "(", ")", "+", "-", "*", "/",
		",", ";", "=", "<=", ">=", "a", "b", "T", "1.5", "AND", "OR", "[", "]"}
	f := func(seed int64) (ok bool) {
		rng := rand.New(rand.NewSource(seed))
		s := seeds[rng.Intn(len(seeds))]
		parts := strings.Fields(s)
		switch rng.Intn(4) {
		case 0: // delete a token
			if len(parts) > 1 {
				i := rng.Intn(len(parts))
				parts = append(parts[:i], parts[i+1:]...)
			}
		case 1: // duplicate a token
			i := rng.Intn(len(parts))
			parts = append(parts[:i+1], parts[i:]...)
		case 2: // replace a token
			parts[rng.Intn(len(parts))] = tokens[rng.Intn(len(tokens))]
		default: // insert a random token
			i := rng.Intn(len(parts) + 1)
			parts = append(parts[:i], append([]string{tokens[rng.Intn(len(tokens))]}, parts[i:]...)...)
		}
		input := strings.Join(parts, " ")
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		if q, err := Parse(sch, input); err == nil {
			// Whatever parsed must print and re-parse cleanly.
			printed := q.String(sch)
			if _, err := Parse(sch, printed); err != nil {
				t.Logf("accepted %q but cannot re-parse its print %q: %v", input, printed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
