package sqlparse

import (
	"fmt"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// Parser parses statements against a fixed schema, which resolves
// attribute names to positions.
type Parser struct {
	schema *relation.Schema
	toks   []token
	pos    int
	src    string
}

// Parse parses a single statement.
func Parse(schema *relation.Schema, sql string) (query.Query, error) {
	p, err := newParser(schema, sql)
	if err != nil {
		return nil, err
	}
	q, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after statement")
	}
	return q, nil
}

// ParseLog parses a sequence of statements separated by semicolons or
// newlines into a query log.
func ParseLog(schema *relation.Schema, sql string) ([]query.Query, error) {
	p, err := newParser(schema, sql)
	if err != nil {
		return nil, err
	}
	var log []query.Query
	for !p.at(tokEOF, "") {
		if p.accept(tokSymbol, ";") {
			continue
		}
		q, err := p.statement()
		if err != nil {
			return nil, fmt.Errorf("statement %d: %w", len(log)+1, err)
		}
		log = append(log, q)
	}
	return log, nil
}

// MustParse is Parse that panics on error, for statically known inputs.
func MustParse(schema *relation.Schema, sql string) query.Query {
	q, err := Parse(schema, sql)
	if err != nil {
		panic(err)
	}
	return q
}

// MustParseLog is ParseLog that panics on error.
func MustParseLog(schema *relation.Schema, sql string) []query.Query {
	log, err := ParseLog(schema, sql)
	if err != nil {
		panic(err)
	}
	return log
}

func newParser(schema *relation.Schema, sql string) (*Parser, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	return &Parser{schema: schema, toks: toks, src: sql}, nil
}

func (p *Parser) cur() token  { return p.toks[p.pos] }
func (p *Parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *Parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// statement := update | insert | delete
func (p *Parser) statement() (query.Query, error) {
	switch {
	case p.accept(tokKeyword, "UPDATE"):
		return p.update()
	case p.accept(tokKeyword, "INSERT"):
		return p.insert()
	case p.accept(tokKeyword, "DELETE"):
		return p.delete()
	default:
		return nil, p.errf("expected UPDATE, INSERT or DELETE, found %q", p.cur().text)
	}
}

// resolveAttr resolves an attribute name, preferring an exact match and
// falling back to case-insensitive comparison (SQL identifiers are
// conventionally case-insensitive).
func (p *Parser) resolveAttr(name string) (int, bool) {
	if i, ok := p.schema.Index(name); ok {
		return i, true
	}
	for i := 0; i < p.schema.Width(); i++ {
		if strings.EqualFold(p.schema.Attr(i), name) {
			return i, true
		}
	}
	return 0, false
}

func (p *Parser) tableName() error {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if !strings.EqualFold(t.text, p.schema.Name()) {
		return fmt.Errorf("sqlparse: unknown table %q (schema is %q)", t.text, p.schema.Name())
	}
	return nil
}

func (p *Parser) update() (query.Query, error) {
	if err := p.tableName(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	var set []query.SetClause
	for {
		attrTok, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		attr, ok := p.resolveAttr(attrTok.text)
		if !ok {
			return nil, fmt.Errorf("sqlparse: unknown attribute %q", attrTok.text)
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		expr, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		set = append(set, query.SetClause{Attr: attr, Expr: expr})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	cond, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	return query.NewUpdate(set, cond), nil
}

func (p *Parser) insert() (query.Query, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	if err := p.tableName(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var vals []float64
	for {
		e, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if !e.IsConst() {
			return nil, p.errf("INSERT values must be constants")
		}
		vals = append(vals, e.Const)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(vals) != p.schema.Width() {
		return nil, fmt.Errorf("sqlparse: INSERT arity %d != schema width %d",
			len(vals), p.schema.Width())
	}
	return query.NewInsert(vals...), nil
}

func (p *Parser) delete() (query.Query, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	if err := p.tableName(); err != nil {
		return nil, err
	}
	cond, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	return query.NewDelete(cond), nil
}

func (p *Parser) optionalWhere() (query.Cond, error) {
	if !p.accept(tokKeyword, "WHERE") {
		return query.True{}, nil
	}
	return p.orCond()
}

// orCond := andCond (OR andCond)*
func (p *Parser) orCond() (query.Cond, error) {
	first, err := p.andCond()
	if err != nil {
		return nil, err
	}
	kids := []query.Cond{first}
	for p.accept(tokKeyword, "OR") {
		k, err := p.andCond()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return query.NewOr(kids...), nil
}

// andCond := condUnit (AND condUnit)*
func (p *Parser) andCond() (query.Cond, error) {
	first, err := p.condUnit()
	if err != nil {
		return nil, err
	}
	kids := []query.Cond{first}
	for p.accept(tokKeyword, "AND") {
		k, err := p.condUnit()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return query.NewAnd(kids...), nil
}

// condUnit := TRUE | FALSE | '(' orCond ')' | predicate
// Parenthesized conditions are disambiguated from parenthesized
// arithmetic by lookahead: after the ')' a comparison operator or
// BETWEEN/IN means the parens were part of an expression.
func (p *Parser) condUnit() (query.Cond, error) {
	if p.accept(tokKeyword, "TRUE") {
		return query.True{}, nil
	}
	if p.accept(tokKeyword, "FALSE") {
		return query.NewOr(), nil
	}
	if p.at(tokSymbol, "(") {
		save := p.pos
		p.next()
		cond, err := p.orCond()
		if err == nil {
			if _, err2 := p.expect(tokSymbol, ")"); err2 == nil {
				return cond, nil
			}
		}
		p.pos = save // reparse as arithmetic predicate
	}
	return p.predicate()
}

// predicate := expr cmp expr | expr BETWEEN expr AND expr | expr IN [lo, hi]
func (p *Parser) predicate() (query.Cond, error) {
	lhs, err := p.linExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		loP, err := normalizePred(lhs, query.GE, lo)
		if err != nil {
			return nil, err
		}
		hiP, err := normalizePred(lhs, query.LE, hi)
		if err != nil {
			return nil, err
		}
		return query.NewAnd(loP, hiP), nil
	}
	if p.accept(tokKeyword, "IN") {
		// Paper notation: "a_j in [lo, hi]" — an inclusive range.
		if _, err := p.expect(tokSymbol, "["); err != nil {
			return nil, err
		}
		lo, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ","); err != nil {
			return nil, err
		}
		hi, err := p.linExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "]"); err != nil {
			return nil, err
		}
		loP, err := normalizePred(lhs, query.GE, lo)
		if err != nil {
			return nil, err
		}
		hiP, err := normalizePred(lhs, query.LE, hi)
		if err != nil {
			return nil, err
		}
		return query.NewAnd(loP, hiP), nil
	}
	opTok := p.cur()
	var op query.CmpOp
	switch opTok.text {
	case "=":
		op = query.EQ
	case "<=":
		op = query.LE
	case ">=":
		op = query.GE
	case "<":
		op = query.LT
	case ">":
		op = query.GT
	default:
		return nil, p.errf("expected comparison operator, found %q", opTok.text)
	}
	p.next()
	rhs, err := p.linExpr()
	if err != nil {
		return nil, err
	}
	return normalizePred(lhs, op, rhs)
}

// normalizePred rewrites "lhs op rhs" into the canonical Pred form with
// all attribute terms on the left and a single constant on the right:
// (lhs-rhs without constant) op (rhsConst - lhsConst).
func normalizePred(lhs query.LinExpr, op query.CmpOp, rhs query.LinExpr) (query.Cond, error) {
	diff := lhs.Add(rhs.Scale(-1))
	if diff.IsConst() {
		return nil, fmt.Errorf("sqlparse: predicate references no attributes")
	}
	rhsConst := -diff.Const
	diff.Const = 0
	return query.NewPred(diff, op, rhsConst), nil
}

// linExpr := mulTerm (('+'|'-') mulTerm)*
func (p *Parser) linExpr() (query.LinExpr, error) {
	e, err := p.mulTerm()
	if err != nil {
		return query.LinExpr{}, err
	}
	for {
		if p.accept(tokSymbol, "+") {
			t, err := p.mulTerm()
			if err != nil {
				return query.LinExpr{}, err
			}
			e = e.Add(t)
		} else if p.accept(tokSymbol, "-") {
			t, err := p.mulTerm()
			if err != nil {
				return query.LinExpr{}, err
			}
			e = e.Add(t.Scale(-1))
		} else {
			return e, nil
		}
	}
}

// mulTerm := factor (('*'|'/') factor)* with the linearity restriction
// that at least one side of '*' is constant and divisors are constant.
func (p *Parser) mulTerm() (query.LinExpr, error) {
	e, err := p.factor()
	if err != nil {
		return query.LinExpr{}, err
	}
	for {
		if p.accept(tokSymbol, "*") {
			f, err := p.factor()
			if err != nil {
				return query.LinExpr{}, err
			}
			switch {
			case f.IsConst():
				e = e.Scale(f.Const)
			case e.IsConst():
				e = f.Scale(e.Const)
			default:
				return query.LinExpr{}, p.errf("non-linear product of attributes")
			}
		} else if p.accept(tokSymbol, "/") {
			f, err := p.factor()
			if err != nil {
				return query.LinExpr{}, err
			}
			if !f.IsConst() || f.Const == 0 {
				return query.LinExpr{}, p.errf("division must be by a nonzero constant")
			}
			e = e.Scale(1 / f.Const)
		} else {
			return e, nil
		}
	}
}

// factor := NUMBER | IDENT | '(' linExpr ')' | '-' factor
func (p *Parser) factor() (query.LinExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return query.ConstExpr(t.num), nil
	case t.kind == tokIdent:
		p.next()
		attr, ok := p.resolveAttr(t.text)
		if !ok {
			return query.LinExpr{}, fmt.Errorf("sqlparse: unknown attribute %q", t.text)
		}
		return query.AttrExpr(attr), nil
	case p.accept(tokSymbol, "("):
		e, err := p.linExpr()
		if err != nil {
			return query.LinExpr{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return query.LinExpr{}, err
		}
		return e, nil
	case p.accept(tokSymbol, "-"):
		e, err := p.factor()
		if err != nil {
			return query.LinExpr{}, err
		}
		return e.Scale(-1), nil
	default:
		return query.LinExpr{}, p.errf("expected expression, found %q", t.text)
	}
}
