package qfixd

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// residentTenants counts the tenants currently held open.
func residentTenants(svc *Service) int {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	return len(svc.tenants)
}

// createTaxTenant makes a tenant directly on the service with the
// standard schema and no history.
func createTaxTenant(t *testing.T, svc *Service, name string) {
	t.Helper()
	if err := svc.Create(name, "Taxes", "", taxAttrs, [][]float64{{100, 10, 90}}); err != nil {
		t.Fatal(err)
	}
}

// Lookups over the MaxOpenStores cap evict the least recently used
// idle stores, and an evicted tenant transparently reopens from disk
// with its full history.
func TestStoreEvictionCap(t *testing.T) {
	svc := NewService(Config{Dir: t.TempDir(), MaxOpenStores: 2, StoreIdle: -1})
	defer svc.Close()

	const n = 5
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		createTaxTenant(t, svc, name)
		if _, err := svc.Append(name, []string{"UPDATE Taxes SET owed = 11 WHERE income >= 100"}); err != nil {
			t.Fatal(err)
		}
	}
	// The last lookup's sweep runs before its own pin, so at most
	// cap + 1 tenants can be resident at any point after an operation.
	if got := residentTenants(svc); got > 3 {
		t.Fatalf("resident tenants = %d, want <= 3 under MaxOpenStores=2", got)
	}
	// Every tenant — including evicted ones — still serves its state.
	for i := 0; i < n; i++ {
		_, ts, err := svc.Stats(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ts.LogLen != 1 {
			t.Fatalf("t%d: log length %d after eviction round-trip, want 1", i, ts.LogLen)
		}
	}
}

// Stores idle past StoreIdle are evicted even far under the cap.
func TestStoreEvictionIdle(t *testing.T) {
	svc := NewService(Config{Dir: t.TempDir(), MaxOpenStores: -1, StoreIdle: time.Nanosecond})
	defer svc.Close()

	createTaxTenant(t, svc, "a")
	createTaxTenant(t, svc, "b")
	time.Sleep(time.Millisecond) // exceed the idle deadline
	// The lookup for b sweeps a (idle, unpinned) out; b itself is
	// resident while pinned and evicted by the next sweep.
	if _, _, err := svc.Stats("b"); err != nil {
		t.Fatal(err)
	}
	if got := residentTenants(svc); got > 1 {
		t.Fatalf("resident tenants = %d after idle sweep, want <= 1", got)
	}
}

// A tenant with staged complaints is never evicted: its staged state
// lives only in memory and must survive until diagnosis or checkpoint.
func TestStoreEvictionSparesStaged(t *testing.T) {
	svc := NewService(Config{Dir: t.TempDir(), MaxOpenStores: 1, StoreIdle: time.Nanosecond})
	defer svc.Close()

	createTaxTenant(t, svc, "staged")
	if _, err := svc.Complain("staged", taxScenario(0).complaints); err != nil {
		t.Fatal(err)
	}
	createTaxTenant(t, svc, "idle")
	time.Sleep(time.Millisecond)
	// Sweeps triggered by other tenants' lookups must keep "staged".
	if _, _, err := svc.Stats("idle"); err != nil {
		t.Fatal(err)
	}
	_, ts, err := svc.Stats("staged")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Staged != 2 {
		t.Fatalf("staged complaints = %d after eviction sweeps, want 2", ts.Staged)
	}
}

// Concurrent operations racing the eviction sweep: every append lands
// exactly once and no request observes a closed store. Run with -race
// to exercise the pin/evict interleavings.
func TestStoreEvictionConcurrent(t *testing.T) {
	svc := NewService(Config{Dir: t.TempDir(), MaxOpenStores: 1, StoreIdle: time.Nanosecond})
	defer svc.Close()

	const tenants, rounds = 4, 8
	for i := 0; i < tenants; i++ {
		createTaxTenant(t, svc, fmt.Sprintf("t%d", i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, tenants*rounds)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := svc.Append(name, []string{"UPDATE Taxes SET owed = 12 WHERE income >= 100"}); err != nil {
					errs <- fmt.Errorf("%s append %d: %w", name, r, err)
					return
				}
				if _, _, err := svc.Stats(name); err != nil {
					errs <- fmt.Errorf("%s stats %d: %w", name, r, err)
					return
				}
			}
		}(fmt.Sprintf("t%d", i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i := 0; i < tenants; i++ {
		_, ts, err := svc.Stats(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ts.LogLen != rounds {
			t.Fatalf("t%d: log length %d, want %d", i, ts.LogLen, rounds)
		}
	}
}
