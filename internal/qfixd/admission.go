package qfixd

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrBusy is the clean backpressure signal: the tenant already has its
// full queue of diagnoses waiting, so this one is refused immediately
// instead of queueing unboundedly (or hanging). Clients see it as a
// retryable condition (Response.Busy on the wire).
var ErrBusy = errors.New("qfixd: tenant queue full")

// admission is the coordinator-side admission controller: a fixed
// number of global diagnosis slots, and per-tenant FIFO queues for
// requests that arrive while every slot is busy. Freed slots drain the
// queues round-robin ACROSS tenants (one waiter per tenant per turn),
// so a tenant flooding its queue gets at most its fair rotation and can
// never starve another tenant's single request — the fairness the
// multi-tenant daemon is built around. Per-tenant queues are bounded
// (queueCap); beyond that acquire fails fast with ErrBusy.
//
// Invariant: free > 0 implies no waiters anywhere — release hands a
// freed slot directly to a waiter and only banks it when every queue is
// empty, and acquire only enqueues when no slot is free. A tenant is in
// ring exactly while it has waiters.
type admission struct {
	mu     sync.Mutex
	free   int                        //qfix:guarded-by mu — slots not currently held
	queues map[string][]chan struct{} //qfix:guarded-by mu — per-tenant FIFO waiters
	ring   []string                   //qfix:guarded-by mu — tenants with waiters, round-robin order
	next   int                        //qfix:guarded-by mu — ring cursor: next tenant to grant
	cap    int                        // per-tenant waiter cap (immutable after construction)
}

// newAdmission sizes the controller: slots as Config.MaxInflight
// (0 = GOMAXPROCS, <0 = 1), queueCap as Config.TenantQueue
// (0 = DefaultTenantQueue, <0 = no waiting).
func newAdmission(slots, queueCap int) *admission {
	switch {
	case slots < 0:
		slots = 1
	case slots == 0:
		slots = runtime.GOMAXPROCS(0)
	}
	switch {
	case queueCap < 0:
		queueCap = 0
	case queueCap == 0:
		queueCap = DefaultTenantQueue
	}
	return &admission{free: slots, queues: make(map[string][]chan struct{}), cap: queueCap}
}

// acquire takes a diagnosis slot for tenant, waiting its queue turn if
// none is free. It returns ErrBusy when the tenant's queue is full and
// ctx.Err when the context ends first (the waiter leaves the queue; a
// slot granted in the race is passed straight on).
func (a *admission) acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	if a.free > 0 {
		a.free--
		a.mu.Unlock()
		return nil
	}
	if len(a.queues[tenant]) >= a.cap {
		a.mu.Unlock()
		return ErrBusy
	}
	ch := make(chan struct{})
	if len(a.queues[tenant]) == 0 {
		a.ring = append(a.ring, tenant)
	}
	a.queues[tenant] = append(a.queues[tenant], ch)
	mQueueDepth.Add(1)
	a.mu.Unlock()

	select {
	case <-ch:
		mQueueDepth.Add(-1)
		return nil
	case <-ctx.Done():
		if !a.abandon(tenant, ch) {
			// Already granted in the race with cancellation: the slot is
			// ours, so pass it on rather than leak it.
			a.release()
		}
		mQueueDepth.Add(-1)
		return ctx.Err()
	}
}

// release returns a slot: the next waiter in the tenant round-robin
// gets it directly, else it goes back to the free pool.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.ring) == 0 {
		a.free++
		a.mu.Unlock()
		return
	}
	if a.next >= len(a.ring) {
		a.next = 0
	}
	tn := a.ring[a.next]
	q := a.queues[tn]
	ch := q[0]
	if len(q) == 1 {
		delete(a.queues, tn)
		// Removing the cursor's entry advances the rotation by itself:
		// next now indexes the following tenant.
		a.ring = append(a.ring[:a.next], a.ring[a.next+1:]...)
	} else {
		a.queues[tn] = q[1:]
		a.next++
	}
	a.mu.Unlock()
	close(ch)
}

// abandon removes a cancelled waiter from the tenant's queue, reporting
// whether it was still queued (false means the grant already happened).
func (a *admission) abandon(tenant string, ch chan struct{}) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.queues[tenant]
	for i, c := range q {
		if c != ch {
			continue
		}
		q = append(q[:i], q[i+1:]...)
		if len(q) == 0 {
			delete(a.queues, tenant)
			for j, tn := range a.ring {
				if tn == tenant {
					a.ring = append(a.ring[:j], a.ring[j+1:]...)
					if j < a.next {
						a.next--
					}
					break
				}
			}
		} else {
			a.queues[tenant] = q
		}
		return true
	}
	return false
}
