package qfixd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
)

// Client is the Go side of the daemon protocol: one connection, safe
// for concurrent use. Requests multiplex over the connection and a
// reader goroutine routes the (possibly out-of-order) responses back by
// ID — several goroutines can hold diagnoses in flight at once, which
// is exactly how the fairness tests and the bench harness drive a
// daemon.
type Client struct {
	conn net.Conn
	enc  *json.Encoder

	mu      sync.Mutex
	nextID  uint64                    //qfix:guarded-by mu
	pending map[uint64]chan *Response //qfix:guarded-by mu
	err     error                     //qfix:guarded-by mu — sticky: set once the connection fails
}

// DialDaemon connects to a qfixd server.
func DialDaemon(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("qfixd: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, enc: json.NewEncoder(conn),
		pending: make(map[uint64]chan *Response)}
	//qfix:leak-ok read exits when Close closes the conn, failing Decode
	go c.read()
	return c, nil
}

// Close tears down the connection; requests in flight fail.
func (c *Client) Close() error { return c.conn.Close() }

// read routes response frames to their waiting requests until the
// connection ends, then fails whatever is still pending.
func (c *Client) read() {
	dec := json.NewDecoder(c.conn)
	//qfix:ctx-ok exits via Close: the closed connection fails Decode, failing all pending requests
	for {
		resp := new(Response)
		if err := dec.Decode(resp); err != nil {
			c.fail(fmt.Errorf("qfixd: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail marks the client broken and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Do sends one request (assigning its ID) and waits for its response.
func (c *Client) Do(req *Request) (*Response, error) {
	req.Version = WireVersion
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	// Encode under the lock: Encoder is not concurrency-safe, and the
	// frames are small enough that serializing writes here is simpler
	// and safer than a second mutex ordering.
	err := c.enc.Encode(req)
	if err != nil {
		delete(c.pending, req.ID)
	}
	c.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("qfixd: send: %w", err)
	}
	// The receive always resolves: read() routes the response or fail()
	// closes the channel.
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if resp.Err != "" {
		if resp.Busy {
			return resp, fmt.Errorf("%w: %s", ErrBusy, resp.Err)
		}
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.Do(&Request{Op: OpPing})
	return err
}

// Create initializes a tenant with the given checkpoint state.
func (c *Client) Create(tenant, table, key string, attrs []string, rows [][]float64) error {
	_, err := c.Do(&Request{Op: OpCreate, Tenant: tenant,
		Table: table, Key: key, Attrs: attrs, Rows: rows})
	return err
}

// Append appends SQL statements to the tenant's log.
func (c *Client) Append(tenant string, sql ...string) error {
	_, err := c.Do(&Request{Op: OpAppend, Tenant: tenant, SQL: sql})
	return err
}

// Complain stages complaints for the tenant's next diagnosis.
func (c *Client) Complain(tenant string, complaints []core.Complaint) error {
	_, err := c.Do(&Request{Op: OpComplain, Tenant: tenant, Complaints: complaints})
	return err
}

// Diagnose runs a diagnosis over the tenant's staged plus the given
// inline complaints. A nil opt means the CLI-default options.
func (c *Client) Diagnose(tenant string, complaints []core.Complaint,
	opt *DiagnoseOptions) (*Response, error) {
	return c.Do(&Request{Op: OpDiagnose, Tenant: tenant,
		Complaints: complaints, Options: opt})
}

// Checkpoint commits the tenant's current state as its new D0.
func (c *Client) Checkpoint(tenant string) error {
	_, err := c.Do(&Request{Op: OpCheckpoint, Tenant: tenant})
	return err
}
