package qfixd

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// The client/daemon protocol: newline-delimited JSON frames over TCP,
// one Request per line from the client, one Response per line back —
// the same idiom as the dist worker protocol. Responses carry the
// request's ID and may arrive out of submission order: diagnose
// requests run concurrently (admission permitting) and each answers the
// moment it lands, while cheap ops (append, complain, ...) answer
// inline in the read loop. A client multiplexing requests over one
// connection matches responses to requests by ID.
const (
	// WireVersion is the protocol generation this package speaks.
	WireVersion = 1
	// MinWireVersion is the oldest generation still accepted.
	MinWireVersion = 1
)

// Ops.
const (
	OpPing       = "ping"
	OpCreate     = "create"
	OpAppend     = "append"
	OpComplain   = "complain"
	OpDiagnose   = "diagnose"
	OpCheckpoint = "checkpoint"
	OpStats      = "stats"
)

// Request is one client frame.
type Request struct {
	Version int    `json:"v"`
	ID      uint64 `json:"id"`
	Op      string `json:"op"`
	// Tenant names the histstore the op targets (all ops but ping; a
	// tenant-less stats request stats the service).
	Tenant string `json:"tenant,omitempty"`

	// create: schema and initial rows of the new tenant's checkpoint.
	Table string      `json:"table,omitempty"`
	Key   string      `json:"key,omitempty"`
	Attrs []string    `json:"attrs,omitempty"`
	Rows  [][]float64 `json:"rows,omitempty"`

	// append: SQL statements to append to the tenant's log, in order.
	SQL []string `json:"sql,omitempty"`

	// complain (stage for the next diagnosis) and diagnose (inline,
	// joined with whatever is staged).
	Complaints []core.Complaint `json:"complaints,omitempty"`

	// diagnose: engine options; nil means the CLI defaults, so a bare
	// diagnose answers byte-identically to a default `qfix` run.
	Options *DiagnoseOptions `json:"options,omitempty"`
}

// Response is one daemon frame, answering the Request with the same ID.
type Response struct {
	Version int    `json:"v"`
	ID      uint64 `json:"id"`
	// Err carries the failure; empty means success.
	Err string `json:"err,omitempty"`
	// Busy marks an Err as the admission controller's backpressure
	// (tenant queue full): retryable, not a fault in the request.
	Busy bool `json:"busy,omitempty"`

	// append/complain: statements appended / complaints now staged.
	N int `json:"n,omitempty"`

	// diagnose: the repair. Log is the full repaired history rendered
	// as canonical SQL — the byte-identity surface shared with the
	// qfix CLI (both render via Query.String on the same schema).
	Log      []string    `json:"log,omitempty"`
	Changed  []int       `json:"changed,omitempty"`
	Distance float64     `json:"distance,omitempty"`
	Resolved bool        `json:"resolved,omitempty"`
	Stats    *core.Stats `json:"stats,omitempty"`

	// stats.
	Tenants int          `json:"tenants,omitempty"`
	Tenant  *TenantStats `json:"tenant,omitempty"`
}

// DiagnoseOptions is the wire subset of core.Options a client may set.
// The zero value resolves to the qfix CLI's defaults (incremental, K=1,
// tuple and query slicing on, 60s per-solve limit), which is what makes
// a bare daemon diagnosis byte-identical to a default CLI run.
// Process-local machinery (scheduler pool, partition solver, caches,
// trace) is the daemon's to wire, never the client's.
type DiagnoseOptions struct {
	Algorithm      string `json:"algorithm,omitempty"` // "incremental" (default) | "basic"
	K              int    `json:"k,omitempty"`
	Parallel       int    `json:"parallel,omitempty"`
	Partition      int    `json:"partition,omitempty"`
	SolverParallel int    `json:"solver_parallel,omitempty"`
	NoTupleSlicing bool   `json:"no_tuple_slicing,omitempty"`
	NoQuerySlicing bool   `json:"no_query_slicing,omitempty"`
	AttrSlicing    bool   `json:"attr_slicing,omitempty"`
	WarmStart      bool   `json:"warm,omitempty"`
	TimeLimitMS    int64  `json:"time_limit_ms,omitempty"`
}

// resolve maps the wire options onto core.Options with CLI-identical
// defaults. A nil receiver is the all-defaults request.
func (o *DiagnoseOptions) resolve() core.Options {
	opt := core.Options{
		Algorithm:    core.Incremental,
		K:            1,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    60 * time.Second,
	}
	if o == nil {
		return opt
	}
	if o.Algorithm == "basic" {
		opt.Algorithm = core.Basic
	}
	if o.K > 0 {
		opt.K = o.K
	}
	opt.Parallel = o.Parallel
	opt.Partition = o.Partition
	opt.SolverParallel = o.SolverParallel
	opt.TupleSlicing = !o.NoTupleSlicing
	opt.QuerySlicing = !o.NoQuerySlicing
	opt.AttrSlicing = o.AttrSlicing
	opt.WarmStart = o.WarmStart
	if o.TimeLimitMS > 0 {
		opt.TimeLimit = time.Duration(o.TimeLimitMS) * time.Millisecond
	}
	return opt
}

// validate rejects frames this daemon generation cannot serve.
func (r *Request) validate() error {
	if r.Version < MinWireVersion || r.Version > WireVersion {
		return fmt.Errorf("qfixd: protocol v%d not supported (this daemon speaks v%d..v%d)",
			r.Version, MinWireVersion, WireVersion)
	}
	if o := r.Options; o != nil && o.Algorithm != "" &&
		o.Algorithm != "basic" && o.Algorithm != "incremental" {
		return fmt.Errorf("qfixd: unknown algorithm %q", o.Algorithm)
	}
	return nil
}
