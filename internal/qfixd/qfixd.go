// Package qfixd is the resident diagnosis service: one long-lived
// process owning many histstore directories (one per tenant), a shared
// scheduler pool, and an optional shared worker fleet, multiplexing
// concurrent append/complain/diagnose requests from many clients onto
// them.
//
// The one-shot entry points (qfix.Diagnose, the qfix CLI) wire the
// whole engine up per call: a scheduler's goroutines, a coordinator's
// connections, and a store's caches all live exactly as long as one
// diagnosis. That is the right shape for a batch audit and the wrong
// one for a deployment that diagnoses continuously: every call re-dials
// the fleet, re-materializes impact closures, and fights other calls
// for cores without any admission policy. qfixd inverts the ownership —
//
//   - one sched.Pool (Config.PoolWorkers) runs every diagnosis's batch
//     and partition scans via core.Options.Scheduler, so concurrent
//     diagnoses share cores instead of over-subscribing them;
//   - one dist.Coordinator (Config.Workers) holds the fleet
//     connections; each diagnosis gets a private encoding memo via
//     Coordinator.Solver, so tenants never thrash each other's
//     encodings;
//   - one histstore.Store per tenant stays open with its impact and
//     solution caches warm across requests (the stores are themselves
//     concurrency-safe: appends keep landing while diagnoses run);
//   - admission control bounds concurrent diagnoses globally
//     (Config.MaxInflight) and queues excess per tenant, draining the
//     queues round-robin so a flooding tenant cannot starve the rest,
//     and rejecting beyond Config.TenantQueue with ErrBusy instead of
//     queueing unboundedly.
//
// The determinism guarantee survives residency: a diagnosis adjudicates
// its scans in submission order whether jobs run on the shared pool or
// on per-call goroutines (see internal/sched), so a repair computed by
// qfixd is byte-identical to the same diagnosis run by the qfix CLI.
// The e2e tests pin exactly that.
//
// Server (server.go) speaks a newline-delimited JSON protocol over TCP
// (wire.go) in the same idiom as the dist worker protocol; Client
// (client.go) is the matching Go client.
package qfixd

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/histstore"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/sched"
)

// DefaultTenantQueue is the per-tenant cap on diagnoses waiting for an
// inflight slot when Config.TenantQueue is zero.
const DefaultTenantQueue = 16

// DefaultMaxOpenStores is the resident tenant-store cap when
// Config.MaxOpenStores is zero.
const DefaultMaxOpenStores = 64

// DefaultStoreIdle is how long an unused tenant store stays resident
// when Config.StoreIdle is zero.
const DefaultStoreIdle = 15 * time.Minute

// ErrDraining is returned for new work while the service shuts down.
var ErrDraining = errors.New("qfixd: draining")

// Config configures a Service.
type Config struct {
	// Dir is the root data directory; each tenant's histstore lives in
	// a subdirectory named after the tenant.
	Dir string
	// MaxInflight bounds concurrent diagnoses across all tenants.
	// Zero picks runtime.GOMAXPROCS; negative forces one at a time.
	MaxInflight int
	// TenantQueue caps how many diagnoses per tenant may wait for a
	// slot; requests beyond it fail fast with ErrBusy. Zero picks
	// DefaultTenantQueue; negative disables waiting entirely.
	TenantQueue int
	// Workers lists qfix-worker addresses; when non-empty the service
	// holds one shared coordinator over them for its whole lifetime.
	Workers []string
	// Mux selects persistent multiplexed worker connections (wire v3).
	Mux bool
	// Partition is the default Options.Partition for diagnoses that do
	// not request one (0 lets each request's options decide).
	Partition int
	// PoolWorkers sizes the resident scheduler pool shared by every
	// diagnosis's scans. Zero picks runtime.GOMAXPROCS.
	PoolWorkers int
	// MaxOpenStores bounds how many tenant stores stay resident at
	// once. Lookups evict least-recently-used idle stores (no request
	// pinning them, no staged complaints) over the cap. Zero picks
	// DefaultMaxOpenStores; negative removes the cap.
	MaxOpenStores int
	// StoreIdle is how long an unused tenant store stays resident
	// before a lookup may evict it regardless of the cap. Zero picks
	// DefaultStoreIdle; negative disables idle-based eviction (stores
	// are evicted only over the MaxOpenStores cap).
	StoreIdle time.Duration
	// TraceDir, when set, roots a span tree per diagnose request and
	// writes it to <TraceDir>/<tenant>-<seq>.jsonl.
	TraceDir string
	// Logf, when set, receives one line per request and lifecycle event.
	Logf func(format string, args ...any)
}

// Service owns the resident state and serves tenant operations. It is
// safe for concurrent use; Server exposes it over TCP, and tests and
// embedded deployments may call it directly.
type Service struct {
	cfg   Config
	pool  *sched.Pool
	coord *dist.Coordinator
	adm   *admission

	mu      sync.Mutex
	tenants map[string]*tenant //qfix:guarded-by mu
	closed  bool               //qfix:guarded-by mu

	draining atomic.Bool
	inflight sync.WaitGroup
	traceSeq atomic.Uint64
}

// tenant is one tenant's resident state: its open store and the
// complaints staged (via the complain op) for its next diagnosis.
//
// refs pins the store against eviction: lookup increments it (under
// the service mutex, so a pin and an eviction cannot interleave) and
// every operation releases it when done, so the store a request is
// using can never be closed under it. lastUse drives LRU and idle
// eviction. Lock order is always s.mu before tn.mu.
type tenant struct {
	mu      sync.Mutex
	store   *histstore.Store //qfix:guarded-by mu
	staged  []core.Complaint //qfix:guarded-by mu
	refs    int              //qfix:guarded-by mu — operations currently using the store
	lastUse time.Time        //qfix:guarded-by mu — last pin or release
}

// NewService builds the resident state: the scheduler pool starts
// immediately, the coordinator dials lazily on first dispatch (dist
// transports are lazy), stores open on first use per tenant.
func NewService(cfg Config) *Service {
	pw := cfg.PoolWorkers
	if pw <= 0 {
		pw = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:     cfg,
		pool:    sched.NewPool(pw),
		adm:     newAdmission(cfg.MaxInflight, cfg.TenantQueue),
		tenants: make(map[string]*tenant),
	}
	if len(cfg.Workers) > 0 {
		s.coord = dist.Connect(dist.Config{Mux: cfg.Mux, Logf: cfg.Logf}, cfg.Workers...)
	}
	return s
}

// Drain marks the service as draining: new diagnoses (and other tenant
// ops) fail with ErrDraining while in-flight diagnoses run to
// completion. Wait blocks until they have.
func (s *Service) Drain() { s.draining.Store(true) }

// Wait blocks until every in-flight diagnosis has finished.
func (s *Service) Wait() { s.inflight.Wait() }

// Close drains, waits for in-flight diagnoses, and releases everything:
// tenant stores, the fleet coordinator, and the scheduler pool.
func (s *Service) Close() error {
	s.Drain()
	s.Wait()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tenants := s.tenants
	s.tenants = make(map[string]*tenant)
	s.mu.Unlock()
	var first error
	for _, tn := range tenants {
		tn.mu.Lock()
		store := tn.store
		tn.store = nil
		tn.mu.Unlock()
		if store == nil {
			continue
		}
		if err := store.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.coord != nil {
		if err := s.coord.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.pool.Close()
	return first
}

// validTenant reports whether name is usable as a tenant (and thus a
// directory) name: non-empty, no path separators or traversal.
func validTenant(name string) bool {
	if name == "" || name == "." || name == ".." || len(name) > 128 {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// tenantDir is the tenant's histstore directory.
func (s *Service) tenantDir(name string) string {
	return filepath.Join(s.cfg.Dir, name)
}

// lookup returns the tenant's resident state and its open store,
// opening the store from disk on first use (or after an eviction). The
// store is pinned against eviction until the caller's release. Each
// lookup also sweeps the tenant table for evictable stores, so the
// resident set stays bounded without a background goroutine.
func (s *Service) lookup(name string) (*tenant, *histstore.Store, error) {
	if !validTenant(name) {
		return nil, nil, fmt.Errorf("qfixd: invalid tenant name %q", name)
	}
	now := time.Now() //qfix:det-ok eviction clock: decides cache residency only, never a diagnosis input
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrDraining
	}
	s.evictLocked(now)
	if tn, ok := s.tenants[name]; ok {
		tn.mu.Lock()
		tn.refs++
		tn.lastUse = now
		store := tn.store
		tn.mu.Unlock()
		return tn, store, nil
	}
	store, err := histstore.Open(s.tenantDir(name))
	if err != nil {
		return nil, nil, fmt.Errorf("qfixd: tenant %q: %w", name, err)
	}
	tn := &tenant{store: store, refs: 1, lastUse: now}
	s.tenants[name] = tn
	mTenants.Set(int64(len(s.tenants)))
	return tn, store, nil
}

// release unpins a tenant after an operation; paired with every
// successful lookup.
func (s *Service) release(tn *tenant) {
	now := time.Now() //qfix:det-ok eviction clock: decides cache residency only, never a diagnosis input
	tn.mu.Lock()
	tn.refs--
	tn.lastUse = now
	tn.mu.Unlock()
}

// evictLocked closes and drops tenant stores that are over the
// configured residency bounds: every idle store (unpinned, nothing
// staged) past the idle deadline goes, then the least recently used
// idle stores until the open-store cap holds. Requires s.mu; pins
// cannot race the sweep because they are taken under s.mu too, and a
// tenant with staged complaints is never evicted (its staged state is
// memory-only). Evicted tenants transparently reopen from disk on
// their next lookup — warm caches are the only loss.
func (s *Service) evictLocked(now time.Time) {
	max := s.cfg.MaxOpenStores
	if max == 0 {
		max = DefaultMaxOpenStores
	}
	idle := s.cfg.StoreIdle
	if idle == 0 {
		idle = DefaultStoreIdle
	}
	if (max < 0 || len(s.tenants) <= max) && idle < 0 {
		return
	}
	type candidate struct {
		name    string
		lastUse time.Time
	}
	var idlers []candidate
	for name, tn := range s.tenants {
		tn.mu.Lock()
		if tn.refs == 0 && len(tn.staged) == 0 {
			idlers = append(idlers, candidate{name, tn.lastUse})
		}
		tn.mu.Unlock()
	}
	// Oldest first; ties break on name so the sweep order is stable.
	sort.Slice(idlers, func(i, j int) bool {
		if !idlers[i].lastUse.Equal(idlers[j].lastUse) {
			return idlers[i].lastUse.Before(idlers[j].lastUse)
		}
		return idlers[i].name < idlers[j].name
	})
	evicted := false
	for _, c := range idlers {
		expired := idle >= 0 && now.Sub(c.lastUse) >= idle
		over := max >= 0 && len(s.tenants) > max
		if !expired && !over {
			break // sorted: everything after is more recently used
		}
		tn := s.tenants[c.name]
		tn.mu.Lock()
		if tn.refs == 0 && len(tn.staged) == 0 {
			delete(s.tenants, c.name)
			if err := tn.store.Close(); err != nil {
				s.logf("qfixd: %s: closing evicted store: %v", c.name, err)
			}
			tn.store = nil
			mStoreEvictions.Inc()
			evicted = true
		}
		tn.mu.Unlock()
	}
	if evicted {
		mTenants.Set(int64(len(s.tenants)))
	}
}

// Create initializes a new tenant with the given checkpoint state.
func (s *Service) Create(name, table, key string, attrs []string, rows [][]float64) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if !validTenant(name) {
		return fmt.Errorf("qfixd: invalid tenant name %q", name)
	}
	sch, err := relation.NewSchema(table, attrs, key)
	if err != nil {
		return err
	}
	d0 := relation.NewTable(sch)
	for i, row := range rows {
		if _, err := d0.Insert(row); err != nil {
			return fmt.Errorf("qfixd: row %d: %w", i+1, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrDraining
	}
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("qfixd: tenant %q already exists", name)
	}
	store, err := histstore.Create(s.tenantDir(name), d0)
	if err != nil {
		return err
	}
	//qfix:det-ok eviction clock: decides cache residency only, never a diagnosis input
	s.tenants[name] = &tenant{store: store, lastUse: time.Now()}
	mTenants.Set(int64(len(s.tenants)))
	return nil
}

// Append durably appends SQL statements to the tenant's log, in order,
// stopping at the first statement that fails to parse or persist.
func (s *Service) Append(name string, sql []string) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	tn, store, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	defer s.release(tn)
	for i, stmt := range sql {
		if _, err := store.AppendSQL(stmt); err != nil {
			return i, fmt.Errorf("qfixd: append statement %d: %w", i+1, err)
		}
	}
	return len(sql), nil
}

// Complain stages complaints for the tenant's next diagnosis; repeated
// calls accumulate. Staged complaints survive diagnoses (repeat audits
// reuse them warm) and clear on Checkpoint, which commits the state
// they complained about.
func (s *Service) Complain(name string, complaints []core.Complaint) (int, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	tn, _, err := s.lookup(name)
	if err != nil {
		return 0, err
	}
	defer s.release(tn)
	tn.mu.Lock()
	tn.staged = append(tn.staged, cloneComplaints(complaints)...)
	n := len(tn.staged)
	tn.mu.Unlock()
	return n, nil
}

// Checkpoint commits the tenant's current state as the new D0 and
// clears its staged complaints.
func (s *Service) Checkpoint(name string) error {
	if s.draining.Load() {
		return ErrDraining
	}
	tn, store, err := s.lookup(name)
	if err != nil {
		return err
	}
	defer s.release(tn)
	if err := store.Checkpoint(); err != nil {
		return err
	}
	tn.mu.Lock()
	tn.staged = nil
	tn.mu.Unlock()
	return nil
}

// TenantStats is the stats op's answer for one tenant.
type TenantStats struct {
	LogLen int `json:"log_len"`
	Staged int `json:"staged"`
}

// Stats reports a tenant's resident state (nil name stats the service:
// only the tenant count).
func (s *Service) Stats(name string) (tenants int, ts *TenantStats, err error) {
	s.mu.Lock()
	tenants = len(s.tenants)
	s.mu.Unlock()
	if name == "" {
		return tenants, nil, nil
	}
	tn, store, err := s.lookup(name)
	if err != nil {
		return tenants, nil, err
	}
	defer s.release(tn)
	tn.mu.Lock()
	staged := len(tn.staged)
	tn.mu.Unlock()
	return tenants, &TenantStats{LogLen: len(store.Log()), Staged: staged}, nil
}

// Diagnose runs one admission-controlled diagnosis for the tenant over
// its staged complaints plus the inline ones, on the shared pool (and
// fleet, when configured). ctx bounds the wait for an inflight slot —
// cancel it (e.g. when the requesting connection drops) and a queued
// request leaves the queue; requests beyond the tenant's queue cap
// fail fast with ErrBusy.
func (s *Service) Diagnose(ctx context.Context, name string, complaints []core.Complaint,
	wopt *DiagnoseOptions) (*core.Repair, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	tn, store, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	// The pin spans the whole diagnosis (including the admission wait):
	// the store cannot be evicted and closed under a running solve.
	defer s.release(tn)
	tn.mu.Lock()
	all := append(cloneComplaints(tn.staged), complaints...)
	tn.mu.Unlock()
	if len(all) == 0 {
		return nil, errors.New("qfixd: no complaints (stage some with the complain op or send them inline)")
	}

	mRequests.Inc()
	if err := s.adm.acquire(ctx, name); err != nil {
		if errors.Is(err, ErrBusy) {
			mBusy.Inc()
		}
		return nil, err
	}
	defer s.adm.release()
	// The drain flag is rechecked after the (possibly long) queue wait:
	// a request admitted after Drain would otherwise extend the drain
	// indefinitely under sustained load.
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	mInflight.Add(1)
	defer mInflight.Add(-1)

	opt := wopt.resolve()
	opt.Scheduler = s.pool
	if s.coord != nil {
		opt.PartitionSolver = s.coord.Solver()
		if opt.Partition == 0 {
			opt.Partition = len(s.cfg.Workers)
		}
	}
	if opt.Partition == 0 {
		opt.Partition = s.cfg.Partition
	}
	opt.Logf = s.cfg.Logf

	var root *obs.Span
	if s.cfg.TraceDir != "" {
		root = obs.NewTrace("qfixd")
		root.SetAttr("tenant", name)
		opt.Trace = root
	}

	start := time.Now() //qfix:det-ok latency metric and log line only; never a decision input
	rep, err := store.Diagnose(all, opt)
	elapsed := time.Since(start) //qfix:det-ok latency metric and log line only; never a decision input
	mDiagnoseSeconds.Observe(elapsed.Seconds())
	if root != nil {
		root.End()
		s.writeTrace(root, name)
	}
	if err != nil {
		s.logf("qfixd: %s: diagnose failed after %v: %v", name, elapsed.Round(time.Millisecond), err)
		return nil, err
	}
	s.logf("qfixd: %s: diagnosed %d complaints in %v: resolved=%v changed=%d",
		name, len(all), elapsed.Round(time.Millisecond), rep.Resolved, len(rep.Changed))
	return rep, nil
}

// writeTrace exports one request's finished span tree, best-effort: a
// failed trace write must not fail the diagnosis it describes.
func (s *Service) writeTrace(root *obs.Span, tenant string) {
	name := fmt.Sprintf("%s-%d.jsonl", tenant, s.traceSeq.Add(1))
	path := filepath.Join(s.cfg.TraceDir, name)
	f, err := os.Create(path)
	if err != nil {
		s.logf("qfixd: trace %s: %v", path, err)
		return
	}
	if err := obs.WriteTrace(f, root, name); err != nil {
		s.logf("qfixd: trace %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		s.logf("qfixd: trace %s: %v", path, err)
	}
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func cloneComplaints(cs []core.Complaint) []core.Complaint {
	if len(cs) == 0 {
		return nil
	}
	out := make([]core.Complaint, len(cs))
	for i, c := range cs {
		out[i] = core.Complaint{TupleID: c.TupleID, Exists: c.Exists,
			Values: append([]float64(nil), c.Values...)}
	}
	return out
}
