package qfixd

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// grab acquires in a goroutine and reports the grant on a channel, so
// tests can assert who got which slot in which order.
func grab(a *admission, tenant string) chan error {
	done := make(chan error, 1)
	go func() { done <- a.acquire(context.Background(), tenant) }()
	return done
}

func mustGrant(t *testing.T, done chan error, who string) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: acquire: %v", who, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: acquire did not complete", who)
	}
}

func mustWait(t *testing.T, done chan error, who string) {
	t.Helper()
	select {
	case err := <-done:
		t.Fatalf("%s: acquire returned early (%v), want queued", who, err)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestAdmissionGrantsUpToSlots(t *testing.T) {
	a := newAdmission(2, 4)
	if err := a.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	third := grab(a, "a")
	mustWait(t, third, "third")
	a.release()
	mustGrant(t, third, "third")
}

// The satellite requirement: a flooding tenant cannot starve another
// tenant's single diagnosis. With every slot busy, "flood" queues many
// requests and "quiet" one; the round-robin drain must reach quiet's
// request on the first or second grant, never after the flood.
func TestAdmissionFairnessAcrossTenants(t *testing.T) {
	a := newAdmission(1, 32)
	if err := a.acquire(context.Background(), "flood"); err != nil {
		t.Fatal(err) // hold the only slot
	}

	var mu sync.Mutex
	var grants []string
	granted := make(chan struct{}, 64)
	enqueue := func(tenant string) {
		// Enqueue synchronously so queue order is deterministic.
		ch := make(chan struct{})
		a.mu.Lock()
		if len(a.queues[tenant]) == 0 {
			a.ring = append(a.ring, tenant)
		}
		a.queues[tenant] = append(a.queues[tenant], ch)
		a.mu.Unlock()
		go func() {
			<-ch
			mu.Lock()
			grants = append(grants, tenant)
			mu.Unlock()
			granted <- struct{}{}
		}()
	}
	for i := 0; i < 10; i++ {
		enqueue("flood")
	}
	enqueue("quiet")

	// Drain three slots' worth; round-robin must alternate.
	for i := 0; i < 3; i++ {
		a.release()
		select {
		case <-granted:
		case <-time.After(5 * time.Second):
			t.Fatal("grant did not arrive")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"flood", "quiet", "flood"}
	for i, g := range grants {
		if g != want[i] {
			t.Fatalf("grant order %v, want %v (quiet starved behind the flood)", grants, want)
		}
	}
}

// Over the per-tenant queue cap, acquire fails fast with ErrBusy — a
// clean backpressure error, not a hang.
func TestAdmissionBackpressure(t *testing.T) {
	a := newAdmission(1, 2)
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	w1 := grab(a, "t")
	w2 := grab(a, "t")
	mustWait(t, w1, "first waiter")
	mustWait(t, w2, "second waiter")

	start := time.Now()
	err := a.acquire(context.Background(), "t")
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("over-cap acquire = %v, want ErrBusy", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("backpressure was not immediate")
	}

	// The refused request must not have corrupted the queue: both real
	// waiters still drain.
	a.release()
	a.release()
	mustGrant(t, w1, "first waiter")
	mustGrant(t, w2, "second waiter")
}

// TenantQueue < 0 disables waiting entirely: with all slots busy every
// further request is refused immediately.
func TestAdmissionNoQueueing(t *testing.T) {
	a := newAdmission(1, -1)
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background(), "t"); !errors.Is(err, ErrBusy) {
		t.Fatalf("acquire = %v, want ErrBusy", err)
	}
	a.release()
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// A cancelled waiter leaves the queue; its tenant's later waiters (and
// other tenants) are unaffected.
func TestAdmissionCancelLeavesQueue(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() { cancelled <- a.acquire(ctx, "t") }()
	// Wait until the waiter is queued before cancelling.
	for {
		a.mu.Lock()
		n := len(a.queues["t"])
		a.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	second := grab(a, "t")
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// The single release must now reach the second waiter, not vanish
	// into the abandoned one.
	a.release()
	mustGrant(t, second, "second waiter")
}
