package qfixd

import "repro/internal/obs"

// Process-wide metrics on obs.Default(), exposed by cmd/qfixd's admin
// endpoint (/metrics). The daemon family describes the service's front
// door; the engine, dist, and histstore families fill in what each
// admitted diagnosis then did.
var (
	mRequests = obs.Default().Counter("qfix_daemon_requests_total",
		"Diagnose requests received (before admission).")
	mBusy = obs.Default().Counter("qfix_daemon_busy_total",
		"Diagnose requests refused with backpressure (tenant queue full).")
	mInflight = obs.Default().Gauge("qfix_daemon_inflight",
		"Diagnoses currently running.")
	mQueueDepth = obs.Default().Gauge("qfix_daemon_queue_depth",
		"Diagnose requests waiting for an inflight slot, across all tenants.")
	mDiagnoseSeconds = obs.Default().Histogram("qfix_daemon_diagnose_seconds",
		"Per-diagnosis wall time as served (queue wait excluded).", nil)
	mTenants = obs.Default().Gauge("qfix_daemon_tenants",
		"Tenant stores currently resident.")
	mStoreEvictions = obs.Default().Counter("qfix_daemon_store_evictions_total",
		"Idle tenant stores closed by the lookup-time eviction sweep.")
)
