package qfixd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Server exposes a Service over TCP: newline-delimited JSON requests in,
// responses out (see wire.go). A connection carries any number of
// requests; diagnoses run concurrently under the service's admission
// control and answer out of order, cheap ops answer inline. Teardown
// follows the dist server's close protocol; Shutdown adds the graceful
// variant the resident daemon needs.
type Server struct {
	svc *Service

	mu     sync.Mutex
	ln     net.Listener          //qfix:guarded-by mu
	conns  map[net.Conn]struct{} //qfix:guarded-by mu
	closed bool                  //qfix:guarded-by mu
}

// NewServer serves svc. The service's lifecycle stays the caller's: a
// server shutdown does not close the service (several listeners may
// share one).
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: make(map[net.Conn]struct{})}
}

// Serve accepts and handles connections on l until Close/Shutdown or a
// fatal listener error. It blocks; run it in a goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("qfixd: server closed")
	}
	s.ln = l
	s.mu.Unlock()

	//qfix:ctx-ok exits via Close/Shutdown: closed listener fails Accept
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Register in the same critical section that checks for
		// shutdown, so a connection accepted during Close cannot
		// outlive the teardown iteration.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves until Close/Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("qfixd: listen %s: %w", addr, err)
	}
	return s.Serve(l)
}

// Close stops accepting and tears down connections immediately;
// diagnoses already running are abandoned mid-solve (their responses
// have nowhere to go). Use Shutdown for the graceful path.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	return err
}

// Shutdown is the graceful drain: stop accepting, mark the service
// draining (new requests answer ErrDraining), let in-flight diagnoses
// finish and write their responses, then tear the connections down.
// ctx bounds the wait; on expiry the remaining connections are cut
// Close-style.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.svc.Drain()

	done := make(chan struct{})
	go func() { s.svc.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	return err
}

// handle serves one connection: a read loop answers cheap ops inline
// and spawns a goroutine per diagnose, with responses serialized over a
// per-connection write lock. The connection's context ends with the
// connection, so queued admissions of a dropped client leave the queue
// instead of holding their tenant's place.
func (s *Server) handle(conn net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait() // in-flight diagnoses write (or fail) before teardown
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	write := func(resp *Response) {
		resp.Version = WireVersion
		writeMu.Lock()
		conn.SetWriteDeadline(time.Now().Add(writeTimeout)) //qfix:det-ok transport write deadline; never reaches repair logic
		err := enc.Encode(resp)
		if err == nil {
			conn.SetWriteDeadline(time.Time{})
		}
		writeMu.Unlock()
		if err != nil {
			// A dropped response frame would leave the client waiting
			// forever on that ID; failing the whole connection is the
			// honest signal (and breaks this read loop too).
			s.svc.logf("qfixd: %s: writing response: %v", conn.RemoteAddr(), err)
			conn.Close()
		}
	}
	for {
		req := new(Request)
		if err := dec.Decode(req); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.svc.logf("qfixd: %s: bad frame: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if err := req.validate(); err != nil {
			write(&Response{ID: req.ID, Err: err.Error()})
			continue
		}
		if req.Op == OpDiagnose {
			wg.Add(1)
			go func() {
				defer wg.Done()
				write(s.diagnose(ctx, req))
			}()
			continue
		}
		write(s.inline(req))
	}
}

// writeTimeout bounds one response frame; a write this slow means the
// client stopped draining without closing the connection.
const writeTimeout = time.Minute

// diagnose answers one diagnose request (on its own goroutine).
func (s *Server) diagnose(ctx context.Context, req *Request) *Response {
	rep, err := s.svc.Diagnose(ctx, req.Tenant, req.Complaints, req.Options)
	if err != nil {
		return &Response{ID: req.ID, Err: err.Error(), Busy: errors.Is(err, ErrBusy)}
	}
	return repairResponse(req.ID, rep, s.svc, req.Tenant)
}

// repairResponse renders a repair for the wire. The log statements are
// rendered with Query.String on the tenant's schema — exactly the
// rendering the qfix CLI prints, which is what the byte-identity e2e
// tests compare.
func repairResponse(id uint64, rep *core.Repair, svc *Service, tenant string) *Response {
	tn, store, err := svc.lookup(tenant)
	if err != nil {
		return &Response{ID: id, Err: err.Error()}
	}
	defer svc.release(tn)
	sch := store.Schema()
	log := make([]string, len(rep.Log))
	for i, q := range rep.Log {
		log[i] = q.String(sch)
	}
	stats := rep.Stats
	return &Response{
		ID:       id,
		Log:      log,
		Changed:  rep.Changed,
		Distance: rep.Distance,
		Resolved: rep.Resolved,
		Stats:    &stats,
	}
}

// inline answers the cheap ops directly in the read loop.
func (s *Server) inline(req *Request) *Response {
	resp := &Response{ID: req.ID}
	var err error
	switch req.Op {
	case OpPing:
	case OpCreate:
		err = s.svc.Create(req.Tenant, req.Table, req.Key, req.Attrs, req.Rows)
	case OpAppend:
		resp.N, err = s.svc.Append(req.Tenant, req.SQL)
	case OpComplain:
		resp.N, err = s.svc.Complain(req.Tenant, req.Complaints)
	case OpCheckpoint:
		err = s.svc.Checkpoint(req.Tenant)
	case OpStats:
		resp.Tenants, resp.Tenant, err = s.svc.Stats(req.Tenant)
	default:
		err = fmt.Errorf("qfixd: unknown op %q", req.Op)
	}
	if err != nil {
		resp.Err = err.Error()
	}
	return resp
}
