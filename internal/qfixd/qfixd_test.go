package qfixd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// startDaemon runs a Service+Server on a loopback listener and returns
// the service and its address.
func startDaemon(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	svc := NewService(cfg)
	srv := NewServer(svc)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, l.Addr().String()
}

func dialDaemon(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialDaemon(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// scenario is one tenant's corrupted history: the familiar Taxes
// workload with incomes shifted by off, so distinct tenants carry
// distinct histories and distinct repairs.
type scenario struct {
	rows       [][]float64
	sql        []string
	complaints []core.Complaint
}

func taxScenario(off float64) scenario {
	return scenario{
		rows: [][]float64{
			{9500, 950, 8550},
			{90000 + off, 22500, 67500},
			{86000 + off, 21500, 64500},
			{86500 + off, 21625, 64875},
		},
		sql: []string{
			fmt.Sprintf("UPDATE Taxes SET owed = income * 0.3 WHERE income >= %g", 85700+off), // corrupted
			"INSERT INTO Taxes VALUES (85800, 21450, 0)",
			"UPDATE Taxes SET pay = income - owed",
		},
		complaints: []core.Complaint{
			{TupleID: 3, Exists: true, Values: []float64{86000 + off, 21500, 64500 + off}},
			{TupleID: 4, Exists: true, Values: []float64{86500 + off, 21625, 64875 + off}},
		},
	}
}

var taxAttrs = []string{"income", "owed", "pay"}

// cliRepair computes the repair exactly as a default `qfix` CLI run
// would: the same engine entry with the CLI's default options and the
// same Query.String rendering. This is the byte-identity oracle every
// daemon response is compared against.
func cliRepair(t *testing.T, sc scenario) (log []string, changed []int, distance float64) {
	t.Helper()
	sch := relation.MustSchema("Taxes", taxAttrs, "")
	d0 := relation.NewTable(sch)
	for _, row := range sc.rows {
		d0.MustInsert(row...)
	}
	history := make([]query.Query, len(sc.sql))
	for i, stmt := range sc.sql {
		q, err := sqlparse.Parse(sch, stmt)
		if err != nil {
			t.Fatal(err)
		}
		history[i] = q
	}
	rep, err := core.Diagnose(d0, history, sc.complaints, core.Options{
		Algorithm:    core.Incremental,
		K:            1,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatal("oracle diagnosis did not resolve")
	}
	out := make([]string, len(rep.Log))
	for i, q := range rep.Log {
		out[i] = q.String(sch)
	}
	return out, rep.Changed, rep.Distance
}

// seedTenant creates the tenant over the wire and loads its history
// and staged complaints.
func seedTenant(t *testing.T, c *Client, name string, sc scenario) {
	t.Helper()
	if err := c.Create(name, "Taxes", "", taxAttrs, sc.rows); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(name, sc.sql...); err != nil {
		t.Fatal(err)
	}
	if err := c.Complain(name, sc.complaints); err != nil {
		t.Fatal(err)
	}
}

// checkRepair asserts a daemon response is byte-identical to the CLI
// oracle for the scenario.
func checkRepair(t *testing.T, who string, resp *Response, wantLog []string, wantChanged []int, wantDist float64) {
	t.Helper()
	if !resp.Resolved {
		t.Fatalf("%s: diagnosis did not resolve", who)
	}
	if !reflect.DeepEqual(resp.Log, wantLog) {
		t.Fatalf("%s: repaired log diverges from the CLI run:\n daemon: %q\n cli:    %q",
			who, resp.Log, wantLog)
	}
	if !reflect.DeepEqual(resp.Changed, wantChanged) {
		t.Errorf("%s: changed = %v, want %v", who, resp.Changed, wantChanged)
	}
	if resp.Distance != wantDist {
		t.Errorf("%s: distance = %v, want %v", who, resp.Distance, wantDist)
	}
}

// The core acceptance test: a repair served by the daemon over the
// network is byte-identical to the repair the qfix CLI computes on the
// same history and complaints.
func TestDaemonRepairMatchesCLI(t *testing.T) {
	_, addr := startDaemon(t, Config{})
	c := dialDaemon(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	sc := taxScenario(0)
	seedTenant(t, c, "acme", sc)
	wantLog, wantChanged, wantDist := cliRepair(t, sc)

	// Complaints staged via the complain op and complaints sent inline
	// with the diagnose must answer identically.
	resp, err := c.Diagnose("acme", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkRepair(t, "staged", resp, wantLog, wantChanged, wantDist)
	if resp.Stats == nil {
		t.Error("response carries no stats")
	}

	if err := c.Create("inline", "Taxes", "", taxAttrs, sc.rows); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("inline", sc.sql...); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Diagnose("inline", sc.complaints, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkRepair(t, "inline", resp, wantLog, wantChanged, wantDist)
}

// Concurrent mixed-tenant load: several tenants with distinct
// histories, several clients, diagnoses in flight simultaneously on the
// shared pool — every response must still be byte-identical to its
// tenant's CLI oracle. (Run under -race in CI, this is also the data
// race proof for the resident sharing.)
func TestDaemonConcurrentMixedTenants(t *testing.T) {
	_, addr := startDaemon(t, Config{MaxInflight: 4})
	seedClient := dialDaemon(t, addr)

	const tenants = 4
	const repeats = 3
	type oracle struct {
		log     []string
		changed []int
		dist    float64
	}
	oracles := make(map[string]oracle, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		sc := taxScenario(float64(10 * i))
		seedTenant(t, seedClient, name, sc)
		log, changed, dist := cliRepair(t, sc)
		oracles[name] = oracle{log: log, changed: changed, dist: dist}
	}

	// Two clients multiplexing, every tenant diagnosed repeatedly and
	// concurrently.
	clients := []*Client{seedClient, dialDaemon(t, addr)}
	var wg sync.WaitGroup
	errc := make(chan error, tenants*repeats)
	for i := 0; i < tenants; i++ {
		for r := 0; r < repeats; r++ {
			name := fmt.Sprintf("tenant-%d", i)
			c := clients[(i+r)%len(clients)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := c.Diagnose(name, nil, nil)
				if err != nil {
					errc <- fmt.Errorf("%s: %w", name, err)
					return
				}
				want := oracles[name]
				if !reflect.DeepEqual(resp.Log, want.log) {
					errc <- fmt.Errorf("%s: repaired log diverges under concurrency:\n daemon: %q\n cli:    %q",
						name, resp.Log, want.log)
					return
				}
				if !reflect.DeepEqual(resp.Changed, want.changed) || resp.Distance != want.dist {
					errc <- fmt.Errorf("%s: changed/distance diverge: %v/%v, want %v/%v",
						name, resp.Changed, resp.Distance, want.changed, want.dist)
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// Backpressure end to end: with one slot held and queueing disabled,
// a diagnose request answers with a clean busy error immediately — it
// must not hang.
func TestDaemonBusyResponse(t *testing.T) {
	svc, addr := startDaemon(t, Config{MaxInflight: -1, TenantQueue: -1})
	c := dialDaemon(t, addr)
	sc := taxScenario(0)
	seedTenant(t, c, "acme", sc)

	if err := svc.adm.acquire(context.Background(), "other"); err != nil {
		t.Fatal(err) // hold the only slot
	}
	done := make(chan error, 1)
	go func() {
		resp, err := c.Diagnose("acme", nil, nil)
		if err == nil {
			done <- errors.New("diagnose succeeded with the only slot held")
			return
		}
		if resp == nil || !resp.Busy {
			done <- fmt.Errorf("busy flag not set on backpressure response (err=%v)", err)
			return
		}
		if !errors.Is(err, ErrBusy) {
			done <- fmt.Errorf("client error = %v, want ErrBusy", err)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("over-limit diagnose hung instead of answering busy")
	}

	svc.adm.release()
	resp, err := c.Diagnose("acme", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLog, wantChanged, wantDist := cliRepair(t, sc)
	checkRepair(t, "after release", resp, wantLog, wantChanged, wantDist)
}

// A draining service refuses new work with ErrDraining and still
// answers it over the wire as a plain error.
func TestDaemonDrainRefusesNewWork(t *testing.T) {
	svc, addr := startDaemon(t, Config{})
	c := dialDaemon(t, addr)
	sc := taxScenario(0)
	seedTenant(t, c, "acme", sc)

	svc.Drain()
	if _, err := svc.Diagnose(context.Background(), "acme", nil, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Diagnose while draining = %v, want ErrDraining", err)
	}
	if err := c.Append("acme", "UPDATE Taxes SET pay = pay + 1"); err == nil {
		t.Fatal("append while draining succeeded")
	}
}

// Tenant state survives a daemon restart: the histstore directory is
// the durable record, and a fresh service over the same Dir serves the
// same repair.
func TestDaemonRestartServesSameRepair(t *testing.T) {
	dir := t.TempDir()
	sc := taxScenario(0)
	wantLog, wantChanged, wantDist := cliRepair(t, sc)

	_, addr := startDaemon(t, Config{Dir: dir})
	c := dialDaemon(t, addr)
	seedTenant(t, c, "acme", sc)
	resp, err := c.Diagnose("acme", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkRepair(t, "first daemon", resp, wantLog, wantChanged, wantDist)

	// Second daemon over the same directory: complaints are not durable
	// (only history is), so they are re-sent inline.
	_, addr2 := startDaemon(t, Config{Dir: dir})
	c2 := dialDaemon(t, addr2)
	resp, err = c2.Diagnose("acme", sc.complaints, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkRepair(t, "restarted daemon", resp, wantLog, wantChanged, wantDist)
}

// Protocol hygiene: bad versions, unknown ops, and invalid tenants
// answer errors without killing the connection.
func TestDaemonProtocolErrors(t *testing.T) {
	_, addr := startDaemon(t, Config{})
	c := dialDaemon(t, addr)

	if _, err := c.Do(&Request{Op: "explode"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := c.Do(&Request{Op: OpAppend, Tenant: "../escape", SQL: []string{"x"}}); err == nil {
		t.Error("path-traversal tenant name accepted")
	}
	if _, err := c.Do(&Request{Op: OpDiagnose, Tenant: "nosuch"}); err == nil {
		t.Error("diagnose of a missing tenant succeeded")
	}
	// The connection still works after every error.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after protocol errors: %v", err)
	}
}
