package relation

import (
	"fmt"
	"math"
	"sort"
)

// Tuple is one row. ID is a stable identity assigned at insertion time and
// preserved across replays: replaying the true and the corrupted log from
// the same D0 inserts tuples in the same order, so IDs line up and final
// states can be diffed tuple-wise (§7.1 "tuple-wise comparison").
type Tuple struct {
	ID     int64
	Values []float64
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{ID: t.ID, Values: append([]float64(nil), t.Values...)}
}

// Equal reports whether two tuples carry the same values within eps.
func (t Tuple) Equal(o Tuple, eps float64) bool {
	if len(t.Values) != len(o.Values) {
		return false
	}
	for i, v := range t.Values {
		if math.Abs(v-o.Values[i]) > eps {
			return false
		}
	}
	return true
}

// Table is an ordered multiset of tuples under a fixed schema. Order is
// insertion order; deletion preserves the order of survivors.
type Table struct {
	schema *Schema
	rows   []Tuple
	byID   map[int64]int // tuple ID -> index in rows
	nextID int64
}

// NewTable returns an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema, byID: make(map[int64]int), nextID: 1}
}

// NewTableFromRows reconstructs a table from explicit rows and ID
// counter — the deserialization entry point for wire formats that must
// reproduce a table state exactly, including tuple identities and the
// IDs future inserts will allocate (replay correctness depends on both).
// Rows keep their order; values are copied.
func NewTableFromRows(schema *Schema, rows []Tuple, nextID int64) (*Table, error) {
	tb := NewTable(schema)
	for _, t := range rows {
		if len(t.Values) != schema.Width() {
			return nil, fmt.Errorf("relation: row %d arity %d != schema width %d",
				t.ID, len(t.Values), schema.Width())
		}
		if _, dup := tb.byID[t.ID]; dup {
			return nil, fmt.Errorf("relation: duplicate tuple id %d", t.ID)
		}
		tb.byID[t.ID] = len(tb.rows)
		tb.rows = append(tb.rows, t.Clone())
		if t.ID >= tb.nextID {
			tb.nextID = t.ID + 1
		}
	}
	if nextID >= tb.nextID {
		tb.nextID = nextID
	}
	return tb, nil
}

// Schema returns the table's schema.
func (tb *Table) Schema() *Schema { return tb.schema }

// NextID returns the ID the next insert will be assigned. Serializers
// carry it so a reconstructed table allocates identical IDs on replay.
func (tb *Table) NextID() int64 { return tb.nextID }

// Len returns the number of live tuples.
func (tb *Table) Len() int { return len(tb.rows) }

// Insert appends a tuple with a fresh ID and returns it.
func (tb *Table) Insert(values []float64) (Tuple, error) {
	if len(values) != tb.schema.Width() {
		return Tuple{}, fmt.Errorf("relation: insert arity %d != schema width %d",
			len(values), tb.schema.Width())
	}
	t := Tuple{ID: tb.nextID, Values: append([]float64(nil), values...)}
	tb.nextID++
	tb.byID[t.ID] = len(tb.rows)
	tb.rows = append(tb.rows, t)
	return t, nil
}

// MustInsert is Insert that panics on arity mismatch.
func (tb *Table) MustInsert(values ...float64) Tuple {
	t, err := tb.Insert(values)
	if err != nil {
		panic(err)
	}
	return t
}

// Delete removes the tuple with the given ID, reporting whether it existed.
func (tb *Table) Delete(id int64) bool {
	i, ok := tb.byID[id]
	if !ok {
		return false
	}
	copy(tb.rows[i:], tb.rows[i+1:])
	tb.rows = tb.rows[:len(tb.rows)-1]
	delete(tb.byID, id)
	for j := i; j < len(tb.rows); j++ {
		tb.byID[tb.rows[j].ID] = j
	}
	return true
}

// Get returns a copy of the tuple with the given ID.
func (tb *Table) Get(id int64) (Tuple, bool) {
	i, ok := tb.byID[id]
	if !ok {
		return Tuple{}, false
	}
	return tb.rows[i].Clone(), true
}

// Set overwrites the values of the tuple with the given ID.
func (tb *Table) Set(id int64, values []float64) error {
	i, ok := tb.byID[id]
	if !ok {
		return fmt.Errorf("relation: no tuple with id %d", id)
	}
	if len(values) != tb.schema.Width() {
		return fmt.Errorf("relation: set arity %d != schema width %d",
			len(values), tb.schema.Width())
	}
	copy(tb.rows[i].Values, values)
	return nil
}

// Rows calls f on each live tuple in order. The tuple passed to f aliases
// table storage; f must not retain or mutate it.
func (tb *Table) Rows(f func(Tuple)) {
	for _, t := range tb.rows {
		f(t)
	}
}

// Update applies f to every live tuple in order; f may mutate the values
// slice in place. It is the primitive beneath UPDATE execution.
func (tb *Table) Update(f func(t *Tuple)) {
	for i := range tb.rows {
		f(&tb.rows[i])
	}
}

// At returns a copy of the tuple at position i in insertion order.
func (tb *Table) At(i int) Tuple { return tb.rows[i].Clone() }

// IDs returns the IDs of live tuples in insertion order.
func (tb *Table) IDs() []int64 {
	ids := make([]int64, len(tb.rows))
	for i, t := range tb.rows {
		ids[i] = t.ID
	}
	return ids
}

// Clone returns a deep copy sharing nothing with the receiver. The ID
// counter is preserved so replays from a cloned state allocate identical
// IDs.
func (tb *Table) Clone() *Table {
	c := &Table{schema: tb.schema, rows: make([]Tuple, len(tb.rows)),
		byID: make(map[int64]int, len(tb.byID)), nextID: tb.nextID}
	for i, t := range tb.rows {
		c.rows[i] = t.Clone()
		c.byID[t.ID] = i
	}
	return c
}

// Diff describes how one tuple differs between two table states.
// Before==nil means the tuple exists only in the "after" state (inserted);
// After==nil means it exists only in the "before" state (deleted);
// otherwise values changed.
type Diff struct {
	ID     int64
	Before *Tuple
	After  *Tuple
}

// DiffTables compares two states tuple-wise by ID and returns all
// differences, ordered by tuple ID. eps is the value-equality tolerance.
func DiffTables(before, after *Table, eps float64) []Diff {
	var out []Diff
	for _, t := range before.rows {
		t := t
		if a, ok := after.Get(t.ID); ok {
			if !t.Equal(a, eps) {
				bc, ac := t.Clone(), a
				out = append(out, Diff{ID: t.ID, Before: &bc, After: &ac})
			}
		} else {
			bc := t.Clone()
			out = append(out, Diff{ID: t.ID, Before: &bc})
		}
	}
	for _, t := range after.rows {
		t := t
		if _, ok := before.Get(t.ID); !ok {
			ac := t.Clone()
			out = append(out, Diff{ID: t.ID, After: &ac})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
