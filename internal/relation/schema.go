// Package relation implements the minimal in-memory relational substrate
// that QFix operates on: a single-table store with numeric attributes,
// stable tuple identities, state snapshots, and tuple-wise diffing.
//
// The paper (§3.1) assumes a single relation with numeric attributes
// A1..Am; database states D0..Dn are produced by replaying the query log.
// Only D0 and Dn need to be materialized by callers, but tables are cheap
// to clone so intermediate states can be kept when useful (tests do).
package relation

import (
	"fmt"
	"strings"
)

// Schema describes the attributes of a table. Attribute positions are the
// canonical identity used throughout the system; names exist for parsing
// and display. An optional primary-key attribute supports the paper's
// "Point predicate on a key" query class.
type Schema struct {
	name  string
	attrs []string
	key   int // index of key attribute, or -1
	index map[string]int
}

// NewSchema builds a schema for table name with the given attribute
// names. key is the name of the primary-key attribute, or "" for none.
func NewSchema(name string, attrs []string, key string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %q needs at least one attribute", name)
	}
	s := &Schema{name: name, attrs: append([]string(nil), attrs...), key: -1,
		index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: schema %q has empty attribute name at position %d", name, i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("relation: schema %q has duplicate attribute %q", name, a)
		}
		s.index[a] = i
	}
	if key != "" {
		i, ok := s.index[key]
		if !ok {
			return nil, fmt.Errorf("relation: key attribute %q not in schema %q", key, name)
		}
		s.key = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests,
// examples and generators with statically known inputs.
func MustSchema(name string, attrs []string, key string) *Schema {
	s, err := NewSchema(name, attrs, key)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the table name.
func (s *Schema) Name() string { return s.name }

// Width returns the number of attributes.
func (s *Schema) Width() int { return len(s.attrs) }

// Attr returns the name of the attribute at position i.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Attrs returns a copy of the attribute name list.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Key returns the position of the primary-key attribute, or -1.
func (s *Schema) Key() int { return s.key }

// String renders the schema as "name(a1, a2, ...)".
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.attrs, ", ") + ")"
}
