package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("t", nil, ""); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("t", []string{"a", "a"}, ""); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("t", []string{"a", ""}, ""); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewSchema("t", []string{"a"}, "nope"); err == nil {
		t.Error("unknown key accepted")
	}
	s, err := NewSchema("taxes", []string{"id", "income", "owed"}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != 3 || s.Key() != 0 || s.Name() != "taxes" {
		t.Errorf("schema basics wrong: %v width=%d key=%d", s, s.Width(), s.Key())
	}
	if i, ok := s.Index("owed"); !ok || i != 2 {
		t.Errorf("Index(owed) = %d,%v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) found")
	}
	if got := s.String(); got != "taxes(id, income, owed)" {
		t.Errorf("String() = %q", got)
	}
	if got := s.Attrs(); len(got) != 3 || got[1] != "income" {
		t.Errorf("Attrs() = %v", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema("t", nil, "")
}

func newTestTable(t *testing.T) *Table {
	t.Helper()
	return NewTable(MustSchema("t", []string{"a", "b"}, "a"))
}

func TestInsertDeleteGet(t *testing.T) {
	tb := newTestTable(t)
	t1 := tb.MustInsert(1, 10)
	t2 := tb.MustInsert(2, 20)
	t3 := tb.MustInsert(3, 30)
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if t1.ID == t2.ID || t2.ID == t3.ID {
		t.Fatal("IDs not unique")
	}
	if !tb.Delete(t2.ID) {
		t.Fatal("Delete failed")
	}
	if tb.Delete(t2.ID) {
		t.Fatal("double Delete succeeded")
	}
	if tb.Len() != 2 {
		t.Fatalf("Len after delete = %d", tb.Len())
	}
	if _, ok := tb.Get(t2.ID); ok {
		t.Fatal("deleted tuple still visible")
	}
	got, ok := tb.Get(t3.ID)
	if !ok || got.Values[1] != 30 {
		t.Fatalf("Get(t3) = %v, %v", got, ok)
	}
	// Order preserved after deletion.
	var ids []int64
	tb.Rows(func(tp Tuple) { ids = append(ids, tp.ID) })
	if len(ids) != 2 || ids[0] != t1.ID || ids[1] != t3.ID {
		t.Fatalf("row order after delete = %v", ids)
	}
}

func TestInsertArity(t *testing.T) {
	tb := newTestTable(t)
	if _, err := tb.Insert([]float64{1}); err == nil {
		t.Error("short insert accepted")
	}
	if err := tb.Set(999, []float64{1, 2}); err == nil {
		t.Error("Set on missing id accepted")
	}
	id := tb.MustInsert(1, 2).ID
	if err := tb.Set(id, []float64{1}); err == nil {
		t.Error("short Set accepted")
	}
	if err := tb.Set(id, []float64{5, 6}); err != nil {
		t.Errorf("Set failed: %v", err)
	}
	got, _ := tb.Get(id)
	if got.Values[0] != 5 || got.Values[1] != 6 {
		t.Errorf("Set not applied: %v", got.Values)
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := newTestTable(t)
	id := tb.MustInsert(1, 10).ID
	cl := tb.Clone()
	if err := cl.Set(id, []float64{1, 99}); err != nil {
		t.Fatal(err)
	}
	orig, _ := tb.Get(id)
	if orig.Values[1] != 10 {
		t.Error("clone mutation leaked into original")
	}
	// ID sequences stay aligned after cloning.
	a := tb.MustInsert(2, 2)
	b := cl.MustInsert(2, 2)
	if a.ID != b.ID {
		t.Errorf("clone ID sequence diverged: %d vs %d", a.ID, b.ID)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tb := newTestTable(t)
	id := tb.MustInsert(1, 10).ID
	got, _ := tb.Get(id)
	got.Values[1] = 777
	again, _ := tb.Get(id)
	if again.Values[1] != 10 {
		t.Error("Get returned aliased storage")
	}
}

func TestDiffTables(t *testing.T) {
	tb := newTestTable(t)
	a := tb.MustInsert(1, 10)
	b := tb.MustInsert(2, 20)
	c := tb.MustInsert(3, 30)
	after := tb.Clone()
	// change b, delete c, insert d
	if err := after.Set(b.ID, []float64{2, 99}); err != nil {
		t.Fatal(err)
	}
	after.Delete(c.ID)
	d := after.MustInsert(4, 40)

	diffs := DiffTables(tb, after, 1e-9)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs: %+v", len(diffs), diffs)
	}
	byID := map[int64]Diff{}
	for _, df := range diffs {
		byID[df.ID] = df
	}
	if df := byID[b.ID]; df.Before == nil || df.After == nil || df.After.Values[1] != 99 {
		t.Errorf("changed diff wrong: %+v", df)
	}
	if df := byID[c.ID]; df.Before == nil || df.After != nil {
		t.Errorf("deleted diff wrong: %+v", df)
	}
	if df := byID[d.ID]; df.Before != nil || df.After == nil {
		t.Errorf("inserted diff wrong: %+v", df)
	}
	if _, ok := byID[a.ID]; ok {
		t.Error("unchanged tuple reported")
	}
	// diffs sorted by ID
	for i := 1; i < len(diffs); i++ {
		if diffs[i-1].ID >= diffs[i].ID {
			t.Error("diffs not sorted by ID")
		}
	}
}

func TestDiffIdenticalEmpty(t *testing.T) {
	tb := newTestTable(t)
	tb.MustInsert(1, 1)
	if d := DiffTables(tb, tb.Clone(), 0); len(d) != 0 {
		t.Errorf("identical tables diff = %v", d)
	}
}

func TestTupleEqualEps(t *testing.T) {
	a := Tuple{Values: []float64{1, 2}}
	b := Tuple{Values: []float64{1, 2.0000001}}
	if !a.Equal(b, 1e-3) {
		t.Error("eps equality failed")
	}
	if a.Equal(b, 1e-9) {
		t.Error("eps equality too lax")
	}
	if a.Equal(Tuple{Values: []float64{1}}, 1) {
		t.Error("arity mismatch equal")
	}
}

// Property: Clone then DiffTables is empty; mutations are always reported.
func TestQuickCloneDiff(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := NewTable(MustSchema("t", []string{"a", "b", "c"}, ""))
		rows := int(n%20) + 1
		for i := 0; i < rows; i++ {
			tb.MustInsert(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		}
		cl := tb.Clone()
		if len(DiffTables(tb, cl, 0)) != 0 {
			return false
		}
		// mutate a random row in the clone
		ids := cl.IDs()
		id := ids[rng.Intn(len(ids))]
		tp, _ := cl.Get(id)
		tp.Values[rng.Intn(3)] += 1 + rng.Float64()
		if err := cl.Set(id, tp.Values); err != nil {
			return false
		}
		diffs := DiffTables(tb, cl, 1e-9)
		return len(diffs) == 1 && diffs[0].ID == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
