package oltp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

func TestTPCCShape(t *testing.T) {
	w := TPCC(TPCCConfig{Orders: 600, Queries: 200, Seed: 1})
	if w.D0.Len() != 600 {
		t.Errorf("orders = %d", w.D0.Len())
	}
	if len(w.Log) != 200 {
		t.Fatalf("log = %d", len(w.Log))
	}
	ins, upd := 0, 0
	for _, q := range w.Log {
		switch q.Kind() {
		case query.KindInsert:
			ins++
		case query.KindUpdate:
			upd++
		default:
			t.Fatalf("unexpected kind %v", q.Kind())
		}
	}
	if ins < 160 || upd == 0 {
		t.Errorf("mix ins=%d upd=%d, want ~92%% inserts", ins, upd)
	}
	// The log must replay cleanly.
	if _, err := query.Replay(w.Log, w.D0); err != nil {
		t.Fatal(err)
	}
}

func TestTPCCDeliveryTargetsExistingOrder(t *testing.T) {
	w := TPCC(TPCCConfig{Orders: 200, Queries: 300, Seed: 2})
	final, err := query.Replay(w.Log, w.D0)
	if err != nil {
		t.Fatal(err)
	}
	// Deliveries are point updates; at least some must have matched a row
	// (carrier set on a previously carrier-0 insert is hard to observe
	// directly, so check that updates have valid key predicates instead).
	for _, q := range w.Log {
		u, ok := q.(*query.Update)
		if !ok {
			continue
		}
		and := u.Where.(*query.And)
		if len(and.Kids) != 2 {
			t.Fatalf("delivery predicate arity %d", len(and.Kids))
		}
	}
	_ = final
}

func TestTATPShape(t *testing.T) {
	w := TATP(TATPConfig{Subscribers: 500, Queries: 300, Seed: 3})
	if w.D0.Len() != 500 || len(w.Log) != 300 {
		t.Fatalf("size %d log %d", w.D0.Len(), len(w.Log))
	}
	for i, q := range w.Log {
		u, ok := q.(*query.Update)
		if !ok {
			t.Fatalf("q%d is %T", i, q)
		}
		pr, ok := u.Where.(*query.Pred)
		if !ok || pr.Op != query.EQ || pr.LHS.Terms[0].Attr != 0 {
			t.Fatalf("q%d is not a point update on s_id: %s", i, q.String(w.Schema))
		}
	}
}

func TestTPCCRepairEndToEnd(t *testing.T) {
	// §7.4: corrupt one query and repair with inc1 + tuple slicing; the
	// complaint sets are tiny (1–2 tuples) and repairs near-interactive.
	w := TPCC(TPCCConfig{Orders: 300, Queries: 120, Seed: 4})
	for _, idx := range []int{119, 80} {
		in, err := w.MakeInstance(idx)
		if err != nil {
			t.Fatal(err)
		}
		if len(in.Complaints) == 0 {
			continue // corruption had no data effect (e.g. same carrier)
		}
		if len(in.Complaints) > 4 {
			t.Errorf("idx %d: complaint set unexpectedly large: %d", idx, len(in.Complaints))
		}
		rep, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, core.Options{
			Algorithm:        core.Incremental,
			TupleSlicing:     true,
			QuerySlicing:     true,
			SingleCorruption: true,
			TimeLimit:        60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Resolved {
			t.Errorf("idx %d: not resolved (%+v)", idx, rep.Stats)
			continue
		}
		acc, err := in.Evaluate(rep.Log)
		if err != nil {
			t.Fatal(err)
		}
		if acc.F1 < 0.99 {
			t.Errorf("idx %d: F1 = %v (%+v)", idx, acc.F1, acc)
		}
	}
}

func TestTATPRepairEndToEnd(t *testing.T) {
	w := TATP(TATPConfig{Subscribers: 400, Queries: 150, Seed: 5})
	in, err := w.MakeInstance(149)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Skip("harmless corruption")
	}
	rep, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, core.Options{
		Algorithm:        core.Incremental,
		TupleSlicing:     true,
		QuerySlicing:     true,
		SingleCorruption: true,
		TimeLimit:        60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	acc, err := in.Evaluate(rep.Log)
	if err != nil {
		t.Fatal(err)
	}
	if acc.F1 < 0.99 {
		t.Errorf("F1 = %v (%+v)", acc.F1, acc)
	}
}

func TestCorruptionDeterminism(t *testing.T) {
	a := TPCC(TPCCConfig{Orders: 100, Queries: 50, Seed: 9})
	b := TPCC(TPCCConfig{Orders: 100, Queries: 50, Seed: 9})
	ia, err := a.MakeInstance(30)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.MakeInstance(30)
	if err != nil {
		t.Fatal(err)
	}
	if query.Distance(ia.Dirty, ib.Dirty) != 0 {
		t.Error("same seed produced different corruption")
	}
}
