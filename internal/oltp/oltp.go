// Package oltp generates the benchmark workloads of the QFix evaluation
// (§7.4): the update statements of TPC-C against the ORDER table and of
// TATP against the SUBSCRIBER table, in the proportions the paper uses
// (TPC-C: ~92% INSERT from NewOrder plus point UPDATEs from Delivery;
// TATP: 100% point UPDATEs from UpdateSubscriberData/UpdateLocation).
//
// The paper drives these through OLTP-bench against Postgres; here the
// statements are generated directly with the same clause structure, key
// distribution, and mix, which is all QFix observes.
package oltp

import (
	"math"
	"math/rand"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TPCCConfig sizes the TPC-C ORDER workload. The paper's §7.4 setting is
// Orders=6000, Queries=2000 (1837 INSERTs), Districts=10, one warehouse.
type TPCCConfig struct {
	Orders     int     // initial ORDER rows (default 6000)
	Queries    int     // log length (default 2000)
	InsertFrac float64 // fraction of INSERTs (default 0.92)
	Districts  int     // districts per warehouse (default 10)
	Seed       int64
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.Orders == 0 {
		c.Orders = 6000
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.InsertFrac == 0 {
		c.InsertFrac = 0.92
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	return c
}

// TPCC builds the ORDER-table workload: NewOrder INSERTs and Delivery
// point UPDATEs (SET o_carrier_id = ? WHERE o_id = ? AND o_d_id = ?).
func TPCC(cfg TPCCConfig) *workload.Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := relation.MustSchema("orders",
		[]string{"o_id", "o_d_id", "o_w_id", "o_c_id", "o_carrier_id", "o_ol_cnt", "o_all_local"},
		"o_id")

	d0 := relation.NewTable(sch)
	perDistrict := cfg.Orders / cfg.Districts
	nextOID := make([]int, cfg.Districts+1)
	for d := 1; d <= cfg.Districts; d++ {
		for o := 1; o <= perDistrict; o++ {
			d0.MustInsert(float64(o), float64(d), 1,
				float64(rng.Intn(3000)+1), // customer
				float64(rng.Intn(10)+1),   // carrier (delivered)
				float64(rng.Intn(11)+5),   // order lines 5..15
				1)                         // all local
		}
		nextOID[d] = perDistrict + 1
	}

	var log []query.Query
	for i := 0; i < cfg.Queries; i++ {
		d := rng.Intn(cfg.Districts) + 1
		if rng.Float64() < cfg.InsertFrac {
			// NewOrder: fresh order, not yet delivered (carrier 0).
			log = append(log, query.NewInsert(
				float64(nextOID[d]), float64(d), 1,
				float64(rng.Intn(3000)+1),
				0,
				float64(rng.Intn(11)+5),
				1))
			nextOID[d]++
		} else {
			// Delivery: assign a carrier to one order of the district.
			oid := rng.Intn(nextOID[d]-1) + 1
			log = append(log, query.NewUpdate(
				[]query.SetClause{{Attr: 4, Expr: query.ConstExpr(float64(rng.Intn(10) + 1))}},
				query.NewAnd(
					query.AttrPred(0, query.EQ, float64(oid)),
					query.AttrPred(1, query.EQ, float64(d)))))
		}
	}

	maxOID := 0
	for _, n := range nextOID {
		if n > maxOID {
			maxOID = n
		}
	}
	corrupt := corruptTPCC(cfg, maxOID)
	return workload.NewCustom(workload.Config{Seed: cfg.Seed, Vd: 3000}, sch, d0, log, corrupt)
}

// corruptTPCC replaces a query's parameters with fresh domain-valid
// values of the same shape (§7.1's corruption procedure applied to the
// benchmark's statement templates).
func corruptTPCC(cfg TPCCConfig, maxOID int) func(rng *rand.Rand, q query.Query, p []float64) {
	return func(rng *rand.Rand, q query.Query, p []float64) {
		switch q.(type) {
		case *query.Update: // p = [carrier, o_id, d_id]
			p[0] = float64(rng.Intn(10) + 1)
			p[1] = float64(rng.Intn(maxOID) + 1)
			p[2] = float64(rng.Intn(cfg.Districts) + 1)
		case *query.Insert: // keep identity (o_id, d_id, w); corrupt payload
			p[3] = float64(rng.Intn(3000) + 1)
			p[4] = float64(rng.Intn(10) + 1)
			p[5] = float64(rng.Intn(11) + 5)
		}
	}
}

// TATPConfig sizes the TATP SUBSCRIBER workload. The paper's setting is
// Subscribers=5000, Queries=2000 (all UPDATEs).
type TATPConfig struct {
	Subscribers int
	Queries     int
	Seed        int64
}

func (c TATPConfig) withDefaults() TATPConfig {
	if c.Subscribers == 0 {
		c.Subscribers = 5000
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	return c
}

// TATP builds the SUBSCRIBER workload: UpdateSubscriberData
// (SET bit_1 = ? WHERE s_id = ?) and UpdateLocation
// (SET vlr_location = ? WHERE s_id = ?), both point updates on the key.
func TATP(cfg TATPConfig) *workload.Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := relation.MustSchema("subscriber",
		[]string{"s_id", "bit_1", "hex_1", "byte2_1", "msc_location", "vlr_location"},
		"s_id")

	d0 := relation.NewTable(sch)
	for s := 1; s <= cfg.Subscribers; s++ {
		d0.MustInsert(float64(s),
			float64(rng.Intn(2)),
			float64(rng.Intn(16)),
			float64(rng.Intn(256)),
			math.Floor(rng.Float64()*(1<<20)),
			math.Floor(rng.Float64()*(1<<20)))
	}

	var log []query.Query
	for i := 0; i < cfg.Queries; i++ {
		sid := float64(rng.Intn(cfg.Subscribers) + 1)
		if rng.Float64() < 0.5 {
			// UpdateSubscriberData
			log = append(log, query.NewUpdate(
				[]query.SetClause{
					{Attr: 1, Expr: query.ConstExpr(float64(rng.Intn(2)))},
					{Attr: 3, Expr: query.ConstExpr(float64(rng.Intn(256)))},
				},
				query.AttrPred(0, query.EQ, sid)))
		} else {
			// UpdateLocation
			log = append(log, query.NewUpdate(
				[]query.SetClause{{Attr: 5, Expr: query.ConstExpr(math.Floor(rng.Float64() * (1 << 20)))}},
				query.AttrPred(0, query.EQ, sid)))
		}
	}

	corrupt := func(rng *rand.Rand, q query.Query, p []float64) {
		u, ok := q.(*query.Update)
		if !ok {
			return
		}
		for si := range u.Set {
			switch u.Set[si].Attr {
			case 1:
				p[si] = float64(rng.Intn(2))
			case 3:
				p[si] = float64(rng.Intn(256))
			default:
				p[si] = math.Floor(rng.Float64() * (1 << 20))
			}
		}
		p[len(u.Set)] = float64(rng.Intn(cfg.Subscribers) + 1) // retarget s_id
	}
	return workload.NewCustom(workload.Config{Seed: cfg.Seed, Vd: 1 << 20}, sch, d0, log, corrupt)
}
