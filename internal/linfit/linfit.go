// Package linfit implements the second single-query baseline the paper
// mentions alongside DecTree (§3: "alternative approaches that use
// classification tools and linear systems of equations ... limited to a
// query log containing a single query", detailed in the technical
// report): the WHERE clause is re-fitted as the tightest axis-aligned
// box around the changed tuples, and the SET-clause constants are solved
// from the resulting linear system by least squares.
//
// Like DecTree it exists as a comparison point: it is fast and exact
// when the true predicate is a conjunctive range on the changed
// attributes, and fails in the ways the paper predicts (over-tight boxes
// under sparse evidence, no support for disjunctions, single query only).
package linfit

import (
	"fmt"
	"math"

	"repro/internal/query"
	"repro/internal/relation"
)

// Repair fits a repaired version of the single corrupted UPDATE: d0 is
// the state before the query, truth the correct state after it. The
// dirty query supplies the SET structure (which attributes, constant or
// relative); its WHERE structure is replaced by a box over the changed
// tuples' attributes referenced in the original predicate (falling back
// to all attributes when the original predicate is empty).
func Repair(d0 *relation.Table, dirty *query.Update, truth *relation.Table) (*query.Update, error) {
	width := d0.Schema().Width()
	var changed []relation.Tuple
	d0.Rows(func(t relation.Tuple) {
		if after, ok := truth.Get(t.ID); ok && !t.Equal(after, 1e-9) {
			changed = append(changed, t.Clone())
		}
	})
	if len(changed) == 0 {
		return nil, fmt.Errorf("linfit: no changed tuples to fit")
	}

	// Attributes the original WHERE referenced; the baseline keeps the
	// predicate's attribute structure, like QFix repairs constants.
	attrs := query.NewAttrSet(query.CondAttrs(dirty.Where, nil)...)
	if len(attrs) == 0 {
		for a := 0; a < width; a++ {
			attrs[a] = true
		}
	}

	// Box fit: per referenced attribute, [min, max] over changed tuples.
	var kids []query.Cond
	for _, a := range attrs.Sorted() {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range changed {
			v := t.Values[a]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		kids = append(kids,
			query.AttrPred(a, query.GE, lo),
			query.AttrPred(a, query.LE, hi))
	}
	var where query.Cond
	if len(kids) == 1 {
		where = kids[0]
	} else {
		where = query.NewAnd(kids...)
	}

	repaired := dirty.Clone().(*query.Update)
	repaired.Where = where

	// SET constants by least squares over the changed tuples:
	// target.A = (expr minus const)(old) + c  =>  c = mean residual.
	for si, sc := range repaired.Set {
		sum, n := 0.0, 0
		for _, t := range changed {
			after, ok := truth.Get(t.ID)
			if !ok {
				continue
			}
			base := 0.0
			for _, tm := range sc.Expr.Terms {
				base += tm.Coef * t.Values[tm.Attr]
			}
			sum += after.Values[sc.Attr] - base
			n++
		}
		if n > 0 {
			repaired.Set[si].Expr.Const = sum / float64(n)
		}
	}
	return repaired, nil
}
