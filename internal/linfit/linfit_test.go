package linfit

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestRepairRecoversRangeUpdate(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "v"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 100; i++ {
		d0.MustInsert(float64(i), 5)
	}
	truthQ := query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(42)}},
		query.NewAnd(query.AttrPred(0, query.GE, 30), query.AttrPred(0, query.LE, 60)))
	dirtyQ := query.NewUpdate([]query.SetClause{{Attr: 1, Expr: query.ConstExpr(9)}},
		query.NewAnd(query.AttrPred(0, query.GE, 10), query.AttrPred(0, query.LE, 20)))
	truth, err := query.Replay([]query.Query{truthQ}, d0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Repair(d0, dirtyQ, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Set[0].Expr.Const != 42 {
		t.Errorf("SET const = %v, want 42", rep.Set[0].Expr.Const)
	}
	// Replay must reproduce the truth exactly for this clean box case.
	final, err := query.Replay([]query.Query{rep}, d0)
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.DiffTables(final, truth, 1e-9); len(d) != 0 {
		t.Errorf("repaired state differs on %d tuples", len(d))
	}
}

func TestRepairNoEvidence(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(1)
	q := query.NewUpdate([]query.SetClause{{Attr: 0, Expr: query.ConstExpr(5)}},
		query.AttrPred(0, query.GE, 100))
	if _, err := Repair(d0, q, d0.Clone()); err == nil {
		t.Error("no-evidence repair accepted")
	}
}

func TestRepairOnSyntheticWorkload(t *testing.T) {
	// The baseline's favourable regime: single query, wide range.
	w := workload.MustGenerate(workload.Config{ND: 150, Na: 4, Nq: 1, Seed: 5, Range: 60})
	in, err := w.MakeInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) < 5 {
		t.Skip("not enough complaints")
	}
	rep, err := Repair(w.D0, in.Dirty[0].(*query.Update), in.TruthFinal)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := in.Evaluate([]query.Query{rep})
	if err != nil {
		t.Fatal(err)
	}
	// Box fitting recovers the bulk of a clean range corruption, but the
	// box over-tightens to the observed extremes, so recall can dip —
	// exactly the failure the paper predicts for evidence-fitting
	// baselines. Demand rough recovery only.
	if acc.F1 < 0.6 {
		t.Errorf("F1 = %v (%+v)", acc.F1, acc)
	}
}

func TestRepairPreservesSetStructure(t *testing.T) {
	sch := relation.MustSchema("T", []string{"a", "v"}, "")
	d0 := relation.NewTable(sch)
	for i := 0; i < 50; i++ {
		d0.MustInsert(float64(i), float64(i%5))
	}
	// Relative SET: v = v + 7 for a <= 20.
	truthQ := query.NewUpdate([]query.SetClause{{Attr: 1,
		Expr: query.NewLinExpr(7, query.Term{Attr: 1, Coef: 1})}},
		query.AttrPred(0, query.LE, 20))
	dirtyQ := query.NewUpdate([]query.SetClause{{Attr: 1,
		Expr: query.NewLinExpr(99, query.Term{Attr: 1, Coef: 1})}},
		query.AttrPred(0, query.LE, 35))
	truth, _ := query.Replay([]query.Query{truthQ}, d0)
	rep, err := Repair(d0, dirtyQ, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Set[0].Expr.Const != 7 {
		t.Errorf("relative const = %v, want 7", rep.Set[0].Expr.Const)
	}
	if len(rep.Set[0].Expr.Terms) != 1 {
		t.Errorf("SET structure changed: %+v", rep.Set[0].Expr)
	}
}
