// Package histstore persists the inputs QFix needs — a checkpointed
// database state D0 and the append-only query log that ran after it — in
// a plain-text directory layout, and restores them for diagnosis.
//
// The paper assumes "the system only maintains D0 and Dn ... D0 can be a
// checkpoint" (§3.1). This package is that checkpoint mechanism: a
// deployment snapshots its table, appends every update statement as it
// executes, and hands the directory to QFix when complaints arrive.
//
// Layout:
//
//	dir/meta.txt      table name, key attribute, attribute names
//	dir/snapshot.csv  D0 rows (tuple IDs implicit: 1..n in order)
//	dir/log.sql       one statement per line, append-only
//
// Everything is line-oriented text so the store remains greppable and
// diffable; durability relies on O_APPEND + Sync, which is adequate for
// a reproduction (a production system would layer a WAL with checksums).
package histstore

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// Store is an open history directory.
type Store struct {
	dir    string
	schema *relation.Schema
	d0     *relation.Table
	log    []query.Query
	logF   *os.File
}

// Create initializes a new history directory with the given checkpoint
// state. The directory must not already contain a store.
func Create(dir string, d0 *relation.Table) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "meta.txt")); err == nil {
		return nil, fmt.Errorf("histstore: %s already contains a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sch := d0.Schema()

	var meta strings.Builder
	fmt.Fprintf(&meta, "table %s\n", sch.Name())
	if sch.Key() >= 0 {
		fmt.Fprintf(&meta, "key %s\n", sch.Attr(sch.Key()))
	}
	fmt.Fprintf(&meta, "attrs %s\n", strings.Join(sch.Attrs(), ","))
	if err := os.WriteFile(filepath.Join(dir, "meta.txt"), []byte(meta.String()), 0o644); err != nil {
		return nil, err
	}

	snap, err := os.Create(filepath.Join(dir, "snapshot.csv"))
	if err != nil {
		return nil, err
	}
	w := csv.NewWriter(snap)
	var werr error
	d0.Rows(func(t relation.Tuple) {
		rec := make([]string, len(t.Values))
		for i, v := range t.Values {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil && werr == nil {
			werr = err
		}
	})
	w.Flush()
	if werr == nil {
		werr = w.Error()
	}
	if cerr := snap.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return nil, werr
	}

	logF, err := os.OpenFile(filepath.Join(dir, "log.sql"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, schema: sch, d0: d0.Clone(), logF: logF}, nil
}

// Open loads an existing history directory.
func Open(dir string) (*Store, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.txt"))
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	var table, key string
	var attrs []string
	for _, line := range strings.Split(string(metaBytes), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "table "):
			table = strings.TrimPrefix(line, "table ")
		case strings.HasPrefix(line, "key "):
			key = strings.TrimPrefix(line, "key ")
		case strings.HasPrefix(line, "attrs "):
			attrs = strings.Split(strings.TrimPrefix(line, "attrs "), ",")
		}
	}
	sch, err := relation.NewSchema(table, attrs, key)
	if err != nil {
		return nil, fmt.Errorf("histstore: bad meta: %w", err)
	}

	snapF, err := os.Open(filepath.Join(dir, "snapshot.csv"))
	if err != nil {
		return nil, err
	}
	defer snapF.Close()
	records, err := csv.NewReader(snapF).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("histstore: snapshot: %w", err)
	}
	d0 := relation.NewTable(sch)
	for li, rec := range records {
		vals := make([]float64, len(rec))
		for i, cell := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, fmt.Errorf("histstore: snapshot line %d: %w", li+1, err)
			}
			vals[i] = v
		}
		if _, err := d0.Insert(vals); err != nil {
			return nil, fmt.Errorf("histstore: snapshot line %d: %w", li+1, err)
		}
	}

	var log []query.Query
	logPath := filepath.Join(dir, "log.sql")
	if f, err := os.Open(logPath); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		ln := 0
		for sc.Scan() {
			ln++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "--") {
				continue
			}
			q, err := sqlparse.Parse(sch, line)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("histstore: log line %d: %w", ln, err)
			}
			log = append(log, q)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}

	logF, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, schema: sch, d0: d0, log: log, logF: logF}, nil
}

// Close releases the log file handle.
func (s *Store) Close() error {
	if s.logF == nil {
		return nil
	}
	err := s.logF.Close()
	s.logF = nil
	return err
}

// Schema returns the table schema.
func (s *Store) Schema() *relation.Schema { return s.schema }

// D0 returns a copy of the checkpoint state.
func (s *Store) D0() *relation.Table { return s.d0.Clone() }

// Log returns a copy of the persisted query log.
func (s *Store) Log() []query.Query { return query.CloneLog(s.log) }

// Append durably adds a statement to the log.
func (s *Store) Append(q query.Query) error {
	if s.logF == nil {
		return fmt.Errorf("histstore: store is closed")
	}
	line := q.String(s.schema)
	// Round-trip check: the persisted text must parse back to the same
	// statement; refuse to persist anything that would not replay.
	if _, err := sqlparse.Parse(s.schema, line); err != nil {
		return fmt.Errorf("histstore: statement does not round-trip: %w", err)
	}
	if _, err := fmt.Fprintln(s.logF, line+";"); err != nil {
		return err
	}
	if err := s.logF.Sync(); err != nil {
		return err
	}
	s.log = append(s.log, q.Clone())
	return nil
}

// AppendSQL parses and durably adds a statement written in SQL.
func (s *Store) AppendSQL(sql string) (query.Query, error) {
	q, err := sqlparse.Parse(s.schema, sql)
	if err != nil {
		return nil, err
	}
	if err := s.Append(q); err != nil {
		return nil, err
	}
	return q, nil
}

// Current replays the whole log over the checkpoint and returns the
// current state Dn.
func (s *Store) Current() (*relation.Table, error) {
	return query.Replay(s.log, s.d0)
}

// Checkpoint rewrites the snapshot to the current state and truncates
// the log: the paper's "D0 can be a checkpoint: a state of the database
// that we assume is correct; we cannot diagnose errors before this
// state." Call it after repairs have been validated.
func (s *Store) Checkpoint() error {
	cur, err := s.Current()
	if err != nil {
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, "meta.txt")); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, "log.sql")); err != nil && !os.IsNotExist(err) {
		return err
	}
	ns, err := Create(s.dir, cur)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}
