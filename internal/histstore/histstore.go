// Package histstore persists the inputs QFix needs — a checkpointed
// database state D0 and the append-only query log that ran after it — in
// a plain-text directory layout, and restores them for diagnosis.
//
// The paper assumes "the system only maintains D0 and Dn ... D0 can be a
// checkpoint" (§3.1). This package is that checkpoint mechanism: a
// deployment snapshots its table, appends every update statement as it
// executes, and hands the directory to QFix when complaints arrive.
//
// Layout:
//
//	dir/meta.txt      table name, key attribute, attribute names
//	dir/snapshot.csv  D0: a "qfixsnap,2,<nextid>,<gen>" header record,
//	                  then one "<tuple-id>,<v1>,...,<vn>" row per tuple
//	dir/log.sql       a "-- qfixlog gen <gen>" header, then one
//	                  statement per line, append-only
//
// Tuple IDs and the insert counter are persisted explicitly (format 2)
// so identities survive checkpoint and reopen even after DELETEs — a
// store whose complaints and caches are keyed by TupleID must never
// renumber surviving rows. The legacy ID-less snapshot format (rows of
// bare values, IDs implicitly 1..n) is still read; the first Checkpoint
// upgrades it.
//
// The generation number is the checkpoint commit protocol: Checkpoint
// writes the new snapshot under a temporary name and renames it into
// place, and the rename is the commit point — the snapshot's gen no
// longer matches the old log's header, so Open treats that log as stale
// (pre-checkpoint) and discards it. A crash at any step leaves the
// store openable and consistent: either entirely pre-checkpoint or
// entirely post-checkpoint, never a new snapshot with the old log
// silently replayed on top.
//
// Everything is line-oriented text so the store remains greppable and
// diffable; durability relies on O_APPEND + Sync, which is adequate for
// a reproduction (a production system would layer a WAL with checksums).
//
// A store also owns a core.ImpactCache: Diagnose installs it, so repeat
// diagnoses of the same log reuse the FullImpact closure, and Append
// eagerly extends the cached closure (core.ExtendFullImpact) so a
// diagnosis after appends starts from a warm closure. A
// core.SolutionCache sits next to it: Diagnose with Options.WarmStart
// seeds each solve from the solutions of earlier diagnoses of the same
// history (Stats.WarmSeeds), so auditing the same store repeatedly
// collapses each branch-and-bound to its pruning pass.
package histstore

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sqlparse"
)

// snapMagic marks a format-2 snapshot header record.
const snapMagic = "qfixsnap"

// snapFormat is the snapshot format this package writes.
const snapFormat = 2

// logGenPrefix starts the log's generation header line. It is a SQL
// comment, so legacy readers (and grep) skip it naturally.
const logGenPrefix = "-- qfixlog gen "

// Store is an open history directory. A Store is safe for concurrent
// use: writers (Append, Checkpoint, Close) serialize behind a write
// lock, readers take a read lock, and Diagnose snapshots the history
// under the read lock but runs the actual diagnosis unlocked — so a
// resident service (internal/qfixd) can keep appending to a tenant's
// store while a long diagnosis of its earlier state is in flight. The
// snapshot discipline is what makes the unlocked run sound: the log is
// append-only (a reader's slice header never sees later entries) and
// Checkpoint replaces the d0 pointer rather than mutating the table, so
// a diagnosis always sees the consistent (d0, log, digest) triple it
// captured.
type Store struct {
	mu     sync.RWMutex
	dir    string
	schema *relation.Schema
	d0     *relation.Table //qfix:guarded-by mu
	log    []query.Query   //qfix:guarded-by mu
	logF   *os.File        //qfix:guarded-by mu
	// gen is the checkpoint generation; 0 for stores still on the
	// legacy snapshot format.
	gen int64 //qfix:guarded-by mu
	// digest is the rolling log digest (core.DigestStep per append),
	// the impact cache key for the current log.
	digest    uint64 //qfix:guarded-by mu
	cache     *core.ImpactCache
	solutions *core.SolutionCache
	// impact is the FullImpact closure covering log, once a diagnosis
	// has materialized one; Append extends it incrementally.
	impact []query.AttrSet //qfix:guarded-by mu
}

// Create initializes a new history directory with the given checkpoint
// state. The directory must not already contain a store.
func Create(dir string, d0 *relation.Table) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "meta.txt")); err == nil {
		return nil, fmt.Errorf("histstore: %s already contains a store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sch := d0.Schema()

	var meta strings.Builder
	fmt.Fprintf(&meta, "table %s\n", sch.Name())
	if sch.Key() >= 0 {
		fmt.Fprintf(&meta, "key %s\n", sch.Attr(sch.Key()))
	}
	fmt.Fprintf(&meta, "attrs %s\n", strings.Join(sch.Attrs(), ","))
	if err := os.WriteFile(filepath.Join(dir, "meta.txt"), []byte(meta.String()), 0o644); err != nil {
		return nil, err
	}

	const gen = 1
	if err := writeSnapshot(filepath.Join(dir, "snapshot.csv"), d0, gen); err != nil {
		return nil, err
	}
	logF, err := freshLog(dir, gen)
	if err != nil {
		return nil, err
	}
	syncDir(dir)
	mOpens.Inc()
	return &Store{dir: dir, schema: sch, d0: d0.Clone(), logF: logF, gen: gen,
		digest: core.DigestSeed(sch), cache: core.NewImpactCache(0),
		solutions: core.NewSolutionCache(0)}, nil
}

// writeSnapshot writes a format-2 snapshot (header record, then one
// ID-prefixed row per tuple) to path and syncs it.
func writeSnapshot(path string, tb *relation.Table, gen int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	werr := w.Write([]string{snapMagic, strconv.Itoa(snapFormat),
		strconv.FormatInt(tb.NextID(), 10), strconv.FormatInt(gen, 10)})
	tb.Rows(func(t relation.Tuple) {
		rec := make([]string, 1+len(t.Values))
		rec[0] = strconv.FormatInt(t.ID, 10)
		for i, v := range t.Values {
			rec[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil && werr == nil {
			werr = err
		}
	})
	w.Flush()
	if werr == nil {
		werr = w.Error()
	}
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
	}
	return werr
}

// freshLog replaces log.sql with an empty generation-stamped log via
// temp-file-and-rename and reopens it for appending.
func freshLog(dir string, gen int64) (*os.File, error) {
	path := filepath.Join(dir, "log.sql")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	_, werr := fmt.Fprintf(f, "%s%d\n", logGenPrefix, gen)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return nil, werr
	}
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// syncDir flushes directory metadata (renames, creates) best-effort.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// readSnapshot loads snapshot.csv in either format: format 2 restores
// explicit tuple IDs, the insert counter and the checkpoint generation;
// the legacy format assigns IDs 1..n in row order (gen 0).
func readSnapshot(path string, sch *relation.Schema) (*relation.Table, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rd.FieldsPerRecord = -1 // header and rows differ in width
	records, err := rd.ReadAll()
	if err != nil {
		return nil, 0, fmt.Errorf("histstore: snapshot: %w", err)
	}
	if len(records) == 0 || records[0][0] != snapMagic {
		tb, err := readLegacySnapshot(records, sch)
		return tb, 0, err
	}

	hdr := records[0]
	if len(hdr) != 4 {
		return nil, 0, fmt.Errorf("histstore: snapshot: malformed %s header", snapMagic)
	}
	format, err := strconv.Atoi(hdr[1])
	if err != nil || format != snapFormat {
		return nil, 0, fmt.Errorf("histstore: snapshot format %q not supported (want %d)", hdr[1], snapFormat)
	}
	nextID, err := strconv.ParseInt(hdr[2], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("histstore: snapshot: bad nextid %q", hdr[2])
	}
	gen, err := strconv.ParseInt(hdr[3], 10, 64)
	if err != nil || gen < 1 {
		return nil, 0, fmt.Errorf("histstore: snapshot: bad generation %q", hdr[3])
	}
	rows := make([]relation.Tuple, 0, len(records)-1)
	for li, rec := range records[1:] {
		if len(rec) != sch.Width()+1 {
			return nil, 0, fmt.Errorf("histstore: snapshot line %d: %d fields, want id + %d values",
				li+2, len(rec), sch.Width())
		}
		id, err := strconv.ParseInt(strings.TrimSpace(rec[0]), 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("histstore: snapshot line %d: bad tuple id: %w", li+2, err)
		}
		vals, err := parseValues(rec[1:], li+2)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, relation.Tuple{ID: id, Values: vals})
	}
	tb, err := relation.NewTableFromRows(sch, rows, nextID)
	if err != nil {
		return nil, 0, fmt.Errorf("histstore: snapshot: %w", err)
	}
	return tb, gen, nil
}

// readLegacySnapshot loads the original ID-less format: one row of bare
// values per tuple, IDs implicitly 1..n.
func readLegacySnapshot(records [][]string, sch *relation.Schema) (*relation.Table, error) {
	tb := relation.NewTable(sch)
	for li, rec := range records {
		vals, err := parseValues(rec, li+1)
		if err != nil {
			return nil, err
		}
		if _, err := tb.Insert(vals); err != nil {
			return nil, fmt.Errorf("histstore: snapshot line %d: %w", li+1, err)
		}
	}
	return tb, nil
}

func parseValues(cells []string, line int) ([]float64, error) {
	vals := make([]float64, len(cells))
	for i, cell := range cells {
		v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		if err != nil {
			return nil, fmt.Errorf("histstore: snapshot line %d: %w", line, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// Open loads an existing history directory.
func Open(dir string) (*Store, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.txt"))
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	var table, key string
	var attrs []string
	for _, line := range strings.Split(string(metaBytes), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "table "):
			table = strings.TrimPrefix(line, "table ")
		case strings.HasPrefix(line, "key "):
			key = strings.TrimPrefix(line, "key ")
		case strings.HasPrefix(line, "attrs "):
			attrs = strings.Split(strings.TrimPrefix(line, "attrs "), ",")
		}
	}
	sch, err := relation.NewSchema(table, attrs, key)
	if err != nil {
		return nil, fmt.Errorf("histstore: bad meta: %w", err)
	}

	d0, gen, err := readSnapshot(filepath.Join(dir, "snapshot.csv"), sch)
	if err != nil {
		return nil, err
	}

	var log []query.Query
	logGen := int64(-1)
	logPath := filepath.Join(dir, "log.sql")
	if f, err := os.Open(logPath); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		ln := 0
		for sc.Scan() {
			ln++
			line := strings.TrimSpace(sc.Text())
			if ln == 1 {
				if g, ok := parseLogGen(line); ok {
					logGen = g
					if gen > 0 && logGen != gen {
						// Stale pre-checkpoint log: stop before parsing
						// any statements — crash recovery must not
						// depend on the contents of a file it is about
						// to discard (a torn line in it is fine).
						break
					}
					continue
				}
				if gen > 0 {
					// A format-2 store's log always opens with its
					// generation header (freshLog writes it first); a
					// headerless file is stale or foreign. Same rule:
					// don't parse what will be discarded.
					break
				}
			}
			if line == "" || strings.HasPrefix(line, "--") {
				continue
			}
			q, err := sqlparse.Parse(sch, line)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("histstore: log line %d: %w", ln, err)
			}
			log = append(log, q)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}

	var logF *os.File
	if gen > 0 && logGen != gen {
		// The log predates the snapshot: a checkpoint committed its
		// snapshot rename but crashed before replacing the log (or the
		// log file is missing). Those statements are already folded into
		// the snapshot state — finish the checkpoint by discarding them.
		log = nil
		if logF, err = freshLog(dir, gen); err != nil {
			return nil, err
		}
		syncDir(dir)
	} else if logF, err = os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return nil, err
	}

	s := &Store{dir: dir, schema: sch, d0: d0, log: log, logF: logF, gen: gen,
		digest: core.DigestSeed(sch), cache: core.NewImpactCache(0),
		solutions: core.NewSolutionCache(0)}
	for _, q := range log {
		//qfix:lock-ok s is unpublished until return; no other goroutine can hold a reference yet
		s.digest = core.DigestStep(s.digest, sch, q)
	}
	mOpens.Inc()
	return s, nil
}

// parseLogGen recognizes the log's generation header line.
func parseLogGen(line string) (int64, bool) {
	if !strings.HasPrefix(line, logGenPrefix) {
		return 0, false
	}
	g, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, logGenPrefix)), 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// Close releases the log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logF == nil {
		return nil
	}
	err := s.logF.Close()
	s.logF = nil
	return err
}

// Schema returns the table schema. Schemas are immutable after Open, so
// no lock is needed.
func (s *Store) Schema() *relation.Schema { return s.schema }

// D0 returns a copy of the checkpoint state.
func (s *Store) D0() *relation.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.d0.Clone()
}

// Log returns a copy of the persisted query log.
func (s *Store) Log() []query.Query {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.CloneLog(s.log)
}

// ImpactCache returns the store's impact cache (shared by every
// Diagnose on this store).
func (s *Store) ImpactCache() *core.ImpactCache { return s.cache }

// SolutionCache returns the store's solution cache (shared by every
// warm-started Diagnose on this store).
func (s *Store) SolutionCache() *core.SolutionCache { return s.solutions }

// Append durably adds a statement to the log.
func (s *Store) Append(q query.Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(q)
}

func (s *Store) appendLocked(q query.Query) error {
	if s.logF == nil {
		return fmt.Errorf("histstore: store is closed")
	}
	line := q.String(s.schema)
	// Round-trip check: the persisted text must parse back to the same
	// statement; refuse to persist anything that would not replay.
	if _, err := sqlparse.Parse(s.schema, line); err != nil {
		return fmt.Errorf("histstore: statement does not round-trip: %w", err)
	}
	if _, err := fmt.Fprintln(s.logF, line+";"); err != nil {
		return err
	}
	if err := s.logF.Sync(); err != nil {
		return err
	}
	s.log = append(s.log, q.Clone())
	s.digest = core.DigestStep(s.digest, s.schema, q)
	s.extendImpactLocked()
	mAppends.Inc()
	return nil
}

// extendImpactLocked keeps the cached FullImpact closure covering the log:
// once a diagnosis has materialized one, every append extends it
// incrementally (touching only prefix entries whose impact reaches the
// new statement) so the next Diagnose starts from a warm closure
// instead of paying the update — let alone the full O(n²) recompute —
// on the diagnosis path. Quiet appends (statements nothing upstream
// feeds into) cost O(n) set-intersection checks; for a diagnose-rarely
// bulk loader even that is wasted, but it is dwarfed by Append's
// per-statement fsync, and a store that never diagnoses never
// materializes a closure to maintain in the first place.
func (s *Store) extendImpactLocked() {
	if s.impact == nil {
		return
	}
	s.impact = core.ExtendFullImpact(s.impact, s.log, s.schema.Width())
	s.cache.Put(s.digest, len(s.log), s.impact)
}

// AppendSQL parses and durably adds a statement written in SQL. The
// parse runs outside the lock (it touches only the immutable schema);
// only the durable append itself serializes with other writers.
func (s *Store) AppendSQL(sql string) (query.Query, error) {
	q, err := sqlparse.Parse(s.schema, sql)
	if err != nil {
		return nil, err
	}
	if err := s.Append(q); err != nil {
		return nil, err
	}
	return q, nil
}

// Current replays the whole log over the checkpoint and returns the
// current state Dn. The replay works on a clone, so only the snapshot
// of (d0, log) is taken under the lock.
func (s *Store) Current() (*relation.Table, error) {
	s.mu.RLock()
	d0, log := s.d0, s.log
	s.mu.RUnlock()
	return query.Replay(log, d0)
}

// Diagnose runs QFix over the store's checkpoint state and log with the
// store's impact cache installed: the first call pays the FullImpact
// closure, repeat calls over the same log reuse it
// (Stats.ImpactCacheHits), and calls after Appends reuse the
// incrementally extended closure (Stats.ImpactCacheExtends counts
// extensions done on the diagnosis path; appends extend eagerly, so the
// usual count there is zero). With Options.Workers set (and no explicit
// PartitionSolver), partition subproblems ship to a dist coordinator
// exactly as in the top-level qfix.Diagnose.
func (s *Store) Diagnose(complaints []core.Complaint, opt core.Options) (*core.Repair, error) {
	// Snapshot the history under the read lock, then diagnose unlocked:
	// the log is append-only and Checkpoint swaps the d0 pointer rather
	// than mutating the table, so the captured (d0, log, digest) triple
	// stays internally consistent for the whole run even while writers
	// proceed. The engine never mutates its inputs (replay verification
	// clones), so concurrent diagnoses may share the same snapshot.
	s.mu.RLock()
	d0, log, digest := s.d0, s.log, s.digest
	s.mu.RUnlock()
	if opt.ImpactCache == nil {
		opt.ImpactCache = s.cache
	}
	if opt.WarmStart && opt.SolutionCache == nil {
		opt.SolutionCache = s.solutions
	}
	if opt.LogDigest == 0 {
		opt.LogDigest = digest // exact-hit fast path: no SQL re-rendering
	}
	mDiagnoses.Inc()
	var rep *core.Repair
	var err error
	if len(opt.Workers) > 0 && opt.PartitionSolver == nil {
		rep, err = dist.DiagnoseWorkers(opt.Workers, d0, log, complaints, opt)
	} else {
		rep, err = core.Diagnose(d0, log, complaints, opt)
	}
	if err == nil && opt.ImpactCache == s.cache {
		// Adopt the closure the diagnosis (or a predecessor) cached so
		// future Appends extend it eagerly — but only if the store still
		// holds the history this diagnosis saw; a closure for a stale
		// digest must not seed eager extension of a different log.
		s.mu.Lock()
		if s.digest == digest && len(s.log) == len(log) {
			if full, ok := s.cache.Cached(digest, len(log)); ok {
				s.impact = full
			}
		}
		s.mu.Unlock()
	}
	return rep, err
}

// Checkpoint rewrites the snapshot to the current state and truncates
// the log: the paper's "D0 can be a checkpoint: a state of the database
// that we assume is correct; we cannot diagnose errors before this
// state." Call it after repairs have been validated.
//
// The rewrite is crash-safe: the new snapshot is written under a
// temporary name and renamed into place, and that rename is the commit
// point — it carries a new generation, so the not-yet-truncated log
// (stamped with the old generation) is recognized as stale and
// discarded by Open. Tuple IDs and the insert counter are preserved
// exactly (format 2), so complaints and caches keyed by TupleID remain
// valid across the checkpoint even when DELETEs removed rows.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Replay inline rather than via Current: the write lock is held (the
	// RWMutex is not reentrant) and the checkpoint must be computed from
	// exactly the state it will commit.
	cur, err := query.Replay(s.log, s.d0)
	if err != nil {
		return err
	}
	gen := s.gen + 1 // a legacy store (gen 0) upgrades to gen 1
	dirPath := filepath.Join(s.dir, "snapshot.csv")
	tmp := dirPath + ".tmp"
	if err := writeSnapshot(tmp, cur, gen); err != nil {
		return err
	}
	if err := os.Rename(tmp, dirPath); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the commit before touching the log: without this barrier
	// a crash could reorder the renames on disk — new-gen log durable,
	// new snapshot not — and Open would then discard the old log as
	// stale against the old snapshot, losing synced appends.
	syncDir(s.dir)
	// Commit point passed: the store now reads as post-checkpoint even
	// if anything below fails.
	if s.logF != nil {
		s.logF.Close()
		s.logF = nil
	}
	logF, err := freshLog(s.dir, gen)
	if err != nil {
		return err
	}
	syncDir(s.dir)
	s.d0 = cur
	s.log = nil
	s.logF = logF
	s.gen = gen
	s.digest = core.DigestSeed(s.schema)
	s.impact = nil
	mCheckpoints.Inc()
	return nil
}
