package histstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

func newStore(t *testing.T) (*Store, *relation.Schema) {
	t.Helper()
	sch := relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(9500, 950, 8550)
	d0.MustInsert(90000, 22500, 67500)
	d0.MustInsert(86000, 21500, 64500)
	d0.MustInsert(86500, 21625, 64875)
	s, err := Create(t.TempDir(), d0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, sch
}

func TestCreateAppendReopen(t *testing.T) {
	s, sch := newStore(t)
	dir := s.dir
	if _, err := s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendSQL("INSERT INTO Taxes VALUES (85800, 21450, 0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendSQL("not sql at all"); err == nil {
		t.Error("malformed SQL accepted")
	}
	s.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Schema().String() != sch.String() {
		t.Errorf("schema mismatch: %v vs %v", re.Schema(), sch)
	}
	if re.D0().Len() != 4 {
		t.Errorf("D0 len = %d", re.D0().Len())
	}
	log := re.Log()
	if len(log) != 2 {
		t.Fatalf("log len = %d", len(log))
	}
	cur, err := re.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != 5 {
		t.Errorf("current len = %d", cur.Len())
	}
	t2, _ := cur.Get(2)
	if t2.Values[1] != 27000 {
		t.Errorf("t2 owed = %v, want 27000", t2.Values[1])
	}
}

func TestAppendSurvivesReopenMidStream(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	if _, err := s.AppendSQL("UPDATE Taxes SET pay = income - owed"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reopen, append more, reopen again.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AppendSQL("DELETE FROM Taxes WHERE income < 5000"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if len(s3.Log()) != 2 {
		t.Errorf("log len after two sessions = %d", len(s3.Log()))
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	s, _ := newStore(t)
	if _, err := Create(s.dir, s.D0()); err == nil {
		t.Error("Create over existing store accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open on empty dir accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "meta.txt"), []byte("table t\nattrs a,b\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "snapshot.csv"), []byte("1,notanum\n"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("bad snapshot accepted")
	}
	os.WriteFile(filepath.Join(dir, "snapshot.csv"), []byte("1,2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "log.sql"), []byte("NOT SQL;\n"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("bad log accepted")
	}
}

func TestCommentsAndBlanksInLog(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET pay = 1 WHERE income < 0")
	s.Close()
	// Hand-edit the log with comments and blank lines.
	f, err := os.OpenFile(filepath.Join(dir, "log.sql"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n-- operator note\n\nUPDATE Taxes SET pay = 2 WHERE income < 0;\n")
	f.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Log()) != 2 {
		t.Errorf("log len = %d, want 2", len(re.Log()))
	}
}

func TestCheckpoint(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	cur, _ := s.Current()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(s.Log()) != 0 {
		t.Errorf("log not truncated after checkpoint: %d", len(s.Log()))
	}
	if d := relation.DiffTables(s.D0(), cur, 1e-9); len(d) != 0 {
		t.Errorf("checkpoint state differs from pre-checkpoint current: %d diffs", len(d))
	}
	// And it persists.
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Log()) != 0 || re.D0().Len() != 4 {
		t.Errorf("reopened checkpoint wrong: log=%d d0=%d", len(re.Log()), re.D0().Len())
	}
}

func TestClosedStoreRejectsAppend(t *testing.T) {
	s, _ := newStore(t)
	s.Close()
	if _, err := s.AppendSQL("DELETE FROM Taxes"); err == nil {
		t.Error("append after close accepted")
	}
}

// The capstone: capture a history, corrupt it on disk, reload, diagnose.
func TestStoreToDiagnosisPipeline(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	// The "true" history is what should have run; persist the corrupted
	// variant, as a deployment would have.
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700") // corrupted
	s.AppendSQL("INSERT INTO Taxes VALUES (85800, 21450, 0)")
	s.AppendSQL("UPDATE Taxes SET pay = income - owed")
	s.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	complaints := []core.Complaint{
		{TupleID: 3, Exists: true, Values: []float64{86000, 21500, 64500}},
		{TupleID: 4, Exists: true, Values: []float64{86500, 21625, 64875}},
	}
	rep, err := core.Diagnose(re.D0(), re.Log(), complaints, core.Options{
		Algorithm:    core.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved || len(rep.Changed) != 1 || rep.Changed[0] != 0 {
		t.Fatalf("pipeline diagnosis failed: resolved=%v changed=%v", rep.Resolved, rep.Changed)
	}
	repairedSQL := rep.Log[0].String(re.Schema())
	if !strings.Contains(repairedSQL, ">=") {
		t.Errorf("unexpected repaired SQL: %s", repairedSQL)
	}
}

// Regression (tuple-identity loss): a log containing DELETEs used to be
// checkpointed into an ID-less snapshot, so reopening renumbered the
// survivors 1..n and every TupleID-keyed complaint pointed at the wrong
// row. Format 2 persists IDs and the insert counter.
func TestCheckpointPreservesTupleIDsAfterDelete(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("DELETE FROM Taxes WHERE income < 10000") // removes tuple 1
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	wantIDs := []int64{2, 3, 4}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	check := func(label string, st *Store) {
		t.Helper()
		d0 := st.D0()
		got := d0.IDs()
		if len(got) != len(wantIDs) {
			t.Fatalf("%s: IDs = %v, want %v", label, got, wantIDs)
		}
		for i, id := range wantIDs {
			if got[i] != id {
				t.Fatalf("%s: IDs = %v, want %v (survivors renumbered)", label, got, wantIDs)
			}
		}
		if d0.NextID() != 5 {
			t.Errorf("%s: NextID = %d, want 5 (insert counter must survive)", label, d0.NextID())
		}
		tp, ok := d0.Get(3)
		if !ok || tp.Values[1] != 86000*0.3 {
			t.Errorf("%s: tuple 3 = %+v ok=%v, want owed 25800", label, tp, ok)
		}
	}
	check("after checkpoint", s)
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	check("after reopen", re)
	// IDs allocated post-checkpoint continue the original sequence, so
	// replay alignment (and therefore complaints) stays correct.
	if _, err := re.AppendSQL("INSERT INTO Taxes VALUES (50000, 12500, 37500)"); err != nil {
		t.Fatal(err)
	}
	cur, err := re.Current()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(5); !ok {
		t.Errorf("post-checkpoint insert got IDs %v, want it at 5", cur.IDs())
	}
}

// The legacy ID-less snapshot format (pre-format-2 stores) must still
// open, with IDs implicitly 1..n; the first checkpoint upgrades it.
func TestOpenLegacySnapshotFormat(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "meta.txt"),
		[]byte("table Taxes\nattrs income,owed,pay\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "snapshot.csv"),
		[]byte("9500,950,8550\n90000,22500,67500\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "log.sql"),
		[]byte("UPDATE Taxes SET pay = income - owed;\n"), 0o644)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.D0().IDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("legacy IDs = %v, want [1 2]", got)
	}
	if len(s.Log()) != 1 {
		t.Fatalf("legacy log len = %d, want 1", len(s.Log()))
	}
	if s.gen != 0 {
		t.Errorf("legacy gen = %d, want 0", s.gen)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.gen != 1 {
		t.Errorf("upgraded gen = %d, want 1", re.gen)
	}
	if got := re.D0().IDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("upgraded IDs = %v, want [1 2]", got)
	}
}

// Regression (non-atomic Checkpoint): simulate a crash after the
// snapshot rename committed but before the log was truncated — the old
// log (stamped with the previous generation) must be recognized as
// stale and discarded, not replayed on top of the new snapshot, and the
// store must open cleanly.
func TestCheckpointCrashBeforeLogTruncateRecovers(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	cur, err := s.Current()
	if err != nil {
		t.Fatal(err)
	}
	// The crash point: new snapshot in place (gen+1), old log untouched.
	if err := writeSnapshot(filepath.Join(dir, "snapshot.csv"), cur, s.gen+1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("store not openable after simulated crash: %v", err)
	}
	defer re.Close()
	if n := len(re.Log()); n != 0 {
		t.Fatalf("stale log replayed: %d statements survive", n)
	}
	if d := relation.DiffTables(re.D0(), cur, 1e-9); len(d) != 0 {
		t.Fatalf("recovered D0 differs from checkpoint state: %d diffs", len(d))
	}
	// Recovery must complete the checkpoint: the rewritten log carries
	// the new generation, so appends and another reopen behave normally.
	if _, err := re.AppendSQL("UPDATE Taxes SET pay = income - owed"); err != nil {
		t.Fatal(err)
	}
	re.Close()
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if n := len(again.Log()); n != 1 {
		t.Errorf("log after recovery+append = %d statements, want 1", n)
	}
}

// A crash before the snapshot rename must leave the store fully
// pre-checkpoint: the temp file is ignored by Open.
func TestCheckpointCrashBeforeSnapshotRenameRollsBack(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	cur, err := s.Current()
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(filepath.Join(dir, "snapshot.csv.tmp"), cur, s.gen+1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := len(re.Log()); n != 1 {
		t.Errorf("pre-commit crash lost the log: %d statements, want 1", n)
	}
	recovered, err := re.Current()
	if err != nil {
		t.Fatal(err)
	}
	if d := relation.DiffTables(recovered, cur, 1e-9); len(d) != 0 {
		t.Errorf("replayed state differs: %d diffs", len(d))
	}
}

// Store.Diagnose wires the impact cache: repeat diagnoses hit it, and
// appends extend the closure eagerly so post-append diagnoses still get
// an exact hit.
func TestStoreDiagnoseUsesImpactCache(t *testing.T) {
	s, _ := newStore(t)
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	s.AppendSQL("INSERT INTO Taxes VALUES (85800, 21450, 0)")
	s.AppendSQL("UPDATE Taxes SET pay = income - owed")
	complaints := []core.Complaint{
		{TupleID: 3, Exists: true, Values: []float64{86000, 21500, 64500}},
	}
	opts := core.Options{Algorithm: core.Incremental, TupleSlicing: true,
		QuerySlicing: true, TimeLimit: 30 * time.Second}

	first, err := s.Diagnose(complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Resolved || first.Stats.ImpactCacheHits != 0 {
		t.Fatalf("first diagnosis: resolved=%v hits=%d", first.Resolved, first.Stats.ImpactCacheHits)
	}
	if s.impact == nil {
		t.Fatal("store did not adopt the diagnosis closure")
	}

	second, err := s.Diagnose(complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ImpactCacheHits != 1 || second.Stats.ImpactCacheExtends != 0 {
		t.Errorf("repeat diagnosis: hits=%d extends=%d, want exact hit",
			second.Stats.ImpactCacheHits, second.Stats.ImpactCacheExtends)
	}

	// Appends extend the closure eagerly: the next diagnosis gets an
	// exact hit, not an on-path extension, and the extended closure is
	// exactly the fresh one.
	s.AppendSQL("UPDATE Taxes SET pay = pay - 100 WHERE income >= 90000")
	if got, want := len(s.impact), len(s.log); got != want {
		t.Fatalf("eager extension covers %d of %d queries", got, want)
	}
	fresh := core.FullImpact(s.log, s.schema.Width())
	for i := range fresh {
		if !s.impact[i].ContainsAll(fresh[i]) || !fresh[i].ContainsAll(s.impact[i]) {
			t.Fatalf("eagerly extended closure wrong at %d: %v want %v",
				i, s.impact[i].Sorted(), fresh[i].Sorted())
		}
	}
	third, err := s.Diagnose(complaints, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Stats.ImpactCacheHits != 1 || third.Stats.ImpactCacheExtends != 0 {
		t.Errorf("post-append diagnosis: hits=%d extends=%d, want exact hit from eager extension",
			third.Stats.ImpactCacheHits, third.Stats.ImpactCacheExtends)
	}
	if !third.Resolved {
		t.Error("post-append diagnosis unresolved")
	}

	// Checkpoint resets the log and the closure state.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.impact != nil || s.digest != core.DigestSeed(s.schema) {
		t.Error("checkpoint did not reset the impact state")
	}
}

// Crash recovery must not depend on the contents of the stale log it
// discards: a torn final append (crash between write and sync) followed
// by a crash mid-checkpoint leaves a gen-mismatched log with a
// malformed last line, and the store must still open.
func TestCheckpointCrashRecoversDespiteTornStaleLog(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	cur, err := s.Current()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Tear the last log line, then commit the new snapshot as an
	// interrupted checkpoint would.
	f, err := os.OpenFile(filepath.Join(dir, "log.sql"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("UPDATE Taxes SET pay = inco") // torn mid-statement
	f.Close()
	if err := writeSnapshot(filepath.Join(dir, "snapshot.csv"), cur, 2); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("store not openable with a torn stale log: %v", err)
	}
	defer re.Close()
	if n := len(re.Log()); n != 0 {
		t.Fatalf("stale log contents survived: %d statements", n)
	}
	if d := relation.DiffTables(re.D0(), cur, 1e-9); len(d) != 0 {
		t.Errorf("recovered D0 differs from checkpoint state: %d diffs", len(d))
	}
}

// One store, one goroutine appending, one diagnosing — the resident
// service's steady state. Run with -race this pins the Store's
// concurrency contract: a diagnosis snapshots a consistent history
// prefix and keeps working while appends land, and the eagerly
// extended impact closure is only adopted for the history it was
// computed over.
func TestConcurrentAppendAndDiagnose(t *testing.T) {
	s, _ := newStore(t)
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700") // corrupted
	s.AppendSQL("INSERT INTO Taxes VALUES (85800, 21450, 0)")
	complaints := []core.Complaint{
		{TupleID: 3, Exists: true, Values: []float64{86000, 21500, 64500}},
		{TupleID: 4, Exists: true, Values: []float64{86500, 21625, 64875}},
	}
	opt := core.Options{
		Algorithm:    core.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	}

	const rounds = 8
	done := make(chan error, 2)
	go func() {
		for i := 0; i < rounds; i++ {
			if _, err := s.AppendSQL("UPDATE Taxes SET pay = income - owed"); err != nil {
				done <- err
				return
			}
			if _, err := s.Current(); err != nil {
				done <- err
				return
			}
			s.D0()
			s.Log()
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < rounds; i++ {
			rep, err := s.Diagnose(complaints, opt)
			if err != nil {
				done <- err
				return
			}
			// The corrupted UPDATE is statement 0 in every snapshot the
			// diagnosis can capture, so the verdict is stable no matter
			// how many benign appends interleave.
			if !rep.Resolved || len(rep.Changed) != 1 || rep.Changed[0] != 0 {
				done <- fmt.Errorf("round %d: resolved=%v changed=%v", i, rep.Resolved, rep.Changed)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	// The store's state is still coherent after the interleaving.
	if got := len(s.Log()); got != 2+rounds {
		t.Errorf("log len = %d, want %d", got, 2+rounds)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Log()); got != 0 {
		t.Errorf("log len after checkpoint = %d", got)
	}
}
