package histstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

func newStore(t *testing.T) (*Store, *relation.Schema) {
	t.Helper()
	sch := relation.MustSchema("Taxes", []string{"income", "owed", "pay"}, "")
	d0 := relation.NewTable(sch)
	d0.MustInsert(9500, 950, 8550)
	d0.MustInsert(90000, 22500, 67500)
	d0.MustInsert(86000, 21500, 64500)
	d0.MustInsert(86500, 21625, 64875)
	s, err := Create(t.TempDir(), d0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, sch
}

func TestCreateAppendReopen(t *testing.T) {
	s, sch := newStore(t)
	dir := s.dir
	if _, err := s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendSQL("INSERT INTO Taxes VALUES (85800, 21450, 0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendSQL("not sql at all"); err == nil {
		t.Error("malformed SQL accepted")
	}
	s.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Schema().String() != sch.String() {
		t.Errorf("schema mismatch: %v vs %v", re.Schema(), sch)
	}
	if re.D0().Len() != 4 {
		t.Errorf("D0 len = %d", re.D0().Len())
	}
	log := re.Log()
	if len(log) != 2 {
		t.Fatalf("log len = %d", len(log))
	}
	cur, err := re.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != 5 {
		t.Errorf("current len = %d", cur.Len())
	}
	t2, _ := cur.Get(2)
	if t2.Values[1] != 27000 {
		t.Errorf("t2 owed = %v, want 27000", t2.Values[1])
	}
}

func TestAppendSurvivesReopenMidStream(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	if _, err := s.AppendSQL("UPDATE Taxes SET pay = income - owed"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reopen, append more, reopen again.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AppendSQL("DELETE FROM Taxes WHERE income < 5000"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if len(s3.Log()) != 2 {
		t.Errorf("log len after two sessions = %d", len(s3.Log()))
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	s, _ := newStore(t)
	if _, err := Create(s.dir, s.D0()); err == nil {
		t.Error("Create over existing store accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open on empty dir accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "meta.txt"), []byte("table t\nattrs a,b\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "snapshot.csv"), []byte("1,notanum\n"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("bad snapshot accepted")
	}
	os.WriteFile(filepath.Join(dir, "snapshot.csv"), []byte("1,2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "log.sql"), []byte("NOT SQL;\n"), 0o644)
	if _, err := Open(dir); err == nil {
		t.Error("bad log accepted")
	}
}

func TestCommentsAndBlanksInLog(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET pay = 1 WHERE income < 0")
	s.Close()
	// Hand-edit the log with comments and blank lines.
	f, err := os.OpenFile(filepath.Join(dir, "log.sql"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n-- operator note\n\nUPDATE Taxes SET pay = 2 WHERE income < 0;\n")
	f.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Log()) != 2 {
		t.Errorf("log len = %d, want 2", len(re.Log()))
	}
}

func TestCheckpoint(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700")
	cur, _ := s.Current()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(s.Log()) != 0 {
		t.Errorf("log not truncated after checkpoint: %d", len(s.Log()))
	}
	if d := relation.DiffTables(s.D0(), cur, 1e-9); len(d) != 0 {
		t.Errorf("checkpoint state differs from pre-checkpoint current: %d diffs", len(d))
	}
	// And it persists.
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(re.Log()) != 0 || re.D0().Len() != 4 {
		t.Errorf("reopened checkpoint wrong: log=%d d0=%d", len(re.Log()), re.D0().Len())
	}
}

func TestClosedStoreRejectsAppend(t *testing.T) {
	s, _ := newStore(t)
	s.Close()
	if _, err := s.AppendSQL("DELETE FROM Taxes"); err == nil {
		t.Error("append after close accepted")
	}
}

// The capstone: capture a history, corrupt it on disk, reload, diagnose.
func TestStoreToDiagnosisPipeline(t *testing.T) {
	s, _ := newStore(t)
	dir := s.dir
	// The "true" history is what should have run; persist the corrupted
	// variant, as a deployment would have.
	s.AppendSQL("UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700") // corrupted
	s.AppendSQL("INSERT INTO Taxes VALUES (85800, 21450, 0)")
	s.AppendSQL("UPDATE Taxes SET pay = income - owed")
	s.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	complaints := []core.Complaint{
		{TupleID: 3, Exists: true, Values: []float64{86000, 21500, 64500}},
		{TupleID: 4, Exists: true, Values: []float64{86500, 21625, 64875}},
	}
	rep, err := core.Diagnose(re.D0(), re.Log(), complaints, core.Options{
		Algorithm:    core.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved || len(rep.Changed) != 1 || rep.Changed[0] != 0 {
		t.Fatalf("pipeline diagnosis failed: resolved=%v changed=%v", rep.Resolved, rep.Changed)
	}
	repairedSQL := rep.Log[0].String(re.Schema())
	if !strings.Contains(repairedSQL, ">=") {
		t.Errorf("unexpected repaired SQL: %s", repairedSQL)
	}
}
