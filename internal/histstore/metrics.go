package histstore

import "repro/internal/obs"

// Process-wide counters on obs.Default(): store lifecycle and write
// traffic, surfaced by qfix-worker's -telemetry endpoint and
// `qfix -metrics` alongside the engine's own metrics.
var (
	mOpens = obs.Default().Counter("qfix_histstore_opens_total",
		"History-store directories opened or created by this process.")
	mAppends = obs.Default().Counter("qfix_histstore_appends_total",
		"Statements durably appended to a store's log (each one is an fsync).")
	mCheckpoints = obs.Default().Counter("qfix_histstore_checkpoints_total",
		"Snapshot rewrites committed (log truncations).")
	mDiagnoses = obs.Default().Counter("qfix_histstore_diagnoses_total",
		"Diagnoses run through a store (Store.Diagnose).")
)
