package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{ND: 50, Na: 5, Nq: 20, Seed: 42}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if d := query.Distance(a.Log, b.Log); d != 0 {
		t.Errorf("same seed produced different logs (distance %v)", d)
	}
	c := MustGenerate(Config{ND: 50, Na: 5, Nq: 20, Seed: 43})
	if len(a.Log) != len(c.Log) {
		t.Fatalf("log lengths differ")
	}
	// Different seeds should (overwhelmingly) differ somewhere.
	same := true
	for i := range a.Log {
		if a.Log[i].String(a.Schema) != c.Log[i].String(c.Schema) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateShapes(t *testing.T) {
	w := MustGenerate(Config{ND: 30, Na: 4, Nq: 50, Seed: 7})
	if w.D0.Len() != 30 {
		t.Errorf("ND = %d", w.D0.Len())
	}
	if w.Schema.Width() != 5 || w.Schema.Key() != 0 {
		t.Errorf("schema = %v", w.Schema)
	}
	for i, q := range w.Log {
		u, ok := q.(*query.Update)
		if !ok {
			t.Fatalf("q%d is %T, want UPDATE (UpdateOnly default)", i, q)
		}
		if len(u.Set) != 1 {
			t.Errorf("q%d has %d SET clauses", i, len(u.Set))
		}
		if u.Set[0].Attr == 0 {
			t.Errorf("q%d writes the key", i)
		}
	}
}

func TestValueDomain(t *testing.T) {
	w := MustGenerate(Config{ND: 100, Na: 3, Nq: 10, Vd: 50, Seed: 1})
	w.D0.Rows(func(tp relation.Tuple) {
		for a := 1; a < len(tp.Values); a++ {
			v := tp.Values[a]
			if v < 0 || v > 50 || v != math.Trunc(v) {
				t.Errorf("value %v outside integer domain [0, 50]", v)
			}
		}
	})
	// Query constants also live in the domain.
	for _, q := range w.Log {
		for _, p := range q.Params() {
			if p < 0 || p > 50+w.Config.Range {
				t.Errorf("query param %v outside domain", p)
			}
		}
	}
}

func TestPointWhereTargetsKeys(t *testing.T) {
	w := MustGenerate(Config{ND: 40, Na: 3, Nq: 30, Where: PointWhere, Seed: 3})
	for i, q := range w.Log {
		pr, ok := q.(*query.Update).Where.(*query.Pred)
		if !ok || pr.Op != query.EQ {
			t.Fatalf("q%d WHERE is not a point predicate: %s", i, q.String(w.Schema))
		}
		if len(pr.LHS.Terms) != 1 || pr.LHS.Terms[0].Attr != 0 {
			t.Errorf("q%d point predicate not on key", i)
		}
		if pr.RHS < 1 || pr.RHS > 40 {
			t.Errorf("q%d key %v out of range", i, pr.RHS)
		}
	}
}

func TestRelativeSet(t *testing.T) {
	w := MustGenerate(Config{ND: 20, Na: 3, Nq: 10, Set: RelativeSet, Seed: 5})
	for i, q := range w.Log {
		sc := q.(*query.Update).Set[0]
		if len(sc.Expr.Terms) != 1 || sc.Expr.Terms[0].Attr != sc.Attr || sc.Expr.Terms[0].Coef != 1 {
			t.Errorf("q%d SET not relative: %s", i, q.String(w.Schema))
		}
	}
}

func TestMixes(t *testing.T) {
	w := MustGenerate(Config{ND: 20, Na: 3, Nq: 60, Mix: Mixed, Seed: 11})
	counts := map[query.Kind]int{}
	for _, q := range w.Log {
		counts[q.Kind()]++
	}
	if counts[query.KindUpdate] == 0 || counts[query.KindInsert] == 0 || counts[query.KindDelete] == 0 {
		t.Errorf("mixed workload missing kinds: %v", counts)
	}
	ins := MustGenerate(Config{ND: 20, Na: 3, Nq: 10, Mix: InsertOnly, Seed: 11})
	for _, q := range ins.Log {
		if q.Kind() != query.KindInsert {
			t.Error("InsertOnly produced non-insert")
		}
	}
	del := MustGenerate(Config{ND: 20, Na: 3, Nq: 10, Mix: DeleteOnly, Seed: 11})
	for _, q := range del.Log {
		if q.Kind() != query.KindDelete {
			t.Error("DeleteOnly produced non-delete")
		}
	}
}

func TestSkewConcentratesAttrs(t *testing.T) {
	flat := MustGenerate(Config{ND: 10, Na: 10, Nq: 300, Seed: 9, Skew: 0})
	skew := MustGenerate(Config{ND: 10, Na: 10, Nq: 300, Seed: 9, Skew: 2})
	count := func(w *Workload) map[int]int {
		m := map[int]int{}
		for _, q := range w.Log {
			m[q.(*query.Update).Set[0].Attr]++
		}
		return m
	}
	cf, cs := count(flat), count(skew)
	if cs[1] <= cf[1] {
		t.Errorf("skewed attr-1 count %d not above uniform %d", cs[1], cf[1])
	}
	if cs[1] < 150 {
		t.Errorf("skew=2 should concentrate on a1, got %d/300", cs[1])
	}
}

func TestCorruptPreservesStructure(t *testing.T) {
	w := MustGenerate(Config{ND: 30, Na: 4, Nq: 20, Seed: 13})
	dirty, err := w.Corrupt(7)
	if err != nil {
		t.Fatal(err)
	}
	if !query.SameStructure(dirty[7], w.Log[7]) {
		t.Error("corruption changed structure")
	}
	// Range width preserved.
	var origPreds, dirtyPreds []*query.Pred
	query.WalkPreds(w.Log[7].(*query.Update).Where, func(p *query.Pred) { origPreds = append(origPreds, p) })
	query.WalkPreds(dirty[7].(*query.Update).Where, func(p *query.Pred) { dirtyPreds = append(dirtyPreds, p) })
	if len(origPreds) == 2 {
		ow := origPreds[1].RHS - origPreds[0].RHS
		dw := dirtyPreds[1].RHS - dirtyPreds[0].RHS
		if math.Abs(ow-dw) > 1e-9 {
			t.Errorf("range width changed: %v -> %v", ow, dw)
		}
	}
	// Other queries untouched.
	for i := range w.Log {
		if i != 7 && query.Distance([]query.Query{w.Log[i]}, []query.Query{dirty[i]}) != 0 {
			t.Errorf("query %d modified by corruption of 7", i)
		}
	}
	if _, err := w.Corrupt(99); err == nil {
		t.Error("out-of-range corrupt accepted")
	}
}

func TestMakeInstanceAndEvaluate(t *testing.T) {
	w := MustGenerate(Config{ND: 60, Na: 4, Nq: 15, Seed: 17, Range: 30})
	in, err := w.MakeInstance(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Skip("harmless corruption for this seed; fine")
	}
	// The truth log scores perfectly.
	acc, err := in.Evaluate(w.Log)
	if err != nil {
		t.Fatal(err)
	}
	if acc.F1 < 1-1e-9 {
		t.Errorf("truth log F1 = %v, want 1 (%+v)", acc.F1, acc)
	}
	// The dirty log repairs nothing: recall 0.
	acc2, err := in.Evaluate(in.Dirty)
	if err != nil {
		t.Fatal(err)
	}
	if acc2.Recall != 0 || acc2.Repaired != 0 {
		t.Errorf("dirty log scored %+v", acc2)
	}
}

func TestIncompleteComplaints(t *testing.T) {
	w := MustGenerate(Config{ND: 80, Na: 4, Nq: 15, Seed: 19, Range: 40})
	in, err := w.MakeInstance(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) < 4 {
		t.Skip("not enough complaints for this seed")
	}
	half := in.Incomplete(0.5, 1)
	if len(half) == 0 || len(half) >= len(in.Complaints) {
		t.Errorf("incomplete(0.5) kept %d of %d", len(half), len(in.Complaints))
	}
	all := in.Incomplete(0, 1)
	if len(all) != len(in.Complaints) {
		t.Errorf("incomplete(0) kept %d of %d", len(all), len(in.Complaints))
	}
	one := in.Incomplete(1, 1)
	if len(one) != 1 {
		t.Errorf("incomplete(1) must keep at least one complaint, kept %d", len(one))
	}
}

func TestEndToEndSyntheticRepair(t *testing.T) {
	// The headline integration test: generate, corrupt the most recent
	// query, diagnose with inc1-tuple, and demand a high-quality repair.
	w := MustGenerate(Config{ND: 100, Na: 5, Nq: 20, Seed: 23, Range: 20})
	in, err := w.MakeInstance(19)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Complaints) == 0 {
		t.Skip("harmless corruption")
	}
	rep, err := core.Diagnose(w.D0, in.Dirty, in.Complaints, core.Options{
		Algorithm:    core.Incremental,
		TupleSlicing: true,
		QuerySlicing: true,
		TimeLimit:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resolved {
		t.Fatalf("not resolved: %+v", rep.Stats)
	}
	acc, err := in.Evaluate(rep.Log)
	if err != nil {
		t.Fatal(err)
	}
	if acc.F1 < 0.99 {
		t.Errorf("F1 = %v (%+v)", acc.F1, acc)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	w := MustGenerate(Config{ND: 10, Na: 2, Nq: 3, Seed: 29})
	final, _ := query.Replay(w.Log, w.D0)
	// dirty == truth == repaired: perfect scores.
	acc := Score(final, final, final)
	if acc.Precision != 1 || acc.Recall != 1 || acc.F1 != 1 {
		t.Errorf("identical states: %+v", acc)
	}
}
