package workload

import (
	"math"

	"repro/internal/query"
	"repro/internal/relation"
)

// Accuracy holds the repair-quality metrics of §7.1: precision is the
// fraction of tuples the repair changed that now match the truth, recall
// is the fraction of all true errors the repair fixed, and F1 is their
// harmonic mean.
type Accuracy struct {
	Precision float64
	Recall    float64
	F1        float64

	Repaired   int // tuples the repair changed vs the dirty state
	Correct    int // of those, tuples now agreeing with the truth
	TrueErrors int // tuples wrong in the dirty state (full complaint set)
	Fixed      int // true errors now agreeing with the truth
}

// Evaluate replays the repaired log and scores it against the true final
// state.
func (in *Instance) Evaluate(repairedLog []query.Query) (Accuracy, error) {
	repFinal, err := query.Replay(repairedLog, in.W.D0)
	if err != nil {
		return Accuracy{}, err
	}
	return Score(in.DirtyFinal, in.TruthFinal, repFinal), nil
}

// Score computes accuracy metrics from the three final states.
func Score(dirty, truth, repaired *relation.Table, epsOpt ...float64) Accuracy {
	eps := 1e-6
	if len(epsOpt) > 0 {
		eps = epsOpt[0]
	}
	var acc Accuracy

	matches := func(a *relation.Table, id int64, b *relation.Table) bool {
		ta, oka := a.Get(id)
		tb, okb := b.Get(id)
		if oka != okb {
			return false
		}
		if !oka {
			return true
		}
		return ta.Equal(tb, eps)
	}

	// Union of tuple IDs across the three states.
	ids := map[int64]bool{}
	for _, tb := range []*relation.Table{dirty, truth, repaired} {
		for _, id := range tb.IDs() {
			ids[id] = true
		}
	}

	for id := range ids {
		dirtyVsRepair := !matches(dirty, id, repaired)
		dirtyVsTruth := !matches(dirty, id, truth)
		repairVsTruth := matches(repaired, id, truth)
		if dirtyVsRepair {
			acc.Repaired++
			if repairVsTruth {
				acc.Correct++
			}
		}
		if dirtyVsTruth {
			acc.TrueErrors++
			if repairVsTruth {
				acc.Fixed++
			}
		}
	}

	switch {
	case acc.Repaired > 0:
		acc.Precision = float64(acc.Correct) / float64(acc.Repaired)
	case acc.TrueErrors == 0:
		acc.Precision = 1
	}
	if acc.TrueErrors > 0 {
		acc.Recall = float64(acc.Fixed) / float64(acc.TrueErrors)
	} else {
		acc.Recall = 1
	}
	if acc.Precision+acc.Recall > 0 {
		acc.F1 = 2 * acc.Precision * acc.Recall / (acc.Precision + acc.Recall)
	}
	if math.IsNaN(acc.F1) {
		acc.F1 = 0
	}
	return acc
}
