// Package workload generates the synthetic update workloads of the QFix
// evaluation (§7.1): ND random tuples with Na integer attributes drawn
// uniformly from [0, Vd], and Nq queries with Constant or Relative SET
// clauses and Point (key equality) or Range WHERE clauses, optional
// zipfian attribute skew, query corruption, and complaint derivation.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// SetKind selects the SET clause shape (§7.1).
type SetKind int

// SET clause shapes.
const (
	// ConstantSet: SET a_i = ?
	ConstantSet SetKind = iota
	// RelativeSet: SET a_i = a_i + ?
	RelativeSet
)

// WhereKind selects the WHERE clause shape (§7.1).
type WhereKind int

// WHERE clause shapes.
const (
	// RangeWhere: WHERE a_j in [?, ?+r] on non-key attributes.
	RangeWhere WhereKind = iota
	// PointWhere: WHERE id = ? on the primary key.
	PointWhere
)

// QueryMix selects statement types for GenLog.
type QueryMix int

// Statement mixes.
const (
	UpdateOnly QueryMix = iota
	InsertOnly
	DeleteOnly
	Mixed // ~70% UPDATE, 20% INSERT, 10% DELETE
)

// Config mirrors the paper's workload parameters with their §7.1
// defaults.
type Config struct {
	ND int     // initial database size (default 1000)
	Na int     // non-key attributes (default 10)
	Vd float64 // value domain [0, Vd] (default 200)
	Nq int     // number of queries (default 300)

	Set   SetKind
	Where WhereKind
	Mix   QueryMix

	// Range is the range-predicate width r; query selectivity is
	// (Range+1)/Vd. Default 4 (2% at Vd=200).
	Range float64
	// NumPreds is the WHERE dimensionality (default 1; §7.3 "Predicate
	// Dimensionality" sweeps it).
	NumPreds int
	// Skew is the zipfian exponent s over attribute choice (0 uniform).
	Skew float64

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ND == 0 {
		c.ND = 1000
	}
	if c.Na == 0 {
		c.Na = 10
	}
	if c.Vd == 0 {
		c.Vd = 200
	}
	if c.Nq == 0 {
		c.Nq = 300
	}
	if c.Range == 0 {
		c.Range = 4
	}
	if c.NumPreds == 0 {
		c.NumPreds = 1
	}
	return c
}

// Workload is a generated instance: initial state, true log, and the
// attribute-picking machinery needed to corrupt queries consistently.
type Workload struct {
	Config Config
	Schema *relation.Schema
	D0     *relation.Table
	Log    []query.Query

	rng       *rand.Rand
	zipf      []float64 // cumulative attribute-choice distribution
	corruptFn func(rng *rand.Rand, q query.Query, p []float64)
}

// NewCustom wraps an externally generated schema, initial state, and log
// (e.g. the TPC-C/TATP generators in internal/oltp) so the corruption,
// instance, and scoring tooling applies to it. corrupt, if non-nil,
// overrides the default parameter-corruption procedure — OLTP workloads
// need domain-aware corruption (district ids, carrier ids, ...).
func NewCustom(cfg Config, sch *relation.Schema, d0 *relation.Table, log []query.Query,
	corrupt func(rng *rand.Rand, q query.Query, p []float64)) *Workload {
	cfg.ND = d0.Len()
	cfg.Nq = len(log)
	return &Workload{
		Config: cfg, Schema: sch, D0: d0, Log: log,
		rng: rand.New(rand.NewSource(cfg.Seed)), corruptFn: corrupt,
	}
}

// Generate builds a workload from the configuration.
func Generate(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Na < 1 {
		return nil, fmt.Errorf("workload: need at least one attribute")
	}
	attrs := make([]string, cfg.Na+1)
	attrs[0] = "id"
	for i := 1; i <= cfg.Na; i++ {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	sch, err := relation.NewSchema("synth", attrs, "id")
	if err != nil {
		return nil, err
	}
	w := &Workload{Config: cfg, Schema: sch, rng: rand.New(rand.NewSource(cfg.Seed))}
	w.zipf = zipfCDF(cfg.Na, cfg.Skew)

	w.D0 = relation.NewTable(sch)
	for i := 0; i < cfg.ND; i++ {
		row := make([]float64, cfg.Na+1)
		row[0] = float64(i + 1) // key
		for a := 1; a <= cfg.Na; a++ {
			row[a] = math.Floor(w.rng.Float64() * (cfg.Vd + 1))
		}
		w.D0.MustInsert(row...)
	}

	for i := 0; i < cfg.Nq; i++ {
		w.Log = append(w.Log, w.genQuery())
	}
	return w, nil
}

// MustGenerate panics on error; for tests and benchmarks with known-good
// configurations.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// zipfCDF builds the cumulative distribution over attributes 1..na with
// exponent s (s=0 is uniform; larger s concentrates mass on attribute 1,
// matching §7.1's skew parameter).
func zipfCDF(na int, s float64) []float64 {
	weights := make([]float64, na)
	total := 0.0
	for i := 0; i < na; i++ {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	cdf := make([]float64, na)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	return cdf
}

// pickAttr draws a non-key attribute index (1-based position in the
// schema) from the skewed distribution.
func (w *Workload) pickAttr() int {
	u := w.rng.Float64()
	for i, c := range w.zipf {
		if u <= c {
			return i + 1
		}
	}
	return len(w.zipf)
}

// randVal draws an integer value uniformly from [0, Vd].
func (w *Workload) randVal() float64 {
	return math.Floor(w.rng.Float64() * (w.Config.Vd + 1))
}

// genWhere builds a WHERE clause per the configuration.
func (w *Workload) genWhere() query.Cond {
	if w.Config.Where == PointWhere {
		// Point predicate on the key; keys are 1..ND (inserted tuples get
		// larger keys but the paper's point queries target base rows).
		key := float64(w.rng.Intn(w.Config.ND) + 1)
		return query.AttrPred(0, query.EQ, key)
	}
	var kids []query.Cond
	for p := 0; p < w.Config.NumPreds; p++ {
		attr := w.pickAttr()
		lo := w.randVal()
		kids = append(kids,
			query.NewAnd(
				query.AttrPred(attr, query.GE, lo),
				query.AttrPred(attr, query.LE, lo+w.Config.Range)))
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return query.NewAnd(kids...)
}

// genSet builds one SET clause per the configuration.
func (w *Workload) genSet() query.SetClause {
	attr := w.pickAttr()
	if w.Config.Set == RelativeSet {
		return query.SetClause{Attr: attr,
			Expr: query.NewLinExpr(w.randVal(), query.Term{Attr: attr, Coef: 1})}
	}
	return query.SetClause{Attr: attr, Expr: query.ConstExpr(w.randVal())}
}

// genQuery builds one statement per the mix.
func (w *Workload) genQuery() query.Query {
	kind := query.KindUpdate
	switch w.Config.Mix {
	case InsertOnly:
		kind = query.KindInsert
	case DeleteOnly:
		kind = query.KindDelete
	case Mixed:
		switch r := w.rng.Float64(); {
		case r < 0.2:
			kind = query.KindInsert
		case r < 0.3:
			kind = query.KindDelete
		}
	}
	switch kind {
	case query.KindInsert:
		row := make([]float64, w.Config.Na+1)
		row[0] = float64(w.Config.ND + w.rng.Intn(1<<20) + 1)
		for a := 1; a <= w.Config.Na; a++ {
			row[a] = w.randVal()
		}
		return query.NewInsert(row...)
	case query.KindDelete:
		return query.NewDelete(w.genWhere())
	default:
		return query.NewUpdate([]query.SetClause{w.genSet()}, w.genWhere())
	}
}

// Corrupt returns a copy of the log with the parameters of the query at
// index idx replaced by fresh random values of the same shape (§7.1
// "Corrupting Queries": replace with a randomly generated query of the
// same type; structure is preserved because repairs address constants).
func (w *Workload) Corrupt(idx int) ([]query.Query, error) {
	if idx < 0 || idx >= len(w.Log) {
		return nil, fmt.Errorf("workload: corrupt index %d out of range", idx)
	}
	dirty := query.CloneLog(w.Log)
	q := dirty[idx]
	p := q.Params()
	if w.corruptFn != nil {
		w.corruptFn(w.rng, q, p)
		if err := q.SetParams(p); err != nil {
			return nil, err
		}
		return dirty, nil
	}
	switch v := q.(type) {
	case *query.Update:
		for si := range v.Set {
			p[si] = w.randVal()
		}
		base := len(v.Set)
		w.corruptPreds(v.Where, p, base)
	case *query.Delete:
		w.corruptPreds(v.Where, p, 0)
	case *query.Insert:
		for j := 1; j < len(p); j++ { // keep the key; corrupt the payload
			p[j] = w.randVal()
		}
	}
	if err := q.SetParams(p); err != nil {
		return nil, err
	}
	return dirty, nil
}

// corruptPreds rewrites predicate constants, keeping range pairs
// consistent (lo' and lo'+r) so the corrupted query has the same
// selectivity family as the original.
func (w *Workload) corruptPreds(c query.Cond, p []float64, base int) {
	i := base
	var preds []*query.Pred
	query.WalkPreds(c, func(pr *query.Pred) { preds = append(preds, pr) })
	for j := 0; j < len(preds); j++ {
		if j+1 < len(preds) && preds[j].Op == query.GE && preds[j+1].Op == query.LE {
			width := preds[j+1].RHS - preds[j].RHS
			lo := w.randVal()
			p[i+j] = lo
			p[i+j+1] = lo + width
			j++
			continue
		}
		if preds[j].Op == query.EQ { // point predicate: fresh key
			p[i+j] = float64(w.rng.Intn(w.Config.ND) + 1)
			continue
		}
		p[i+j] = w.randVal()
	}
}

// Instance bundles a corrupted run: dirty log, replayed states, and the
// complete complaint set, ready for core.Diagnose.
type Instance struct {
	W          *Workload
	Dirty      []query.Query
	CorruptIdx []int
	DirtyFinal *relation.Table
	TruthFinal *relation.Table
	Complaints []core.Complaint
}

// MakeInstance corrupts the given indices and derives the complete
// complaint set by tuple-wise diff (§7.1).
func (w *Workload) MakeInstance(corruptIdx ...int) (*Instance, error) {
	dirty := query.CloneLog(w.Log)
	for _, idx := range corruptIdx {
		d, err := w.Corrupt(idx)
		if err != nil {
			return nil, err
		}
		// Corrupt mutates a fresh clone each call; merge the corrupted
		// query into the running dirty log.
		dirty[idx] = d[idx]
	}
	dirtyFinal, err := query.Replay(dirty, w.D0)
	if err != nil {
		return nil, err
	}
	truthFinal, err := query.Replay(w.Log, w.D0)
	if err != nil {
		return nil, err
	}
	return &Instance{
		W: w, Dirty: dirty, CorruptIdx: corruptIdx,
		DirtyFinal: dirtyFinal, TruthFinal: truthFinal,
		Complaints: core.ComplaintsFromDiff(dirtyFinal, truthFinal, 1e-9),
	}, nil
}

// Incomplete returns a complaint subset with the given fraction removed
// at random (the §7.3 "Incomplete Complaint Set" experiments; rate 0.75
// means 75% of true complaints go unreported).
func (in *Instance) Incomplete(rate float64, seed int64) []core.Complaint {
	rng := rand.New(rand.NewSource(seed))
	var kept []core.Complaint
	for _, c := range in.Complaints {
		if rng.Float64() >= rate {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 && len(in.Complaints) > 0 {
		kept = append(kept, in.Complaints[rng.Intn(len(in.Complaints))])
	}
	return kept
}
