package simplex

import "repro/internal/obs"

// Process-wide counters published into obs.Default(), surfaced by
// qfix-worker's -telemetry endpoint and `qfix -metrics`. Incremented at
// refactorization time only — one atomic add per sparse LU rebuild is
// noise next to the rebuild itself, so the hot pivot loop stays clean.
var mRefactorizations = obs.Default().Counter("qfix_simplex_refactorizations_total",
	"Sparse LU basis refactorizations performed across all simplex solves.")
