// Package simplex implements a bounded-variable, two-phase primal simplex
// solver for linear programs:
//
//	minimize    c·x
//	subject to  a_i·x  {<=, =, >=}  b_i        for each row i
//	            l_j <= x_j <= u_j               for each variable j
//
// It is the LP engine beneath the branch-and-bound MILP solver in
// internal/milp, which together substitute for the CPLEX dependency of
// the QFix paper. Bounds are handled natively (no bound rows), which is
// what makes branch-and-bound cheap: a branch only tightens one bound.
//
// The implementation is a revised simplex over sparse columns with a
// factorized basis: a sparse LU factorization (partial pivoting) plus a
// product-form eta file answers FTRAN/BTRAN, so no dense inverse is ever
// formed (see factor.go). Pricing is Dantzig with a Bland fallback for
// anti-cycling, phase 1 is composite (infeasibility-sum), and the basis
// is refactorized whenever the eta file grows long, for numerical
// hygiene. It targets the problem sizes the QFix encoder produces
// (hundreds to a few thousand rows, a handful of nonzeros per row); it
// is not a general-purpose industrial LP code.
package simplex

import (
	"fmt"
	"math"
)

// Inf is the bound value representing +infinity; use -Inf for free lower
// bounds.
var Inf = math.Inf(1)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective decreases without bound.
	Unbounded
	// IterLimit: the iteration budget was exhausted before optimality.
	IterLimit
	// NumFail: the basis became numerically unusable.
	NumFail
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case NumFail:
		return "numerical-failure"
	}
	return "unknown"
}

// ConstrOp is a row's relational operator.
type ConstrOp int

// Row operators.
const (
	LE ConstrOp = iota
	GE
	EQ
)

// Coef is one term of a constraint row.
type Coef struct {
	Var  int
	Coef float64
}

type entry struct {
	row  int
	coef float64
}

// Problem accumulates a linear program. The zero value is unusable; use
// NewProblem.
type Problem struct {
	obj  []float64
	lb   []float64
	ub   []float64
	cols [][]entry

	rhs []float64
	ops []ConstrOp
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of structural variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rhs) }

// AddVar adds a variable with bounds [lb, ub] and objective coefficient
// obj, returning its index. Bounds may be ±Inf.
func (p *Problem) AddVar(lb, ub, obj float64) int {
	if lb > ub {
		panic(fmt.Sprintf("simplex: variable bounds reversed [%g, %g]", lb, ub))
	}
	p.obj = append(p.obj, obj)
	p.lb = append(p.lb, lb)
	p.ub = append(p.ub, ub)
	p.cols = append(p.cols, nil)
	return len(p.obj) - 1
}

// SetObj overwrites the objective coefficient of variable v.
func (p *Problem) SetObj(v int, c float64) { p.obj[v] = c }

// SetBounds overwrites the bounds of variable v. Used by branch-and-bound.
func (p *Problem) SetBounds(v int, lb, ub float64) {
	if lb > ub {
		panic(fmt.Sprintf("simplex: variable bounds reversed [%g, %g]", lb, ub))
	}
	p.lb[v] = lb
	p.ub[v] = ub
}

// Bounds returns the bounds of variable v.
func (p *Problem) Bounds(v int) (lb, ub float64) { return p.lb[v], p.ub[v] }

// Obj returns the objective coefficient of variable v.
func (p *Problem) Obj(v int) float64 { return p.obj[v] }

// Row returns row i's relational operator and right-hand side.
func (p *Problem) Row(i int) (ConstrOp, float64) { return p.ops[i], p.rhs[i] }

// Col iterates variable v's nonzero constraint coefficients in row-index
// insertion order. It is the read surface presolve and other analyses
// build their row-major views from.
func (p *Problem) Col(v int, f func(row int, coef float64)) {
	for _, e := range p.cols[v] {
		f(e.row, e.coef)
	}
}

// Clone returns a problem sharing this one's immutable structure (columns,
// row operators, right-hand sides) with private copies of the mutable
// per-variable state (bounds and objective). It exists for parallel
// branch-and-bound: each worker owns a clone so bound changes on one
// node's path never race another worker's. Neither the clone nor the
// original may gain variables or rows afterwards — added columns would
// alias the shared row structure.
func (p *Problem) Clone() *Problem {
	return &Problem{
		obj:  append([]float64(nil), p.obj...),
		lb:   append([]float64(nil), p.lb...),
		ub:   append([]float64(nil), p.ub...),
		cols: p.cols,
		rhs:  p.rhs,
		ops:  p.ops,
	}
}

// AddConstr adds the row terms op rhs and returns its index. Terms with
// duplicate variables are summed; zero coefficients are dropped.
func (p *Problem) AddConstr(terms []Coef, op ConstrOp, rhs float64) int {
	row := len(p.rhs)
	sum := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			panic(fmt.Sprintf("simplex: constraint references unknown variable %d", t.Var))
		}
		sum[t.Var] += t.Coef
	}
	for v, c := range sum {
		if c != 0 {
			p.cols[v] = append(p.cols[v], entry{row: row, coef: c})
		}
	}
	p.rhs = append(p.rhs, rhs)
	p.ops = append(p.ops, op)
	return row
}

// Options tunes the solver.
type Options struct {
	// MaxIters bounds total simplex iterations (phases 1+2).
	// Zero means a size-derived default.
	MaxIters int
	// FeasTol is the bound/row feasibility tolerance (default 1e-7).
	FeasTol float64
	// OptTol is the reduced-cost optimality tolerance (default 1e-9).
	OptTol float64
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 200 * (m + n + 10)
	}
	if o.FeasTol <= 0 {
		o.FeasTol = 1e-7
	}
	if o.OptTol <= 0 {
		o.OptTol = 1e-9
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X holds the values of the structural variables (valid for Optimal;
	// for IterLimit it holds the last iterate, which may be infeasible).
	X []float64
	// Obj is the objective value c·X.
	Obj float64
	// Iters is the number of simplex iterations performed.
	Iters int
	// Refactors counts basis refactorizations performed since the
	// previous Solution was reported (covering this solve plus any
	// Install that positioned it). Identity cold starts are free and not
	// counted.
	Refactors int
}
