package simplex

import "math"

// Solver carries simplex state that survives across re-optimizations.
// Branch-and-bound creates one Solver per model and calls Solve after
// each bound change: the basis, its inverse, and the nonbasic positions
// are retained, so a child node typically re-optimizes in a handful of
// pivots instead of hundreds from a cold slack basis.
//
// A Solver assumes the problem's rows and variables are fixed after
// creation; only bounds and objective coefficients may change between
// calls.
type Solver struct {
	p           *Problem
	opt         Options
	inner       *solver
	initialized bool
}

// NewSolver prepares a reusable solver for the problem.
func NewSolver(p *Problem, opt Options) *Solver {
	return &Solver{p: p, opt: opt}
}

// Reset discards any retained basis so the next Solve starts cold. Used
// where a warm start was rejected and the caller needs a deterministic
// fallback state rather than "whatever the solver held before".
func (ws *Solver) Reset() { ws.initialized = false }

// Solve optimizes under the problem's current bounds, warm-starting from
// the previous basis when one exists.
func (ws *Solver) Solve() Solution {
	m, n := len(ws.p.rhs), len(ws.p.obj)
	opt := ws.opt.withDefaults(m, n)
	warm := ws.initialized
	if !warm {
		if ws.inner == nil || ws.inner.m != m || ws.inner.n != n {
			ws.inner = &solver{p: ws.p, m: m, n: n, N: n + m}
		}
		ws.inner.opt = opt
		ws.inner.init()
		ws.initialized = true
	} else {
		ws.inner.opt = opt
		ws.inner.warmReset()
	}
	s := ws.inner
	s.iters = 0
	st := s.optimize()
	if warm && st == Infeasible && !s.rowsValid() {
		// An infeasibility verdict is only trustworthy if the iterate
		// actually satisfies the equality system; a corrupted basis
		// inverse fails this and must not prune feasible subtrees.
		st = NumFail
	}
	if warm && (st == IterLimit || st == NumFail || (st == Optimal && !s.solutionValid())) {
		// The retained basis went stale or numerically sour: retry cold.
		// (A long eta file can silently corrupt the factorized basis;
		// an "optimal" answer violating bounds or rows is the telltale.)
		s.init()
		s.iters = 0
		st = s.optimize()
	}
	if st == Optimal && !s.solutionValid() {
		st = NumFail // even the cold basis is numerically untrustworthy
	}
	return s.result(st)
}

// optimize runs phase 1 then phase 2, then repairs drift instead of
// letting it curdle into a verdict: the ratio test skips rows whose
// direction component is below the pivot threshold, so one long step
// (big-M models legally take steps of ~1e7) can carry such a row's
// basic variable visibly past its bound, and product-form updates
// accumulate error in the basis inverse that computeBasics then bakes
// into the iterate. Either way the final validity gate would reject the
// "optimal" answer as NumFail, stalling branch-and-bound subtrees that
// are actually fine. The repair is mechanical: refactorize (rebuild the
// exact inverse and recompute the basics), re-run phase 1 to restore
// feasibility in a handful of pivots, and re-optimize from that basis.
// A model that still fails validation after two repairs is genuinely
// numerically hostile and keeps the NumFail verdict.
func (s *solver) optimize() Status {
	st := s.phase1()
	if st == Optimal {
		st = s.phase2()
	}
	for round := 0; round < 2 && st == Optimal && !s.solutionValid(); round++ {
		if !s.refactorize() {
			return NumFail
		}
		if st = s.phase1(); st == Optimal {
			st = s.phase2()
		}
	}
	return st
}

// solutionValid checks the current iterate for primal feasibility:
// every variable within its bounds and every row satisfied, with a
// tolerance scaled to the iterate's magnitude. Guards against basis-
// inverse corruption slipping bogus "optimal" answers to callers.
func (s *solver) solutionValid() bool {
	for j := 0; j < s.N; j++ {
		v := s.xval[j]
		tol := 1e-5 + 1e-6*math.Abs(v)
		if v < s.lb[j]-tol || v > s.ub[j]+tol {
			return false
		}
	}
	return s.rowsValid()
}

// rowsValid checks that the current iterate satisfies the equality
// system Ax + s = b (the invariant any basis-derived iterate must hold,
// feasible or not). Tolerances scale with the row's term magnitudes:
// catastrophic cancellation on large big-M rows leaves residuals
// proportional to the summed magnitudes, not to the rhs.
func (s *solver) rowsValid() bool {
	lhs := make([]float64, s.m)
	mag := make([]float64, s.m)
	for j := 0; j < s.N; j++ {
		v := s.xval[j]
		if v == 0 {
			continue
		}
		s.colOf(j, func(row int, coef float64) {
			lhs[row] += coef * v
			mag[row] += math.Abs(coef * v)
		})
	}
	for i := 0; i < s.m; i++ {
		tol := 1e-6 + 1e-7*math.Max(mag[i], math.Abs(s.p.rhs[i]))
		if math.Abs(lhs[i]-s.p.rhs[i]) > tol {
			return false
		}
	}
	return true
}

// warmReset adapts retained state to the problem's current bounds:
// bounds are re-read, nonbasic variables are clamped into their (possibly
// tightened) ranges, and basic values are recomputed.
func (s *solver) warmReset() {
	copy(s.lb[:s.n], s.p.lb)
	copy(s.ub[:s.n], s.p.ub)
	copy(s.obj[:s.n], s.p.obj)
	for j := 0; j < s.N; j++ {
		if s.basicPos[j] >= 0 {
			continue
		}
		if s.xval[j] < s.lb[j] {
			s.xval[j] = s.lb[j]
		}
		if s.xval[j] > s.ub[j] {
			s.xval[j] = s.ub[j]
		}
	}
	s.degen = 0
	s.bland = false
	s.computeBasics()
}

// solver carries the working state of one Solve call. Variables are
// indexed 0..n-1 (structural) and n..n+m-1 (one slack per row, coefficient
// +1, with bounds encoding the row operator).
type solver struct {
	p   *Problem
	opt Options
	m   int // rows
	n   int // structural variables
	N   int // n + m

	lb, ub []float64 // length N
	obj    []float64 // length N (slacks cost 0)

	basis    []int     // length m: variable occupying each basis position
	basicPos []int     // length N: position in basis, or -1
	xval     []float64 // length N: current value of every variable
	fac      *factor   // sparse LU + eta file of the basis

	w      []float64 // scratch: B^{-1} A_enter (basis-position space)
	fx     []float64 // scratch: FTRAN input (original-row space)
	y      []float64 // scratch: duals
	dB     []float64 // scratch: phase-1 costs of basic vars
	iters  int
	pivots int // lifetime basis changes

	refactorCount int // refactorizations since last reported Solution

	degen int  // consecutive (near-)degenerate pivots
	bland bool // anti-cycling mode
}

// refactorize rebuilds the sparse LU factorization from the basis
// columns, flushing the eta file and the drift it accumulated. Reports
// false when the basis matrix is numerically singular.
func (s *solver) refactorize() bool {
	ok := s.fac.refactorize(func(k int, emit func(row int, v float64)) {
		s.colOf(s.basis[k], emit)
	})
	if !ok {
		return false
	}
	s.refactorCount++
	mRefactorizations.Inc()
	s.computeBasics()
	return true
}

// Solve runs two-phase primal simplex on the problem from a cold basis.
// For repeated solves under changing bounds (branch-and-bound), use
// NewSolver to retain the basis between calls.
func (p *Problem) Solve(opt Options) Solution {
	return NewSolver(p, opt).Solve()
}

// init resets the solver to the canonical cold state: bounds re-read,
// nonbasic structural variables at their nearest finite bound, slack
// basis with an identity factorization. Buffers are allocated on first
// use and reused afterwards, so re-initializing a solver (warm retries,
// basis installs) costs no allocation.
func (s *solver) init() {
	N := s.N
	if s.fac == nil || len(s.lb) != N {
		s.lb = make([]float64, N)
		s.ub = make([]float64, N)
		s.obj = make([]float64, N)
		s.basis = make([]int, s.m)
		s.basicPos = make([]int, N)
		s.xval = make([]float64, N)
		s.w = make([]float64, s.m)
		s.fx = make([]float64, s.m)
		s.y = make([]float64, s.m)
		s.dB = make([]float64, s.m)
		s.fac = newFactor(s.m)
	}
	copy(s.lb, s.p.lb)
	copy(s.ub, s.p.ub)
	copy(s.obj, s.p.obj)
	for i := 0; i < s.m; i++ {
		j := s.n + i
		switch s.p.ops[i] {
		case LE:
			s.lb[j], s.ub[j] = 0, Inf
		case GE:
			s.lb[j], s.ub[j] = math.Inf(-1), 0
		case EQ:
			s.lb[j], s.ub[j] = 0, 0
		}
	}

	for j := range s.basicPos {
		s.basicPos[j] = -1
	}
	// Nonbasic structural variables start at their finite bound nearest
	// zero (or zero if free).
	for j := 0; j < s.n; j++ {
		s.xval[j] = nearestFiniteBound(s.lb[j], s.ub[j])
	}
	// Slack basis: every slack column is a unit vector, so the
	// factorization is the identity.
	for i := 0; i < s.m; i++ {
		s.basis[i] = s.n + i
		s.basicPos[s.n+i] = i
	}
	s.fac.identity()
	s.degen = 0
	s.bland = false
	s.computeBasics()
}

func nearestFiniteBound(l, u float64) float64 {
	lf, uf := !math.IsInf(l, -1), !math.IsInf(u, 1)
	switch {
	case lf && uf:
		if math.Abs(l) <= math.Abs(u) {
			return l
		}
		return u
	case lf:
		return l
	case uf:
		return u
	default:
		return 0
	}
}

// colOf iterates the sparse column of variable j.
func (s *solver) colOf(j int, f func(row int, coef float64)) {
	if j < s.n {
		for _, e := range s.p.cols[j] {
			f(e.row, e.coef)
		}
		return
	}
	f(j-s.n, 1)
}

// computeBasics recomputes the values of all basic variables from
// scratch: xB = B^{-1} (b - A_N x_N), one FTRAN.
func (s *solver) computeBasics() {
	r := s.fx
	copy(r, s.p.rhs)
	for j := 0; j < s.N; j++ {
		if s.basicPos[j] >= 0 || s.xval[j] == 0 {
			continue
		}
		v := s.xval[j]
		s.colOf(j, func(row int, coef float64) { r[row] -= coef * v })
	}
	s.fac.ftran(r)
	for i := 0; i < s.m; i++ {
		s.xval[s.basis[i]] = r[i]
	}
}

// infeasibility returns the total bound violation of basic variables and
// fills s.dB with the phase-1 cost of each basis position (-1 below
// lower, +1 above upper, 0 feasible).
func (s *solver) infeasibility() float64 {
	tol := s.opt.FeasTol
	total := 0.0
	for i := 0; i < s.m; i++ {
		v := s.xval[s.basis[i]]
		l, u := s.lb[s.basis[i]], s.ub[s.basis[i]]
		switch {
		case v < l-tol:
			s.dB[i] = -1
			total += l - v
		case v > u+tol:
			s.dB[i] = 1
			total += v - u
		default:
			s.dB[i] = 0
		}
	}
	return total
}

// computeDuals fills s.y with the solution of B^T y = cB for the given
// basic cost vector (one BTRAN); y is indexed by original row.
func (s *solver) computeDuals(cB []float64) {
	copy(s.y, cB)
	s.fac.btran(s.y)
}

// reducedCost returns c_j - y·A_j.
func (s *solver) reducedCost(j int, structuralCost bool) float64 {
	rc := 0.0
	if structuralCost {
		rc = s.obj[j]
	}
	s.colOf(j, func(row int, coef float64) { rc -= s.y[row] * coef })
	return rc
}

// phase1 drives the basis to feasibility, minimizing total bound
// violation with the composite (piecewise-linear) phase-1 objective.
func (s *solver) phase1() Status {
	tol := s.opt.FeasTol
	refactors := 0
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit
		}
		if s.infeasibility() <= tol {
			return Optimal
		}
		s.computeDuals(s.dB)
		j, dir := s.chooseEntering(false)
		if j < 0 {
			// Before declaring infeasibility, make sure the duals that
			// justified it came from an exact inverse: product-form drift
			// yields wrong duals with a perfectly consistent iterate.
			if !s.dualsConsistent(true) && refactors < 2 {
				refactors++
				if !s.refactorize() {
					return NumFail
				}
				continue
			}
			return Infeasible
		}
		st := s.pivot(j, dir, true)
		if st != Optimal {
			return st
		}
	}
}

// phase2 optimizes the true objective from a feasible basis.
func (s *solver) phase2() Status {
	cB := make([]float64, s.m)
	refactors := 0
	for {
		if s.iters >= s.opt.MaxIters {
			return IterLimit
		}
		for i := 0; i < s.m; i++ {
			cB[i] = s.obj[s.basis[i]]
		}
		s.computeDuals(cB)
		j, dir := s.chooseEntering(true)
		if j < 0 {
			if !s.dualsConsistent(false) && refactors < 2 {
				refactors++
				if !s.refactorize() {
					return NumFail
				}
				continue
			}
			return Optimal
		}
		st := s.pivot(j, dir, false)
		if st != Optimal {
			return st
		}
	}
}

// dualsConsistent verifies B^T y = c_B on the current duals: every basic
// variable's reduced cost must be (near) zero. A corrupted basis inverse
// produces wrong duals while the primal iterate can remain perfectly
// row-consistent, so this is the check that protects verdicts.
// phase1 selects the composite phase-1 cost vector.
func (s *solver) dualsConsistent(phase1 bool) bool {
	for i := 0; i < s.m; i++ {
		bi := s.basis[i]
		var cost float64
		if phase1 {
			cost = s.dB[i]
		} else {
			cost = s.obj[bi]
		}
		rc := cost
		scale := math.Max(1, math.Abs(cost))
		s.colOf(bi, func(row int, coef float64) {
			rc -= s.y[row] * coef
			if a := math.Abs(s.y[row] * coef); a > scale {
				scale = a
			}
		})
		if math.Abs(rc) > 1e-6*scale {
			return false
		}
	}
	return true
}

// chooseEntering prices all nonbasic variables and returns the entering
// variable and its movement direction (+1 increase, -1 decrease), or
// (-1, 0) if no improving variable exists. structuralCost selects
// phase-2 pricing (phase 1 uses zero costs for nonbasic variables).
func (s *solver) chooseEntering(structuralCost bool) (int, int) {
	tol := s.opt.OptTol
	ftol := s.opt.FeasTol
	best, bestScore, bestDir := -1, tol, 0
	for j := 0; j < s.N; j++ {
		if s.basicPos[j] >= 0 {
			continue
		}
		canUp := s.xval[j] < s.ub[j]-ftol
		canDown := s.xval[j] > s.lb[j]+ftol
		if !canUp && !canDown {
			continue // fixed variable
		}
		rc := s.reducedCost(j, structuralCost)
		var score float64
		var dir int
		switch {
		case canUp && rc < -tol && (!canDown || rc <= 0):
			score, dir = -rc, 1
		case canDown && rc > tol:
			score, dir = rc, -1
		default:
			continue
		}
		if s.bland {
			return j, dir // first eligible index (Bland's rule)
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, dir
		}
	}
	return best, bestDir
}

// pivot performs the ratio test for entering variable j moving in
// direction dir, then applies either a bound flip or a basis change.
// phase1 selects the phase-1 ratio test that lets infeasible basic
// variables travel to (and stop at) their violated bound.
func (s *solver) pivot(j, dir int, phase1 bool) Status {
	s.iters++
	ftol := s.opt.FeasTol
	ptol := 1e-9

	// w = B^{-1} A_j: scatter the sparse column, one FTRAN.
	for i := range s.fx {
		s.fx[i] = 0
	}
	s.colOf(j, func(row int, coef float64) { s.fx[row] += coef })
	s.fac.ftran(s.fx)
	copy(s.w, s.fx)

	// Entering variable's own travel limit (bound flip). Measured from
	// its current value: warm starts can leave a nonbasic variable at an
	// interior point after bound changes, so the full range would
	// overshoot.
	tBest := math.Inf(1)
	leave := -1 // basis position of leaving var; -1 = bound flip
	var leaveBound float64
	if dir > 0 {
		if !math.IsInf(s.ub[j], 1) {
			tBest = s.ub[j] - s.xval[j]
		}
	} else if !math.IsInf(s.lb[j], -1) {
		tBest = s.xval[j] - s.lb[j]
	}

	// rowBreak computes row i's exact breakpoint: how far the entering
	// variable may travel before basis position i's variable hits a
	// bound (the bound it stops at is returned). ok=false means the row
	// imposes no limit in this direction.
	rowBreak := func(i int) (t, bound float64, ok bool) {
		delta := -float64(dir) * s.w[i]
		if math.Abs(delta) <= ptol {
			return 0, 0, false
		}
		bv := s.basis[i]
		v, l, u := s.xval[bv], s.lb[bv], s.ub[bv]
		switch {
		case phase1 && v < l-ftol:
			if delta <= 0 {
				return 0, 0, false // moving further below: no breakpoint
			}
			t, bound = (l-v)/delta, l
		case phase1 && v > u+ftol:
			if delta >= 0 {
				return 0, 0, false
			}
			t, bound = (u-v)/delta, u
		case delta > 0:
			if math.IsInf(u, 1) {
				return 0, 0, false
			}
			t, bound = (u-v)/delta, u
		default: // delta < 0
			if math.IsInf(l, -1) {
				return 0, 0, false
			}
			t, bound = (l-v)/delta, l
		}
		if t < 0 {
			t = 0 // degenerate: slight bound violation within tolerance
		}
		return t, bound, true
	}

	// Exact minimum-ratio test: prefer strictly smaller t, and on
	// near-ties keep the larger |pivot| for numerical stability.
	for i := 0; i < s.m; i++ {
		t, bound, ok := rowBreak(i)
		if !ok {
			continue
		}
		if t < tBest-1e-12 || (t <= tBest+1e-12 && leave >= 0 && math.Abs(s.w[i]) > math.Abs(s.w[leave])) {
			tBest, leave, leaveBound = t, i, bound
		}
	}

	if math.IsInf(tBest, 1) {
		if phase1 {
			return NumFail // cannot happen with exact arithmetic
		}
		return Unbounded
	}

	// Tiny-pivot escape (two-pass Harris, run only when needed): when
	// the exact test elects a pivot small enough to poison the basis
	// inverse, re-pick the largest |pivot| among rows whose exact
	// breakpoint fits under a feasibility-relaxed step limit; every
	// bypassed row then overshoots its bound by at most the relaxation,
	// regardless of scan order. This matters on big-M models, where
	// steps legally reach ~1e7 and the exact test otherwise steers the
	// basis into sub-1e-10 pivots whose product-form updates leave an
	// inverse even refactorization cannot salvage (the partition bench
	// died on exactly that). Gating on the tiny pivot keeps every other
	// pivot's path — and therefore solver behavior and performance —
	// identical to the exact test.
	if leave >= 0 && math.Abs(s.w[leave]) < 1e-7 {
		relax := 0.1 * ftol
		tMax := math.Inf(1)
		if dir > 0 {
			if !math.IsInf(s.ub[j], 1) {
				tMax = s.ub[j] - s.xval[j] // entering travel: unrelaxed
			}
		} else if !math.IsInf(s.lb[j], -1) {
			tMax = s.xval[j] - s.lb[j]
		}
		for i := 0; i < s.m; i++ {
			if t, _, ok := rowBreak(i); ok {
				if r := t + relax/math.Abs(s.w[i]); r < tMax {
					tMax = r
				}
			}
		}
		for i := 0; i < s.m; i++ {
			t, bound, ok := rowBreak(i)
			if !ok || t > tMax {
				continue
			}
			if math.Abs(s.w[i]) > math.Abs(s.w[leave]) {
				tBest, leave, leaveBound = t, i, bound
			}
		}
	}

	// Anti-cycling bookkeeping.
	if tBest <= 1e-10 {
		s.degen++
		if s.degen > 200 {
			s.bland = true
		}
	} else {
		s.degen = 0
		s.bland = false
	}

	// Apply the step.
	step := float64(dir) * tBest
	s.xval[j] += step
	for i := 0; i < s.m; i++ {
		if s.w[i] != 0 {
			s.xval[s.basis[i]] -= step * s.w[i]
		}
	}

	if leave < 0 {
		// Bound flip: snap to the exact opposite bound.
		if dir > 0 {
			s.xval[j] = s.ub[j]
		} else {
			s.xval[j] = s.lb[j]
		}
		return Optimal
	}

	lv := s.basis[leave]
	s.xval[lv] = leaveBound // snap leaving variable exactly to its bound
	// Product-form update: append one sparse eta instead of touching a
	// dense inverse. update rejects pivots too small to invert safely.
	if !s.fac.update(leave, s.w) {
		return NumFail
	}
	s.basicPos[lv] = -1
	s.basis[leave] = j
	s.basicPos[j] = leave
	s.pivots++

	// Flush incremental drift: refactorize when the eta file has grown
	// long, cheap value recompute in between.
	if s.fac.needsRefactor() {
		if !s.refactorize() {
			return NumFail
		}
	} else if s.iters%64 == 0 {
		s.computeBasics()
	}
	return Optimal
}

func (s *solver) result(st Status) Solution {
	x := make([]float64, s.n)
	copy(x, s.xval[:s.n])
	obj := 0.0
	for j := 0; j < s.n; j++ {
		obj += s.p.obj[j] * x[j]
	}
	ref := s.refactorCount
	s.refactorCount = 0
	return Solution{Status: st, X: x, Obj: obj, Iters: s.iters, Refactors: ref}
}
