package simplex

import "math"

// Snapshot is an exported simplex basis: which variable occupies each
// basis position plus the full iterate (so nonbasic variables remember
// which bound they sat at). It is the warm-start currency of the solve
// stack — branch-and-bound exports the basis its search ended on
// (milp.Result.Basis) and a later solve of a model with the identical
// row/variable shape seeds its root LP from it (milp.Options.Basis).
//
// A Snapshot is a starting point, never an answer: installing one only
// positions the first iterate, and phase 1/2 still prove feasibility
// and optimality from scratch, so a stale or mismatched basis can cost
// pivots but not correctness.
type Snapshot struct {
	m, n  int
	basis []int
	xval  []float64
}

// Vars returns the (rows, structural variables) shape the snapshot was
// taken from; Install refuses any problem with a different shape.
func (sn *Snapshot) Vars() (m, n int) { return sn.m, sn.n }

// Snapshot captures the solver's current basis and iterate, or nil when
// the solver has never solved (there is no basis to export yet).
func (ws *Solver) Snapshot() *Snapshot {
	if !ws.initialized {
		return nil
	}
	s := ws.inner
	return &Snapshot{
		m:     s.m,
		n:     s.n,
		basis: append([]int(nil), s.basis...),
		xval:  append([]float64(nil), s.xval...),
	}
}

// Install seeds the solver with a previously exported basis so its next
// Solve warm-starts from there instead of the cold slack basis. The
// snapshot is validated against the problem's current shape: a nil
// snapshot, a row/variable count mismatch, an out-of-range or duplicate
// basis entry, or a numerically singular basis matrix is rejected
// (returning false) and the solver is left cold. Rejection is always
// safe — warm starts are positioning, not answers.
func (ws *Solver) Install(snap *Snapshot) bool {
	m, n := len(ws.p.rhs), len(ws.p.obj)
	if snap == nil || snap.m != m || snap.n != n ||
		len(snap.basis) != m || len(snap.xval) != n+m {
		return false
	}
	inBasis := make([]bool, n+m)
	for _, b := range snap.basis {
		if b < 0 || b >= n+m || inBasis[b] {
			return false
		}
		inBasis[b] = true
	}
	// Reuse the retained solver's buffers when the shape matches —
	// branch-and-bound installs a basis per node, so this path must not
	// allocate.
	s := ws.inner
	if s == nil || s.m != m || s.n != n {
		s = &solver{p: ws.p, m: m, n: n, N: n + m}
		ws.inner = s
	}
	s.opt = ws.opt.withDefaults(m, n)
	s.init()
	copy(s.xval, snap.xval)
	for j := range s.basicPos {
		s.basicPos[j] = -1
	}
	for i, b := range snap.basis {
		s.basis[i] = b
		s.basicPos[b] = i
	}
	if !s.refactorize() {
		ws.initialized = false // singular basis: next Solve starts cold
		return false
	}
	// Clamp nonbasic variables into the problem's current bounds and
	// recompute the basic values under the fresh factorization.
	s.warmReset()
	ws.initialized = true
	return true
}

// PointFeasible reports whether the point x (length NumVars) satisfies
// every variable bound and every constraint row under the same
// magnitude-scaled residual tolerances the solver applies to its own
// iterates (solutionValid/rowsValid). It is the vetting gate for
// externally proposed solutions: branch-and-bound runs every integer-
// snapped candidate and every caller-supplied MIP start through it
// before trusting the point as an incumbent.
func (p *Problem) PointFeasible(x []float64) bool {
	n, m := len(p.obj), len(p.rhs)
	if len(x) != n {
		return false
	}
	for j, v := range x {
		tol := 1e-5 + 1e-6*math.Abs(v)
		if v < p.lb[j]-tol || v > p.ub[j]+tol {
			return false
		}
	}
	lhs := make([]float64, m)
	mag := make([]float64, m)
	for j, v := range x {
		if v == 0 {
			continue
		}
		for _, e := range p.cols[j] {
			lhs[e.row] += e.coef * v
			mag[e.row] += math.Abs(e.coef * v)
		}
	}
	for i := 0; i < m; i++ {
		// The solver enforces row operators through slack bounds, so its
		// effective op tolerance is the slack bound tolerance (1e-5 scale,
		// see solutionValid) plus the row residual tolerance (1e-7 per
		// unit of term magnitude, see rowsValid). Matching both keeps this
		// gate exactly as strict as the solver is with its own iterates —
		// tighter would reject valid LP optima, looser would admit points
		// the LP itself calls infeasible.
		tol := 1.1e-5 + 1e-7*math.Max(mag[i], math.Abs(p.rhs[i]))
		r := lhs[i] - p.rhs[i]
		switch p.ops[i] {
		case LE:
			if r > tol {
				return false
			}
		case GE:
			if r < -tol {
				return false
			}
		default: // EQ
			if math.Abs(r) > tol {
				return false
			}
		}
	}
	return true
}

// Objective returns c·x under the problem's current objective
// coefficients. Branch-and-bound prices candidate incumbents with it so
// the stored bound always belongs to the exact point being stored, not
// to the unrounded LP iterate it was derived from.
func (p *Problem) Objective(x []float64) float64 {
	v := 0.0
	for j, c := range p.obj {
		if c != 0 {
			v += c * x[j]
		}
	}
	return v
}
